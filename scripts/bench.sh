#!/usr/bin/env bash
# Runs the solver + corner_scaling criterion benches and aggregates the
# results into BENCH_solver.json (committed so the perf trajectory is
# recorded PR over PR).
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_solver.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

export BOSON_BENCH_JSON="$RAW"
# Keep the end-to-end corner bench at smoke scale; the micro benches are
# already bounded by their sample sizes.
export BOSON_FAST=1
# Benchmarks measure this host: let the vectorised kernels use its full
# SIMD width (the seed-era scalar reference barely responds to this).
export RUSTFLAGS="${RUSTFLAGS:--C target-cpu=native}"

echo "== bench: solver =="
cargo bench -p boson-bench --bench solver
echo "== bench: corner_scaling =="
cargo bench -p boson-bench --bench corner_scaling
echo "== bench: spectral =="
cargo bench -p boson-bench --bench spectral
echo "== bench: subspace =="
cargo bench -p boson-bench --bench subspace
echo "== bench: large_grid =="
cargo bench -p boson-bench --bench large_grid
echo "== bench: recycle =="
cargo bench -p boson-bench --bench recycle
echo "== bench: pool_split =="
cargo bench -p boson-bench --bench pool_split
echo "== bench: mg_parallel =="
cargo bench -p boson-bench --bench mg_parallel

# Aggregate the JSON lines and compute the acceptance ratio
# (naïve allocate-per-call corner loop vs the workspace pipeline).
awk '
function val(line, key,   s) {
    s = line
    sub(".*\"" key "\":", "", s)
    sub("[,}].*", "", s)
    return s + 0
}
/"id"/ {
    lines[n++] = $0
    id = $0
    sub(/.*"id":"/, "", id)
    sub(/".*/, "", id)
    median[id] = val($0, "median_ns")
}
END {
    printf "{\n  \"suite\": \"solver+corner_scaling+spectral+subspace+large_grid+recycle+pool_split+mg_parallel\",\n  \"results\": [\n"
    for (i = 0; i < n; i++) printf "    %s%s\n", lines[i], (i < n - 1 ? "," : "")
    printf "  ]"
    naive = median["corner_loop/naive_alloc_per_call"]
    fast = median["corner_loop/workspace_pipeline"]
    if (naive > 0 && fast > 0) {
        printf ",\n  \"corner_loop_naive_ns\": %.1f", naive
        printf ",\n  \"corner_loop_workspace_ns\": %.1f", fast
        printf ",\n  \"corner_loop_speedup\": %.3f", naive / fast
    }
    direct = median["one_robust_iteration/corner_sweep_27sims"]
    iter = median["one_robust_iteration/corner_iterative_27sims"]
    if (direct > 0 && iter > 0) {
        printf ",\n  \"corner_sweep_direct_ns\": %.1f", direct
        printf ",\n  \"corner_sweep_iterative_ns\": %.1f", iter
        printf ",\n  \"corner_iterative_speedup\": %.3f", direct / iter
    }
    naive_wl = median["broadband_27corner_3wl/naive_recompile"]
    batched_wl = median["broadband_27corner_3wl/batched"]
    if (naive_wl > 0 && batched_wl > 0) {
        printf ",\n  \"spectral_naive_recompile_ns\": %.1f", naive_wl
        printf ",\n  \"spectral_batched_ns\": %.1f", batched_wl
        printf ",\n  \"spectral_batch_speedup\": %.3f", naive_wl / batched_wl
    }
    per_wl = median["fused_27corner_3wl/per_omega"]
    fused = median["fused_27corner_3wl/fused"]
    if (per_wl > 0 && fused > 0) {
        printf ",\n  \"fused_per_omega_ns\": %.1f", per_wl
        printf ",\n  \"fused_ns\": %.1f", fused
        printf ",\n  \"fused_batch_speedup\": %.3f", per_wl / fused
    }
    sub_full = median["subspace_27corner_3wl/full_sweep"]
    sub_adap = median["subspace_27corner_3wl/adaptive"]
    if (sub_full > 0 && sub_adap > 0) {
        printf ",\n  \"subspace_full_sweep_ns\": %.1f", sub_full
        printf ",\n  \"subspace_adaptive_ns\": %.1f", sub_adap
        printf ",\n  \"subspace_speedup\": %.3f", sub_full / sub_adap
    }
    lg_direct = median["large_grid_256/direct_factor_solve"]
    lg_mg = median["large_grid_256/multigrid_iterative"]
    if (lg_direct > 0 && lg_mg > 0) {
        printf ",\n  \"large_grid_direct_ns\": %.1f", lg_direct
        printf ",\n  \"large_grid_multigrid_ns\": %.1f", lg_mg
        printf ",\n  \"large_grid_speedup\": %.3f", lg_direct / lg_mg
    }
    rec_base = median["recycle_27corner_3wl/baseline"]
    rec_on = median["recycle_27corner_3wl/recycled"]
    if (rec_base > 0 && rec_on > 0) {
        printf ",\n  \"recycle_baseline_ns\": %.1f", rec_base
        printf ",\n  \"recycle_recycled_ns\": %.1f", rec_on
        printf ",\n  \"recycle_speedup\": %.3f", rec_base / rec_on
    }
    ps_serial = median["pool_split/cols16_serial"]
    ps_pooled = median["pool_split/cols16_pooled"]
    if (ps_serial > 0 && ps_pooled > 0) {
        printf ",\n  \"pool_split_16_serial_ns\": %.1f", ps_serial
        printf ",\n  \"pool_split_16_pooled_ns\": %.1f", ps_pooled
    }
    mg_serial = median["mg_parallel_256/fused_mg_serial"]
    mg_pooled = median["mg_parallel_256/fused_mg_4workers"]
    if (mg_serial > 0 && mg_pooled > 0) {
        printf ",\n  \"mg_parallel_serial_ns\": %.1f", mg_serial
        printf ",\n  \"mg_parallel_4workers_ns\": %.1f", mg_pooled
        printf ",\n  \"mg_parallel_speedup\": %.3f", mg_serial / mg_pooled
    }
    printf "\n}\n"
}
' "$RAW" > "$OUT"

echo
echo "wrote $OUT"
SPEEDUP=$(awk '/corner_loop_speedup/ { s = $0; sub(/.*: /, "", s); sub(/,.*/, "", s); print s }' "$OUT")
if [ -n "${SPEEDUP:-}" ]; then
    echo "corner-loop speedup (naive / workspace): ${SPEEDUP}x"
    awk -v s="$SPEEDUP" 'BEGIN { exit (s >= 1.5 ? 0 : 1) }' \
        || { echo "FAIL: speedup ${SPEEDUP}x below the 1.5x acceptance floor" >&2; exit 1; }
else
    echo "FAIL: corner_loop medians missing from bench output" >&2
    exit 1
fi
ITER_SPEEDUP=$(awk '/corner_iterative_speedup/ { s = $0; sub(/.*: /, "", s); sub(/,.*/, "", s); print s }' "$OUT")
if [ -n "${ITER_SPEEDUP:-}" ]; then
    echo "corner-sweep speedup (direct / preconditioned-iterative): ${ITER_SPEEDUP}x"
    awk -v s="$ITER_SPEEDUP" 'BEGIN { exit (s >= 2.0 ? 0 : 1) }' \
        || { echo "FAIL: iterative corner-sweep speedup ${ITER_SPEEDUP}x below the 2.0x acceptance floor" >&2; exit 1; }
else
    echo "FAIL: corner-sweep medians missing from bench output" >&2
    exit 1
fi
SPECTRAL_SPEEDUP=$(awk '/spectral_batch_speedup/ { s = $0; sub(/.*: /, "", s); sub(/,.*/, "", s); print s }' "$OUT")
if [ -n "${SPECTRAL_SPEEDUP:-}" ]; then
    echo "broadband sweep speedup (recompile-per-wl / batched spectral): ${SPECTRAL_SPEEDUP}x"
    awk -v s="$SPECTRAL_SPEEDUP" 'BEGIN { exit (s >= 2.0 ? 0 : 1) }' \
        || { echo "FAIL: spectral batch speedup ${SPECTRAL_SPEEDUP}x below the 2.0x acceptance floor" >&2; exit 1; }
else
    echo "FAIL: broadband_27corner_3wl medians missing from bench output" >&2
    exit 1
fi
FUSED_SPEEDUP=$(awk '/fused_batch_speedup/ { s = $0; sub(/.*: /, "", s); sub(/,.*/, "", s); print s }' "$OUT")
if [ -n "${FUSED_SPEEDUP:-}" ]; then
    echo "fused (corner x omega) iteration speedup (per-omega batches / fused batch): ${FUSED_SPEEDUP}x"
    awk -v s="$FUSED_SPEEDUP" 'BEGIN { exit (s >= 1.2 ? 0 : 1) }' \
        || { echo "FAIL: fused batch speedup ${FUSED_SPEEDUP}x below the 1.2x acceptance floor" >&2; exit 1; }
else
    echo "FAIL: fused_27corner_3wl medians missing from bench output" >&2
    exit 1
fi
SUBSPACE_SPEEDUP=$(awk '/subspace_speedup/ { s = $0; sub(/.*: /, "", s); sub(/,.*/, "", s); print s }' "$OUT")
if [ -n "${SUBSPACE_SPEEDUP:-}" ]; then
    echo "adaptive subspace iteration speedup (full sweep / adaptive M=27-of-81): ${SUBSPACE_SPEEDUP}x"
    awk -v s="$SUBSPACE_SPEEDUP" 'BEGIN { exit (s >= 1.5 ? 0 : 1) }' \
        || { echo "FAIL: subspace speedup ${SUBSPACE_SPEEDUP}x below the 1.5x acceptance floor" >&2; exit 1; }
else
    echo "FAIL: subspace_27corner_3wl medians missing from bench output" >&2
    exit 1
fi
LG_SPEEDUP=$(awk '/large_grid_speedup/ { s = $0; sub(/.*: /, "", s); sub(/,.*/, "", s); print s }' "$OUT")
if [ -n "${LG_SPEEDUP:-}" ]; then
    echo "large-grid 256x256 speedup (banded-direct / multigrid-iterative): ${LG_SPEEDUP}x"
    awk -v s="$LG_SPEEDUP" 'BEGIN { exit (s >= 3.0 ? 0 : 1) }' \
        || { echo "FAIL: large-grid speedup ${LG_SPEEDUP}x below the 3.0x acceptance floor" >&2; exit 1; }
else
    echo "FAIL: large_grid_256 medians missing from bench output" >&2
    exit 1
fi
RECYCLE_SPEEDUP=$(awk '/recycle_speedup/ { s = $0; sub(/.*: /, "", s); sub(/,.*/, "", s); print s }' "$OUT")
if [ -n "${RECYCLE_SPEEDUP:-}" ]; then
    echo "temporal-axis iteration speedup (eager cold-start / recycled+lagged): ${RECYCLE_SPEEDUP}x"
    awk -v s="$RECYCLE_SPEEDUP" 'BEGIN { exit (s >= 1.5 ? 0 : 1) }' \
        || { echo "FAIL: recycle speedup ${RECYCLE_SPEEDUP}x below the 1.5x acceptance floor" >&2; exit 1; }
else
    echo "FAIL: recycle_27corner_3wl medians missing from bench output" >&2
    exit 1
fi
MG_PAR_SPEEDUP=$(awk '/mg_parallel_speedup/ { s = $0; sub(/.*: /, "", s); sub(/,.*/, "", s); print s }' "$OUT")
# The 4-worker MG gate only means something when the host can actually
# run 4 lanes concurrently: on fewer CPUs the pool inlines every part on
# the caller's thread and both sides measure the same serial sweep, so
# the gate degrades to reporting the measured ratio.
HOST_CPUS=$(nproc 2>/dev/null || echo 1)
if [ -n "${MG_PAR_SPEEDUP:-}" ]; then
    echo "parallel-multigrid 256x256 speedup (serial MG sweep / 4-worker MG sweep): ${MG_PAR_SPEEDUP}x"
    if [ "$HOST_CPUS" -ge 4 ]; then
        awk -v s="$MG_PAR_SPEEDUP" 'BEGIN { exit (s >= 2.0 ? 0 : 1) }' \
            || { echo "FAIL: parallel-multigrid speedup ${MG_PAR_SPEEDUP}x below the 2.0x acceptance floor" >&2; exit 1; }
    else
        echo "SKIP: mg_parallel_speedup floor not enforced on a ${HOST_CPUS}-CPU host (needs >= 4 CPUs for 4 worker lanes)"
    fi
else
    echo "FAIL: mg_parallel_256 medians missing from bench output" >&2
    exit 1
fi
