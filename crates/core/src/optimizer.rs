//! First-order optimisers (Adam) for the latent design variables.
//!
//! The objective is *maximised*: `step` moves parameters along the
//! gradient (gradient ascent with Adam moment estimates).

use serde::{Deserialize, Serialize};

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Denominator stabiliser ε.
    pub eps: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 0.02,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Adam optimiser state.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
}

impl Adam {
    /// Creates the optimiser for `n` parameters.
    pub fn new(n: usize, config: AdamConfig) -> Self {
        Self {
            config,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Overrides the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.config.lr = lr;
    }

    /// One ascent step: `params += lr·m̂/(√v̂ + ε)`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree with the construction size.
    pub fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter length mismatch");
        assert_eq!(grad.len(), self.m.len(), "gradient length mismatch");
        self.t += 1;
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * grad[i];
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * grad[i] * grad[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] += self.config.lr * mhat / (vhat.sqrt() + self.config.eps);
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximises_concave_quadratic() {
        // f(x) = -(x-3)², gradient 2(3-x); Adam should find x ≈ 3.
        let mut x = vec![0.0];
        let mut opt = Adam::new(
            1,
            AdamConfig {
                lr: 0.1,
                ..Default::default()
            },
        );
        for _ in 0..500 {
            let g = 2.0 * (3.0 - x[0]);
            opt.step(&mut x, &g.into_iter_hack());
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
        assert_eq!(opt.steps(), 500);
    }

    // Helper so the test reads naturally with a scalar gradient.
    trait IntoIterHack {
        fn into_iter_hack(self) -> Vec<f64>;
    }
    impl IntoIterHack for f64 {
        fn into_iter_hack(self) -> Vec<f64> {
            vec![self]
        }
    }

    #[test]
    fn multi_dimensional_rosenbrock_ascent() {
        // Maximise -((1-a)² + 5(b-a²)²): optimum at (1, 1).
        let mut p = vec![-0.5, 0.5];
        let mut opt = Adam::new(
            2,
            AdamConfig {
                lr: 0.02,
                ..Default::default()
            },
        );
        for _ in 0..4000 {
            let (a, b) = (p[0], p[1]);
            let g = vec![
                2.0 * (1.0 - a) + 20.0 * a * (b - a * a),
                -10.0 * (b - a * a),
            ];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 1.0).abs() < 0.05, "a = {}", p[0]);
        assert!((p[1] - 1.0).abs() < 0.1, "b = {}", p[1]);
    }

    #[test]
    fn zero_gradient_is_stationary() {
        let mut p = vec![1.0, -2.0];
        let mut opt = Adam::new(2, AdamConfig::default());
        opt.step(&mut p, &[0.0, 0.0]);
        assert_eq!(p, vec![1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_size_panics() {
        let mut p = vec![0.0; 3];
        let mut opt = Adam::new(2, AdamConfig::default());
        opt.step(&mut p, &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn lr_override() {
        let mut opt = Adam::new(1, AdamConfig::default());
        opt.set_lr(0.5);
        assert_eq!(opt.config().lr, 0.5);
    }
}
