//! Method zoo: BOSON-1 and every baseline from the paper's tables.
//!
//! Notation (paper §IV-B): `LS`/`Density` choose the parameterisation;
//! `-M` adds heuristic minimum-feature-size control; `InvFabCor-#` is the
//! two-stage flow (free optimisation, then inverse-lithography mask
//! correction matching `#` litho corners); `-eff` swaps the isolator
//! objective from contrast to transmission efficiency. `BOSON-1` is the
//! full method: level set, fabrication-aware subspace optimisation, dense
//! objectives, conditional subspace relaxation and axial+worst-case
//! sampling.

use crate::compiled::CompiledProblem;
use crate::fabchain::FabChain;
use crate::objective::MainObjective;
use crate::optimizer::{Adam, AdamConfig};
use crate::problem::DeviceProblem;
use crate::runner::{InitKind, InverseDesigner, IterationRecord, RunnerConfig};
use crate::schedule::RelaxationSchedule;
use boson_fab::{
    EoleField, EoleParams, EtchProjection, SamplingStrategy, VariationCorner, VariationSpace,
};
use boson_fdfd::sim::SolverStrategy;
use boson_litho::{LithoConfig, LithoCorner, LithoModel};
use boson_num::Array2;
use boson_param::{DensityConfig, DensityParam, LevelSetConfig, LevelSetParam};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which parameterisation a method uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamKind {
    /// Coarse-control level set (≈ 0.1 µm control pitch).
    LevelSet,
    /// Per-pixel density.
    Density,
}

/// Stage-2 inverse-lithography mask correction settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaskCorrectionSpec {
    /// Number of lithography corners matched (1 = nominal, 3 = all).
    pub litho_corners: usize,
    /// Correction iterations (cheap — no EM solves).
    pub iterations: usize,
    /// Adam learning rate for the correction.
    pub lr: f64,
}

impl Default for MaskCorrectionSpec {
    fn default() -> Self {
        Self {
            litho_corners: 3,
            iterations: 150,
            lr: 0.1,
        }
    }
}

/// Full description of one method row in the paper's tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodSpec {
    /// Table label ("Density", "InvFabCor-M-3", "BOSON-1", …).
    pub name: String,
    /// Parameterisation.
    pub param: ParamKind,
    /// Heuristic MFS control ("-M").
    pub mfs_control: bool,
    /// Optimise through the fabrication model.
    pub fab_aware: bool,
    /// Dense auxiliary objectives (landscape reshaping).
    pub dense_objectives: bool,
    /// Variation sampling strategy (only used when `fab_aware`).
    pub sampling: SamplingStrategy,
    /// Subspace relaxation epochs (0 = none).
    pub relax_epochs: usize,
    /// Initialisation.
    pub init: InitKind,
    /// Optional stage-2 mask correction (the "InvFabCor" family).
    pub correction: Option<MaskCorrectionSpec>,
    /// Optional main-objective override (the "-eff" variant).
    pub objective_override: Option<MainObjective>,
    /// Learning-rate multiplier relative to [`BaseRunConfig::lr`]
    /// (per-pixel density parameters want larger steps than level-set
    /// control values).
    pub lr_scale: f64,
}

impl MethodSpec {
    /// The full BOSON-1 method.
    pub fn boson1(iterations: usize) -> Self {
        Self {
            name: "BOSON-1".into(),
            param: ParamKind::LevelSet,
            mfs_control: false,
            fab_aware: true,
            dense_objectives: true,
            sampling: SamplingStrategy::AxialPlusWorst,
            relax_epochs: iterations / 2,
            init: InitKind::Seeded,
            correction: None,
            objective_override: None,
            lr_scale: 1.0,
        }
    }

    /// Conventional density-based inverse design (no MFS, no fab model).
    pub fn density() -> Self {
        Self {
            name: "Density".into(),
            param: ParamKind::Density,
            mfs_control: false,
            fab_aware: false,
            dense_objectives: false,
            sampling: SamplingStrategy::NominalOnly,
            relax_epochs: 0,
            init: InitKind::Seeded,
            correction: None,
            objective_override: None,
            lr_scale: 4.0,
        }
    }

    /// Density with blur-based MFS control.
    pub fn density_m() -> Self {
        Self {
            name: "Density-M".into(),
            mfs_control: true,
            ..Self::density()
        }
    }

    /// Level-set free optimisation.
    pub fn ls() -> Self {
        Self {
            name: "LS".into(),
            param: ParamKind::LevelSet,
            ..Self::density()
        }
    }

    /// Level set with coarse (MFS-safe) control grid.
    pub fn ls_m() -> Self {
        Self {
            name: "LS-M".into(),
            mfs_control: true,
            ..Self::ls()
        }
    }

    /// Two-stage inverse fabrication correction on `base`, matching
    /// `corners` litho corners.
    pub fn inv_fab_cor(base: MethodSpec, corners: usize) -> Self {
        let m = if base.mfs_control { "-M" } else { "" };
        Self {
            name: format!("InvFabCor{m}-{corners}"),
            correction: Some(MaskCorrectionSpec {
                litho_corners: corners,
                ..Default::default()
            }),
            ..base
        }
    }

    /// The ten-method comparison of Table III (isolator).
    pub fn table3_methods(iterations: usize) -> Vec<MethodSpec> {
        let mut eff = Self::inv_fab_cor(Self::ls_m(), 3);
        eff.name = "InvFabCor-M-3-eff".into();
        eff.objective_override = Some(MainObjective::MaximizePower {
            excitation: 0,
            monitor: "trans3".into(),
        });
        vec![
            Self::density(),
            Self::density_m(),
            Self::ls(),
            Self::ls_m(),
            Self::inv_fab_cor(Self::ls(), 1),
            Self::inv_fab_cor(Self::ls(), 3),
            Self::inv_fab_cor(Self::ls_m(), 1),
            Self::inv_fab_cor(Self::ls_m(), 3),
            eff,
            Self::boson1(iterations),
        ]
    }

    /// The three-method comparison of Table I.
    pub fn table1_methods(iterations: usize) -> Vec<MethodSpec> {
        vec![
            Self::density(),
            Self::inv_fab_cor(Self::ls_m(), 3),
            Self::boson1(iterations),
        ]
    }
}

/// Shared run parameters (grid-scale knobs independent of the method).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaseRunConfig {
    /// Optimisation iterations.
    pub iterations: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Corner linear-solver strategy (a runtime knob, not a method
    /// property: every method row can run under either solver).
    pub solver: SolverStrategy,
}

impl Default for BaseRunConfig {
    fn default() -> Self {
        Self {
            iterations: 40,
            lr: 0.02,
            seed: 7,
            threads: 8,
            solver: SolverStrategy::Direct,
        }
    }
}

/// A completed method run.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Method label.
    pub name: String,
    /// Final (continuous) mask (post-correction for InvFabCor methods).
    pub mask: Array2<f64>,
    /// The stage-1 mask before mask correction (equals `mask` for
    /// single-stage methods).
    pub stage1_mask: Array2<f64>,
    /// Optimisation trace.
    pub trajectory: Vec<IterationRecord>,
    /// Total factorisations (simulation cost).
    pub factorizations: usize,
}

/// Builds the standard fabrication chain for a problem's design region.
pub fn standard_chain(problem: &DeviceProblem) -> FabChain {
    let (dr, dc) = problem.design_shape;
    FabChain::new(
        LithoModel::new(dr, dc, problem.grid.dx, LithoConfig::default()),
        EtchProjection::new(25.0),
        EoleField::new(dr, dc, problem.grid.dx, EoleParams::default()),
    )
}

/// Control-pitch helper: number of level-set control points for a span.
fn control_points(cells: usize, dx: f64, pitch: f64) -> usize {
    ((cells as f64 * dx / pitch).round() as usize + 1).max(4)
}

/// Builds the level-set parameterisation used by a method.
pub fn levelset_param(problem: &DeviceProblem, mfs: bool) -> LevelSetParam {
    let (dr, dc) = problem.design_shape;
    // "-M": control pitch ≥ the litho MFS (≈0.16 µm) so no sub-resolution
    // feature can even be expressed; otherwise ~0.1 µm.
    let pitch = if mfs { 0.2 } else { 0.1 };
    LevelSetParam::new(
        dr,
        dc,
        problem.grid.dx,
        LevelSetConfig {
            control_rows: control_points(dr, problem.grid.dx, pitch),
            control_cols: control_points(dc, problem.grid.dx, pitch),
            smoothing: 0.05,
        },
    )
}

/// Builds the density parameterisation used by a method.
pub fn density_param(problem: &DeviceProblem, mfs: bool) -> DensityParam {
    let (dr, dc) = problem.design_shape;
    DensityParam::new(
        dr,
        dc,
        problem.grid.dx,
        DensityConfig {
            sharpness: 4.0,
            // Blur σ ≈ half the litho MFS, in cells.
            blur_radius: if mfs { 1.6 } else { 0.0 },
        },
    )
}

/// Stage-2 inverse-lithography mask correction: find a mask whose
/// post-fabrication pattern matches `target` across the requested litho
/// corners (L2 loss, Adam, no EM solves).
pub fn mask_correction(
    chain: &FabChain,
    target: &Array2<f64>,
    spec: &MaskCorrectionSpec,
) -> Array2<f64> {
    let (dr, dc) = target.shape();
    let corners: Vec<LithoCorner> = match spec.litho_corners {
        0 | 1 => vec![LithoCorner::Nominal],
        2 => vec![LithoCorner::Min, LithoCorner::Max],
        _ => LithoCorner::ALL.to_vec(),
    };
    // Latent per-pixel variables through a sigmoid; start at the target.
    let sharp = 4.0;
    let mut theta: Vec<f64> = target
        .as_slice()
        .iter()
        .map(|&t| if t > 0.5 { 1.0 } else { -1.0 })
        .collect();
    let sigmoid = |t: f64| 1.0 / (1.0 + (-sharp * t).exp());
    let mut adam = Adam::new(
        theta.len(),
        AdamConfig {
            lr: spec.lr,
            ..Default::default()
        },
    );
    let n = (dr * dc) as f64;
    for _ in 0..spec.iterations {
        let mask = Array2::from_fn(dr, dc, |r, c| sigmoid(theta[r * dc + c]));
        let mut grad_mask = Array2::<f64>::zeros(dr, dc);
        for lc in &corners {
            let corner = VariationCorner {
                litho: *lc,
                ..VariationCorner::nominal()
            };
            let fwd = chain.forward(&mask, &corner, false);
            // loss_c = mean((ρ_fab − target)²); we *descend*, so feed the
            // negated cotangent to the ascent optimiser later.
            let v = fwd.rho_fab.zip_map(target, |a, b| 2.0 * (a - b) / n);
            let g = chain.vjp_mask(&fwd, &v);
            grad_mask += &g;
        }
        // Chain through the sigmoid and ascend on -loss.
        let grad_theta: Vec<f64> = (0..theta.len())
            .map(|k| {
                let s = sigmoid(theta[k]);
                -grad_mask.as_slice()[k] * sharp * s * (1.0 - s)
            })
            .collect();
        adam.step(&mut theta, &grad_theta);
    }
    Array2::from_fn(dr, dc, |r, c| sigmoid(theta[r * dc + c]))
}

/// Runs one method end-to-end (stage 1 optimisation + optional stage 2
/// correction) and returns the final mask.
pub fn run_method(
    compiled: &CompiledProblem,
    spec: &MethodSpec,
    base: &BaseRunConfig,
) -> MethodRun {
    let mut problem = compiled.problem().clone();
    if let Some(over) = &spec.objective_override {
        problem.objective.main = over.clone();
    }
    // Rebuild a compiled problem only if the objective changed (compile is
    // cheap relative to a run).
    let owned_compiled;
    let compiled_ref: &CompiledProblem = if spec.objective_override.is_some() {
        owned_compiled = CompiledProblem::compile(problem.clone()).expect("recompile failed");
        &owned_compiled
    } else {
        compiled
    };

    let chain = standard_chain(&problem);
    let space = VariationSpace::default();
    let config = RunnerConfig {
        iterations: base.iterations,
        adam: AdamConfig {
            lr: base.lr * spec.lr_scale,
            ..Default::default()
        },
        sampling: spec.sampling,
        relaxation: RelaxationSchedule::over(spec.relax_epochs),
        beta_start: 10.0,
        beta_end: 40.0,
        dense_objectives: spec.dense_objectives,
        fab_aware: spec.fab_aware,
        init: spec.init,
        seed: base.seed,
        threads: base.threads,
        solver: base.solver,
        // The paper's methods are single-wavelength; broadband runs build
        // their RunnerConfig directly (see examples/broadband_bend.rs).
        spectral_agg: crate::objective::SpectralAggregation::Mean,
        // The comparison methods sweep their full corner sets — adaptive
        // subspace scheduling is a production-run feature, not part of
        // the paper's baseline protocol.
        subspace: crate::subspace::SubspaceConfig::default(),
        // Likewise the temporal axis (Krylov recycling + lagged factors)
        // stays off: the baselines are measured on the eager pipeline.
        recycle: crate::compiled::RecycleConfig::default(),
    };

    let mut rng = StdRng::seed_from_u64(base.seed);
    let (mask, trajectory, factorizations) = match spec.param {
        ParamKind::LevelSet => {
            let param = levelset_param(&problem, spec.mfs_control);
            let mut designer =
                InverseDesigner::new(compiled_ref, &param, chain.clone(), space, config);
            let theta0 = designer.initial_theta(&mut rng);
            let res = designer.run(theta0);
            (res.mask, res.trajectory, res.factorizations)
        }
        ParamKind::Density => {
            let param = density_param(&problem, spec.mfs_control);
            let mut designer =
                InverseDesigner::new(compiled_ref, &param, chain.clone(), space, config);
            let theta0 = designer.initial_theta(&mut rng);
            let res = designer.run(theta0);
            (res.mask, res.trajectory, res.factorizations)
        }
    };

    // Stage 2: mask correction toward the stage-1 pattern.
    let stage1_mask = mask.clone();
    let final_mask = if let Some(corr) = &spec.correction {
        let target = crate::eval::binarize_mask(&mask);
        mask_correction(&chain, &target, corr)
    } else {
        mask
    };

    MethodRun {
        name: spec.name.clone(),
        mask: final_mask,
        stage1_mask,
        trajectory,
        factorizations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::bending;
    use boson_param::Parameterization;

    #[test]
    fn method_roster_matches_tables() {
        let t3 = MethodSpec::table3_methods(40);
        assert_eq!(t3.len(), 10);
        let names: Vec<&str> = t3.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Density",
                "Density-M",
                "LS",
                "LS-M",
                "InvFabCor-1",
                "InvFabCor-3",
                "InvFabCor-M-1",
                "InvFabCor-M-3",
                "InvFabCor-M-3-eff",
                "BOSON-1"
            ]
        );
        let t1 = MethodSpec::table1_methods(40);
        assert_eq!(t1.len(), 3);
        assert_eq!(t1[2].name, "BOSON-1");
    }

    #[test]
    fn boson1_uses_all_techniques() {
        let m = MethodSpec::boson1(40);
        assert!(m.fab_aware);
        assert!(m.dense_objectives);
        assert_eq!(m.sampling, SamplingStrategy::AxialPlusWorst);
        assert!(m.relax_epochs > 0);
        assert!(m.correction.is_none());
    }

    #[test]
    fn baselines_disable_fab_model() {
        for m in [MethodSpec::density(), MethodSpec::ls(), MethodSpec::ls_m()] {
            assert!(!m.fab_aware, "{}", m.name);
            assert!(!m.dense_objectives, "{}", m.name);
        }
    }

    #[test]
    fn parameterisation_pitch_respects_mfs() {
        let p = bending();
        let fine = levelset_param(&p, false);
        let coarse = levelset_param(&p, true);
        assert!(fine.num_params() > coarse.num_params());
        let d = density_param(&p, false);
        assert_eq!(d.num_params(), 28 * 28);
    }

    #[test]
    fn mask_correction_recovers_fabricable_target() {
        // A large square is fabricable: the corrected mask must reproduce
        // it through the litho model better than the raw target does…
        let p = bending();
        let chain = standard_chain(&p);
        let (dr, dc) = p.design_shape;
        let target = Array2::from_fn(dr, dc, |r, c| {
            if (8..20).contains(&r) && (8..20).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        let corrected = mask_correction(
            &chain,
            &target,
            &MaskCorrectionSpec {
                litho_corners: 3,
                iterations: 60,
                lr: 0.15,
            },
        );
        let err = |mask: &Array2<f64>| -> f64 {
            let fwd = chain.forward(mask, &VariationCorner::nominal(), false);
            fwd.rho_fab.zip_map(&target, |a, b| (a - b) * (a - b)).sum()
        };
        let e_raw = err(&target);
        let e_corr = err(&corrected);
        assert!(
            e_corr < e_raw,
            "correction should reduce pattern error: {e_corr} !< {e_raw}"
        );
    }
}
