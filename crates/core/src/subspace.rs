//! Adaptive variation-aware corner-subspace scheduling — the paper's
//! headline sampling-efficiency mechanism (BOSON-1, §III).
//!
//! A broadband robust iteration nominally evaluates the full ω-major
//! (fabrication corner × wavelength) cross product — 27 corners × K
//! wavelengths of forward + adjoint FDFD solves — even though most
//! columns contribute near-zero weight to the worst-case/mean robust
//! aggregate. The [`SubspaceScheduler`] exploits that: it maintains
//! per-column exponential moving averages of the *objective value* and
//! the *spectral aggregation weight* (both observed for free from the
//! sweeps the runner already performs), ranks columns by an importance
//! score, and activates only the top `M` columns per iteration. The
//! fabrication-nominal corner at every wavelength is always active (it
//! refreshes the per-ω preconditioner factors and warm starts that the
//! fused batch is built on), and every `R`-th iteration is a forced
//! **full-sweep refresh epoch** so dormant columns that drift toward the
//! worst case are re-observed and re-enter the active set.
//!
//! The scheduler is pure bookkeeping: it never solves anything, and it
//! composes with the rest of the adaptive machinery unchanged — the
//! partial product flows through the same fused lockstep batch
//! ([`crate::compiled::CompiledProblem::evaluate_corner_product`]), the
//! same per-(corner, ω) budget-miss fallback, and the same `CornerPolicy`
//! direct-pinning (a corner pinned during a refresh epoch stays pinned in
//! partial sweeps and vice versa). `M =` full product is **bit-identical**
//! to the fused full sweep; see the regression tests in
//! [`crate::runner`].
//!
//! Column identity is the **slot** in the cross product (ω-major index),
//! which [`boson_fab::VariationSpace::spectral_corners`] keeps stable
//! across iterations — see
//! [`boson_fab::VariationSpace::product_columns`].

use boson_fab::VariationSpace;
use serde::{Deserialize, Serialize};

/// Knobs of the adaptive corner-subspace scheduler (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubspaceConfig {
    /// Maximum number of active (corner, ω) columns per robust iteration.
    /// `None` disables the scheduler entirely — every iteration sweeps
    /// the full cross product, exactly as before the scheduler existed.
    /// Values are effectively clamped to at least the forced set (the
    /// fabrication-nominal corner at every wavelength) and at most the
    /// product size.
    pub active_columns: Option<usize>,
    /// Full-sweep refresh period `R ≥ 1`: iterations `0, R, 2R, …`
    /// evaluate the whole cross product so dormant columns are
    /// re-observed. `R = 1` makes every iteration a full sweep.
    pub refresh_every: usize,
    /// EMA retention `α ∈ [0, 1)`: after an observation `o`, a column's
    /// average becomes `α·old + (1 − α)·o` (the first observation is
    /// taken verbatim). Smaller values track drifting objectives faster;
    /// larger values resist noise from redrawn random corners.
    pub ema_decay: f64,
    /// Weight of the objective-badness term in the importance score: a
    /// column's score is its EMA aggregation weight plus
    /// `objective_pressure` times its normalised badness (how close its
    /// EMA objective is to the worst observed — candidates to *become*
    /// the worst case rank above comfortable columns).
    pub objective_pressure: f64,
    /// Weight of the gradient-norm term in the importance score: columns
    /// whose EMA gradient magnitude (observed for free from the adjoint
    /// fold the runner already performs) is large relative to the
    /// largest observed rank higher — they are the columns actually
    /// steering the design. `0.0` (the default) disables the term
    /// entirely: scores are bit-identical to the pre-gradient-signal
    /// scheduler.
    pub gradient_pressure: f64,
}

impl Default for SubspaceConfig {
    /// Disabled: full sweep every iteration (bit-identical to the
    /// pre-scheduler pipeline by construction).
    fn default() -> Self {
        Self {
            active_columns: None,
            refresh_every: 8,
            ema_decay: 0.6,
            objective_pressure: 0.25,
            gradient_pressure: 0.0,
        }
    }
}

impl SubspaceConfig {
    /// An enabled scheduler keeping at most `m` active columns, with the
    /// default refresh period and EMA constants.
    pub fn with_active_columns(m: usize) -> Self {
        Self {
            active_columns: Some(m),
            ..Self::default()
        }
    }

    /// `true` when the scheduler actually schedules (an `active_columns`
    /// bound is set).
    pub fn is_enabled(&self) -> bool {
        self.active_columns.is_some()
    }
}

/// Active-set telemetry for one iteration of a subspace-scheduled run
/// (carried in [`crate::runner::IterationRecord`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveSetRecord {
    /// Columns evaluated this iteration.
    pub active_columns: usize,
    /// Total columns of the (corner × ω) cross product.
    pub product_columns: usize,
    /// `true` when this iteration was a forced full-sweep refresh epoch
    /// (or the product was small enough that `M` covered it anyway).
    pub refresh: bool,
}

/// What the scheduler decided for one iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Per-column activity mask over the ω-major cross product.
    pub active: Vec<bool>,
    /// `true` when every column is active (refresh epoch, disabled
    /// scheduler, `M ≥` product, or unobserved columns remaining).
    pub refresh: bool,
}

impl SweepPlan {
    /// The telemetry record of this plan.
    pub fn record(&self) -> ActiveSetRecord {
        ActiveSetRecord {
            active_columns: self.active.iter().filter(|&&a| a).count(),
            product_columns: self.active.len(),
            refresh: self.refresh,
        }
    }
}

/// Per-(corner, ω) importance state driving the adaptive subspace
/// schedule. One instance lives for the duration of one optimisation run
/// (the statistics deliberately do **not** survive across runs — a new
/// design starts from a fresh full sweep).
#[derive(Debug, Clone)]
pub struct SubspaceScheduler {
    config: SubspaceConfig,
    /// EMA of each column's objective value.
    ema_objective: Vec<f64>,
    /// EMA of each column's spectral aggregation weight (its share of
    /// its fabrication corner's gradient).
    ema_weight: Vec<f64>,
    /// EMA of each column's gradient norm (fed separately via
    /// [`Self::record_gradient`] — zero-weight columns skip their
    /// adjoints and therefore never report one).
    ema_grad: Vec<f64>,
    /// Whether the column has ever reported a gradient norm.
    grad_seen: Vec<bool>,
    /// Whether the column has ever been observed.
    seen: Vec<bool>,
}

impl SubspaceScheduler {
    /// A scheduler for a cross product of `columns` columns
    /// ([`VariationSpace::product_columns`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid: `columns == 0`,
    /// `refresh_every == 0`, `ema_decay ∉ [0, 1)`, or a negative
    /// `objective_pressure` or `gradient_pressure`.
    pub fn new(columns: usize, config: SubspaceConfig) -> Self {
        assert!(columns > 0, "empty cross product");
        assert!(
            config.refresh_every >= 1,
            "refresh period must be at least 1 iteration"
        );
        assert!(
            (0.0..1.0).contains(&config.ema_decay),
            "EMA decay must lie in [0, 1), got {}",
            config.ema_decay
        );
        assert!(
            config.objective_pressure >= 0.0,
            "objective pressure must be non-negative"
        );
        assert!(
            config.gradient_pressure >= 0.0,
            "gradient pressure must be non-negative"
        );
        Self {
            config,
            ema_objective: vec![0.0; columns],
            ema_weight: vec![0.0; columns],
            ema_grad: vec![0.0; columns],
            grad_seen: vec![false; columns],
            seen: vec![false; columns],
        }
    }

    /// Number of tracked columns.
    pub fn columns(&self) -> usize {
        self.seen.len()
    }

    /// The active-set plan for iteration `iter`. `forced` marks the
    /// always-active columns (the fabrication-nominal corner at every
    /// wavelength). Full sweeps happen when the scheduler is disabled,
    /// on refresh epochs (`iter % refresh_every == 0` — iteration 0 is
    /// always a refresh, so the EMAs start from a complete observation),
    /// when `M` covers the product, or while any column has never been
    /// observed.
    ///
    /// # Panics
    ///
    /// Panics if `forced` does not match the tracked column count.
    pub fn plan(&self, iter: usize, forced: &[bool]) -> SweepPlan {
        assert_eq!(forced.len(), self.columns(), "forced mask length mismatch");
        let full = || SweepPlan {
            active: vec![true; self.columns()],
            refresh: true,
        };
        let Some(m) = self.config.active_columns else {
            return full();
        };
        if m >= self.columns()
            || iter.is_multiple_of(self.config.refresh_every)
            || self.seen.iter().any(|&s| !s)
        {
            return full();
        }
        let scores = self.scores();
        SweepPlan {
            active: VariationSpace::select_top_columns(&scores, forced, m),
            refresh: false,
        }
    }

    /// The current importance score of every column: EMA aggregation
    /// weight plus [`SubspaceConfig::objective_pressure`] times the
    /// normalised badness `(o_max − o) / (o_max − o_min)` (columns whose
    /// EMA objective is closest to the worst observed rank highest;
    /// unobserved columns score `+∞`), plus — only when
    /// [`SubspaceConfig::gradient_pressure`] is positive —
    /// `gradient_pressure` times the column's EMA gradient norm
    /// normalised by the largest observed (`g / g_max`). Deterministic
    /// in the recorded observations, and bit-identical to the
    /// gradient-free score when `gradient_pressure == 0.0`.
    pub fn scores(&self) -> Vec<f64> {
        let (mut o_min, mut o_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (ci, &o) in self.ema_objective.iter().enumerate() {
            if self.seen[ci] {
                o_min = o_min.min(o);
                o_max = o_max.max(o);
            }
        }
        let span = o_max - o_min;
        let use_grad = self.config.gradient_pressure > 0.0;
        let g_max = if use_grad {
            self.ema_grad
                .iter()
                .zip(&self.grad_seen)
                .filter(|&(_, &gs)| gs)
                .fold(0.0f64, |m, (&g, _)| m.max(g))
        } else {
            0.0
        };
        (0..self.columns())
            .map(|ci| {
                if !self.seen[ci] {
                    return f64::INFINITY;
                }
                let badness = if span > 0.0 {
                    (o_max - self.ema_objective[ci]) / span
                } else {
                    0.0
                };
                let mut score = self.ema_weight[ci] + self.config.objective_pressure * badness;
                if use_grad && g_max > 0.0 && self.grad_seen[ci] {
                    score += self.config.gradient_pressure * self.ema_grad[ci] / g_max;
                }
                score
            })
            .collect()
    }

    /// Feeds one observed column: its objective value and its spectral
    /// aggregation weight (the column's share of its fabrication corner's
    /// gradient, as evaluated by the sweep that produced it). Dormant
    /// columns are simply not recorded — their EMAs freeze until the next
    /// refresh epoch re-observes them.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of range.
    pub fn record(&mut self, column: usize, objective: f64, weight: f64) {
        assert!(column < self.columns(), "column {column} out of range");
        if self.seen[column] {
            let a = self.config.ema_decay;
            self.ema_objective[column] = a * self.ema_objective[column] + (1.0 - a) * objective;
            self.ema_weight[column] = a * self.ema_weight[column] + (1.0 - a) * weight;
        } else {
            self.ema_objective[column] = objective;
            self.ema_weight[column] = weight;
            self.seen[column] = true;
        }
    }

    /// Feeds one observed gradient norm for a column — the magnitude of
    /// the per-column ∂objective/∂ε seed the adjoint fold already
    /// computes, so the signal is free. Recorded separately from
    /// [`Self::record`] because zero-weight columns skip their adjoints
    /// and never produce one. The signal only influences [`Self::scores`]
    /// when [`SubspaceConfig::gradient_pressure`] is positive.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of range.
    pub fn record_gradient(&mut self, column: usize, grad_norm: f64) {
        assert!(column < self.columns(), "column {column} out of range");
        if self.grad_seen[column] {
            let a = self.config.ema_decay;
            self.ema_grad[column] = a * self.ema_grad[column] + (1.0 - a) * grad_norm;
        } else {
            self.ema_grad[column] = grad_norm;
            self.grad_seen[column] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_observation(s: &mut SubspaceScheduler, objectives: &[f64], weights: &[f64]) {
        for ci in 0..s.columns() {
            s.record(ci, objectives[ci], weights[ci]);
        }
    }

    #[test]
    fn disabled_scheduler_always_plans_full_sweeps() {
        let s = SubspaceScheduler::new(6, SubspaceConfig::default());
        assert!(!SubspaceConfig::default().is_enabled());
        for iter in 0..5 {
            let plan = s.plan(iter, &[false; 6]);
            assert!(plan.refresh);
            assert!(plan.active.iter().all(|&a| a));
            assert_eq!(plan.record().active_columns, 6);
        }
    }

    #[test]
    fn first_iterations_sweep_fully_until_observed_then_select_top_m() {
        let cfg = SubspaceConfig {
            refresh_every: 10,
            ..SubspaceConfig::with_active_columns(3)
        };
        let mut s = SubspaceScheduler::new(5, cfg);
        let forced = [true, false, false, false, false];
        // Nothing observed yet: iteration 1 (not a refresh epoch) still
        // sweeps fully.
        assert!(s.plan(1, &forced).refresh);
        // Column 3 carries all the aggregation weight; column 4 has the
        // worst objective.
        full_observation(
            &mut s,
            &[0.9, 0.8, 0.7, 0.6, 0.1],
            &[0.0, 0.0, 0.0, 1.0, 0.0],
        );
        let plan = s.plan(1, &forced);
        assert!(!plan.refresh);
        // Forced col 0, weight-carrying col 3, worst-objective col 4.
        assert_eq!(plan.active, [true, false, false, true, true]);
        assert_eq!(plan.record().active_columns, 3);
        assert_eq!(plan.record().product_columns, 5);
    }

    #[test]
    fn refresh_epochs_force_full_sweeps() {
        let cfg = SubspaceConfig {
            refresh_every: 4,
            ..SubspaceConfig::with_active_columns(2)
        };
        let mut s = SubspaceScheduler::new(4, cfg);
        full_observation(&mut s, &[0.5, 0.4, 0.3, 0.2], &[1.0, 0.0, 0.0, 0.0]);
        for iter in 0..9 {
            let plan = s.plan(iter, &[true, false, false, false]);
            assert_eq!(plan.refresh, iter % 4 == 0, "iter {iter}");
            assert_eq!(plan.active.iter().all(|&a| a), iter % 4 == 0);
        }
    }

    #[test]
    fn m_at_least_product_size_is_always_a_full_sweep() {
        let mut s = SubspaceScheduler::new(3, SubspaceConfig::with_active_columns(3));
        full_observation(&mut s, &[0.1, 0.2, 0.3], &[1.0, 0.0, 0.0]);
        for iter in 0..5 {
            let plan = s.plan(iter, &[true, false, false]);
            assert!(plan.refresh);
            assert!(plan.active.iter().all(|&a| a));
        }
    }

    /// The re-entry guarantee: a column dormant for several iterations is
    /// re-observed by the refresh epoch, and if it has drifted to the
    /// worst case it displaces a previously-active column from the very
    /// next partial sweep.
    #[test]
    fn refresh_epoch_reenters_a_dormant_column_that_became_worst_case() {
        let cfg = SubspaceConfig {
            refresh_every: 4,
            ema_decay: 0.0, // take observations verbatim: sharpest test
            ..SubspaceConfig::with_active_columns(2)
        };
        let mut s = SubspaceScheduler::new(4, cfg);
        let forced = [true, false, false, false];
        // Iteration 0 (refresh): column 1 looks important, column 3 is
        // comfortable and carries no weight.
        full_observation(&mut s, &[0.5, 0.2, 0.6, 0.9], &[0.0, 1.0, 0.0, 0.0]);
        // Iterations 1–3: column 3 is dormant every time.
        for iter in 1..4 {
            let plan = s.plan(iter, &forced);
            assert!(!plan.refresh, "iter {iter}");
            assert_eq!(plan.active, [true, true, false, false], "iter {iter}");
            // Only active columns report back.
            s.record(0, 0.5, 0.0);
            s.record(1, 0.2, 1.0);
        }
        // Iteration 4: refresh epoch — full sweep re-observes column 3,
        // which meanwhile collapsed to the worst case and now carries all
        // the weight.
        let plan = s.plan(4, &forced);
        assert!(plan.refresh);
        assert!(plan.active.iter().all(|&a| a));
        full_observation(&mut s, &[0.5, 0.4, 0.6, 0.05], &[0.0, 0.0, 0.0, 1.0]);
        // Iteration 5: the re-observed column displaces column 1.
        let plan = s.plan(5, &forced);
        assert!(!plan.refresh);
        assert_eq!(plan.active, [true, false, false, true]);
    }

    #[test]
    fn ema_blends_observations_with_the_configured_decay() {
        let cfg = SubspaceConfig {
            ema_decay: 0.5,
            ..SubspaceConfig::with_active_columns(1)
        };
        let mut s = SubspaceScheduler::new(1, cfg);
        s.record(0, 1.0, 1.0); // first observation verbatim
        assert_eq!(s.ema_objective[0], 1.0);
        s.record(0, 0.0, 0.0);
        assert_eq!(s.ema_objective[0], 0.5);
        assert_eq!(s.ema_weight[0], 0.5);
    }

    /// The gradient-pressure satellite: with identical weights and
    /// objectives the ranking is decided purely by the gradient signal —
    /// and with `gradient_pressure = 0.0` (the default) the signal is
    /// recorded but provably inert.
    #[test]
    fn gradient_pressure_reorders_an_otherwise_tied_ranking() {
        let base = SubspaceConfig {
            refresh_every: 10,
            objective_pressure: 0.0,
            ..SubspaceConfig::with_active_columns(2)
        };
        let forced = [true, false, false, false];
        let feed = |s: &mut SubspaceScheduler| {
            // Identical objectives and weights everywhere: columns 1–3
            // are tied, and the plan's stable top-M selection keeps the
            // lowest indices. Column 3 reports by far the largest
            // gradient norm.
            full_observation(s, &[0.5; 4], &[0.1; 4]);
            for (ci, g) in [(0, 0.2), (1, 0.1), (2, 0.1), (3, 5.0)] {
                s.record_gradient(ci, g);
            }
        };

        // Off by default: the gradient observations change nothing.
        let mut off = SubspaceScheduler::new(4, base);
        feed(&mut off);
        let plan = off.plan(1, &forced);
        assert!(!plan.refresh);
        assert_eq!(plan.active, [true, true, false, false]);
        let baseline = SubspaceScheduler::new(4, base);
        // Scores with recorded-but-inert gradients match a scheduler
        // that never saw them, bit for bit.
        let mut silent = baseline.clone();
        full_observation(&mut silent, &[0.5; 4], &[0.1; 4]);
        assert_eq!(off.scores(), silent.scores());

        // Turned on, the gradient-heavy column displaces the tie-break
        // winner.
        let mut on = SubspaceScheduler::new(
            4,
            SubspaceConfig {
                gradient_pressure: 0.5,
                ..base
            },
        );
        feed(&mut on);
        let plan = on.plan(1, &forced);
        assert!(!plan.refresh);
        assert_eq!(plan.active, [true, false, false, true]);
        let scores = on.scores();
        assert!(scores[3] > scores[1] && scores[3] > scores[2]);
    }

    #[test]
    #[should_panic(expected = "EMA decay")]
    fn invalid_decay_is_rejected() {
        let _ = SubspaceScheduler::new(
            2,
            SubspaceConfig {
                ema_decay: 1.0,
                ..SubspaceConfig::with_active_columns(1)
            },
        );
    }

    #[test]
    #[should_panic(expected = "refresh period")]
    fn zero_refresh_period_is_rejected() {
        let _ = SubspaceScheduler::new(
            2,
            SubspaceConfig {
                refresh_every: 0,
                ..SubspaceConfig::with_active_columns(1)
            },
        );
    }
}
