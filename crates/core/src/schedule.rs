//! Optimisation schedules: conditional subspace relaxation and etch
//! projection sharpening.
//!
//! *Subspace relaxation* (paper Eq. 3 / §III-D2): the objective is
//! `p·E[fab-aware] + (1−p)·ideal`. Early on `p` is small, so gradients
//! flow through the *unrestricted* pattern — a high-dimensional tunnel out
//! of the fabricable subspace that lets the optimiser escape local optima
//! the lithography low-pass filter would otherwise trap it in. `p` ramps
//! to 1 to guarantee the final design is optimised where it will actually
//! live.
//!
//! *Projection sharpening*: the tanh etch projection's β grows over the
//! run so the design binarises gradually (standard topology-optimisation
//! continuation).

use serde::{Deserialize, Serialize};

/// Linear ramp of the fab-aware weight `p` from 0 to 1 over
/// `relax_epochs` iterations (0 epochs ⇒ always 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelaxationSchedule {
    /// Iterations over which `p` ramps from 0 to 1.
    pub relax_epochs: usize,
}

impl RelaxationSchedule {
    /// No relaxation: fully fab-aware from the first iteration.
    pub fn none() -> Self {
        Self { relax_epochs: 0 }
    }

    /// Ramp over `epochs` iterations.
    pub fn over(epochs: usize) -> Self {
        Self {
            relax_epochs: epochs,
        }
    }

    /// The fab-aware weight `p ∈ [0, 1]` at `iter`.
    pub fn p(&self, iter: usize) -> f64 {
        if self.relax_epochs == 0 {
            1.0
        } else {
            ((iter as f64 + 1.0) / self.relax_epochs as f64).min(1.0)
        }
    }
}

/// Geometric ramp of the etch-projection sharpness β.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaSchedule {
    /// β at iteration 0.
    pub start: f64,
    /// β at the final iteration.
    pub end: f64,
    /// Total iterations.
    pub total_iters: usize,
}

impl BetaSchedule {
    /// Creates a schedule from `start` to `end` over `total_iters`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is non-positive.
    pub fn new(start: f64, end: f64, total_iters: usize) -> Self {
        assert!(start > 0.0 && end > 0.0, "β must stay positive");
        Self {
            start,
            end,
            total_iters,
        }
    }

    /// β at iteration `iter` (geometric interpolation).
    pub fn beta(&self, iter: usize) -> f64 {
        if self.total_iters <= 1 {
            return self.end;
        }
        let t = (iter as f64 / (self.total_iters as f64 - 1.0)).clamp(0.0, 1.0);
        self.start * (self.end / self.start).powf(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxation_ramps_to_one() {
        let s = RelaxationSchedule::over(10);
        assert!(s.p(0) > 0.0 && s.p(0) <= 0.2);
        assert!(s.p(4) < s.p(8));
        assert_eq!(s.p(9), 1.0);
        assert_eq!(s.p(100), 1.0);
    }

    #[test]
    fn no_relaxation_is_always_one() {
        let s = RelaxationSchedule::none();
        for i in 0..5 {
            assert_eq!(s.p(i), 1.0);
        }
    }

    #[test]
    fn beta_geometric_growth() {
        let s = BetaSchedule::new(8.0, 64.0, 31);
        assert!((s.beta(0) - 8.0).abs() < 1e-12);
        assert!((s.beta(30) - 64.0).abs() < 1e-9);
        // Geometric: midpoint is the geometric mean.
        let mid = s.beta(15);
        assert!((mid - (8.0f64 * 64.0).sqrt()).abs() < 0.5, "mid = {mid}");
        // Monotone.
        for i in 1..31 {
            assert!(s.beta(i) >= s.beta(i - 1));
        }
    }

    #[test]
    fn degenerate_schedule() {
        let s = BetaSchedule::new(10.0, 50.0, 1);
        assert_eq!(s.beta(0), 50.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_beta_panics() {
        let _ = BetaSchedule::new(0.0, 10.0, 5);
    }
}
