//! Compiled benchmark: precomputed modes, sources, monitors and power
//! normalisation, plus the forward + adjoint evaluation of a permittivity
//! map.
//!
//! Compilation solves the port eigenmode problems once (mode shapes live
//! on the access waveguides, outside the design region, so they do not
//! change during optimisation) and calibrates the launched power of every
//! excitation with a straight-waveguide reference run. Evaluation then
//! costs one factorisation plus `2·(number of excitations)` triangular
//! solves when gradients are requested.
//!
//! # Spectral axis
//!
//! Ports, modes, sources and the launched-power normalisation are all
//! ω-dependent, so a broadband problem compiles **once per wavelength**:
//! [`CompiledProblem::compile_spectral`] calibrates every sample of a
//! [`SpectralAxis`] up front, and each evaluation entry point takes (or
//! defaults) an index into that axis. `K = 1`
//! ([`CompiledProblem::compile`]) reproduces the single-ω behaviour
//! bit-identically, and a finished-design wavelength sweep over a
//! spectrally-compiled problem costs `K` solves with **no** recompiles
//! (see [`crate::spectrum::wavelength_sweep`]).

use crate::fabchain::assemble_eps;
use crate::objective::{Readings, SpectralAggregation};
use crate::problem::{DeviceProblem, MonitorKind};
use boson_fab::SpectralAxis;
use boson_fdfd::monitor::ModalMonitor;
use boson_fdfd::operator::scale_source_into;
use boson_fdfd::sim::{
    CornerContext, CornerSolveReport, FactorLag, FusedRecycle, SimWorkspace, Simulation,
    SolverStrategy,
};
use boson_fdfd::source::ModalSource;
use boson_num::banded::SingularMatrixError;
use boson_num::krylov::RecycleSpace;
use boson_num::{Array2, Complex64};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A monitor bound to concrete grid weights.
#[derive(Debug, Clone)]
enum BoundMonitor {
    Modal(ModalMonitor),
    Residual(Vec<String>),
}

/// The result of evaluating one permittivity map.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Normalised monitor readings per excitation.
    pub readings: Readings,
    /// Scalar objective (maximise).
    pub objective: f64,
    /// Reported figure of merit.
    pub fom: f64,
    /// `∂objective/∂ε` over the full grid (present when requested).
    pub grad_eps: Option<Array2<f64>>,
    /// Number of linear-system factorisations performed.
    pub factorizations: usize,
    /// What the corner solver did (iteration counts, residuals, whether
    /// the adaptive direct fallback fired). Default for plain direct
    /// evaluations.
    pub solve: CornerSolveReport,
}

/// Per-corner solver directions for
/// [`CompiledProblem::evaluate_eps_corner`]: the strategy plus the
/// nominal-preconditioner context the iterative path needs.
#[derive(Debug, Clone, Copy)]
pub struct CornerSolve<'a> {
    /// Solver strategy for this corner.
    pub strategy: SolverStrategy,
    /// Permittivity of the nominal corner this epoch (ω-independent —
    /// only the operator around it changes with the wavelength).
    pub nominal_eps: &'a Array2<f64>,
    /// Token identifying the nominal operator (typically the iteration).
    pub epoch: u64,
    /// This corner *is* the nominal corner.
    pub is_nominal: bool,
    /// Cached adaptive-policy decision: go straight to a direct factor.
    pub force_direct: bool,
    /// Index of this corner's wavelength in the compiled spectral axis
    /// (`0` for single-ω problems).
    pub omega_idx: usize,
}

/// Directions for evaluating a whole corner set in one batched sweep
/// (see [`CompiledProblem::evaluate_corner_set`]). All corners of one set
/// share a wavelength; a broadband iteration runs one set per ω.
#[derive(Debug, Clone, Copy)]
pub struct CornerSetSolve<'a> {
    /// Iterative strategy for the sweep — the tolerance/budget pair plus
    /// whether the preconditioner is the banded nominal factor or the
    /// multigrid hierarchy ([`SolverStrategy::Direct`] is rejected).
    pub strategy: SolverStrategy,
    /// Permittivity of the nominal corner this epoch.
    pub nominal_eps: &'a Array2<f64>,
    /// Token identifying the nominal operator (typically the iteration).
    pub epoch: u64,
    /// Index of the nominal corner within the set, if present.
    pub nominal_idx: Option<usize>,
    /// Per-corner cached policy decisions: `true` pins a corner to the
    /// direct path.
    pub force_direct: &'a [bool],
    /// Index of this set's wavelength in the compiled spectral axis
    /// (`0` for single-ω problems).
    pub omega_idx: usize,
}

/// Directions for evaluating the whole (fabrication corner × ω) cross
/// product in **one** fused lockstep batch (see
/// [`CompiledProblem::evaluate_corner_product`]). Entries are flat over
/// the product; per-entry slices name each corner's wavelength, its
/// group-nominal status and its cached policy decision.
#[derive(Debug, Clone, Copy)]
pub struct CornerProductSolve<'a> {
    /// Iterative strategy for the fused batch — the tolerance/budget pair
    /// plus whether the preconditioner is the banded nominal factor or
    /// the multigrid hierarchy ([`SolverStrategy::Direct`] is rejected).
    pub strategy: SolverStrategy,
    /// Permittivity of the nominal corner this epoch (ω-independent).
    pub nominal_eps: &'a Array2<f64>,
    /// Token identifying the nominal operator (typically the iteration).
    pub epoch: u64,
    /// Wavelength index of each entry in the compiled spectral axis
    /// (ω-grouped order keeps the fused preconditioner runs contiguous).
    pub omega_idx: &'a [usize],
    /// Per-entry flag: this corner is its ω group's fabrication-nominal
    /// corner (solved directly on that ω's nominal factor; its solutions
    /// become the group's warm starts).
    pub is_nominal: &'a [bool],
    /// Per-entry cached policy decisions: `true` pins a corner to the
    /// direct path.
    pub force_direct: &'a [bool],
    /// Worker threads for splitting the packed preconditioner sweeps
    /// (see [`boson_fdfd::sim::FUSED_SPLIT_MIN_COLS`]); ≤ 1 = serial.
    pub threads: usize,
    /// When `Some((agg, fab_idx))`, the adjoint phase exploits the one
    /// structural advantage the fused product has over K per-ω sets: it
    /// sees **every** forward objective before any adjoint solve, so it
    /// can evaluate `agg`'s exact gradient weights per fabrication corner
    /// (`fab_idx[ci]` names each entry's corner; entries of one corner
    /// must appear in ascending-ω order, as in the ω-major product) and
    /// skip the adjoint solve of every batched entry whose weight is
    /// exactly zero — under [`SpectralAggregation::WorstCase`] that is
    /// `K − 1` of every corner's `K` wavelengths. Skipped entries return
    /// `grad_eps: None` (their gradient cannot reach the aggregated
    /// objective; callers weight gradients by the same `agg`, so the
    /// results are identical to computing and discarding them). Entries
    /// evaluated outside the batch (nominal, policy-pinned, fallbacks)
    /// always carry full gradients.
    ///
    /// One deliberate behavioural difference from the per-ω schedule: a
    /// zero-weight entry whose (unused) adjoint solve *would have*
    /// missed its budget no longer misses — so it is not re-evaluated
    /// directly and the caller's adaptive policy does not pin its
    /// corner. That is strictly better (pinning a corner over a
    /// gradient that cannot reach the objective wastes factorisations),
    /// but it means fused ↔ per-ω runs are guaranteed bit-identical
    /// only when no adjoint-only budget miss lands on a zero-weight
    /// entry (forward-phase misses, the common case, behave
    /// identically in both schedules).
    pub skip_zero_weight_adjoints: Option<(SpectralAggregation, &'a [usize])>,
    /// When `Some(keys)`, cross-iteration Krylov recycling is armed for
    /// this sweep: `keys[ci]` is entry `ci`'s **stable** identity across
    /// iterations (the runner passes each entry's global ω-major
    /// product-column index), naming which of the scratch's deflation
    /// stores the entry harvests into and deflates from. Stability
    /// matters because the batched subset shifts between iterations under
    /// the subspace scheduler — dormant columns keep stale-but-monitored
    /// stores that revalidate (or invalidate on an epoch jump) when the
    /// column re-enters. `None`, or a scratch whose
    /// [`RecycleConfig::directions`] is `0`, runs the batch exactly as
    /// before — bit-identically.
    pub recycle: Option<&'a [usize]>,
}

/// Cross-iteration solver acceleration knobs (see
/// [`CompiledProblem::evaluate_corner_product`] and
/// [`boson_fdfd::sim::FactorLag`]): consecutive robust-loop epochs solve
/// nearly-identical (corner × ω) systems, and this config arms the two
/// mechanisms that exploit it — per-(corner, ω) Krylov deflation stores
/// recycled across epochs, and lagged drift-monitored nominal factors.
/// Disabled by default; the disabled config is **bit-identical** to the
/// non-recycled pipeline (regression-tested).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecycleConfig {
    /// Deflation directions `W` retained per (corner, ω) store (both
    /// orientations keep their own `W`). `0` disables recycling — and,
    /// together with `max_lag == 0`, the whole temporal axis.
    pub directions: usize,
    /// Maximum epochs a nominal banded factor may be reused past the
    /// epoch it was built at, and the maximum epoch gap a deflation
    /// store survives (dormant subspace columns re-entering within the
    /// gap keep their directions; beyond it the store self-invalidates).
    /// `0` keeps the per-epoch eager refactor.
    pub max_lag: u64,
    /// Relative nominal-diagonal drift `‖Δdiag‖∞ / ‖diag‖∞` beyond which
    /// a lag-kept factor is rebuilt regardless of age.
    pub drift_tol: f64,
}

impl Default for RecycleConfig {
    /// Disabled: eager refactors, no deflation — bit-identical to the
    /// pre-recycling pipeline.
    fn default() -> Self {
        Self {
            directions: 0,
            max_lag: 0,
            drift_tol: 0.0,
        }
    }
}

impl RecycleConfig {
    /// The production steady-state preset: a handful of deflation
    /// directions per column and factors lagged across the subspace
    /// scheduler's default refresh period, rebuilt at 5% diagonal
    /// drift. Eight epochs balances the refactor saving against
    /// preconditioner staleness (longer lags cost BiCGSTAB iterations
    /// faster than they save factorisations on the drifting
    /// steady-state workload; see `recycle_27corner_3wl`).
    pub fn enabled() -> Self {
        Self {
            directions: 4,
            max_lag: 8,
            drift_tol: 0.05,
        }
    }

    /// `true` when any temporal-axis mechanism is armed.
    pub fn is_enabled(&self) -> bool {
        self.directions > 0 || self.max_lag > 0
    }

    /// The lagged-factor half of the config (`None` when `max_lag == 0`).
    pub fn factor_lag(&self) -> Option<FactorLag> {
        (self.max_lag > 0).then_some(FactorLag {
            max_lag: self.max_lag,
            drift_tol: self.drift_tol,
        })
    }
}

/// Reusable buffers for repeated [`CompiledProblem::evaluate_eps_scratch`]
/// calls: one FDFD factor/solve workspace plus the current, field and
/// adjoint blocks. Keep one per worker thread; after the first evaluation
/// the entire solve path runs without heap allocation.
#[derive(Debug, Default)]
pub struct EvalScratch {
    sim: SimWorkspace,
    /// Raw current buffer (one excitation at a time).
    jz: Vec<Complex64>,
    /// Column-major field block, `n × n_excitations`.
    fields: Vec<Complex64>,
    /// Column-major adjoint source/solution block, `n × n_excitations`.
    adj: Vec<Complex64>,
    /// Which adjoint columns carry a non-zero source.
    adj_active: Vec<bool>,
    /// Excitation indices of the active columns, in packed order.
    active_cols: Vec<usize>,
    /// Shared forward right-hand sides (`n × n_excitations`) — identical
    /// for every corner of an epoch, built once.
    base_rhs: Vec<Complex64>,
    /// Batched-sweep forward RHS / solution blocks (`n × n_excitations ×
    /// batch`).
    batch_rhs: Vec<Complex64>,
    /// Batched forward solutions.
    batch_x: Vec<Complex64>,
    /// Batched adjoint sources.
    batch_adj: Vec<Complex64>,
    /// Batched adjoint solutions.
    batch_adj_x: Vec<Complex64>,
    /// Per-ω warm-start snapshots (indexed by `omega_idx`): each slot
    /// holds the nominal corner's fields and adjoints at that wavelength,
    /// the warm starts for same-ω batched solves of the same epoch. Kept
    /// per ω (not as a single most-recent slot) so a **fused** (corner ×
    /// ω) batch can warm-start every column from its own wavelength's
    /// nominal solution simultaneously.
    warm: Vec<WarmSlot>,
    /// Forward-orientation Krylov deflation stores, indexed by the
    /// stable product-column key (see [`CornerProductSolve::recycle`]).
    /// Empty until [`EvalScratch::configure_recycling`] arms recycling.
    recycle_fwd: Vec<RecycleSpace>,
    /// Adjoint (transpose-orientation) deflation stores — the transpose
    /// Krylov space differs from the forward one, so the orientations
    /// never share directions.
    recycle_adj: Vec<RecycleSpace>,
    /// Batch-slot → store-key scratch for the recycled fused solves.
    recycle_keys: Vec<usize>,
    /// Directions per store (0 = recycling disabled).
    recycle_directions: usize,
    /// Epoch-gap tolerance stamped on every store.
    recycle_max_age: u64,
}

/// One wavelength's warm-start snapshot (see [`EvalScratch::warm`]).
#[derive(Debug, Default)]
struct WarmSlot {
    /// Epoch the snapshot belongs to; `None` = invalid.
    epoch: Option<u64>,
    /// The nominal corner's fields (`n × n_excitations`).
    fields: Vec<Complex64>,
    /// The nominal corner's adjoint solutions, unpacked to excitation
    /// order.
    adj: Vec<Complex64>,
}

impl WarmSlot {
    /// `true` when this snapshot warm-starts batches of `epoch`.
    fn valid_for(&self, epoch: u64) -> bool {
        self.epoch == Some(epoch)
    }
}

impl EvalScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms (or disarms) the temporal-axis mechanisms on this scratch:
    /// the lagged-nominal-factor policy on the embedded solver workspace
    /// and the per-(corner, ω) deflation stores that
    /// [`CompiledProblem::evaluate_corner_product`] recycles across
    /// epochs when the caller also passes stable column keys. The default
    /// (a default [`RecycleConfig`]) is bit-identical to never calling
    /// this.
    pub fn configure_recycling(&mut self, config: &RecycleConfig) {
        self.recycle_directions = config.directions;
        self.recycle_max_age = config.max_lag.max(1);
        if config.directions == 0 {
            self.recycle_fwd.clear();
            self.recycle_adj.clear();
        }
        self.sim.set_factor_lag(config.factor_lag());
    }

    /// Grows both orientations' store pools to cover keys `0..count`,
    /// keeping existing stores (and their harvested directions) intact.
    /// Returns `true` when recycling is armed. Allocation-free once the
    /// pools cover the product.
    fn ensure_recycle_stores(&mut self, count: usize) -> bool {
        if self.recycle_directions == 0 {
            return false;
        }
        let (dirs, age) = (self.recycle_directions, self.recycle_max_age);
        for pool in [&mut self.recycle_fwd, &mut self.recycle_adj] {
            if pool.len() < count {
                pool.resize_with(count, || {
                    let mut s = RecycleSpace::new(dirs);
                    s.set_max_age(age);
                    s
                });
            }
        }
        true
    }
}

/// The ω-dependent half of a compiled benchmark: one wavelength's port
/// modes bound into sources and monitors, plus the launched-power
/// normalisation at that wavelength.
struct OmegaCal {
    omega: f64,
    sources: Vec<ModalSource>,
    monitors: Vec<Vec<(String, BoundMonitor)>>,
    /// Launched power per excitation (straight-waveguide calibration).
    norm_power: Vec<f64>,
}

/// A benchmark compiled against its background geometry, at one or more
/// operating wavelengths (see the module docs' *Spectral axis* section).
pub struct CompiledProblem {
    problem: DeviceProblem,
    /// The spectral axis this problem was compiled for.
    axis: SpectralAxis,
    /// One calibration per wavelength sample, ascending λ (single entry
    /// at the problem's own ω for [`CompiledProblem::compile`]).
    cals: Vec<OmegaCal>,
    /// Index of the nominal (centre) wavelength in `cals`.
    nominal_omega_idx: usize,
}

impl std::fmt::Debug for CompiledProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompiledProblem({}, {} excitations, {} wavelengths)",
            self.problem.name,
            self.cals[self.nominal_omega_idx].sources.len(),
            self.cals.len()
        )
    }
}

/// Solves the port modes at `omega`, binds sources/monitors and runs the
/// straight-waveguide normalisation references — everything ω-dependent
/// about a compiled benchmark.
fn calibrate_omega(
    problem: &DeviceProblem,
    eps_bg: &Array2<f64>,
    omega: f64,
) -> Result<OmegaCal, SingularMatrixError> {
    let grid = problem.grid;
    // Solve modes at every port.
    let port_modes: Vec<_> = problem
        .ports
        .iter()
        .map(|p| p.solve_modes(&grid, eps_bg, omega, problem.mode_count))
        .collect();

    let mut sources = Vec::new();
    let mut monitors = Vec::new();
    for exc in &problem.excitations {
        let src_modes = &port_modes[exc.source_port];
        assert!(
            exc.source_mode < src_modes.len(),
            "{}: port {} supports {} modes at ω={omega:.4}, excitation needs mode {}",
            problem.name,
            problem.ports[exc.source_port].name,
            src_modes.len(),
            exc.source_mode
        );
        sources.push(ModalSource::new(
            problem.ports[exc.source_port].clone(),
            src_modes[exc.source_mode].clone(),
            exc.source_direction,
        ));
        let mut bound = Vec::new();
        for spec in &exc.monitors {
            let bm = match &spec.kind {
                MonitorKind::Modal {
                    port,
                    mode,
                    direction,
                } => {
                    let modes = &port_modes[*port];
                    assert!(
                        *mode < modes.len(),
                        "{}: monitor {} wants mode {} of port {} ({} available at ω={omega:.4})",
                        problem.name,
                        spec.name,
                        mode,
                        problem.ports[*port].name,
                        modes.len()
                    );
                    BoundMonitor::Modal(ModalMonitor::new(
                        &grid,
                        &problem.ports[*port],
                        &modes[*mode],
                        *direction,
                    ))
                }
                MonitorKind::Residual { subtract } => BoundMonitor::Residual(subtract.clone()),
            };
            bound.push((spec.name.clone(), bm));
        }
        monitors.push(bound);
    }

    // Normalisation: straight-waveguide reference per excitation.
    let mut norm_power = Vec::new();
    for (ei, exc) in problem.excitations.iter().enumerate() {
        let port = &problem.ports[exc.source_port];
        // Replicate the transverse ε line at the source plane along the
        // propagation axis.
        let eps_ref = match port.axis {
            boson_fdfd::grid::Axis::X => {
                let line: Vec<f64> = (0..grid.ny).map(|iy| eps_bg[(iy, port.plane)]).collect();
                Array2::from_fn(grid.ny, grid.nx, |iy, _| line[iy])
            }
            boson_fdfd::grid::Axis::Y => {
                let line: Vec<f64> = (0..grid.nx).map(|ix| eps_bg[(port.plane, ix)]).collect();
                Array2::from_fn(grid.ny, grid.nx, |_, ix| line[ix])
            }
        };
        let sim = Simulation::new(grid, omega, eps_ref)?;
        let field = sim.solve_current(&sources[ei].current(&grid));
        // Measure the launched mode 12 cells downstream.
        let shift: isize = match exc.source_direction {
            boson_fdfd::grid::Sign::Plus => 12,
            boson_fdfd::grid::Sign::Minus => -12,
        };
        let mut ref_port = port.clone();
        ref_port.plane = (port.plane as isize + shift) as usize;
        let mon = ModalMonitor::new(
            &grid,
            &ref_port,
            &port_modes[exc.source_port][exc.source_mode],
            exc.source_direction,
        );
        let p0 = mon.power(&field.ez);
        assert!(p0 > 1e-12, "{}: zero launched power", problem.name);
        norm_power.push(p0);
    }

    Ok(OmegaCal {
        omega,
        sources,
        monitors,
        norm_power,
    })
}

impl CompiledProblem {
    /// Compiles `problem` at its single centre wavelength: solves port
    /// modes, builds sources/monitors and runs the normalisation
    /// references.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a reference solve fails.
    ///
    /// # Panics
    ///
    /// Panics if a port supports fewer guided modes than the problem
    /// requests.
    pub fn compile(problem: DeviceProblem) -> Result<Self, SingularMatrixError> {
        Self::compile_spectral(problem, SpectralAxis::single())
    }

    /// Compiles `problem` across a whole [`SpectralAxis`]: modes, sources,
    /// monitors and launched-power calibration at **each** of the `K`
    /// wavelengths around the problem's centre. A `K = 1` axis is
    /// bit-identical to [`CompiledProblem::compile`].
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a reference solve fails.
    ///
    /// # Panics
    ///
    /// Panics if a port supports fewer guided modes than the problem
    /// requests at any wavelength of the axis (the sweep left the guided
    /// regime — narrow the axis).
    pub fn compile_spectral(
        problem: DeviceProblem,
        axis: SpectralAxis,
    ) -> Result<Self, SingularMatrixError> {
        // Nominal background permittivity (design region = seed-less void
        // is fine for mode solving: ports sit on access waveguides). It is
        // ω-independent, so it is shared by every calibration.
        let eps_bg = assemble_eps(
            &problem.background_solid,
            problem.design_origin,
            &Array2::zeros(problem.design_shape.0, problem.design_shape.1),
            300.0,
        );
        let cals = axis
            .omegas(problem.omega)
            .into_iter()
            .map(|om| calibrate_omega(&problem, &eps_bg, om))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            problem,
            axis,
            cals,
            nominal_omega_idx: axis.nominal_index(),
        })
    }

    /// The underlying problem definition.
    pub fn problem(&self) -> &DeviceProblem {
        &self.problem
    }

    /// The spectral axis this problem was compiled for.
    pub fn spectral_axis(&self) -> &SpectralAxis {
        &self.axis
    }

    /// Number of compiled wavelengths `K`.
    pub fn omega_count(&self) -> usize {
        self.cals.len()
    }

    /// The compiled angular frequencies, in calibration order (ascending
    /// λ, i.e. descending ω).
    pub fn omegas(&self) -> Vec<f64> {
        self.cals.iter().map(|c| c.omega).collect()
    }

    /// Index of the nominal (centre) wavelength.
    pub fn nominal_omega_idx(&self) -> usize {
        self.nominal_omega_idx
    }

    /// Launched-power calibration per excitation at the nominal
    /// wavelength.
    pub fn norm_power(&self) -> &[f64] {
        &self.cals[self.nominal_omega_idx].norm_power
    }

    /// Assembles the permittivity for a design-region density at
    /// temperature `t`.
    pub fn eps_for(&self, rho: &Array2<f64>, temperature: f64) -> Array2<f64> {
        assemble_eps(
            &self.problem.background_solid,
            self.problem.design_origin,
            rho,
            temperature,
        )
    }

    /// Evaluates a permittivity map: runs every excitation, reads the
    /// monitors and (optionally) produces `∂objective/∂ε` by the adjoint
    /// method, using the problem's own objective.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the operator factorisation
    /// fails.
    pub fn evaluate_eps(
        &self,
        eps: &Array2<f64>,
        with_grad: bool,
    ) -> Result<Evaluation, SingularMatrixError> {
        let spec = self.problem.objective.clone();
        self.evaluate_eps_with(eps, with_grad, &spec)
    }

    /// Like [`CompiledProblem::evaluate_eps`] but with a caller-supplied
    /// objective (used by the sparse-objective ablation, which strips the
    /// auxiliary constraints).
    ///
    /// Allocates a fresh [`EvalScratch`] per call; hot loops should keep
    /// one and use [`CompiledProblem::evaluate_eps_scratch`].
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the operator factorisation
    /// fails.
    pub fn evaluate_eps_with(
        &self,
        eps: &Array2<f64>,
        with_grad: bool,
        spec: &crate::objective::ObjectiveSpec,
    ) -> Result<Evaluation, SingularMatrixError> {
        let mut scratch = EvalScratch::new();
        self.evaluate_eps_scratch(eps, with_grad, spec, &mut scratch)
    }

    /// The zero-allocation evaluation path: factors the operator into the
    /// scratch's [`SimWorkspace`], pushes **all** excitation solves through
    /// one batched [`boson_num::banded::BandedLu::solve_many`] sweep, and
    /// (when `with_grad`) does the same for every adjoint system before
    /// accumulating `∂objective/∂ε`.
    ///
    /// After the scratch's first use with this problem, the factor-and-
    /// solve path performs no heap allocation (the returned [`Evaluation`]
    /// still owns its readings and gradient).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the operator factorisation
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if `eps` does not have the grid's shape.
    pub fn evaluate_eps_scratch(
        &self,
        eps: &Array2<f64>,
        with_grad: bool,
        spec: &crate::objective::ObjectiveSpec,
        scratch: &mut EvalScratch,
    ) -> Result<Evaluation, SingularMatrixError> {
        self.evaluate_eps_corner(eps, with_grad, spec, scratch, None)
    }

    /// [`CompiledProblem::evaluate_eps_scratch`] at an explicit wavelength
    /// of the compiled spectral axis: a direct factor-and-solve against
    /// the `omega_idx`-th calibration (sources, monitors and power
    /// normalisation all at that ω). This is the per-ω solve behind
    /// [`crate::spectrum::wavelength_sweep`].
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the operator factorisation
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if `omega_idx` is out of range or `eps` does not have the
    /// grid's shape.
    pub fn evaluate_eps_omega(
        &self,
        eps: &Array2<f64>,
        with_grad: bool,
        spec: &crate::objective::ObjectiveSpec,
        scratch: &mut EvalScratch,
        omega_idx: usize,
    ) -> Result<Evaluation, SingularMatrixError> {
        self.evaluate_eps_impl(eps, with_grad, spec, scratch, None, omega_idx)
    }

    /// [`CompiledProblem::evaluate_eps_scratch`] with explicit per-corner
    /// solver directions: `None` (or a [`SolverStrategy::Direct`] corner)
    /// factors this operator as always, while a
    /// [`SolverStrategy::PreconditionedIterative`] corner factors only
    /// the nominal operator per epoch and solves this corner's forward
    /// and adjoint systems iteratively against that shared factor,
    /// falling back to a direct factorisation when the iteration misses
    /// its budget (reported in [`Evaluation::solve`]).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a factorisation fails.
    ///
    /// # Panics
    ///
    /// Panics if `eps` does not have the grid's shape.
    pub fn evaluate_eps_corner(
        &self,
        eps: &Array2<f64>,
        with_grad: bool,
        spec: &crate::objective::ObjectiveSpec,
        scratch: &mut EvalScratch,
        corner: Option<&CornerSolve<'_>>,
    ) -> Result<Evaluation, SingularMatrixError> {
        let omega_idx = corner.map_or(self.nominal_omega_idx, |cs| cs.omega_idx);
        self.evaluate_eps_impl(eps, with_grad, spec, scratch, corner, omega_idx)
    }

    /// Shared body of every single-ε evaluation entry point, at the
    /// `omega_idx`-th compiled wavelength.
    #[allow(clippy::needless_range_loop)] // excitation index addresses four parallel blocks
    fn evaluate_eps_impl(
        &self,
        eps: &Array2<f64>,
        with_grad: bool,
        spec: &crate::objective::ObjectiveSpec,
        scratch: &mut EvalScratch,
        corner: Option<&CornerSolve<'_>>,
        omega_idx: usize,
    ) -> Result<Evaluation, SingularMatrixError> {
        let grid = self.problem.grid;
        let n = grid.n();
        let cal = &self.cals[omega_idx];
        let nexc = cal.sources.len();
        match corner {
            None => {
                scratch
                    .sim
                    .prepare_corner(grid, cal.omega, eps, SolverStrategy::Direct, None)?
            }
            Some(cs) => {
                let ctx = CornerContext {
                    nominal_eps: cs.nominal_eps,
                    epoch: cs.epoch,
                    is_nominal: cs.is_nominal,
                    force_direct: cs.force_direct,
                };
                scratch
                    .sim
                    .prepare_corner(grid, cal.omega, eps, cs.strategy, Some(&ctx))?
            }
        }

        // Forward: scale every excitation's current into one column-major
        // block and solve them together.
        scratch.fields.clear();
        scratch.fields.resize(n * nexc, Complex64::ZERO);
        let (jz, fields) = (&mut scratch.jz, &mut scratch.fields);
        forward_rhs_into(cal, &grid, scratch.sim.sfactors(), jz, fields);
        scratch.sim.solve_block(&mut scratch.fields, nexc)?;

        let readings = readings_from_fields(cal, n, &scratch.fields);
        let objective = spec.objective(&readings);
        let fom = spec.fom(&readings);

        let grad_eps = if with_grad {
            let dr = self.reading_grads(spec, omega_idx, &readings);
            // Adjoint sources per excitation, then one batched solve.
            scratch.adj.clear();
            scratch.adj.resize(n * nexc, Complex64::ZERO);
            adjoint_sources_into(
                cal,
                n,
                &dr,
                &scratch.fields,
                &mut scratch.adj,
                &mut scratch.adj_active,
            );
            // Pack the active columns to the front of the block so dead
            // excitations (no monitor gradient — common under the sparse
            // objective) cost no triangular sweeps at all.
            scratch.active_cols.clear();
            for ei in 0..nexc {
                if scratch.adj_active[ei] {
                    let pos = scratch.active_cols.len();
                    if pos != ei {
                        scratch.adj.copy_within(ei * n..(ei + 1) * n, pos * n);
                    }
                    scratch.active_cols.push(ei);
                }
            }
            let mut total = Array2::zeros(grid.ny, grid.nx);
            if !scratch.active_cols.is_empty() {
                let nactive = scratch.active_cols.len();
                scratch
                    .sim
                    .solve_block(&mut scratch.adj[..nactive * n], nactive)?;
                for (pos, &ei) in scratch.active_cols.iter().enumerate() {
                    scratch.sim.grad_eps_accumulate(
                        &scratch.fields[ei * n..(ei + 1) * n],
                        &scratch.adj[pos * n..(pos + 1) * n],
                        &mut total,
                    );
                }
            }
            Some(total)
        } else {
            None
        };

        // Snapshot the nominal corner's solutions into this ω's warm
        // slot: they seed (warm-start) the batched iterative solves of
        // every other corner of this wavelength this epoch.
        if let Some(cs) = corner {
            if cs.is_nominal && with_grad {
                if scratch.warm.len() <= omega_idx {
                    scratch.warm.resize_with(omega_idx + 1, WarmSlot::default);
                }
                let warm = &mut scratch.warm[omega_idx];
                warm.fields.clear();
                warm.fields.extend_from_slice(&scratch.fields);
                warm.adj.clear();
                warm.adj.resize(n * nexc, Complex64::ZERO);
                for (pos, &ei) in scratch.active_cols.iter().enumerate() {
                    let (dst, src) = (ei * n, pos * n);
                    warm.adj[dst..dst + n].copy_from_slice(&scratch.adj[src..src + n]);
                }
                warm.epoch = Some(cs.epoch);
            }
        }

        let solve = scratch.sim.last_report().clone();
        Ok(Evaluation {
            readings,
            objective,
            fom,
            grad_eps,
            factorizations: solve.factorizations,
            solve,
        })
    }

    /// Evaluates a whole variation-corner set under the preconditioned
    /// iterative strategy, advancing **all** corners' solves in one
    /// lockstep batch against the shared nominal factor.
    ///
    /// This is the fast path behind the corner-sweep speedup: the
    /// preconditioner's triangular sweeps are memory-bound on the factor
    /// image, so sweeping the packed active columns of every corner at
    /// once amortises that traffic across the whole set, and the nominal
    /// corner's forward/adjoint solutions warm-start every other corner.
    /// Corners whose iteration misses its budget (and corners pinned by
    /// `force_direct`) are evaluated through the direct path instead —
    /// bit-identical to [`SolverStrategy::Direct`] — and flagged in their
    /// [`Evaluation::solve`] so the caller's adaptive policy can pin
    /// them.
    ///
    /// Returns one [`Evaluation`] per entry of `epss`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a required factorisation fails.
    ///
    /// # Panics
    ///
    /// Panics if `epss` and `set.force_direct` disagree in length, or if
    /// `set.nominal_idx` is out of range.
    pub fn evaluate_corner_set(
        &self,
        epss: &[Array2<f64>],
        with_grad: bool,
        spec: &crate::objective::ObjectiveSpec,
        scratch: &mut EvalScratch,
        set: &CornerSetSolve<'_>,
    ) -> Result<Vec<Evaluation>, SingularMatrixError> {
        let grid = self.problem.grid;
        let n = grid.n();
        let cal = &self.cals[set.omega_idx];
        let nexc = cal.sources.len();
        let count = epss.len();
        assert_eq!(set.force_direct.len(), count, "policy flag count mismatch");
        let strategy = set.strategy;
        assert!(
            strategy.iterative_params().is_some(),
            "batched corner sets require an iterative strategy"
        );
        let mut evals: Vec<Option<Evaluation>> = (0..count).map(|_| None).collect();

        // The nominal corner first: it refreshes the shared factor and
        // snapshots the warm-start fields for everyone else.
        if let Some(ni) = set.nominal_idx {
            let cs = CornerSolve {
                strategy,
                nominal_eps: set.nominal_eps,
                epoch: set.epoch,
                is_nominal: true,
                force_direct: false,
                omega_idx: set.omega_idx,
            };
            evals[ni] =
                Some(self.evaluate_eps_corner(&epss[ni], with_grad, spec, scratch, Some(&cs))?);
        }
        // Corners the adaptive policy has pinned to the direct path.
        for ci in 0..count {
            if evals[ci].is_some() || !set.force_direct[ci] {
                continue;
            }
            let cs = CornerSolve {
                strategy,
                nominal_eps: set.nominal_eps,
                epoch: set.epoch,
                is_nominal: false,
                force_direct: true,
                omega_idx: set.omega_idx,
            };
            evals[ci] =
                Some(self.evaluate_eps_corner(&epss[ci], with_grad, spec, scratch, Some(&cs))?);
        }

        // Everything else advances in one lockstep batch.
        let batched: Vec<usize> = (0..count).filter(|ci| evals[*ci].is_none()).collect();
        if !batched.is_empty() {
            let extra_factorizations =
                scratch
                    .sim
                    .batch_begin(grid, cal.omega, set.nominal_eps, set.epoch, strategy)?;
            for &ci in &batched {
                scratch.sim.batch_push(&epss[ci]);
            }
            // The forward RHS is corner-independent: build it once and
            // replicate per corner.
            scratch.base_rhs.clear();
            scratch.base_rhs.resize(n * nexc, Complex64::ZERO);
            {
                let (jz, base) = (&mut scratch.jz, &mut scratch.base_rhs);
                forward_rhs_into(cal, &grid, scratch.sim.sfactors(), jz, base);
            }
            let bl = n * nexc; // block length per corner
            let bcols = batched.len() * bl;
            scratch.batch_rhs.clear();
            scratch.batch_rhs.resize(bcols, Complex64::ZERO);
            scratch.batch_x.clear();
            scratch.batch_x.resize(bcols, Complex64::ZERO);
            let warm = set.nominal_idx.is_some()
                && with_grad
                && scratch
                    .warm
                    .get(set.omega_idx)
                    .is_some_and(|w| w.valid_for(set.epoch));
            for slot in 0..batched.len() {
                scratch.batch_rhs[slot * bl..(slot + 1) * bl].copy_from_slice(&scratch.base_rhs);
                if warm {
                    scratch.batch_x[slot * bl..(slot + 1) * bl]
                        .copy_from_slice(&scratch.warm[set.omega_idx].fields);
                }
            }
            {
                let (sim, rhs, x) = (&mut scratch.sim, &scratch.batch_rhs, &mut scratch.batch_x);
                sim.batch_solve(rhs, x, nexc, warm);
            }

            // Forward-phase budget misses re-evaluate directly.
            let forward_reports = scratch.sim.batch_reports().to_vec();
            for (slot, &ci) in batched.iter().enumerate() {
                if !forward_reports[slot].converged {
                    evals[ci] = Some(self.fallback_eval(
                        &epss[ci],
                        with_grad,
                        spec,
                        scratch,
                        set.strategy,
                        set.nominal_eps,
                        set.epoch,
                        set.omega_idx,
                        &forward_reports[slot],
                    )?);
                }
            }

            // Readings + adjoint phase for the surviving corners.
            let mut partials: Vec<(usize, usize, Readings, f64, f64)> = Vec::new();
            scratch.batch_adj.clear();
            scratch.batch_adj.resize(bcols, Complex64::ZERO);
            for (slot, &ci) in batched.iter().enumerate() {
                if evals[ci].is_some() {
                    continue; // fell back; its adjoint columns stay zero
                }
                let fields = &scratch.batch_x[slot * bl..(slot + 1) * bl];
                let readings = readings_from_fields(cal, n, fields);
                let objective = spec.objective(&readings);
                let fom = spec.fom(&readings);
                if with_grad {
                    let dr = self.reading_grads(spec, set.omega_idx, &readings);
                    let adj = &mut scratch.batch_adj[slot * bl..(slot + 1) * bl];
                    adjoint_sources_into(cal, n, &dr, fields, adj, &mut scratch.adj_active);
                }
                partials.push((slot, ci, readings, objective, fom));
            }

            if with_grad {
                scratch.batch_adj_x.clear();
                scratch.batch_adj_x.resize(bcols, Complex64::ZERO);
                if warm {
                    for &(slot, _, _, _, _) in &partials {
                        scratch.batch_adj_x[slot * bl..(slot + 1) * bl]
                            .copy_from_slice(&scratch.warm[set.omega_idx].adj);
                    }
                }
                {
                    let (sim, rhs, x) = (
                        &mut scratch.sim,
                        &scratch.batch_adj,
                        &mut scratch.batch_adj_x,
                    );
                    sim.batch_solve(rhs, x, nexc, warm);
                }
            }
            let merged_reports = scratch.sim.batch_reports().to_vec();

            for (slot, ci, readings, objective, fom) in partials {
                let report = &merged_reports[slot];
                if !report.converged {
                    // Adjoint-phase budget miss: full direct re-evaluation.
                    evals[ci] = Some(self.fallback_eval(
                        &epss[ci],
                        with_grad,
                        spec,
                        scratch,
                        set.strategy,
                        set.nominal_eps,
                        set.epoch,
                        set.omega_idx,
                        report,
                    )?);
                    continue;
                }
                let grad_eps = if with_grad {
                    let mut total = Array2::zeros(grid.ny, grid.nx);
                    let fields = &scratch.batch_x[slot * bl..(slot + 1) * bl];
                    let lambdas = &scratch.batch_adj_x[slot * bl..(slot + 1) * bl];
                    for ei in 0..nexc {
                        // Inactive excitations solved λ = 0 exactly and
                        // contribute nothing.
                        scratch.sim.grad_eps_accumulate(
                            &fields[ei * n..(ei + 1) * n],
                            &lambdas[ei * n..(ei + 1) * n],
                            &mut total,
                        );
                    }
                    Some(total)
                } else {
                    None
                };
                let mut solve = report.clone();
                solve.factorizations = 0;
                evals[ci] = Some(Evaluation {
                    readings,
                    objective,
                    fom,
                    grad_eps,
                    factorizations: 0,
                    solve,
                });
            }

            // Attribute a nominal refresh performed by `batch_begin`
            // (only possible when the set has no nominal corner) to the
            // first batched evaluation.
            if extra_factorizations > 0 {
                if let Some(ev) = evals[batched[0]].as_mut() {
                    ev.factorizations += extra_factorizations;
                    ev.solve.factorizations += extra_factorizations;
                }
            }
        }

        Ok(evals
            .into_iter()
            .map(|e| e.expect("every corner evaluated"))
            .collect())
    }

    /// Evaluates the whole (fabrication corner × ω) cross product under
    /// the preconditioned iterative strategy, advancing **all** non-direct
    /// columns — every corner of every wavelength, forwards and then
    /// adjoints — through **one** fused lockstep batch, each column
    /// preconditioned by its own ω's nominal factor and stencil-applied
    /// through its own ω's couplings.
    ///
    /// This is the cross-ω generalisation of
    /// [`CompiledProblem::evaluate_corner_set`] (one batch per iteration
    /// instead of one per ω): per-column arithmetic is identical, so the
    /// fused product is **bit-identical** to running K per-ω sets — and
    /// when the packed column count is large enough, the fused
    /// preconditioner sweeps split across `threads` lanes of the
    /// process-wide `boson_num::pool` (bit-identical at any worker
    /// count). Each ω's nominal corner is
    /// evaluated first (refreshing that ω's factor and snapshotting its
    /// warm starts), policy-pinned corners solve directly, and budget
    /// misses fall back per (corner, ω) exactly like the per-ω path.
    ///
    /// Returns one [`Evaluation`] per entry of `epss`, in order.
    ///
    /// # Partial products
    ///
    /// Nothing here requires the *full* cross product: the entries may be
    /// any subset of it — this is how the adaptive corner-subspace
    /// scheduler ([`crate::subspace`]) evaluates only its active columns,
    /// reusing the fused batch unchanged. Two caveats for subset callers:
    /// entries of one fabrication corner must appear in ascending-ω order
    /// when `skip_zero_weight_adjoints` is on (any ω-major subset
    /// qualifies; debug-asserted), and warm starts engage only when every
    /// ω present carries this epoch's nominal snapshot — which is why the
    /// scheduler keeps each ω's fabrication-nominal entry (`is_nominal`)
    /// in every schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a required factorisation fails.
    ///
    /// # Panics
    ///
    /// Panics if the per-entry slices of `set` disagree with `epss` in
    /// length, an `omega_idx` is out of range, or the product spans more
    /// than [`boson_fdfd::sim::MAX_OMEGA_SLOTS`] wavelengths.
    pub fn evaluate_corner_product(
        &self,
        epss: &[Array2<f64>],
        with_grad: bool,
        spec: &crate::objective::ObjectiveSpec,
        scratch: &mut EvalScratch,
        set: &CornerProductSolve<'_>,
    ) -> Result<Vec<Evaluation>, SingularMatrixError> {
        let grid = self.problem.grid;
        let n = grid.n();
        let count = epss.len();
        assert_eq!(set.omega_idx.len(), count, "ω index count mismatch");
        assert_eq!(set.is_nominal.len(), count, "nominal flag count mismatch");
        assert_eq!(set.force_direct.len(), count, "policy flag count mismatch");
        let strategy = set.strategy;
        assert!(
            strategy.iterative_params().is_some(),
            "fused corner products require an iterative strategy"
        );
        let mut evals: Vec<Option<Evaluation>> = (0..count).map(|_| None).collect();

        // Each ω's nominal corner first: it refreshes that wavelength's
        // shared factor and snapshots its warm-start fields.
        for ci in 0..count {
            if !set.is_nominal[ci] {
                continue;
            }
            let cs = CornerSolve {
                strategy,
                nominal_eps: set.nominal_eps,
                epoch: set.epoch,
                is_nominal: true,
                force_direct: false,
                omega_idx: set.omega_idx[ci],
            };
            evals[ci] =
                Some(self.evaluate_eps_corner(&epss[ci], with_grad, spec, scratch, Some(&cs))?);
        }
        // Corners the adaptive policy has pinned to the direct path.
        for ci in 0..count {
            if evals[ci].is_some() || !set.force_direct[ci] {
                continue;
            }
            let cs = CornerSolve {
                strategy,
                nominal_eps: set.nominal_eps,
                epoch: set.epoch,
                is_nominal: false,
                force_direct: true,
                omega_idx: set.omega_idx[ci],
            };
            evals[ci] =
                Some(self.evaluate_eps_corner(&epss[ci], with_grad, spec, scratch, Some(&cs))?);
        }

        // Everything else — all remaining (corner, ω) pairs — advances in
        // one fused lockstep batch.
        let batched: Vec<usize> = (0..count).filter(|ci| evals[*ci].is_none()).collect();
        if !batched.is_empty() {
            // The batch's wavelengths, in first-appearance order.
            let mut omegas_used: Vec<usize> = Vec::new();
            for &ci in &batched {
                if !omegas_used.contains(&set.omega_idx[ci]) {
                    omegas_used.push(set.omega_idx[ci]);
                }
            }
            let omega_vals: Vec<f64> = omegas_used.iter().map(|&oi| self.cals[oi].omega).collect();
            let extra_factorizations = scratch.sim.fused_batch_begin(
                grid,
                &omega_vals,
                set.nominal_eps,
                set.epoch,
                strategy,
            )?;
            // Batch-local ω index per batched corner.
            let batch_omega: Vec<usize> = batched
                .iter()
                .map(|&ci| {
                    omegas_used
                        .iter()
                        .position(|&oi| oi == set.omega_idx[ci])
                        .expect("ω registered above")
                })
                .collect();
            for (slot, &ci) in batched.iter().enumerate() {
                scratch.sim.fused_batch_push(&epss[ci], batch_omega[slot]);
            }

            let nexc = self.cals[0].sources.len();
            let bl = n * nexc; // block length per corner
                               // One forward RHS block per batch wavelength (ω-dependent
                               // through the sources, the source scaling and the stretch
                               // factors), then replicated per corner.
            scratch.base_rhs.clear();
            scratch
                .base_rhs
                .resize(omegas_used.len() * bl, Complex64::ZERO);
            for (bo, &oi) in omegas_used.iter().enumerate() {
                let cal = &self.cals[oi];
                let (jz, base, sim) = (&mut scratch.jz, &mut scratch.base_rhs, &scratch.sim);
                forward_rhs_into(
                    cal,
                    &grid,
                    sim.fused_sfactors(bo),
                    jz,
                    &mut base[bo * bl..(bo + 1) * bl],
                );
            }
            let bcols = batched.len() * bl;
            scratch.batch_rhs.clear();
            scratch.batch_rhs.resize(bcols, Complex64::ZERO);
            scratch.batch_x.clear();
            scratch.batch_x.resize(bcols, Complex64::ZERO);
            // Warm starts: every batch wavelength must carry this epoch's
            // nominal snapshot (the full cross product always does — each
            // ω group contains its fabrication-nominal corner).
            let warm = with_grad
                && omegas_used
                    .iter()
                    .all(|&oi| scratch.warm.get(oi).is_some_and(|w| w.valid_for(set.epoch)));
            for (slot, &ci) in batched.iter().enumerate() {
                let bo = batch_omega[slot];
                scratch.batch_rhs[slot * bl..(slot + 1) * bl]
                    .copy_from_slice(&scratch.base_rhs[bo * bl..(bo + 1) * bl]);
                if warm {
                    scratch.batch_x[slot * bl..(slot + 1) * bl]
                        .copy_from_slice(&scratch.warm[set.omega_idx[ci]].fields);
                }
            }
            // Arm cross-iteration recycling when the caller supplied
            // stable column keys and the scratch carries configured
            // stores; map each batch slot to its entry's key once (both
            // phases share the mapping).
            let recycling = match set.recycle {
                Some(keys) => {
                    assert_eq!(keys.len(), count, "recycle key count mismatch");
                    let span = batched.iter().map(|&ci| keys[ci] + 1).max().unwrap_or(0);
                    scratch.ensure_recycle_stores(span)
                }
                None => false,
            };
            if recycling {
                let keys = set.recycle.expect("recycling implies keys");
                scratch.recycle_keys.clear();
                scratch
                    .recycle_keys
                    .extend(batched.iter().map(|&ci| keys[ci]));
            }
            {
                let EvalScratch {
                    sim,
                    batch_rhs,
                    batch_x,
                    recycle_fwd,
                    recycle_keys,
                    ..
                } = &mut *scratch;
                if recycling {
                    sim.fused_batch_solve_recycled(
                        batch_rhs,
                        batch_x,
                        nexc,
                        warm,
                        set.threads,
                        FusedRecycle {
                            spaces: recycle_fwd,
                            keys: recycle_keys,
                            transpose: false,
                            epoch: set.epoch,
                        },
                    );
                } else {
                    sim.fused_batch_solve(batch_rhs, batch_x, nexc, warm, set.threads);
                }
            }

            // Forward-phase budget misses re-evaluate directly.
            let forward_reports = scratch.sim.batch_reports().to_vec();
            for (slot, &ci) in batched.iter().enumerate() {
                if !forward_reports[slot].converged {
                    evals[ci] = Some(self.fallback_eval(
                        &epss[ci],
                        with_grad,
                        spec,
                        scratch,
                        set.strategy,
                        set.nominal_eps,
                        set.epoch,
                        set.omega_idx[ci],
                        &forward_reports[slot],
                    )?);
                }
            }

            // Readings phase for the surviving corners, each against its
            // own wavelength's calibration.
            let mut partials: Vec<(usize, usize, Readings, f64, f64)> = Vec::new();
            for (slot, &ci) in batched.iter().enumerate() {
                if evals[ci].is_some() {
                    continue; // fell back; its adjoint columns stay zero
                }
                let cal = &self.cals[set.omega_idx[ci]];
                let fields = &scratch.batch_x[slot * bl..(slot + 1) * bl];
                let readings = readings_from_fields(cal, n, fields);
                let objective = spec.objective(&readings);
                let fom = spec.fom(&readings);
                partials.push((slot, ci, readings, objective, fom));
            }

            // With every forward objective in hand, the aggregation's
            // exact gradient weights are known — drop the adjoint solves
            // of zero-weight entries when the caller opted in.
            let mut needs_grad = vec![true; count];
            if with_grad {
                if let Some((agg, fab_idx)) = set.skip_zero_weight_adjoints {
                    assert_eq!(fab_idx.len(), count, "fabrication index count mismatch");
                    let mut obj_of = vec![0.0; count];
                    for (ci, ev) in evals.iter().enumerate() {
                        if let Some(ev) = ev {
                            obj_of[ci] = ev.objective;
                        }
                    }
                    for &(_, ci, _, objective, _) in &partials {
                        obj_of[ci] = objective;
                    }
                    let nfab = fab_idx.iter().copied().max().map_or(0, |m| m + 1);
                    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); nfab];
                    for (ci, &f) in fab_idx.iter().enumerate() {
                        groups[f].push(ci);
                    }
                    // The weight↔entry correspondence below assumes each
                    // corner's entries arrive ω-ascending (the ω-major
                    // product — full or any subset of it — does).
                    debug_assert!(
                        groups.iter().all(|g| g
                            .windows(2)
                            .all(|w| set.omega_idx[w[0]] < set.omega_idx[w[1]])),
                        "corner group entries must be in ascending-ω order"
                    );
                    let mut values = Vec::new();
                    let mut sweights = Vec::new();
                    for group in &groups {
                        if group.is_empty() {
                            continue;
                        }
                        values.clear();
                        values.extend(group.iter().map(|&ci| obj_of[ci]));
                        sweights.clear();
                        sweights.resize(group.len(), 0.0);
                        agg.weights_into(&values, &mut sweights);
                        for (pos, &ci) in group.iter().enumerate() {
                            if sweights[pos] == 0.0 {
                                needs_grad[ci] = false;
                            }
                        }
                    }
                }
            }

            // Adjoint phase: sources only for the entries whose gradient
            // can reach the objective (the rest stay zero-RHS columns,
            // which the lockstep solver completes in zero iterations).
            scratch.batch_adj.clear();
            scratch.batch_adj.resize(bcols, Complex64::ZERO);
            if with_grad {
                for (slot, ci, readings, _, _) in &partials {
                    if !needs_grad[*ci] {
                        continue;
                    }
                    let cal = &self.cals[set.omega_idx[*ci]];
                    let fields = &scratch.batch_x[slot * bl..(slot + 1) * bl];
                    let dr = self.reading_grads(spec, set.omega_idx[*ci], readings);
                    let adj = &mut scratch.batch_adj[slot * bl..(slot + 1) * bl];
                    adjoint_sources_into(cal, n, &dr, fields, adj, &mut scratch.adj_active);
                }
                scratch.batch_adj_x.clear();
                scratch.batch_adj_x.resize(bcols, Complex64::ZERO);
                if warm {
                    for &(slot, ci, _, _, _) in &partials {
                        if !needs_grad[ci] {
                            continue;
                        }
                        scratch.batch_adj_x[slot * bl..(slot + 1) * bl]
                            .copy_from_slice(&scratch.warm[set.omega_idx[ci]].adj);
                    }
                }
                {
                    let EvalScratch {
                        sim,
                        batch_adj,
                        batch_adj_x,
                        recycle_adj,
                        recycle_keys,
                        ..
                    } = &mut *scratch;
                    if recycling {
                        // The fused operator is complex-symmetric, so the
                        // adjoint rides the same apply — but its Krylov
                        // directions come from a different right-hand-side
                        // family, so the transpose orientation keeps its
                        // own stores.
                        sim.fused_batch_solve_recycled(
                            batch_adj,
                            batch_adj_x,
                            nexc,
                            warm,
                            set.threads,
                            FusedRecycle {
                                spaces: recycle_adj,
                                keys: recycle_keys,
                                transpose: true,
                                epoch: set.epoch,
                            },
                        );
                    } else {
                        sim.fused_batch_solve(batch_adj, batch_adj_x, nexc, warm, set.threads);
                    }
                }
            }
            let merged_reports = scratch.sim.batch_reports().to_vec();

            for (slot, ci, readings, objective, fom) in partials {
                let report = &merged_reports[slot];
                if !report.converged {
                    // Adjoint-phase budget miss: full direct re-evaluation.
                    evals[ci] = Some(self.fallback_eval(
                        &epss[ci],
                        with_grad,
                        spec,
                        scratch,
                        set.strategy,
                        set.nominal_eps,
                        set.epoch,
                        set.omega_idx[ci],
                        report,
                    )?);
                    continue;
                }
                let grad_eps = if with_grad && needs_grad[ci] {
                    let mut total = Array2::zeros(grid.ny, grid.nx);
                    let fields = &scratch.batch_x[slot * bl..(slot + 1) * bl];
                    let lambdas = &scratch.batch_adj_x[slot * bl..(slot + 1) * bl];
                    for ei in 0..nexc {
                        // Inactive excitations solved λ = 0 exactly and
                        // contribute nothing; accumulation runs through
                        // this corner's own ω (its ω² and stretch
                        // factors).
                        scratch.sim.fused_grad_eps_accumulate(
                            batch_omega[slot],
                            &fields[ei * n..(ei + 1) * n],
                            &lambdas[ei * n..(ei + 1) * n],
                            &mut total,
                        );
                    }
                    Some(total)
                } else {
                    None
                };
                let mut solve = report.clone();
                solve.factorizations = 0;
                evals[ci] = Some(Evaluation {
                    readings,
                    objective,
                    fom,
                    grad_eps,
                    factorizations: 0,
                    solve,
                });
            }

            // Consistency pass for the adjoint skip: an adjoint-phase
            // fallback re-evaluates its corner *directly*, nudging its
            // objective within solver tolerance — which can move a
            // group's aggregation argmin onto an entry whose adjoint was
            // skipped. Re-derive the weights from the final objectives
            // and give every weighted-but-gradient-less entry a full
            // direct evaluation; each pass only ever adds gradients, so
            // the loop terminates (and in practice never runs — it needs
            // an adjoint-only budget miss landing between two nearly-tied
            // wavelengths).
            if with_grad {
                if let Some((agg, fab_idx)) = set.skip_zero_weight_adjoints {
                    let mut groups: Vec<Vec<usize>> = Vec::new();
                    for (ci, &f) in fab_idx.iter().enumerate() {
                        if groups.len() <= f {
                            groups.resize_with(f + 1, Vec::new);
                        }
                        groups[f].push(ci);
                    }
                    loop {
                        let mut missing: Vec<usize> = Vec::new();
                        let mut values = Vec::new();
                        let mut sweights = Vec::new();
                        for group in &groups {
                            if group.is_empty() {
                                continue;
                            }
                            values.clear();
                            values.extend(group.iter().map(|&ci| {
                                evals[ci]
                                    .as_ref()
                                    .expect("every corner evaluated")
                                    .objective
                            }));
                            sweights.clear();
                            sweights.resize(group.len(), 0.0);
                            agg.weights_into(&values, &mut sweights);
                            for (pos, &ci) in group.iter().enumerate() {
                                let has_grad =
                                    evals[ci].as_ref().is_some_and(|ev| ev.grad_eps.is_some());
                                if sweights[pos] != 0.0 && !has_grad {
                                    missing.push(ci);
                                }
                            }
                        }
                        if missing.is_empty() {
                            break;
                        }
                        for ci in missing {
                            // A plain direct evaluation — NOT a budget
                            // miss, so `fell_back` stays unset and the
                            // caller's adaptive policy does not pin this
                            // corner.
                            let cs = CornerSolve {
                                strategy: set.strategy,
                                nominal_eps: set.nominal_eps,
                                epoch: set.epoch,
                                is_nominal: false,
                                force_direct: true,
                                omega_idx: set.omega_idx[ci],
                            };
                            evals[ci] = Some(self.evaluate_eps_corner(
                                &epss[ci],
                                with_grad,
                                spec,
                                scratch,
                                Some(&cs),
                            )?);
                        }
                    }
                }
            }

            // Attribute nominal refreshes performed by `fused_batch_begin`
            // (only possible when some ω group has no nominal corner) to
            // the first batched evaluation.
            if extra_factorizations > 0 {
                if let Some(ev) = evals[batched[0]].as_mut() {
                    ev.factorizations += extra_factorizations;
                    ev.solve.factorizations += extra_factorizations;
                }
            }
        }

        Ok(evals
            .into_iter()
            .map(|e| e.expect("every corner evaluated"))
            .collect())
    }

    /// Direct re-evaluation of a corner whose batched iteration missed
    /// its budget (shared by the per-ω and fused sweeps — `omega_idx`
    /// names the corner's own wavelength); the result is bit-identical to
    /// the direct strategy and carries the failed attempt's statistics
    /// with `fell_back` set.
    #[allow(clippy::too_many_arguments)] // two sweep callers, one fallback
    fn fallback_eval(
        &self,
        eps: &Array2<f64>,
        with_grad: bool,
        spec: &crate::objective::ObjectiveSpec,
        scratch: &mut EvalScratch,
        strategy: SolverStrategy,
        nominal_eps: &Array2<f64>,
        epoch: u64,
        omega_idx: usize,
        attempt: &CornerSolveReport,
    ) -> Result<Evaluation, SingularMatrixError> {
        let cs = CornerSolve {
            strategy,
            nominal_eps,
            epoch,
            is_nominal: false,
            force_direct: true,
            omega_idx,
        };
        let mut ev = self.evaluate_eps_corner(eps, with_grad, spec, scratch, Some(&cs))?;
        ev.solve.used_iterative = true;
        ev.solve.fell_back = true;
        ev.solve.max_iterations = ev.solve.max_iterations.max(attempt.max_iterations);
        ev.solve.max_residual = ev.solve.max_residual.max(attempt.max_residual);
        Ok(ev)
    }

    /// `∂objective/∂reading` per excitation, with residual-monitor
    /// gradients folded back into the modal readings they subtract (the
    /// monitor topology is the `omega_idx`-th calibration's).
    fn reading_grads(
        &self,
        spec: &crate::objective::ObjectiveSpec,
        omega_idx: usize,
        readings: &Readings,
    ) -> Vec<HashMap<String, f64>> {
        let mut dr: Vec<HashMap<String, f64>> = vec![HashMap::new(); readings.len()];
        for (e, m, g) in spec.objective_grad(readings) {
            *dr[e].entry(m).or_default() += g;
        }
        for (ei, mons) in self.cals[omega_idx].monitors.iter().enumerate() {
            let mut updates: Vec<(String, f64)> = Vec::new();
            for (name, mon) in mons {
                if let BoundMonitor::Residual(subtract) = mon {
                    if let Some(&gres) = dr[ei].get(name) {
                        for s in subtract {
                            updates.push((s.clone(), -gres));
                        }
                    }
                }
            }
            for (name, g) in updates {
                *dr[ei].entry(name).or_default() += g;
            }
        }
        dr
    }
}

/// Builds the scaled forward right-hand side of every excitation of one
/// wavelength's calibration into the column-major block `out`
/// (`n × n_excitations`); identical for every corner of a `(grid, ω)`.
fn forward_rhs_into(
    cal: &OmegaCal,
    grid: &boson_fdfd::grid::SimGrid,
    sfactors: &boson_fdfd::pml::SFactors,
    jz: &mut Vec<Complex64>,
    out: &mut [Complex64],
) {
    let n = grid.n();
    jz.clear();
    jz.resize(n, Complex64::ZERO);
    for (ei, src) in cal.sources.iter().enumerate() {
        src.current_into(grid, jz);
        scale_source_into(
            grid,
            sfactors,
            cal.omega,
            jz,
            &mut out[ei * n..(ei + 1) * n],
        );
    }
}

/// Normalised monitor readings from a solved field block
/// (`n × n_excitations`, column per excitation) against one wavelength's
/// calibration.
fn readings_from_fields(cal: &OmegaCal, n: usize, fields: &[Complex64]) -> Readings {
    let nexc = cal.sources.len();
    let mut readings: Readings = Vec::with_capacity(nexc);
    for ei in 0..nexc {
        let ez = &fields[ei * n..(ei + 1) * n];
        let mut map = HashMap::new();
        // Modal monitors first, residuals second.
        for (name, mon) in &cal.monitors[ei] {
            if let BoundMonitor::Modal(m) = mon {
                map.insert(name.clone(), m.power(ez) / cal.norm_power[ei]);
            }
        }
        for (name, mon) in &cal.monitors[ei] {
            if let BoundMonitor::Residual(subtract) = mon {
                let total: f64 = subtract.iter().map(|s| map[s]).sum();
                map.insert(name.clone(), 1.0 - total);
            }
        }
        readings.push(map);
    }
    readings
}

/// Accumulates the adjoint (Wirtinger) sources of every excitation into
/// the column-major block `adj` (assumed zeroed), recording which columns
/// are active.
fn adjoint_sources_into(
    cal: &OmegaCal,
    n: usize,
    dr: &[HashMap<String, f64>],
    fields: &[Complex64],
    adj: &mut [Complex64],
    adj_active: &mut Vec<bool>,
) {
    let nexc = cal.sources.len();
    adj_active.clear();
    adj_active.resize(nexc, false);
    for ei in 0..nexc {
        let ez = &fields[ei * n..(ei + 1) * n];
        let g_field = &mut adj[ei * n..(ei + 1) * n];
        for (name, mon) in &cal.monitors[ei] {
            if let BoundMonitor::Modal(m) = mon {
                if let Some(&g) = dr[ei].get(name) {
                    if g != 0.0 {
                        m.accumulate_power_grad(ez, g / cal.norm_power[ei], g_field);
                        adj_active[ei] = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{bending, crossing, isolator};
    use boson_fab::TemperatureModel;
    use boson_param::sdf::Geometry;
    use boson_param::{LevelSetConfig, LevelSetParam, Parameterization};

    fn seed_rho(p: &DeviceProblem, geo: &Geometry) -> Array2<f64> {
        let ls = LevelSetParam::new(
            p.design_shape.0,
            p.design_shape.1,
            p.grid.dx,
            LevelSetConfig {
                control_rows: 14,
                control_cols: 14,
                smoothing: 0.05,
            },
        );
        let theta = ls.theta_from_geometry(geo);
        ls.forward(&theta)
    }

    use crate::problem::DeviceProblem;

    #[test]
    fn bending_seed_transmits() {
        let p = bending();
        let c = CompiledProblem::compile(p).unwrap();
        let rho = seed_rho(c.problem(), &c.problem().seed.clone());
        let eps = c.eps_for(&rho, 300.0);
        let ev = c.evaluate_eps(&eps, false).unwrap();
        let trans = ev.readings[0]["trans"];
        let refl = ev.readings[0]["refl"];
        // The naive L-bend is lossy but must carry *some* light and not be
        // dominated by reflection.
        assert!(trans > 0.3, "seed bend transmission {trans}");
        assert!(refl < 0.6, "seed bend reflection {refl}");
        assert!(trans <= 1.1, "transmission should be ≲1: {trans}");
    }

    #[test]
    fn crossing_seed_transmits_straight_through() {
        let c = CompiledProblem::compile(crossing()).unwrap();
        let rho = seed_rho(c.problem(), &c.problem().seed.clone());
        let eps = c.eps_for(&rho, 300.0);
        let ev = c.evaluate_eps(&eps, false).unwrap();
        let trans = ev.readings[0]["trans"];
        assert!(trans > 0.4, "crossing seed transmission {trans}");
        // Symmetric crossing: crosstalk splits evenly and is modest.
        let xt = ev.readings[0]["xtalk_top"];
        let xb = ev.readings[0]["xtalk_bottom"];
        assert!((xt - xb).abs() < 0.05, "crosstalk asymmetry {xt} vs {xb}");
        assert!(xt < 0.3);
    }

    #[test]
    fn isolator_compiles_and_runs_both_directions() {
        let c = CompiledProblem::compile(isolator()).unwrap();
        let rho = seed_rho(c.problem(), &c.problem().seed.clone());
        let eps = c.eps_for(&rho, 300.0);
        let ev = c.evaluate_eps(&eps, false).unwrap();
        assert_eq!(ev.readings.len(), 2);
        for key in ["trans3", "trans1", "refl", "rad"] {
            assert!(
                ev.readings[0].contains_key(key),
                "missing fwd reading {key}"
            );
        }
        for key in ["leak0", "leak2", "reflb", "radb"] {
            assert!(
                ev.readings[1].contains_key(key),
                "missing bwd reading {key}"
            );
        }
        // Readings are physical: powers within [0, ~1].
        for map in &ev.readings {
            for (k, v) in map {
                assert!(*v > -0.2 && *v < 1.2, "{k} = {v}");
            }
        }
    }

    #[test]
    fn energy_accounting_roughly_conserved() {
        // trans + refl + rad = 1 by construction; the *physical* check is
        // that the residual (radiation) is not badly negative.
        let c = CompiledProblem::compile(bending()).unwrap();
        let rho = seed_rho(c.problem(), &c.problem().seed.clone());
        let eps = c.eps_for(&rho, 300.0);
        let ev = c.evaluate_eps(&eps, false).unwrap();
        let rad = ev.readings[0]["rad"];
        assert!(rad > -0.1, "radiation residual {rad} badly negative");
    }

    #[test]
    fn gradient_matches_finite_difference_through_full_pipeline() {
        let c = CompiledProblem::compile(bending()).unwrap();
        let p = c.problem().clone();
        let rho = seed_rho(&p, &p.seed.clone());
        let eps = c.eps_for(&rho, 300.0);
        let ev = c.evaluate_eps(&eps, true).unwrap();
        let grad = ev.grad_eps.as_ref().unwrap();
        let h = 1e-5;
        // Probe cells inside the design region.
        let (oy, ox) = p.design_origin;
        for &(dy, dx_) in &[(14usize, 14usize), (10, 18), (18, 10)] {
            let (iy, ix) = (oy + dy, ox + dx_);
            let mut ep = eps.clone();
            ep[(iy, ix)] += h;
            let op = c.evaluate_eps(&ep, false).unwrap().objective;
            ep[(iy, ix)] -= 2.0 * h;
            let om_ = c.evaluate_eps(&ep, false).unwrap().objective;
            let fd = (op - om_) / (2.0 * h);
            let ad = grad[(iy, ix)];
            assert!(
                (fd - ad).abs() < 1e-5 + 5e-3 * fd.abs().max(ad.abs()),
                "objective grad at ({iy},{ix}): fd={fd} ad={ad}"
            );
        }
    }

    /// The fused product's zero-weight adjoint skip is a pure work
    /// deletion: objectives are bitwise unchanged, every weighted entry
    /// still carries its (bitwise identical) gradient, and exactly the
    /// aggregation's zero-weight entries come back without one.
    #[test]
    fn fused_product_skip_drops_only_zero_weight_gradients() {
        use crate::objective::SpectralAggregation;
        use boson_fab::SpectralAxis;
        let k = 3;
        let c =
            CompiledProblem::compile_spectral(bending(), SpectralAxis::around(0.02, k)).unwrap();
        let p = c.problem().clone();
        let rho = seed_rho(&p, &p.seed.clone());
        let nominal = c.eps_for(&rho, 300.0);
        let mut bumped = nominal.clone();
        for v in bumped.as_mut_slice().iter_mut() {
            if *v > 2.0 {
                *v += 0.04;
            }
        }
        let fab = [nominal.clone(), bumped];
        let nf = fab.len();
        let epss: Vec<Array2<f64>> = (0..k).flat_map(|_| fab.iter().cloned()).collect();
        let omega_idx: Vec<usize> = (0..k).flat_map(|oi| std::iter::repeat_n(oi, nf)).collect();
        let is_nominal: Vec<bool> = (0..k).flat_map(|_| [true, false]).collect();
        let fab_idx: Vec<usize> = (0..k * nf).map(|ci| ci % nf).collect();
        let force_direct = vec![false; k * nf];
        let agg = SpectralAggregation::WorstCase;
        let spec = p.objective.clone();
        let run = |skip: bool| {
            let mut scratch = EvalScratch::new();
            let set = CornerProductSolve {
                strategy: SolverStrategy::preconditioned_iterative(),
                nominal_eps: &fab[0],
                epoch: 1,
                omega_idx: &omega_idx,
                is_nominal: &is_nominal,
                force_direct: &force_direct,
                threads: 1,
                skip_zero_weight_adjoints: skip.then_some((agg, fab_idx.as_slice())),
                recycle: None,
            };
            c.evaluate_corner_product(&epss, true, &spec, &mut scratch, &set)
                .unwrap()
        };
        let full = run(false);
        let skipped = run(true);
        let mut values = vec![0.0; k];
        let mut weights = vec![0.0; k];
        let mut dropped = 0usize;
        for f in 0..nf {
            for oi in 0..k {
                let (a, b) = (&full[oi * nf + f], &skipped[oi * nf + f]);
                assert_eq!(a.objective, b.objective, "corner {f} ω {oi}");
                values[oi] = a.objective;
            }
            agg.weights_into(&values, &mut weights);
            for oi in 0..k {
                let (a, b) = (&full[oi * nf + f], &skipped[oi * nf + f]);
                // Nominal entries are evaluated outside the batch and
                // always keep their gradient.
                if weights[oi] != 0.0 || is_nominal[oi * nf + f] {
                    assert_eq!(
                        a.grad_eps.as_ref().unwrap().as_slice(),
                        b.grad_eps.as_ref().unwrap().as_slice(),
                        "weighted gradient diverged: corner {f} ω {oi}"
                    );
                } else {
                    assert!(a.grad_eps.is_some());
                    assert!(b.grad_eps.is_none(), "corner {f} ω {oi} not skipped");
                    dropped += 1;
                }
            }
        }
        // WorstCase keeps one ω per corner; the non-nominal corner's two
        // other wavelengths (and possibly the nominal's) are dropped.
        assert!(dropped >= k - 1, "skip never fired ({dropped} dropped)");
    }

    #[test]
    fn normalisation_power_is_positive_and_stable() {
        let c = CompiledProblem::compile(crossing()).unwrap();
        for &p0 in c.norm_power() {
            assert!(p0 > 1e-9);
        }
    }

    #[test]
    fn temperature_shifts_eps_map() {
        let c = CompiledProblem::compile(bending()).unwrap();
        let rho = Array2::filled(28, 28, 1.0);
        let cold = c.eps_for(&rho, 250.0);
        let hot = c.eps_for(&rho, 350.0);
        let (oy, ox) = c.problem().design_origin;
        assert!(hot[(oy + 5, ox + 5)] > cold[(oy + 5, ox + 5)]);
        let _ = TemperatureModel::eps_si(300.0);
    }
}
