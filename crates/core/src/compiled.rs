//! Compiled benchmark: precomputed modes, sources, monitors and power
//! normalisation, plus the forward + adjoint evaluation of a permittivity
//! map.
//!
//! Compilation solves the port eigenmode problems once (mode shapes live
//! on the access waveguides, outside the design region, so they do not
//! change during optimisation) and calibrates the launched power of every
//! excitation with a straight-waveguide reference run. Evaluation then
//! costs one factorisation plus `2·(number of excitations)` triangular
//! solves when gradients are requested.

use crate::fabchain::assemble_eps;
use crate::objective::Readings;
use crate::problem::{DeviceProblem, MonitorKind};
use boson_fdfd::monitor::ModalMonitor;
use boson_fdfd::operator::scale_source_into;
use boson_fdfd::sim::{SimWorkspace, Simulation};
use boson_fdfd::source::ModalSource;
use boson_num::banded::SingularMatrixError;
use boson_num::{Array2, Complex64};
use std::collections::HashMap;

/// A monitor bound to concrete grid weights.
#[derive(Debug, Clone)]
enum BoundMonitor {
    Modal(ModalMonitor),
    Residual(Vec<String>),
}

/// The result of evaluating one permittivity map.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Normalised monitor readings per excitation.
    pub readings: Readings,
    /// Scalar objective (maximise).
    pub objective: f64,
    /// Reported figure of merit.
    pub fom: f64,
    /// `∂objective/∂ε` over the full grid (present when requested).
    pub grad_eps: Option<Array2<f64>>,
    /// Number of linear-system factorisations performed.
    pub factorizations: usize,
}

/// Reusable buffers for repeated [`CompiledProblem::evaluate_eps_scratch`]
/// calls: one FDFD factor/solve workspace plus the current, field and
/// adjoint blocks. Keep one per worker thread; after the first evaluation
/// the entire solve path runs without heap allocation.
#[derive(Debug, Default)]
pub struct EvalScratch {
    sim: SimWorkspace,
    /// Raw current buffer (one excitation at a time).
    jz: Vec<Complex64>,
    /// Column-major field block, `n × n_excitations`.
    fields: Vec<Complex64>,
    /// Column-major adjoint source/solution block, `n × n_excitations`.
    adj: Vec<Complex64>,
    /// Which adjoint columns carry a non-zero source.
    adj_active: Vec<bool>,
    /// Excitation indices of the active columns, in packed order.
    active_cols: Vec<usize>,
}

impl EvalScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A benchmark compiled against its background geometry.
pub struct CompiledProblem {
    problem: DeviceProblem,
    sources: Vec<ModalSource>,
    monitors: Vec<Vec<(String, BoundMonitor)>>,
    /// Launched power per excitation (straight-waveguide calibration).
    norm_power: Vec<f64>,
}

impl std::fmt::Debug for CompiledProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompiledProblem({}, {} excitations)",
            self.problem.name,
            self.sources.len()
        )
    }
}

impl CompiledProblem {
    /// Compiles `problem`: solves port modes, builds sources/monitors and
    /// runs the normalisation references.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a reference solve fails.
    ///
    /// # Panics
    ///
    /// Panics if a port supports fewer guided modes than the problem
    /// requests.
    pub fn compile(problem: DeviceProblem) -> Result<Self, SingularMatrixError> {
        let grid = problem.grid;
        let om = problem.omega;
        // Nominal background permittivity (design region = seed-less void
        // is fine for mode solving: ports sit on access waveguides).
        let eps_bg = assemble_eps(
            &problem.background_solid,
            problem.design_origin,
            &Array2::zeros(problem.design_shape.0, problem.design_shape.1),
            300.0,
        );
        // Solve modes at every port.
        let port_modes: Vec<_> = problem
            .ports
            .iter()
            .map(|p| p.solve_modes(&grid, &eps_bg, om, problem.mode_count))
            .collect();

        let mut sources = Vec::new();
        let mut monitors = Vec::new();
        for exc in &problem.excitations {
            let src_modes = &port_modes[exc.source_port];
            assert!(
                exc.source_mode < src_modes.len(),
                "{}: port {} supports {} modes, excitation needs mode {}",
                problem.name,
                problem.ports[exc.source_port].name,
                src_modes.len(),
                exc.source_mode
            );
            sources.push(ModalSource::new(
                problem.ports[exc.source_port].clone(),
                src_modes[exc.source_mode].clone(),
                exc.source_direction,
            ));
            let mut bound = Vec::new();
            for spec in &exc.monitors {
                let bm = match &spec.kind {
                    MonitorKind::Modal {
                        port,
                        mode,
                        direction,
                    } => {
                        let modes = &port_modes[*port];
                        assert!(
                            *mode < modes.len(),
                            "{}: monitor {} wants mode {} of port {} ({} available)",
                            problem.name,
                            spec.name,
                            mode,
                            problem.ports[*port].name,
                            modes.len()
                        );
                        BoundMonitor::Modal(ModalMonitor::new(
                            &grid,
                            &problem.ports[*port],
                            &modes[*mode],
                            *direction,
                        ))
                    }
                    MonitorKind::Residual { subtract } => BoundMonitor::Residual(subtract.clone()),
                };
                bound.push((spec.name.clone(), bm));
            }
            monitors.push(bound);
        }

        // Normalisation: straight-waveguide reference per excitation.
        let mut norm_power = Vec::new();
        for (ei, exc) in problem.excitations.iter().enumerate() {
            let port = &problem.ports[exc.source_port];
            // Replicate the transverse ε line at the source plane along the
            // propagation axis.
            let eps_ref = match port.axis {
                boson_fdfd::grid::Axis::X => {
                    let line: Vec<f64> = (0..grid.ny).map(|iy| eps_bg[(iy, port.plane)]).collect();
                    Array2::from_fn(grid.ny, grid.nx, |iy, _| line[iy])
                }
                boson_fdfd::grid::Axis::Y => {
                    let line: Vec<f64> = (0..grid.nx).map(|ix| eps_bg[(port.plane, ix)]).collect();
                    Array2::from_fn(grid.ny, grid.nx, |_, ix| line[ix])
                }
            };
            let sim = Simulation::new(grid, om, eps_ref)?;
            let field = sim.solve_current(&sources[ei].current(&grid));
            // Measure the launched mode 12 cells downstream.
            let shift: isize = match exc.source_direction {
                boson_fdfd::grid::Sign::Plus => 12,
                boson_fdfd::grid::Sign::Minus => -12,
            };
            let mut ref_port = port.clone();
            ref_port.plane = (port.plane as isize + shift) as usize;
            let mon = ModalMonitor::new(
                &grid,
                &ref_port,
                &port_modes[exc.source_port][exc.source_mode],
                exc.source_direction,
            );
            let p0 = mon.power(&field.ez);
            assert!(p0 > 1e-12, "{}: zero launched power", problem.name);
            norm_power.push(p0);
        }

        Ok(Self {
            problem,
            sources,
            monitors,
            norm_power,
        })
    }

    /// The underlying problem definition.
    pub fn problem(&self) -> &DeviceProblem {
        &self.problem
    }

    /// Launched-power calibration per excitation.
    pub fn norm_power(&self) -> &[f64] {
        &self.norm_power
    }

    /// Assembles the permittivity for a design-region density at
    /// temperature `t`.
    pub fn eps_for(&self, rho: &Array2<f64>, temperature: f64) -> Array2<f64> {
        assemble_eps(
            &self.problem.background_solid,
            self.problem.design_origin,
            rho,
            temperature,
        )
    }

    /// Evaluates a permittivity map: runs every excitation, reads the
    /// monitors and (optionally) produces `∂objective/∂ε` by the adjoint
    /// method, using the problem's own objective.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the operator factorisation
    /// fails.
    pub fn evaluate_eps(
        &self,
        eps: &Array2<f64>,
        with_grad: bool,
    ) -> Result<Evaluation, SingularMatrixError> {
        let spec = self.problem.objective.clone();
        self.evaluate_eps_with(eps, with_grad, &spec)
    }

    /// Like [`CompiledProblem::evaluate_eps`] but with a caller-supplied
    /// objective (used by the sparse-objective ablation, which strips the
    /// auxiliary constraints).
    ///
    /// Allocates a fresh [`EvalScratch`] per call; hot loops should keep
    /// one and use [`CompiledProblem::evaluate_eps_scratch`].
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the operator factorisation
    /// fails.
    pub fn evaluate_eps_with(
        &self,
        eps: &Array2<f64>,
        with_grad: bool,
        spec: &crate::objective::ObjectiveSpec,
    ) -> Result<Evaluation, SingularMatrixError> {
        let mut scratch = EvalScratch::new();
        self.evaluate_eps_scratch(eps, with_grad, spec, &mut scratch)
    }

    /// The zero-allocation evaluation path: factors the operator into the
    /// scratch's [`SimWorkspace`], pushes **all** excitation solves through
    /// one batched [`boson_num::banded::BandedLu::solve_many`] sweep, and
    /// (when `with_grad`) does the same for every adjoint system before
    /// accumulating `∂objective/∂ε`.
    ///
    /// After the scratch's first use with this problem, the factor-and-
    /// solve path performs no heap allocation (the returned [`Evaluation`]
    /// still owns its readings and gradient).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the operator factorisation
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if `eps` does not have the grid's shape.
    #[allow(clippy::needless_range_loop)] // excitation index addresses four parallel blocks
    pub fn evaluate_eps_scratch(
        &self,
        eps: &Array2<f64>,
        with_grad: bool,
        spec: &crate::objective::ObjectiveSpec,
        scratch: &mut EvalScratch,
    ) -> Result<Evaluation, SingularMatrixError> {
        let grid = self.problem.grid;
        let n = grid.n();
        let nexc = self.sources.len();
        scratch.sim.factor(grid, self.problem.omega, eps)?;

        // Forward: scale every excitation's current into one column-major
        // block and solve them together.
        scratch.jz.clear();
        scratch.jz.resize(n, Complex64::ZERO);
        scratch.fields.clear();
        scratch.fields.resize(n * nexc, Complex64::ZERO);
        for (ei, src) in self.sources.iter().enumerate() {
            src.current_into(&grid, &mut scratch.jz);
            scale_source_into(
                &grid,
                scratch.sim.sfactors(),
                self.problem.omega,
                &scratch.jz,
                &mut scratch.fields[ei * n..(ei + 1) * n],
            );
        }
        scratch.sim.lu().solve_many(&mut scratch.fields, nexc);

        let mut readings: Readings = Vec::with_capacity(nexc);
        for ei in 0..nexc {
            let ez = &scratch.fields[ei * n..(ei + 1) * n];
            let mut map = HashMap::new();
            // Modal monitors first, residuals second.
            for (name, mon) in &self.monitors[ei] {
                if let BoundMonitor::Modal(m) = mon {
                    map.insert(name.clone(), m.power(ez) / self.norm_power[ei]);
                }
            }
            for (name, mon) in &self.monitors[ei] {
                if let BoundMonitor::Residual(subtract) = mon {
                    let total: f64 = subtract.iter().map(|s| map[s]).sum();
                    map.insert(name.clone(), 1.0 - total);
                }
            }
            readings.push(map);
        }
        let objective = spec.objective(&readings);
        let fom = spec.fom(&readings);

        let grad_eps = if with_grad {
            // ∂obj/∂reading, with residual gradients folded back into the
            // modal readings they subtract.
            let mut dr: Vec<HashMap<String, f64>> = vec![HashMap::new(); readings.len()];
            for (e, m, g) in spec.objective_grad(&readings) {
                *dr[e].entry(m).or_default() += g;
            }
            for (ei, mons) in self.monitors.iter().enumerate() {
                let mut updates: Vec<(String, f64)> = Vec::new();
                for (name, mon) in mons {
                    if let BoundMonitor::Residual(subtract) = mon {
                        if let Some(&gres) = dr[ei].get(name) {
                            for s in subtract {
                                updates.push((s.clone(), -gres));
                            }
                        }
                    }
                }
                for (name, g) in updates {
                    *dr[ei].entry(name).or_default() += g;
                }
            }
            // Adjoint sources per excitation, then one batched solve.
            scratch.adj.clear();
            scratch.adj.resize(n * nexc, Complex64::ZERO);
            scratch.adj_active.clear();
            scratch.adj_active.resize(nexc, false);
            for ei in 0..nexc {
                let ez = &scratch.fields[ei * n..(ei + 1) * n];
                let g_field = &mut scratch.adj[ei * n..(ei + 1) * n];
                for (name, mon) in &self.monitors[ei] {
                    if let BoundMonitor::Modal(m) = mon {
                        if let Some(&g) = dr[ei].get(name) {
                            if g != 0.0 {
                                m.accumulate_power_grad(ez, g / self.norm_power[ei], g_field);
                                scratch.adj_active[ei] = true;
                            }
                        }
                    }
                }
            }
            // Pack the active columns to the front of the block so dead
            // excitations (no monitor gradient — common under the sparse
            // objective) cost no triangular sweeps at all.
            scratch.active_cols.clear();
            for ei in 0..nexc {
                if scratch.adj_active[ei] {
                    let pos = scratch.active_cols.len();
                    if pos != ei {
                        scratch.adj.copy_within(ei * n..(ei + 1) * n, pos * n);
                    }
                    scratch.active_cols.push(ei);
                }
            }
            let mut total = Array2::zeros(grid.ny, grid.nx);
            if !scratch.active_cols.is_empty() {
                let nactive = scratch.active_cols.len();
                scratch
                    .sim
                    .solve_adjoints_batched_in_place(&mut scratch.adj[..nactive * n], nactive);
                for (pos, &ei) in scratch.active_cols.iter().enumerate() {
                    scratch.sim.grad_eps_accumulate(
                        &scratch.fields[ei * n..(ei + 1) * n],
                        &scratch.adj[pos * n..(pos + 1) * n],
                        &mut total,
                    );
                }
            }
            Some(total)
        } else {
            None
        };

        Ok(Evaluation {
            readings,
            objective,
            fom,
            grad_eps,
            factorizations: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{bending, crossing, isolator};
    use boson_fab::TemperatureModel;
    use boson_param::sdf::Geometry;
    use boson_param::{LevelSetConfig, LevelSetParam, Parameterization};

    fn seed_rho(p: &DeviceProblem, geo: &Geometry) -> Array2<f64> {
        let ls = LevelSetParam::new(
            p.design_shape.0,
            p.design_shape.1,
            p.grid.dx,
            LevelSetConfig {
                control_rows: 14,
                control_cols: 14,
                smoothing: 0.05,
            },
        );
        let theta = ls.theta_from_geometry(geo);
        ls.forward(&theta)
    }

    use crate::problem::DeviceProblem;

    #[test]
    fn bending_seed_transmits() {
        let p = bending();
        let c = CompiledProblem::compile(p).unwrap();
        let rho = seed_rho(c.problem(), &c.problem().seed.clone());
        let eps = c.eps_for(&rho, 300.0);
        let ev = c.evaluate_eps(&eps, false).unwrap();
        let trans = ev.readings[0]["trans"];
        let refl = ev.readings[0]["refl"];
        // The naive L-bend is lossy but must carry *some* light and not be
        // dominated by reflection.
        assert!(trans > 0.3, "seed bend transmission {trans}");
        assert!(refl < 0.6, "seed bend reflection {refl}");
        assert!(trans <= 1.1, "transmission should be ≲1: {trans}");
    }

    #[test]
    fn crossing_seed_transmits_straight_through() {
        let c = CompiledProblem::compile(crossing()).unwrap();
        let rho = seed_rho(c.problem(), &c.problem().seed.clone());
        let eps = c.eps_for(&rho, 300.0);
        let ev = c.evaluate_eps(&eps, false).unwrap();
        let trans = ev.readings[0]["trans"];
        assert!(trans > 0.4, "crossing seed transmission {trans}");
        // Symmetric crossing: crosstalk splits evenly and is modest.
        let xt = ev.readings[0]["xtalk_top"];
        let xb = ev.readings[0]["xtalk_bottom"];
        assert!((xt - xb).abs() < 0.05, "crosstalk asymmetry {xt} vs {xb}");
        assert!(xt < 0.3);
    }

    #[test]
    fn isolator_compiles_and_runs_both_directions() {
        let c = CompiledProblem::compile(isolator()).unwrap();
        let rho = seed_rho(c.problem(), &c.problem().seed.clone());
        let eps = c.eps_for(&rho, 300.0);
        let ev = c.evaluate_eps(&eps, false).unwrap();
        assert_eq!(ev.readings.len(), 2);
        for key in ["trans3", "trans1", "refl", "rad"] {
            assert!(
                ev.readings[0].contains_key(key),
                "missing fwd reading {key}"
            );
        }
        for key in ["leak0", "leak2", "reflb", "radb"] {
            assert!(
                ev.readings[1].contains_key(key),
                "missing bwd reading {key}"
            );
        }
        // Readings are physical: powers within [0, ~1].
        for map in &ev.readings {
            for (k, v) in map {
                assert!(*v > -0.2 && *v < 1.2, "{k} = {v}");
            }
        }
    }

    #[test]
    fn energy_accounting_roughly_conserved() {
        // trans + refl + rad = 1 by construction; the *physical* check is
        // that the residual (radiation) is not badly negative.
        let c = CompiledProblem::compile(bending()).unwrap();
        let rho = seed_rho(c.problem(), &c.problem().seed.clone());
        let eps = c.eps_for(&rho, 300.0);
        let ev = c.evaluate_eps(&eps, false).unwrap();
        let rad = ev.readings[0]["rad"];
        assert!(rad > -0.1, "radiation residual {rad} badly negative");
    }

    #[test]
    fn gradient_matches_finite_difference_through_full_pipeline() {
        let c = CompiledProblem::compile(bending()).unwrap();
        let p = c.problem().clone();
        let rho = seed_rho(&p, &p.seed.clone());
        let eps = c.eps_for(&rho, 300.0);
        let ev = c.evaluate_eps(&eps, true).unwrap();
        let grad = ev.grad_eps.as_ref().unwrap();
        let h = 1e-5;
        // Probe cells inside the design region.
        let (oy, ox) = p.design_origin;
        for &(dy, dx_) in &[(14usize, 14usize), (10, 18), (18, 10)] {
            let (iy, ix) = (oy + dy, ox + dx_);
            let mut ep = eps.clone();
            ep[(iy, ix)] += h;
            let op = c.evaluate_eps(&ep, false).unwrap().objective;
            ep[(iy, ix)] -= 2.0 * h;
            let om_ = c.evaluate_eps(&ep, false).unwrap().objective;
            let fd = (op - om_) / (2.0 * h);
            let ad = grad[(iy, ix)];
            assert!(
                (fd - ad).abs() < 1e-5 + 5e-3 * fd.abs().max(ad.abs()),
                "objective grad at ({iy},{ix}): fd={fd} ad={ad}"
            );
        }
    }

    #[test]
    fn normalisation_power_is_positive_and_stable() {
        let c = CompiledProblem::compile(crossing()).unwrap();
        for &p0 in c.norm_power() {
            assert!(p0 > 1e-9);
        }
    }

    #[test]
    fn temperature_shifts_eps_map() {
        let c = CompiledProblem::compile(bending()).unwrap();
        let rho = Array2::filled(28, 28, 1.0);
        let cold = c.eps_for(&rho, 250.0);
        let hot = c.eps_for(&rho, 350.0);
        let (oy, ox) = c.problem().design_origin;
        assert!(hot[(oy + 5, ox + 5)] > cold[(oy + 5, ox + 5)]);
        let _ = TemperatureModel::eps_si(300.0);
    }
}
