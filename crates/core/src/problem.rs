//! The three photonic device benchmarks (paper §IV-A).
//!
//! 1. **Waveguide bending** — steer light by 90°;
//! 2. **Waveguide crossing** — cross two guides with no crosstalk;
//! 3. **Optical isolator** — convert TM1 → TM3 forward with high
//!    efficiency while backward TM1 injection is lost to radiation
//!    (a passive reciprocal structure evaluated for directional contrast,
//!    exactly as in the paper).
//!
//! Each benchmark fixes the simulation grid, the background waveguides,
//! the design region, ports, monitors, the dense objective set and the
//! light-concentrated seed geometry.

use crate::objective::{Bound, Constraint, MainObjective, ObjectiveSpec};
use boson_fdfd::grid::{Axis, Sign, SimGrid};
use boson_fdfd::port::Port;
use boson_num::Array2;
use boson_param::sdf::{Geometry, Shape};
use serde::{Deserialize, Serialize};

/// Operating wavelength (µm).
pub const LAMBDA: f64 = 1.55;
/// Grid pitch (µm).
pub const DX: f64 = 0.05;
/// PML thickness in cells.
pub const NPML: usize = 10;

/// Angular frequency for [`LAMBDA`] (c = 1).
pub fn omega() -> f64 {
    2.0 * std::f64::consts::PI / LAMBDA
}

/// What a monitor measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MonitorKind {
    /// Directional modal power at a port.
    Modal {
        /// Index into [`DeviceProblem::ports`].
        port: usize,
        /// Mode order at that port.
        mode: usize,
        /// Measured propagation direction.
        direction: Sign,
    },
    /// `1 − Σ(named readings)` — the radiation/loss accounting monitor.
    Residual {
        /// Names of same-excitation monitors to subtract from unity.
        subtract: Vec<String>,
    },
}

/// A named measurement taken under one excitation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSpec {
    /// Reading name used by the objective.
    pub name: String,
    /// What is measured.
    pub kind: MonitorKind,
}

/// One independent simulation: a source plus its measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Excitation {
    /// Label ("fwd", "bwd").
    pub name: String,
    /// Index into [`DeviceProblem::ports`] of the injecting port.
    pub source_port: usize,
    /// Injected mode order.
    pub source_mode: usize,
    /// Injection direction.
    pub source_direction: Sign,
    /// Measurements for this excitation.
    pub monitors: Vec<MonitorSpec>,
}

/// A full benchmark definition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceProblem {
    /// Benchmark name ("bending", "crossing", "isolator").
    pub name: String,
    /// Simulation grid.
    pub grid: SimGrid,
    /// Angular frequency.
    pub omega: f64,
    /// Solid-occupancy map (1 = silicon) for everything *outside* the
    /// design region; design-region cells are ignored.
    pub background_solid: Array2<f64>,
    /// Design-region origin `(iy0, ix0)` in grid cells.
    pub design_origin: (usize, usize),
    /// Design-region shape `(rows, cols)` in cells.
    pub design_shape: (usize, usize),
    /// All port/monitor planes.
    pub ports: Vec<Port>,
    /// Simulations to run.
    pub excitations: Vec<Excitation>,
    /// Dense objective (constraints may be stripped for sparse baselines).
    pub objective: ObjectiveSpec,
    /// Light-concentrated seed geometry in design-region local µm
    /// coordinates.
    pub seed: Geometry,
    /// Modes to solve per port.
    pub mode_count: usize,
}

impl DeviceProblem {
    /// Design-region pitch (equals the grid pitch).
    pub fn design_dx(&self) -> f64 {
        self.grid.dx
    }

    /// Physical size `(width, height)` of the design region in µm.
    pub fn design_size(&self) -> (f64, f64) {
        (
            self.design_shape.1 as f64 * self.grid.dx,
            self.design_shape.0 as f64 * self.grid.dx,
        )
    }

    /// `true` if grid cell `(iy, ix)` lies inside the design region.
    pub fn in_design_region(&self, iy: usize, ix: usize) -> bool {
        let (oy, ox) = self.design_origin;
        let (h, w) = self.design_shape;
        iy >= oy && iy < oy + h && ix >= ox && ix < ox + w
    }
}

fn strip_y(solid: &mut Array2<f64>, iy_lo: usize, iy_hi: usize, ix_lo: usize, ix_hi: usize) {
    for iy in iy_lo..iy_hi {
        for ix in ix_lo..ix_hi {
            solid[(iy, ix)] = 1.0;
        }
    }
}

/// Builds the 90° waveguide-bending benchmark.
///
/// 4 × 4 µm domain, 0.4 µm guides entering from the left and leaving
/// through the top, 1.4 µm square design region in the centre.
pub fn bending() -> DeviceProblem {
    let grid = SimGrid::new(80, 80, DX, NPML);
    let om = omega();
    let mut solid = Array2::zeros(80, 80);
    // Horizontal input guide: y ∈ [36, 44), x from edge to design region.
    strip_y(&mut solid, 36, 44, 0, 26);
    // Vertical output guide: x ∈ [36, 44), y from design region to edge.
    for iy in 54..80 {
        for ix in 36..44 {
            solid[(iy, ix)] = 1.0;
        }
    }
    let ports = vec![
        Port::new("in", Axis::X, 16, 26, 54),   // 0: source plane
        Port::new("out", Axis::Y, 63, 26, 54),  // 1: transmission plane
        Port::new("refl", Axis::X, 13, 26, 54), // 2: reflection plane
    ];
    let monitors = vec![
        MonitorSpec {
            name: "trans".into(),
            kind: MonitorKind::Modal {
                port: 1,
                mode: 0,
                direction: Sign::Plus,
            },
        },
        MonitorSpec {
            name: "refl".into(),
            kind: MonitorKind::Modal {
                port: 2,
                mode: 0,
                direction: Sign::Minus,
            },
        },
        MonitorSpec {
            name: "rad".into(),
            kind: MonitorKind::Residual {
                subtract: vec!["trans".into(), "refl".into()],
            },
        },
    ];
    let excitations = vec![Excitation {
        name: "fwd".into(),
        source_port: 0,
        source_mode: 0,
        source_direction: Sign::Plus,
        monitors,
    }];
    let objective = ObjectiveSpec {
        main: MainObjective::MaximizePower {
            excitation: 0,
            monitor: "trans".into(),
        },
        constraints: vec![
            Constraint {
                excitation: 0,
                monitor: "trans".into(),
                bound: Bound::AtLeast(0.9),
                weight: 1.0,
            },
            Constraint {
                excitation: 0,
                monitor: "refl".into(),
                bound: Bound::AtMost(0.05),
                weight: 0.5,
            },
            Constraint {
                excitation: 0,
                monitor: "rad".into(),
                bound: Bound::AtMost(0.15),
                weight: 0.5,
            },
        ],
    };
    // Design region: cells (26..54)², i.e. 1.4 × 1.4 µm. The seed is an
    // arc-bent guide (an abrupt 90° corner would radiate ~99 % of the
    // light — the arc starts the optimiser at ~67 % transmission).
    let seed = Geometry::new()
        .with(Shape::Segment {
            x0: 0.0,
            y0: 0.7,
            x1: 0.25,
            y1: 0.7,
            half_width: 0.2,
        })
        .with(Shape::Segment {
            x0: 0.7,
            y0: 1.15,
            x1: 0.7,
            y1: 1.4,
            half_width: 0.2,
        })
        .with_arc(0.2, 1.2, 0.5, -std::f64::consts::FRAC_PI_2, 0.0, 8, 0.2);
    DeviceProblem {
        name: "bending".into(),
        grid,
        omega: om,
        background_solid: solid,
        design_origin: (26, 26),
        design_shape: (28, 28),
        ports,
        excitations,
        objective,
        seed,
        mode_count: 1,
    }
}

/// Builds the waveguide-crossing benchmark.
///
/// Two 0.4 µm guides crossing at the centre; light must pass straight
/// through with minimal crosstalk into the vertical arms.
pub fn crossing() -> DeviceProblem {
    let grid = SimGrid::new(80, 80, DX, NPML);
    let om = omega();
    let mut solid = Array2::zeros(80, 80);
    // Horizontal guide (both sides).
    strip_y(&mut solid, 36, 44, 0, 26);
    strip_y(&mut solid, 36, 44, 54, 80);
    // Vertical guide (both sides).
    for iy in (0..26).chain(54..80) {
        for ix in 36..44 {
            solid[(iy, ix)] = 1.0;
        }
    }
    let ports = vec![
        Port::new("in", Axis::X, 16, 26, 54),     // 0
        Port::new("out", Axis::X, 63, 26, 54),    // 1
        Port::new("top", Axis::Y, 63, 26, 54),    // 2
        Port::new("bottom", Axis::Y, 16, 26, 54), // 3
        Port::new("refl", Axis::X, 13, 26, 54),   // 4
    ];
    let monitors = vec![
        MonitorSpec {
            name: "trans".into(),
            kind: MonitorKind::Modal {
                port: 1,
                mode: 0,
                direction: Sign::Plus,
            },
        },
        MonitorSpec {
            name: "refl".into(),
            kind: MonitorKind::Modal {
                port: 4,
                mode: 0,
                direction: Sign::Minus,
            },
        },
        MonitorSpec {
            name: "xtalk_top".into(),
            kind: MonitorKind::Modal {
                port: 2,
                mode: 0,
                direction: Sign::Plus,
            },
        },
        MonitorSpec {
            name: "xtalk_bottom".into(),
            kind: MonitorKind::Modal {
                port: 3,
                mode: 0,
                direction: Sign::Minus,
            },
        },
        MonitorSpec {
            name: "rad".into(),
            kind: MonitorKind::Residual {
                subtract: vec![
                    "trans".into(),
                    "refl".into(),
                    "xtalk_top".into(),
                    "xtalk_bottom".into(),
                ],
            },
        },
    ];
    let excitations = vec![Excitation {
        name: "fwd".into(),
        source_port: 0,
        source_mode: 0,
        source_direction: Sign::Plus,
        monitors,
    }];
    let objective = ObjectiveSpec {
        main: MainObjective::MaximizePower {
            excitation: 0,
            monitor: "trans".into(),
        },
        constraints: vec![
            Constraint {
                excitation: 0,
                monitor: "trans".into(),
                bound: Bound::AtLeast(0.9),
                weight: 1.0,
            },
            Constraint {
                excitation: 0,
                monitor: "refl".into(),
                bound: Bound::AtMost(0.05),
                weight: 0.5,
            },
            Constraint {
                excitation: 0,
                monitor: "xtalk_top".into(),
                bound: Bound::AtMost(0.02),
                weight: 0.5,
            },
            Constraint {
                excitation: 0,
                monitor: "xtalk_bottom".into(),
                bound: Bound::AtMost(0.02),
                weight: 0.5,
            },
        ],
    };
    let seed = Geometry::new()
        .with(Shape::Segment {
            x0: 0.0,
            y0: 0.7,
            x1: 1.4,
            y1: 0.7,
            half_width: 0.2,
        })
        .with(Shape::Segment {
            x0: 0.7,
            y0: 0.0,
            x1: 0.7,
            y1: 1.4,
            half_width: 0.2,
        });
    DeviceProblem {
        name: "crossing".into(),
        grid,
        omega: om,
        background_solid: solid,
        design_origin: (26, 26),
        design_shape: (28, 28),
        ports,
        excitations,
        objective,
        seed,
        mode_count: 1,
    }
}

/// Builds the optical-isolator benchmark (TM1 → TM3 mode conversion with
/// backward radiation).
pub fn isolator() -> DeviceProblem {
    let grid = SimGrid::new(92, 80, DX, NPML);
    let om = omega();
    let mut solid = Array2::zeros(80, 92);
    // 1.5 µm multimode guide through the whole domain (outside the design
    // region, whose cells override anyway).
    strip_y(&mut solid, 25, 55, 0, 92);
    let ports = vec![
        Port::new("in", Axis::X, 16, 14, 66),     // 0: fwd source plane
        Port::new("out", Axis::X, 75, 14, 66),    // 1: bwd source / fwd trans plane
        Port::new("refl_f", Axis::X, 13, 14, 66), // 2: fwd reflection plane
        Port::new("leak_b", Axis::X, 13, 14, 66), // 3: bwd leak plane (−x)
        Port::new("refl_b", Axis::X, 78, 14, 66), // 4: bwd reflection plane (+x)
    ];
    let fwd_monitors = vec![
        MonitorSpec {
            name: "trans3".into(),
            kind: MonitorKind::Modal {
                port: 1,
                mode: 2,
                direction: Sign::Plus,
            },
        },
        MonitorSpec {
            name: "trans1".into(),
            kind: MonitorKind::Modal {
                port: 1,
                mode: 0,
                direction: Sign::Plus,
            },
        },
        MonitorSpec {
            name: "refl".into(),
            kind: MonitorKind::Modal {
                port: 2,
                mode: 0,
                direction: Sign::Minus,
            },
        },
        MonitorSpec {
            name: "rad".into(),
            kind: MonitorKind::Residual {
                subtract: vec!["trans3".into(), "trans1".into(), "refl".into()],
            },
        },
    ];
    let bwd_monitors = vec![
        MonitorSpec {
            name: "leak0".into(),
            kind: MonitorKind::Modal {
                port: 3,
                mode: 0,
                direction: Sign::Minus,
            },
        },
        MonitorSpec {
            name: "leak2".into(),
            kind: MonitorKind::Modal {
                port: 3,
                mode: 2,
                direction: Sign::Minus,
            },
        },
        MonitorSpec {
            name: "reflb".into(),
            kind: MonitorKind::Modal {
                port: 4,
                mode: 0,
                direction: Sign::Plus,
            },
        },
        MonitorSpec {
            name: "radb".into(),
            kind: MonitorKind::Residual {
                subtract: vec!["leak0".into(), "leak2".into(), "reflb".into()],
            },
        },
    ];
    let excitations = vec![
        Excitation {
            name: "fwd".into(),
            source_port: 0,
            source_mode: 0,
            source_direction: Sign::Plus,
            monitors: fwd_monitors,
        },
        Excitation {
            name: "bwd".into(),
            source_port: 1,
            source_mode: 0,
            source_direction: Sign::Minus,
            monitors: bwd_monitors,
        },
    ];
    let objective = ObjectiveSpec {
        main: MainObjective::MinimizeContrast {
            fwd: (0, "trans3".into()),
            bwd: vec![(1, "leak0".into()), (1, "leak2".into())],
        },
        constraints: vec![
            Constraint {
                excitation: 0,
                monitor: "trans3".into(),
                bound: Bound::AtLeast(0.8),
                weight: 1.0,
            },
            Constraint {
                excitation: 0,
                monitor: "refl".into(),
                bound: Bound::AtMost(0.1),
                weight: 0.5,
            },
            Constraint {
                excitation: 0,
                monitor: "trans1".into(),
                bound: Bound::AtMost(0.1),
                weight: 0.3,
            },
            Constraint {
                excitation: 1,
                monitor: "radb".into(),
                bound: Bound::AtLeast(0.9),
                weight: 1.0,
            },
        ],
    };
    // Design region: 2.0 × 1.8 µm (ix 26..66, iy 22..58). The seed keeps
    // the multimode guide through the region, with a gentle taper to seed
    // mode mixing.
    let seed = Geometry::new()
        .with(Shape::Rect {
            x0: 0.0,
            y0: 0.15,
            x1: 2.0,
            y1: 1.65,
        })
        .with(Shape::TaperX {
            x0: 0.0,
            x1: 2.0,
            cy: 0.9,
            hw0: 0.75,
            hw1: 0.3,
        });
    DeviceProblem {
        name: "isolator".into(),
        grid,
        omega: om,
        background_solid: solid,
        design_origin: (22, 26),
        design_shape: (36, 40),
        ports,
        excitations,
        objective,
        seed,
        mode_count: 3,
    }
}

/// All three benchmarks in paper order.
pub fn all_benchmarks() -> Vec<DeviceProblem> {
    vec![crossing(), bending(), isolator()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_construct() {
        for p in all_benchmarks() {
            assert!(!p.ports.is_empty());
            assert!(!p.excitations.is_empty());
            assert_eq!(p.background_solid.shape(), (p.grid.ny, p.grid.nx));
        }
    }

    #[test]
    fn design_regions_inside_interior() {
        for p in all_benchmarks() {
            let (oy, ox) = p.design_origin;
            let (h, w) = p.design_shape;
            assert!(
                oy >= p.grid.npml && oy + h <= p.grid.ny - p.grid.npml,
                "{}",
                p.name
            );
            assert!(
                ox >= p.grid.npml && ox + w <= p.grid.nx - p.grid.npml,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn ports_outside_design_region() {
        for p in all_benchmarks() {
            for port in &p.ports {
                let (oy, ox) = p.design_origin;
                let (h, w) = p.design_shape;
                let clear = match port.axis {
                    Axis::X => port.plane < ox.saturating_sub(1) || port.plane > ox + w,
                    Axis::Y => port.plane < oy.saturating_sub(1) || port.plane > oy + h,
                };
                assert!(
                    clear,
                    "{}: port {} intersects design region",
                    p.name, port.name
                );
            }
        }
    }

    #[test]
    fn monitors_reference_valid_ports() {
        for p in all_benchmarks() {
            for exc in &p.excitations {
                assert!(exc.source_port < p.ports.len());
                for m in &exc.monitors {
                    if let MonitorKind::Modal { port, mode, .. } = &m.kind {
                        assert!(*port < p.ports.len(), "{}: {}", p.name, m.name);
                        assert!(*mode < p.mode_count);
                    }
                }
            }
        }
    }

    #[test]
    fn residuals_subtract_existing_monitors() {
        for p in all_benchmarks() {
            for exc in &p.excitations {
                let names: Vec<&str> = exc.monitors.iter().map(|m| m.name.as_str()).collect();
                for m in &exc.monitors {
                    if let MonitorKind::Residual { subtract } = &m.kind {
                        for s in subtract {
                            assert!(names.contains(&s.as_str()), "{}: {}", p.name, s);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn seeds_connect_ports() {
        // The bending seed must be solid at the design-region entry points.
        let p = bending();
        assert!(p.seed.contains(0.05, 0.7), "left entry");
        assert!(p.seed.contains(0.7, 1.35), "top exit");
        assert!(!p.seed.contains(1.35, 0.05), "corner stays void");
        let c = crossing();
        assert!(c.seed.contains(0.05, 0.7) && c.seed.contains(1.35, 0.7));
        assert!(c.seed.contains(0.7, 0.05) && c.seed.contains(0.7, 1.35));
        let iso = isolator();
        assert!(iso.seed.contains(0.05, 0.9) && iso.seed.contains(1.95, 0.9));
    }

    #[test]
    fn design_region_membership() {
        let p = bending();
        assert!(p.in_design_region(26, 26));
        assert!(p.in_design_region(53, 53));
        assert!(!p.in_design_region(54, 53));
        assert!(!p.in_design_region(10, 10));
        assert_eq!(p.design_size(), (1.4000000000000001, 1.4000000000000001));
    }

    #[test]
    fn isolator_guide_is_multimode() {
        let p = isolator();
        let modes = p.ports[0].solve_modes(
            &p.grid,
            &p.background_solid.map(|&s| 1.0 + 11.11 * s),
            p.omega,
            3,
        );
        assert!(
            modes.len() >= 3,
            "need ≥3 guided modes, got {}",
            modes.len()
        );
    }
}
