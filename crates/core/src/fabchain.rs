//! The compound differentiable fabrication chain `T_t ∘ E_η ∘ L_l ∘ P`.
//!
//! This module wires the paper's Eq. (1) together: a design-region density
//! ("mask") goes through lithography, threshold etching and temperature
//! scaling to produce the permittivity map the FDFD solver sees. Every
//! stage exposes a vector–Jacobian product, so the adjoint field gradient
//! `∂F/∂ε` flows all the way back to the mask (and, for the worst-case
//! corner search, to the variation parameters `t` and `ξ`).

use boson_fab::{hard_threshold, TemperatureModel};
use boson_fab::{EoleField, EtchProjection, VariationCorner};
use boson_litho::model::AerialImage;
use boson_litho::LithoModel;
use boson_num::Array2;

/// Relative permittivity of the void (air cladding).
pub const EPS_VOID: f64 = 1.0;

/// The fabrication model stack over a fixed design region.
#[derive(Debug, Clone)]
pub struct FabChain {
    litho: LithoModel,
    etch: EtchProjection,
    eole: EoleField,
}

/// Saved intermediates of one forward pass (required by the backward
/// pass).
#[derive(Debug, Clone)]
pub struct FabForward {
    /// The input mask (copy).
    pub mask: Array2<f64>,
    /// Aerial image with per-source amplitudes.
    pub aerial: AerialImage,
    /// Realised threshold field.
    pub eta: Array2<f64>,
    /// Post-etch density in the design region.
    pub rho_fab: Array2<f64>,
    /// Whether the hard threshold was used (no gradients available).
    pub hard: bool,
}

impl FabChain {
    /// Builds the chain for a `rows × cols` design region at pitch `dx`.
    pub fn new(litho: LithoModel, etch: EtchProjection, eole: EoleField) -> Self {
        Self { litho, etch, eole }
    }

    /// The lithography model.
    pub fn litho(&self) -> &LithoModel {
        &self.litho
    }

    /// The etch projection (smoothed).
    pub fn etch(&self) -> &EtchProjection {
        &self.etch
    }

    /// The EOLE threshold field.
    pub fn eole(&self) -> &EoleField {
        &self.eole
    }

    /// Runs the fabrication model on `mask` under `corner`.
    ///
    /// With `hard = true` the exact binary threshold is used (for honest
    /// post-fab evaluation); gradients are then unavailable.
    ///
    /// # Panics
    ///
    /// Panics if the mask shape disagrees with the models.
    pub fn forward(&self, mask: &Array2<f64>, corner: &VariationCorner, hard: bool) -> FabForward {
        self.forward_with_etch(mask, corner, hard, self.etch)
    }

    /// Like [`FabChain::forward`] but with an explicit etch projection,
    /// so the β sharpening schedule can vary per iteration without
    /// mutating the (thread-shared) chain. The matching backward passes
    /// are [`FabChain::vjp_mask_with_etch`] / [`FabChain::vjp_xi_with_etch`]
    /// — always pair them with the etch used forward.
    ///
    /// # Panics
    ///
    /// Panics if the mask shape disagrees with the models.
    pub fn forward_with_etch(
        &self,
        mask: &Array2<f64>,
        corner: &VariationCorner,
        hard: bool,
        etch: EtchProjection,
    ) -> FabForward {
        let aerial = self.litho.aerial_image(mask, corner.litho);
        let xi = if corner.xi.is_empty() {
            vec![0.0; self.eole.terms()]
        } else {
            assert_eq!(corner.xi.len(), self.eole.terms(), "xi length mismatch");
            corner.xi.clone()
        };
        let eta = self.eole.realise(&xi, corner.eta_shift);
        let rho_fab = if hard {
            hard_threshold(&aerial.intensity, &eta)
        } else {
            etch.project_image(&aerial.intensity, &eta)
        };
        FabForward {
            mask: mask.clone(),
            aerial,
            eta,
            rho_fab,
            hard,
        }
    }

    /// Back-propagates `v = ∂L/∂ρ_fab` to the mask: `∂L/∂mask`.
    ///
    /// # Panics
    ///
    /// Panics if the forward pass was run with `hard = true`.
    pub fn vjp_mask(&self, fwd: &FabForward, v: &Array2<f64>) -> Array2<f64> {
        self.vjp_mask_with_etch(fwd, v, self.etch)
    }

    /// Backward pass matching [`FabChain::forward_with_etch`].
    ///
    /// # Panics
    ///
    /// Panics if the forward pass was run with `hard = true`.
    pub fn vjp_mask_with_etch(
        &self,
        fwd: &FabForward,
        v: &Array2<f64>,
        etch: EtchProjection,
    ) -> Array2<f64> {
        assert!(!fwd.hard, "no gradients through the hard threshold");
        let v_intensity = etch.vjp_intensity(&fwd.aerial.intensity, &fwd.eta, v);
        self.litho.vjp(&fwd.aerial, &v_intensity)
    }

    /// Back-propagates `v = ∂L/∂ρ_fab` to the EOLE weights:
    /// `∂L/∂ξ` (used by the worst-case corner search).
    ///
    /// # Panics
    ///
    /// Panics if the forward pass was run with `hard = true`.
    pub fn vjp_xi(&self, fwd: &FabForward, v: &Array2<f64>) -> Vec<f64> {
        self.vjp_xi_with_etch(fwd, v, self.etch)
    }

    /// EOLE-weight backward pass matching [`FabChain::forward_with_etch`].
    ///
    /// # Panics
    ///
    /// Panics if the forward pass was run with `hard = true`.
    pub fn vjp_xi_with_etch(
        &self,
        fwd: &FabForward,
        v: &Array2<f64>,
        etch: EtchProjection,
    ) -> Vec<f64> {
        assert!(!fwd.hard, "no gradients through the hard threshold");
        let v_eta = etch.vjp_eta(&fwd.aerial.intensity, &fwd.eta, v);
        self.eole.grad_xi(&v_eta)
    }
}

/// Assembles the full simulation permittivity: the temperature-scaled
/// background with the design-region density pasted in.
///
/// `background_solid` marks cells that are silicon outside the design
/// region (waveguides); inside the design region the density `rho`
/// interpolates between void and silicon:
/// `ε = ε_v + (ε_Si(t) − ε_v)·ρ`.
///
/// # Panics
///
/// Panics if the design region does not fit inside the background.
pub fn assemble_eps(
    background_solid: &Array2<f64>,
    design_origin: (usize, usize),
    rho: &Array2<f64>,
    temperature: f64,
) -> Array2<f64> {
    let eps_si = TemperatureModel::eps_si(temperature);
    let (by, bx) = background_solid.shape();
    let (dr, dc) = rho.shape();
    let (oy, ox) = design_origin;
    assert!(
        oy + dr <= by && ox + dc <= bx,
        "design region out of bounds"
    );
    let mut eps = background_solid.map(|&s| EPS_VOID + (eps_si - EPS_VOID) * s);
    for r in 0..dr {
        for c in 0..dc {
            eps[(oy + r, ox + c)] = EPS_VOID + (eps_si - EPS_VOID) * rho[(r, c)];
        }
    }
    eps
}

/// Extracts `∂L/∂ρ` over the design region from a full-grid `∂L/∂ε`:
/// the chain factor is `∂ε/∂ρ = ε_Si(t) − ε_v`.
pub fn grad_eps_to_rho(
    grad_eps: &Array2<f64>,
    design_origin: (usize, usize),
    design_shape: (usize, usize),
    temperature: f64,
) -> Array2<f64> {
    let scale = TemperatureModel::eps_si(temperature) - EPS_VOID;
    let (oy, ox) = design_origin;
    Array2::from_fn(design_shape.0, design_shape.1, |r, c| {
        grad_eps[(oy + r, ox + c)] * scale
    })
}

/// Total derivative `dL/dt` through the permittivity's temperature
/// dependence: solid background cells carry weight 1, design cells carry
/// their density.
pub fn grad_temperature(
    grad_eps: &Array2<f64>,
    background_solid: &Array2<f64>,
    design_origin: (usize, usize),
    rho: &Array2<f64>,
    temperature: f64,
) -> f64 {
    let de_dt = TemperatureModel::d_eps_si_dt(temperature);
    let (oy, ox) = design_origin;
    let (dr, dc) = rho.shape();
    let mut total = 0.0;
    for ((r, c), g) in grad_eps.indexed_iter() {
        let in_design = r >= oy && r < oy + dr && c >= ox && c < ox + dc;
        let solid_frac = if in_design {
            rho[(r - oy, c - ox)]
        } else {
            background_solid[(r, c)]
        };
        total += g * solid_frac * de_dt;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use boson_fab::{EoleParams, VariationSpace};
    use boson_litho::{LithoConfig, LithoCorner};

    fn chain(n: usize) -> FabChain {
        FabChain::new(
            LithoModel::new(n, n, 0.05, LithoConfig::default()),
            EtchProjection::new(15.0),
            EoleField::new(n, n, 0.05, EoleParams::default()),
        )
    }

    fn strip_mask(n: usize) -> Array2<f64> {
        Array2::from_fn(n, n, |r, _| if r.abs_diff(n / 2) <= 4 { 1.0 } else { 0.0 })
    }

    #[test]
    fn forward_produces_bounded_density() {
        let ch = chain(24);
        let out = ch.forward(&strip_mask(24), &VariationCorner::nominal(), false);
        // Gibbs ringing in the aerial image can push the smoothed
        // projection a few percent past [0,1]; the hard threshold used for
        // evaluation is exactly binary.
        for v in out.rho_fab.as_slice() {
            assert!(*v >= -0.1 && *v <= 1.1, "density {v} far outside range");
        }
        // The strip survives fabrication: centre is solid, edge void.
        assert!(
            out.rho_fab[(12, 12)] > 0.7,
            "centre: {}",
            out.rho_fab[(12, 12)]
        );
        assert!(out.rho_fab[(2, 12)] < 0.2, "edge: {}", out.rho_fab[(2, 12)]);
    }

    #[test]
    fn hard_forward_is_binary() {
        let ch = chain(24);
        let out = ch.forward(&strip_mask(24), &VariationCorner::nominal(), true);
        for v in out.rho_fab.as_slice() {
            assert!(*v == 0.0 || *v == 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "hard threshold")]
    fn hard_forward_rejects_vjp() {
        let ch = chain(16);
        let out = ch.forward(&strip_mask(16), &VariationCorner::nominal(), true);
        let _ = ch.vjp_mask(&out, &Array2::zeros(16, 16));
    }

    #[test]
    fn litho_corners_erode_and_dilate() {
        let ch = chain(32);
        let mask = strip_mask(32);
        let nom = ch.forward(&mask, &VariationCorner::nominal(), false);
        let min_corner = VariationCorner {
            litho: LithoCorner::Min,
            ..VariationCorner::nominal()
        };
        let max_corner = VariationCorner {
            litho: LithoCorner::Max,
            ..VariationCorner::nominal()
        };
        // Soft projection: the developed area responds continuously to
        // dose (hard thresholds only move in whole-pixel steps).
        let emin = ch.forward(&mask, &min_corner, false);
        let emax = ch.forward(&mask, &max_corner, false);
        let area = |a: &Array2<f64>| a.sum();
        assert!(
            area(&emin.rho_fab) < area(&nom.rho_fab),
            "under-dose must erode: {} !< {}",
            area(&emin.rho_fab),
            area(&nom.rho_fab)
        );
        assert!(
            area(&emax.rho_fab) > area(&nom.rho_fab),
            "over-dose must dilate: {} !> {}",
            area(&emax.rho_fab),
            area(&nom.rho_fab)
        );
    }

    #[test]
    fn full_chain_vjp_matches_finite_difference() {
        let n = 20;
        let ch = chain(n);
        let mask = strip_mask(n).map(|&v| 0.2 + 0.6 * v); // interior values
        let corner = VariationCorner::nominal();
        let w = Array2::from_fn(n, n, |r, c| ((r * 3 + c * 5) % 7) as f64 * 0.1 - 0.3);
        let loss = |m: &Array2<f64>| -> f64 {
            ch.forward(m, &corner, false)
                .rho_fab
                .zip_map(&w, |a, b| a * b)
                .sum()
        };
        let fwd = ch.forward(&mask, &corner, false);
        let grad = ch.vjp_mask(&fwd, &w);
        let h = 1e-6;
        for &(r, c) in &[(10usize, 10usize), (8, 12), (12, 5)] {
            let mut mp = mask.clone();
            mp[(r, c)] += h;
            let lp = loss(&mp);
            mp[(r, c)] -= 2.0 * h;
            let lm = loss(&mp);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grad[(r, c)]).abs() < 1e-6 + 1e-4 * fd.abs(),
                "chain vjp at ({r},{c}): fd={fd} ad={}",
                grad[(r, c)]
            );
        }
    }

    #[test]
    fn xi_vjp_matches_finite_difference() {
        let n = 20;
        let ch = chain(n);
        let mask = strip_mask(n);
        let space = VariationSpace::default();
        let mut corner = VariationCorner::nominal();
        corner.xi = vec![0.1; ch.eole().terms()];
        let _ = &space;
        let w = Array2::from_fn(n, n, |r, c| ((r + c) % 3) as f64 * 0.2 - 0.2);
        let fwd = ch.forward(&mask, &corner, false);
        let gxi = ch.vjp_xi(&fwd, &w);
        let h = 1e-6;
        let loss = |xi: &[f64]| -> f64 {
            let mut c2 = corner.clone();
            c2.xi = xi.to_vec();
            ch.forward(&mask, &c2, false)
                .rho_fab
                .zip_map(&w, |a, b| a * b)
                .sum()
        };
        for k in [0usize, ch.eole().terms() - 1] {
            let mut xp = corner.xi.clone();
            xp[k] += h;
            let lp = loss(&xp);
            xp[k] -= 2.0 * h;
            let lm = loss(&xp);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - gxi[k]).abs() < 1e-6 + 1e-4 * fd.abs(),
                "xi vjp at {k}: fd={fd} ad={}",
                gxi[k]
            );
        }
    }

    #[test]
    fn assemble_eps_mixes_materials() {
        let bg = Array2::from_fn(10, 10, |r, _| if r == 5 { 1.0 } else { 0.0 });
        let rho = Array2::filled(4, 4, 0.5);
        let eps = assemble_eps(&bg, (3, 3), &rho, 300.0);
        let esi = TemperatureModel::eps_si(300.0);
        assert!((eps[(5, 0)] - esi).abs() < 1e-12, "waveguide cell");
        assert!((eps[(0, 0)] - 1.0).abs() < 1e-12, "void cell");
        assert!(
            (eps[(4, 4)] - (1.0 + 0.5 * (esi - 1.0))).abs() < 1e-12,
            "design cell"
        );
    }

    #[test]
    fn temperature_gradient_matches_finite_difference() {
        let bg = Array2::from_fn(12, 12, |r, _| if (5..7).contains(&r) { 1.0 } else { 0.0 });
        let rho = Array2::from_fn(4, 4, |r, c| ((r + c) % 2) as f64);
        let g = Array2::from_fn(12, 12, |r, c| ((r * 2 + c) % 5) as f64 * 0.1 - 0.2);
        let t = 320.0;
        let analytic = grad_temperature(&g, &bg, (4, 4), &rho, t);
        let h = 1e-3;
        let loss = |tt: f64| -> f64 {
            assemble_eps(&bg, (4, 4), &rho, tt)
                .zip_map(&g, |a, b| a * b)
                .sum()
        };
        let fd = (loss(t + h) - loss(t - h)) / (2.0 * h);
        assert!(
            (fd - analytic).abs() < 1e-8 * (1.0 + fd.abs()),
            "fd={fd} ad={analytic}"
        );
    }
}
