//! Wavelength-sweep evaluation of finished designs.
//!
//! The paper optimises at a single centre wavelength λ_c but frames
//! operation variation broadly; a natural robustness axis for a deployed
//! device is its spectral bandwidth. Since the spectral extension,
//! [`CompiledProblem`] carries per-ω mode calibrations
//! ([`CompiledProblem::compile_spectral`]), so a finished-design sweep
//! over a spectrally-compiled problem costs **K factor-and-solves** — no
//! per-wavelength recompiles, no per-wavelength fabrication re-runs (the
//! fabricated permittivity is ω-independent and built once). A problem
//! compiled for a different axis is recalibrated once, after which the
//! sweep itself still runs at K solves.

use crate::compiled::{CompiledProblem, EvalScratch};
use crate::eval::binarize_mask;
use crate::fabchain::{assemble_eps, FabChain};
use boson_fab::{SpectralAxis, VariationCorner};
use boson_num::Array2;
use serde::{Deserialize, Serialize};

/// One sample of a wavelength sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumPoint {
    /// Wavelength (µm).
    pub lambda: f64,
    /// Figure of merit at this wavelength (nominal fabrication corner,
    /// hard etch).
    pub fom: f64,
}

/// Evaluates `mask` across `count` wavelengths spanning
/// `lambda_c ± half_span` at the nominal fabrication corner.
///
/// If `compiled` already carries the matching spectral calibration (it
/// was built with [`CompiledProblem::compile_spectral`] on the same
/// axis), the sweep costs exactly `count` factor-and-solves. Otherwise
/// the per-ω calibration is rebuilt once here — still a single compile,
/// not one per wavelength.
///
/// # Panics
///
/// Panics if `count < 2` or the sweep leaves the guided regime of a port
/// (a port losing all guided modes).
pub fn wavelength_sweep(
    compiled: &CompiledProblem,
    chain: &FabChain,
    mask: &Array2<f64>,
    half_span: f64,
    count: usize,
) -> Vec<SpectrumPoint> {
    assert!(count >= 2, "need at least two sweep points");
    let axis = SpectralAxis::around(half_span, count);
    let owned;
    let spectral: &CompiledProblem = if *compiled.spectral_axis() == axis {
        compiled
    } else {
        owned = CompiledProblem::compile_spectral(compiled.problem().clone(), axis)
            .expect("sweep recalibration failed");
        &owned
    };
    sweep_compiled(spectral, chain, mask)
}

/// The K-solve sweep core: evaluates `mask` at **every** wavelength a
/// spectrally-compiled problem carries, reusing its per-ω calibration.
/// The fabricated permittivity (nominal corner, hard etch) is built once
/// — it does not depend on ω — and each wavelength then costs one
/// factorisation plus the excitation solves, sharing one scratch whose
/// per-ω geometry caches stay resident across the sweep.
pub fn sweep_compiled(
    spectral: &CompiledProblem,
    chain: &FabChain,
    mask: &Array2<f64>,
) -> Vec<SpectrumPoint> {
    let problem = spectral.problem();
    let lambda_c = 2.0 * std::f64::consts::PI / problem.omega;
    let lambdas = spectral.spectral_axis().lambdas(lambda_c);
    let corner = VariationCorner::nominal();
    let fwd = chain.forward(&binarize_mask(mask), &corner, true);
    let eps = assemble_eps(
        &problem.background_solid,
        problem.design_origin,
        &fwd.rho_fab,
        corner.temperature,
    );
    let spec = problem.objective.clone();
    let mut scratch = EvalScratch::new();
    lambdas
        .into_iter()
        .enumerate()
        .map(|(oi, lambda)| {
            let ev = spectral
                .evaluate_eps_omega(&eps, false, &spec, &mut scratch, oi)
                .expect("sweep evaluation failed");
            SpectrumPoint {
                lambda,
                fom: ev.fom,
            }
        })
        .collect()
}

/// Bandwidth summary: the contiguous wavelength span around the centre
/// where the FoM stays within `tolerance` of the centre value (for
/// higher-is-better FoMs) or below `tolerance × centre` (contrast).
///
/// The centre is the sample whose wavelength is closest to the midpoint
/// of the sweep (even-length sweeps have no true centre index; ties go to
/// the lower sample). A centre already below the threshold has no
/// in-tolerance span at all and returns `0.0`.
pub fn bandwidth_within(points: &[SpectrumPoint], centre_fom: f64, tolerance: f64) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let threshold = centre_fom * (1.0 - tolerance);
    let mid = 0.5 * (points[0].lambda + points[points.len() - 1].lambda);
    let centre_idx = points
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            (a.lambda - mid)
                .abs()
                .partial_cmp(&(b.lambda - mid).abs())
                .expect("finite wavelengths")
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    if points[centre_idx].fom < threshold {
        return 0.0;
    }
    let mut lo = centre_idx;
    let mut hi = centre_idx;
    while lo > 0 && points[lo - 1].fom >= threshold {
        lo -= 1;
    }
    while hi + 1 < points.len() && points[hi + 1].fom >= threshold {
        hi += 1;
    }
    points[hi].lambda - points[lo].lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::standard_chain;
    use crate::problem::bending;
    use boson_param::{LevelSetConfig, LevelSetParam, Parameterization};

    #[test]
    fn sweep_produces_monotone_wavelengths() {
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let p = compiled.problem().clone();
        let chain = standard_chain(&p);
        let ls = LevelSetParam::new(
            p.design_shape.0,
            p.design_shape.1,
            p.grid.dx,
            LevelSetConfig::default(),
        );
        let mask = ls.forward(&ls.theta_from_geometry(&p.seed));
        let sweep = wavelength_sweep(&compiled, &chain, &mask, 0.02, 3);
        assert_eq!(sweep.len(), 3);
        assert!(sweep[0].lambda < sweep[1].lambda && sweep[1].lambda < sweep[2].lambda);
        // Centre point is the design wavelength.
        assert!((sweep[1].lambda - 1.55).abs() < 1e-9);
        for pt in &sweep {
            assert!(pt.fom.is_finite() && pt.fom >= 0.0);
        }
    }

    #[test]
    fn bandwidth_helper_counts_contiguous_span() {
        let pts: Vec<SpectrumPoint> = [0.2, 0.8, 0.9, 1.0, 0.95, 0.5, 0.1]
            .iter()
            .enumerate()
            .map(|(i, &f)| SpectrumPoint {
                lambda: 1.5 + i as f64 * 0.01,
                fom: f,
            })
            .collect();
        // Tolerance 20 % of centre (1.0): threshold 0.8 keeps indices 1..=4.
        let bw = bandwidth_within(&pts, 1.0, 0.2);
        assert!((bw - 0.03).abs() < 1e-12, "bandwidth {bw}");
        // Zero tolerance keeps only the centre.
        let bw0 = bandwidth_within(&pts, 1.0, 0.0);
        assert!(bw0 <= 0.011, "bandwidth {bw0}");
    }

    #[test]
    fn sweep_on_spectrally_compiled_problem_matches_recalibrated_sweep() {
        // A problem compiled with the matching axis reuses its per-ω
        // calibration (K solves, no recompiles); a single-ω compiled
        // problem recalibrates once. Both paths must agree exactly.
        let p = bending();
        let chain = standard_chain(&p);
        let ls = LevelSetParam::new(
            p.design_shape.0,
            p.design_shape.1,
            p.grid.dx,
            LevelSetConfig::default(),
        );
        let mask = ls.forward(&ls.theta_from_geometry(&p.seed));
        let axis = boson_fab::SpectralAxis::around(0.02, 3);
        let single = CompiledProblem::compile(p.clone()).unwrap();
        let spectral = CompiledProblem::compile_spectral(p, axis).unwrap();
        assert_eq!(spectral.omega_count(), 3);
        let a = wavelength_sweep(&single, &chain, &mask, 0.02, 3);
        let b = wavelength_sweep(&spectral, &chain, &mask, 0.02, 3);
        assert_eq!(a, b);
        // And the direct K-solve core agrees too.
        let c = sweep_compiled(&spectral, &chain, &mask);
        assert_eq!(b, c);
        // Detuning moves the FoM: the sweep is not a constant.
        assert!(a.iter().any(|pt| (pt.fom - a[1].fom).abs() > 1e-9));
    }

    #[test]
    fn bandwidth_even_length_sweep_uses_nearest_centre_sample() {
        // Six points: the midpoint falls between indices 2 and 3; the
        // centre must be index 2 (ties to the lower sample), not the
        // right-biased len()/2 = 3.
        let pts: Vec<SpectrumPoint> = [0.1, 0.9, 1.0, 0.2, 0.2, 0.2]
            .iter()
            .enumerate()
            .map(|(i, &f)| SpectrumPoint {
                lambda: 1.5 + i as f64 * 0.01,
                fom: f,
            })
            .collect();
        // Centre (idx 2, fom 1.0) and its left neighbour pass the 0.8
        // threshold; idx 3 (fom 0.2) would have produced a zero span
        // under the old centre choice.
        let bw = bandwidth_within(&pts, 1.0, 0.2);
        assert!((bw - 0.01).abs() < 1e-12, "bandwidth {bw}");
    }

    #[test]
    fn bandwidth_is_zero_when_centre_is_below_threshold() {
        // A dip exactly at the centre: neighbours above threshold must
        // not be counted into a span the centre itself fails.
        let pts: Vec<SpectrumPoint> = [1.0, 1.0, 0.5, 1.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &f)| SpectrumPoint {
                lambda: 1.5 + i as f64 * 0.01,
                fom: f,
            })
            .collect();
        assert_eq!(bandwidth_within(&pts, 1.0, 0.2), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_sweep_panics() {
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let p = compiled.problem().clone();
        let chain = standard_chain(&p);
        let mask = boson_num::Array2::zeros(p.design_shape.0, p.design_shape.1);
        let _ = wavelength_sweep(&compiled, &chain, &mask, 0.01, 1);
    }
}
