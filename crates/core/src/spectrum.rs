//! Wavelength-sweep evaluation of finished designs.
//!
//! The paper optimises at a single centre wavelength λ_c but frames
//! operation variation broadly; a natural robustness axis for a deployed
//! device is its spectral bandwidth. This module re-compiles a benchmark
//! at shifted wavelengths and evaluates a fabricated mask across the
//! sweep — the "extension/future-work" analysis BOSON-1 enables once the
//! fabrication model is differentiable and cheap to re-target.

use crate::compiled::CompiledProblem;
use crate::eval::binarize_mask;
use crate::fabchain::{assemble_eps, FabChain};
use boson_fab::VariationCorner;
use boson_num::Array2;
use serde::{Deserialize, Serialize};

/// One sample of a wavelength sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumPoint {
    /// Wavelength (µm).
    pub lambda: f64,
    /// Figure of merit at this wavelength (nominal fabrication corner,
    /// hard etch).
    pub fom: f64,
}

/// Evaluates `mask` across `count` wavelengths spanning
/// `lambda_c ± half_span` at the nominal fabrication corner.
///
/// Each wavelength requires recompiling the benchmark (modes and
/// calibration are wavelength-dependent), so the cost is
/// `count × (compile + evaluate)`.
///
/// # Panics
///
/// Panics if `count < 2` or the sweep leaves the guided regime of a port
/// (a port losing all guided modes).
pub fn wavelength_sweep(
    compiled: &CompiledProblem,
    chain: &FabChain,
    mask: &Array2<f64>,
    half_span: f64,
    count: usize,
) -> Vec<SpectrumPoint> {
    assert!(count >= 2, "need at least two sweep points");
    let base = compiled.problem().clone();
    let lambda_c = 2.0 * std::f64::consts::PI / base.omega;
    let corner = VariationCorner::nominal();
    let fwd = chain.forward(&binarize_mask(mask), &corner, true);
    let mut out = Vec::with_capacity(count);
    for k in 0..count {
        let lambda = lambda_c - half_span + 2.0 * half_span * k as f64 / (count as f64 - 1.0);
        let mut problem = base.clone();
        problem.omega = 2.0 * std::f64::consts::PI / lambda;
        let c = CompiledProblem::compile(problem).expect("sweep recompile failed");
        let eps = assemble_eps(
            &c.problem().background_solid,
            c.problem().design_origin,
            &fwd.rho_fab,
            corner.temperature,
        );
        let ev = c
            .evaluate_eps(&eps, false)
            .expect("sweep evaluation failed");
        out.push(SpectrumPoint {
            lambda,
            fom: ev.fom,
        });
    }
    out
}

/// Bandwidth summary: the contiguous wavelength span around the centre
/// where the FoM stays within `tolerance` of the centre value (for
/// higher-is-better FoMs) or below `tolerance × centre` (contrast).
pub fn bandwidth_within(points: &[SpectrumPoint], centre_fom: f64, tolerance: f64) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let threshold = centre_fom * (1.0 - tolerance);
    let centre_idx = points.len() / 2;
    let mut lo = centre_idx;
    let mut hi = centre_idx;
    while lo > 0 && points[lo - 1].fom >= threshold {
        lo -= 1;
    }
    while hi + 1 < points.len() && points[hi + 1].fom >= threshold {
        hi += 1;
    }
    points[hi].lambda - points[lo].lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::standard_chain;
    use crate::problem::bending;
    use boson_param::{LevelSetConfig, LevelSetParam, Parameterization};

    #[test]
    fn sweep_produces_monotone_wavelengths() {
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let p = compiled.problem().clone();
        let chain = standard_chain(&p);
        let ls = LevelSetParam::new(
            p.design_shape.0,
            p.design_shape.1,
            p.grid.dx,
            LevelSetConfig::default(),
        );
        let mask = ls.forward(&ls.theta_from_geometry(&p.seed));
        let sweep = wavelength_sweep(&compiled, &chain, &mask, 0.02, 3);
        assert_eq!(sweep.len(), 3);
        assert!(sweep[0].lambda < sweep[1].lambda && sweep[1].lambda < sweep[2].lambda);
        // Centre point is the design wavelength.
        assert!((sweep[1].lambda - 1.55).abs() < 1e-9);
        for pt in &sweep {
            assert!(pt.fom.is_finite() && pt.fom >= 0.0);
        }
    }

    #[test]
    fn bandwidth_helper_counts_contiguous_span() {
        let pts: Vec<SpectrumPoint> = [0.2, 0.8, 0.9, 1.0, 0.95, 0.5, 0.1]
            .iter()
            .enumerate()
            .map(|(i, &f)| SpectrumPoint {
                lambda: 1.5 + i as f64 * 0.01,
                fom: f,
            })
            .collect();
        // Tolerance 20 % of centre (1.0): threshold 0.8 keeps indices 1..=4.
        let bw = bandwidth_within(&pts, 1.0, 0.2);
        assert!((bw - 0.03).abs() < 1e-12, "bandwidth {bw}");
        // Zero tolerance keeps only the centre.
        let bw0 = bandwidth_within(&pts, 1.0, 0.0);
        assert!(bw0 <= 0.011, "bandwidth {bw0}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_sweep_panics() {
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let p = compiled.problem().clone();
        let chain = standard_chain(&p);
        let mask = boson_num::Array2::zeros(p.design_shape.0, p.design_shape.1);
        let _ = wavelength_sweep(&compiled, &chain, &mask, 0.01, 1);
    }
}
