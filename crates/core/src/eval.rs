//! Post-fabrication evaluation (the numbers the paper's tables report).
//!
//! Two views of every design:
//!
//! * **pre-fab** — the design evaluated in the *method's own* model
//!   (no fabrication for non-fab-aware methods, nominal fabrication for
//!   fab-aware ones). This is the number to the left of the arrows in
//!   Tables I/III.
//! * **post-fab** — Monte-Carlo over the true variation distribution
//!   (random litho corner, temperature, EOLE η field) with the *hard*
//!   etch threshold: honest binary-device performance. This is the number
//!   to the right of the arrows.

use crate::compiled::CompiledProblem;
use crate::fabchain::{assemble_eps, FabChain};
use crate::objective::Readings;
use boson_fab::{VariationCorner, VariationSpace};
use boson_num::stats::Summary;
use boson_num::Array2;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Result of a Monte-Carlo post-fab evaluation.
#[derive(Debug, Clone)]
pub struct PostFabReport {
    /// Mean figure of merit over the samples.
    pub fom: Summary,
    /// Mean of every reading, keyed `"excitation/monitor"`.
    pub readings_mean: HashMap<String, f64>,
    /// Per-sample FoM values.
    pub samples: Vec<f64>,
}

/// Binarises a continuous mask at 0.5 (a real mask is binary).
pub fn binarize_mask(mask: &Array2<f64>) -> Array2<f64> {
    mask.map(|&v| if v > 0.5 { 1.0 } else { 0.0 })
}

/// Evaluates `mask` with no fabrication model at all (the "ideal" view of
/// Density/LS-style methods): the binarised mask *is* the device.
pub fn evaluate_ideal(compiled: &CompiledProblem, mask: &Array2<f64>) -> (f64, Readings) {
    let problem = compiled.problem();
    let rho = binarize_mask(mask);
    let eps = assemble_eps(
        &problem.background_solid,
        problem.design_origin,
        &rho,
        boson_fab::temperature::T_NOMINAL,
    );
    let ev = compiled
        .evaluate_eps(&eps, false)
        .expect("ideal evaluation failed");
    (ev.fom, ev.readings)
}

/// Evaluates `mask` through the *nominal* fabrication corner with the
/// hard etch threshold (a fab-aware method's own claimed performance).
pub fn evaluate_nominal_fab(
    compiled: &CompiledProblem,
    chain: &FabChain,
    mask: &Array2<f64>,
) -> (f64, Readings) {
    let problem = compiled.problem();
    let corner = VariationCorner::nominal();
    let fwd = chain.forward(&binarize_mask(mask), &corner, true);
    let eps = assemble_eps(
        &problem.background_solid,
        problem.design_origin,
        &fwd.rho_fab,
        corner.temperature,
    );
    let ev = compiled
        .evaluate_eps(&eps, false)
        .expect("nominal fab evaluation failed");
    (ev.fom, ev.readings)
}

/// Monte-Carlo post-fab evaluation: `samples` random variation draws,
/// hard etch threshold.
pub fn evaluate_post_fab(
    compiled: &CompiledProblem,
    chain: &FabChain,
    space: &VariationSpace,
    mask: &Array2<f64>,
    samples: usize,
    seed: u64,
) -> PostFabReport {
    let problem = compiled.problem();
    let binary = binarize_mask(mask);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut foms = Vec::with_capacity(samples);
    let mut sums: HashMap<String, f64> = HashMap::new();
    for _ in 0..samples {
        let corner = space.sample_random(&mut rng);
        let fwd = chain.forward(&binary, &corner, true);
        let eps = assemble_eps(
            &problem.background_solid,
            problem.design_origin,
            &fwd.rho_fab,
            corner.temperature,
        );
        let ev = compiled
            .evaluate_eps(&eps, false)
            .expect("MC evaluation failed");
        foms.push(ev.fom);
        for (ei, map) in ev.readings.iter().enumerate() {
            for (k, v) in map {
                *sums
                    .entry(format!("{}/{k}", problem.excitations[ei].name))
                    .or_default() += v;
            }
        }
    }
    let readings_mean = sums
        .into_iter()
        .map(|(k, v)| (k, v / samples as f64))
        .collect();
    PostFabReport {
        fom: Summary::from_samples(&foms),
        readings_mean,
        samples: foms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::bending;
    use boson_fab::{EoleField, EoleParams, EtchProjection};
    use boson_litho::{LithoConfig, LithoModel};
    use boson_param::sdf::Geometry;
    use boson_param::{LevelSetConfig, LevelSetParam, Parameterization};

    fn setup() -> (CompiledProblem, FabChain, VariationSpace, Array2<f64>) {
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let p = compiled.problem().clone();
        let (dr, dc) = p.design_shape;
        let chain = FabChain::new(
            LithoModel::new(dr, dc, p.grid.dx, LithoConfig::default()),
            EtchProjection::new(30.0),
            EoleField::new(dr, dc, p.grid.dx, EoleParams::default()),
        );
        let space = VariationSpace::default();
        let ls = LevelSetParam::new(dr, dc, p.grid.dx, LevelSetConfig::default());
        let seed: Geometry = p.seed.clone();
        let mask = ls.forward(&ls.theta_from_geometry(&seed));
        (compiled, chain, space, mask)
    }

    #[test]
    fn binarize_is_binary() {
        let m = Array2::from_fn(4, 4, |r, c| (r + c) as f64 / 6.0);
        let b = binarize_mask(&m);
        for v in b.as_slice() {
            assert!(*v == 0.0 || *v == 1.0);
        }
    }

    #[test]
    fn ideal_vs_fab_evaluations_differ() {
        let (compiled, chain, _space, mask) = setup();
        let (fom_ideal, _) = evaluate_ideal(&compiled, &mask);
        let (fom_fab, _) = evaluate_nominal_fab(&compiled, &chain, &mask);
        // The smooth arc survives fabrication decently — both are finite,
        // positive transmissions, but they are not identical.
        assert!(fom_ideal > 0.1);
        assert!(fom_fab > 0.05);
        assert!((fom_ideal - fom_fab).abs() > 1e-6);
    }

    #[test]
    fn post_fab_is_deterministic_per_seed() {
        let (compiled, chain, space, mask) = setup();
        let r1 = evaluate_post_fab(&compiled, &chain, &space, &mask, 3, 11);
        let r2 = evaluate_post_fab(&compiled, &chain, &space, &mask, 3, 11);
        assert_eq!(r1.samples, r2.samples);
        let r3 = evaluate_post_fab(&compiled, &chain, &space, &mask, 3, 12);
        assert_ne!(r1.samples, r3.samples);
    }

    #[test]
    fn post_fab_report_contains_readings() {
        let (compiled, chain, space, mask) = setup();
        let r = evaluate_post_fab(&compiled, &chain, &space, &mask, 2, 5);
        assert_eq!(r.fom.n, 2);
        assert!(r.readings_mean.contains_key("fwd/trans"));
        assert!(r.readings_mean.contains_key("fwd/refl"));
    }
}
