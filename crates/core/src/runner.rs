//! The BOSON-1 optimisation loop.
//!
//! One iteration of the full method:
//!
//! 1. materialise the density `ρ = P(θ)`;
//! 2. draw the variation corners (axial set; plus a worst-case corner
//!    from one gradient-ascent step on `(T, ξ)` at the nominal corner);
//! 3. for every corner, run the fabrication model and the FDFD forward +
//!    adjoint simulations *in parallel*, chaining the field gradient back
//!    through etch → litho → `ρ`;
//! 4. blend the fab-aware gradient with the unrestricted "tunnel"
//!    gradient according to the relaxation schedule `p`;
//! 5. back-propagate through the parameterisation and take an Adam step.
//!
//! Corner fan-out runs on a **persistent** [`WorkerPool`] whose worker
//! closures are built once per run and execute on the process-lifetime
//! `boson_num::pool` substrate: each worker owns an [`EvalScratch`] whose
//! factor/solve buffers are reused across *all* corners of *all*
//! iterations, so the steady-state solve path performs no heap allocation
//! and no thread spawning at all (the pool is built once per process). The β
//! sharpening schedule is threaded through as an explicit
//! [`EtchProjection`] job parameter instead of mutating the shared
//! [`FabChain`].
//!
//! Baselines reuse the same loop with features disabled (`fab_aware =
//! false`, sparse objective, nominal-only sampling, random init …), which
//! is exactly how the paper's ablation table is generated.

use crate::compiled::{CompiledProblem, CornerSolve, EvalScratch, RecycleConfig};
use crate::fabchain::{assemble_eps, grad_eps_to_rho, grad_temperature, FabChain};
use crate::objective::{ObjectiveSpec, Readings, SpectralAggregation};
use crate::optimizer::{Adam, AdamConfig};
use crate::pool::WorkerPool;
use crate::schedule::{BetaSchedule, RelaxationSchedule};
use crate::subspace::{ActiveSetRecord, SubspaceConfig, SubspaceScheduler, SweepPlan};
use boson_fab::{EtchProjection, SamplingStrategy, VariationCorner, VariationSpace};
use boson_fdfd::sim::SolverStrategy;
use boson_num::Array2;
use boson_param::Parameterization;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// How to initialise the latent variables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitKind {
    /// Light-concentrated seed from the problem's geometry (§III-D3).
    Seeded,
    /// Uniform random in `[-amplitude, amplitude]` — the ablation's
    /// "random init".
    Random {
        /// Half-width of the uniform distribution.
        amplitude: f64,
    },
}

/// Full runner configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Optimisation iterations.
    pub iterations: usize,
    /// Adam hyper-parameters.
    pub adam: AdamConfig,
    /// Variation sampling strategy.
    pub sampling: SamplingStrategy,
    /// Conditional subspace relaxation schedule.
    pub relaxation: RelaxationSchedule,
    /// Etch-projection sharpening (start, end β).
    pub beta_start: f64,
    /// Final β of the sharpening schedule.
    pub beta_end: f64,
    /// Keep the dense auxiliary objectives? (`false` = sparse baseline.)
    pub dense_objectives: bool,
    /// Optimise through the fabrication model? (`false` = free-space
    /// baseline à la Density/LS.)
    pub fab_aware: bool,
    /// Initialisation.
    pub init: InitKind,
    /// RNG seed (corner draws, random init).
    pub seed: u64,
    /// Worker-thread budget for the parallel stages (direct corner
    /// fan-out and the split fused preconditioner sweeps). Defaults to
    /// the `BOSON_THREADS` environment override when set, 8 otherwise —
    /// an invalid `BOSON_THREADS` value fails **loudly** (panic at
    /// config construction) rather than silently running serial; see
    /// [`boson_num::pool::env_threads`]. Worker count never changes
    /// results: every parallel decomposition in the stack is
    /// bit-identical at any thread count.
    pub threads: usize,
    /// Corner linear-solver strategy: direct per-corner factorisation or
    /// nominal-factor-preconditioned iteration with adaptive fallback.
    pub solver: SolverStrategy,
    /// How the per-wavelength objectives of one fabrication corner
    /// combine when the variation space carries `K > 1` wavelengths
    /// (a `K = 1` space makes both choices identical).
    pub spectral_agg: SpectralAggregation,
    /// Adaptive corner-subspace scheduling (see [`crate::subspace`]):
    /// when enabled, each robust iteration evaluates only the top-M
    /// importance-ranked (corner, ω) columns of the cross product, with
    /// periodic full-sweep refresh epochs. Disabled by default (every
    /// iteration sweeps the full product). Requires the
    /// preconditioned-iterative solver strategy — the partial product
    /// rides the fused lockstep batch.
    pub subspace: SubspaceConfig,
    /// Cross-iteration solver acceleration (see
    /// [`crate::compiled::RecycleConfig`]): per-(corner, ω) Krylov
    /// deflation stores recycled across epochs plus lagged
    /// drift-monitored nominal factors. Disabled by default —
    /// bit-identical to the eager pipeline. Only the
    /// preconditioned-iterative strategies use it (the direct fan-out
    /// has no shared factors and no iterative columns to recycle).
    pub recycle: RecycleConfig,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            iterations: 40,
            adam: AdamConfig::default(),
            sampling: SamplingStrategy::AxialPlusWorst,
            relaxation: RelaxationSchedule::over(20),
            beta_start: 10.0,
            beta_end: 40.0,
            dense_objectives: true,
            fab_aware: true,
            init: InitKind::Seeded,
            seed: 7,
            threads: boson_num::pool::env_threads().unwrap_or(8),
            solver: SolverStrategy::Direct,
            spectral_agg: SpectralAggregation::Mean,
            subspace: SubspaceConfig::default(),
            recycle: RecycleConfig::default(),
        }
    }
}

/// One trajectory sample (Fig. 5 data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index.
    pub iter: usize,
    /// Combined (robust) objective value.
    pub objective: f64,
    /// Nominal-corner figure of merit.
    pub fom_nominal: f64,
    /// Nominal-corner readings (fab-aware when available, otherwise the
    /// unrestricted model's own view).
    pub readings_nominal: Readings,
    /// Relaxation weight `p` used this iteration.
    pub p: f64,
    /// Active-set telemetry of the adaptive corner-subspace scheduler:
    /// how many (corner, ω) columns this iteration evaluated, out of how
    /// many, and whether it was a full-sweep refresh epoch. `None` when
    /// the scheduler is disabled (or the corner fan-out runs the direct
    /// strategy, which always sweeps fully).
    pub active_set: Option<ActiveSetRecord>,
    /// Linear-system factorisations this iteration performed (nominal
    /// refreshes, direct corners, fallbacks, the free term). The
    /// observable the lagged-nominal-factor policy is judged by: with
    /// lag armed, steady-state iterations refactor only on drift/age
    /// trips instead of once per ω per epoch.
    pub factorizations: usize,
    /// Mean BiCGSTAB iterations per iterative right-hand side across the
    /// corner fan-out (`0.0` when no iterative solves ran). The
    /// observable cross-iteration Krylov recycling is judged by.
    pub mean_bicgstab_iterations: f64,
}

/// Result of an optimisation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final latent variables.
    pub theta: Vec<f64>,
    /// Final mask `ρ = P(θ)` (continuous, pre-binarisation).
    pub mask: Array2<f64>,
    /// Per-iteration trace.
    pub trajectory: Vec<IterationRecord>,
    /// Total linear-system factorisations (simulation cost proxy).
    pub factorizations: usize,
}

/// Per-corner evaluation output.
struct CornerOutcome {
    objective: f64,
    fom: f64,
    readings: Readings,
    v_mask: Array2<f64>,
    /// `(d obj/dT, d obj/dξ)` — only filled for the nominal corner.
    variation_grads: Option<(f64, Vec<f64>)>,
    /// Factorisations this corner actually performed.
    factorizations: usize,
    /// Summed BiCGSTAB iterations of this corner's iterative solves.
    bicgstab_iterations: usize,
    /// Right-hand sides this corner solved through the iterative path
    /// (0 for purely direct corners) — the denominator of the mean.
    bicgstab_solves: usize,
}

/// One unit of work for the corner pool. Owns (or `Arc`-shares) its data
/// so the channels do not have to name per-iteration lifetimes; the
/// handful of clones here are far off the solve path.
struct CornerJob {
    slot: usize,
    rho: Arc<Array2<f64>>,
    corner: VariationCorner,
    etch: EtchProjection,
    want_variation_grads: bool,
}

/// The adaptive per-corner solver policy: corners whose iterative solve
/// ever missed its budget are pinned to the direct path for the rest of
/// the run. Shared (behind a mutex, far off the solve path) between the
/// main thread and the pool workers so serial and threaded runs make the
/// same decisions.
///
/// Decisions are cached only for *stable* corners — the axial/sweep
/// excursions, whose label names the same perturbation every iteration.
/// Worst-case and random corners carry a fresh EOLE field `ξ` each
/// iteration, so a past budget miss says nothing about the next draw and
/// they always retry the iterative path (falling back individually when
/// needed).
#[derive(Debug, Default)]
struct CornerPolicy {
    direct: Mutex<HashSet<String>>,
}

impl CornerPolicy {
    /// `true` when the corner's label identifies the same perturbation
    /// every iteration. Spatial-field corners (non-empty `ξ`) are
    /// resampled or re-derived per iteration.
    fn is_stable(corner: &VariationCorner) -> bool {
        corner.xi.is_empty()
    }

    fn force_direct(&self, corner: &VariationCorner) -> bool {
        Self::is_stable(corner)
            && self
                .direct
                .lock()
                .expect("policy lock")
                .contains(&corner.label)
    }

    fn mark_direct(&self, corner: &VariationCorner) {
        if Self::is_stable(corner) {
            self.direct
                .lock()
                .expect("policy lock")
                .insert(corner.label.clone());
        }
    }
}

/// The optimisation driver.
pub struct InverseDesigner<'a, P: Parameterization + Sync> {
    compiled: &'a CompiledProblem,
    param: &'a P,
    chain: FabChain,
    space: VariationSpace,
    config: RunnerConfig,
    objective: ObjectiveSpec,
    policy: CornerPolicy,
    /// `true` (production default): the iterative strategy advances the
    /// whole (corner × ω) product through one fused lockstep batch.
    /// `false`: one batch per ω — the pre-fusion reference path, kept so
    /// regression tests can assert the two are bit-identical.
    fused_sweep: bool,
}

impl<'a, P: Parameterization + Sync> InverseDesigner<'a, P> {
    /// Creates a designer.
    ///
    /// # Panics
    ///
    /// Panics if the parameterisation shape disagrees with the problem's
    /// design region.
    pub fn new(
        compiled: &'a CompiledProblem,
        param: &'a P,
        chain: FabChain,
        space: VariationSpace,
        config: RunnerConfig,
    ) -> Self {
        assert_eq!(
            param.design_shape(),
            compiled.problem().design_shape,
            "parameterisation/design-region shape mismatch"
        );
        assert_eq!(
            space.spectral.count,
            compiled.omega_count(),
            "variation space carries {} wavelengths but the problem was \
             compiled for {} (use CompiledProblem::compile_spectral with \
             the same axis)",
            space.spectral.count,
            compiled.omega_count()
        );
        // The optimiser revisits every ω each epoch; past the workspace's
        // slot capacity the per-ω caches would thrash (every visit
        // rebuilding geometry and re-factoring the nominal operator), so
        // refuse rather than silently lose the K-factorisations-per-epoch
        // and zero-allocation guarantees. One-shot wavelength *sweeps*
        // (each ω visited once) have no such constraint.
        assert!(
            space.spectral.count <= boson_fdfd::sim::MAX_OMEGA_SLOTS,
            "spectral axis has {} wavelengths but the solver workspace \
             retains at most {} per-ω slots",
            space.spectral.count,
            boson_fdfd::sim::MAX_OMEGA_SLOTS
        );
        // The subspace scheduler's partial products ride the fused
        // lockstep batch; the direct pool fan-out has no partial-product
        // path, so refuse the combination up front rather than silently
        // sweeping fully.
        if config.subspace.is_enabled() {
            assert!(
                matches!(
                    config.solver,
                    SolverStrategy::PreconditionedIterative { .. }
                        | SolverStrategy::MultigridIterative { .. }
                ),
                "the adaptive corner-subspace scheduler requires \
                 SolverStrategy::PreconditionedIterative (partial products \
                 ride the fused batched sweep)"
            );
        }
        let objective = if config.dense_objectives {
            compiled.problem().objective.clone()
        } else {
            compiled.problem().objective.sparse()
        };
        Self {
            compiled,
            param,
            chain,
            space,
            config,
            objective,
            policy: CornerPolicy::default(),
            fused_sweep: true,
        }
    }

    /// The initial latent vector per the configuration.
    pub fn initial_theta(&self, rng: &mut StdRng) -> Vec<f64>
    where
        P: SeedableParam,
    {
        match self.config.init {
            InitKind::Seeded => self
                .param
                .theta_from_geometry(&self.compiled.problem().seed),
            InitKind::Random { amplitude } => (0..self.param.num_params())
                .map(|_| rng.gen_range(-amplitude..amplitude))
                .collect(),
        }
    }

    /// Evaluates one corner: fabrication forward, EM forward + adjoint,
    /// chain backward. `want_variation_grads` additionally produces
    /// `(dT, dξ)` for the worst-case search. The etch projection of the
    /// current β-schedule step is passed explicitly; `scratch` carries the
    /// reusable solver buffers. Under the iterative solver strategy
    /// `nominal_eps`/`epoch` identify the shared preconditioner and the
    /// adaptive policy decides (and learns) whether this corner solves
    /// iteratively or directly.
    #[allow(clippy::too_many_arguments)] // one call site per fan-out path
    fn eval_corner(
        &self,
        rho: &Array2<f64>,
        corner: &VariationCorner,
        etch: EtchProjection,
        want_variation_grads: bool,
        scratch: &mut EvalScratch,
        nominal_eps: Option<&Array2<f64>>,
        epoch: u64,
        is_nominal: bool,
    ) -> CornerOutcome {
        let problem = self.compiled.problem();
        let fwd = self.chain.forward_with_etch(rho, corner, false, etch);
        let eps = assemble_eps(
            &problem.background_solid,
            problem.design_origin,
            &fwd.rho_fab,
            corner.temperature,
        );
        let solve = nominal_eps.map(|nominal_eps| CornerSolve {
            strategy: self.config.solver,
            nominal_eps,
            epoch,
            is_nominal,
            force_direct: self.policy.force_direct(corner),
            omega_idx: corner.omega_idx,
        });
        let ev = match &solve {
            Some(cs) => {
                self.compiled
                    .evaluate_eps_corner(&eps, true, &self.objective, scratch, Some(cs))
            }
            // No solver context (direct strategy): a plain direct
            // evaluation at this corner's wavelength.
            None => self.compiled.evaluate_eps_omega(
                &eps,
                true,
                &self.objective,
                scratch,
                corner.omega_idx,
            ),
        }
        .expect("corner simulation failed");
        self.outcome_from(corner, &fwd, ev, etch, want_variation_grads)
    }

    /// Back-propagates an EM evaluation through the fabrication chain and
    /// packages the [`CornerOutcome`], updating the adaptive policy from
    /// the solve report.
    fn outcome_from(
        &self,
        corner: &VariationCorner,
        fwd: &crate::fabchain::FabForward,
        ev: crate::compiled::Evaluation,
        etch: EtchProjection,
        want_variation_grads: bool,
    ) -> CornerOutcome {
        let problem = self.compiled.problem();
        if ev.solve.fell_back {
            // This corner's perturbation defeats the nominal
            // preconditioner (large β, strong litho/etch excursion): pin
            // it to the direct path for the rest of the run.
            self.policy.mark_direct(corner);
        }
        let grad_eps = ev.grad_eps.as_ref().expect("gradient requested");
        let v_rho = grad_eps_to_rho(
            grad_eps,
            problem.design_origin,
            problem.design_shape,
            corner.temperature,
        );
        let v_mask = self.chain.vjp_mask_with_etch(fwd, &v_rho, etch);
        let variation_grads = if want_variation_grads {
            let dt = grad_temperature(
                grad_eps,
                &problem.background_solid,
                problem.design_origin,
                &fwd.rho_fab,
                corner.temperature,
            );
            let dxi = self.chain.vjp_xi_with_etch(fwd, &v_rho, etch);
            Some((dt, dxi))
        } else {
            None
        };
        CornerOutcome {
            objective: ev.objective,
            fom: ev.fom,
            readings: ev.readings,
            v_mask,
            variation_grads,
            factorizations: ev.factorizations,
            bicgstab_iterations: ev.solve.total_iterations,
            bicgstab_solves: if ev.solve.used_iterative {
                ev.solve.solves
            } else {
                0
            },
        }
    }

    /// The batched iterative fan-out over the `active` columns of the
    /// ω-major (fabrication corner × ω) cross product, returning one
    /// ω-folded [`CornerOutcome`] per **live** fabrication corner (a
    /// corner with at least one active column — each outcome aggregated
    /// over its *active* wavelengths with the configured
    /// [`SpectralAggregation`]'s exact weights) plus the live corners'
    /// indices into the fabrication set and the nominal corner's position
    /// among the outcomes (always live — its columns are forced).
    ///
    /// An all-`true` mask is the full sweep and is **bit-identical** to
    /// the pre-scheduler pipeline (same solves, same fold, same
    /// arithmetic order — regression-tested). A partial mask is the
    /// adaptive subspace schedule ([`crate::subspace`]): dormant columns
    /// cost nothing at all — no fabrication forward (when a whole corner
    /// is dormant), no EM solves, no chain backward. The
    /// fabrication-nominal corner must stay active at **every**
    /// wavelength (debug-asserted): those entries refresh the per-ω
    /// preconditioner factors and warm starts the fused batch rides on.
    ///
    /// Every evaluated column reports `(global column index, objective,
    /// spectral aggregation weight, gradient norm)` into `observations`
    /// — the subspace scheduler's EMA feed. The gradient norm is the L2
    /// magnitude of the column's pre-chain ∂objective/∂ρ seed, read off
    /// the adjoint fold below for free; it is `NaN` for zero-weight
    /// columns (their adjoints were skipped, so no gradient exists).
    ///
    /// Three fusions happen here, each exploiting structure the per-entry
    /// fan-out ignored:
    ///
    /// 1. **Fabrication forwards** are ω-independent, so the litho/etch
    ///    model runs once per fabrication corner and its forward is
    ///    shared across that corner's K wavelengths (bit-identical — the
    ///    replicas were equal anyway).
    /// 2. **EM solves**: all (corner, ω) columns — forwards, then
    ///    adjoints — advance through **one** fused lockstep BiCGSTAB
    ///    batch ([`CompiledProblem::evaluate_corner_product`]), every
    ///    column preconditioned by its own ω's nominal factor and
    ///    warm-started from its own ω's nominal solution: one batch and
    ///    `K` factorisations per epoch instead of one batch per ω.
    ///    Budget misses fall back (and [`CornerPolicy`]-pin) per
    ///    `(corner, ω)` label exactly as before; above
    ///    [`boson_fdfd::sim::FUSED_SPLIT_MIN_COLS`] packed columns each
    ///    preconditioner sweep also splits across `config.threads` lanes
    ///    of the process-wide pool (serial ↔ parallel bit-identical).
    /// 3. **Chain backward**: the fabrication VJP is linear in its seed,
    ///    so the spectral aggregation's exact per-ω weights scale the
    ///    *pre-chain* gradients and one VJP per fabrication corner
    ///    back-propagates their weighted sum — K VJPs fold into one.
    ///    With K = 1 the single weight is exactly `1.0`, so the folded
    ///    chain is bit-identical to the unfolded single-ω pipeline.
    #[allow(clippy::too_many_arguments)] // mirrors eval_corners
    fn eval_corners_batched(
        &self,
        rho: &Arc<Array2<f64>>,
        corners: &[VariationCorner],
        etch: EtchProjection,
        nominal_eps: &Array2<f64>,
        epoch: u64,
        scratch: &mut EvalScratch,
        strategy: SolverStrategy,
        active: &[bool],
        observations: &mut Vec<(usize, f64, f64, f64)>,
    ) -> (Vec<CornerOutcome>, Vec<usize>, Option<usize>) {
        let problem = self.compiled.problem();
        let k = self.compiled.omega_count();
        assert_eq!(corners.len() % k, 0, "ragged (corner × ω) product");
        assert_eq!(active.len(), corners.len(), "active mask length mismatch");
        let f_count = corners.len() / k;
        // ω-major replication contract of `spectral_corners`: entry
        // `oi·f_count + f` is fabrication corner `f` at wavelength `oi`.
        debug_assert!(corners
            .iter()
            .enumerate()
            .all(|(ci, c)| c.omega_idx == ci / f_count));
        let fab = &corners[..f_count];
        debug_assert!((0..corners.len()).all(|ci| corners[ci].temperature
            == fab[ci % f_count].temperature
            && corners[ci].xi == fab[ci % f_count].xi));
        // The subspace scheduler's invariant: the fabrication-nominal
        // corner stays active at every wavelength (its entries refresh
        // the per-ω factors and warm starts).
        debug_assert!(
            (0..corners.len()).all(|ci| corners[ci].is_varied() || active[ci]),
            "the nominal corner must stay active at every wavelength"
        );

        // Fabrication corners with at least one active column are "live";
        // fully-dormant corners cost nothing at all this iteration.
        let live: Vec<usize> = (0..f_count)
            .filter(|&f| (0..k).any(|oi| active[oi * f_count + f]))
            .collect();

        // Fabrication forwards and permittivities, once per live
        // fabrication corner; the ε maps are replicated per active (ω,
        // corner) entry for the solver (cheap memcpys next to the solves
        // they feed).
        let fwds: Vec<crate::fabchain::FabForward> = live
            .iter()
            .map(|&f| self.chain.forward_with_etch(rho, &fab[f], false, etch))
            .collect();
        let epss_live: Vec<Array2<f64>> = live
            .iter()
            .zip(&fwds)
            .map(|(&f, fwd)| {
                assemble_eps(
                    &problem.background_solid,
                    problem.design_origin,
                    &fwd.rho_fab,
                    fab[f].temperature,
                )
            })
            .collect();

        // The active product entries, still ω-major: `sel[pos] = (ci,
        // li)` names entry `pos`'s global column and live-corner index;
        // `pos_of[oi·L + li]` inverts it for the fold (`usize::MAX` =
        // dormant).
        let mut sel: Vec<(usize, usize)> = Vec::with_capacity(corners.len());
        let mut pos_of: Vec<usize> = vec![usize::MAX; k * live.len()];
        for oi in 0..k {
            for (li, &f) in live.iter().enumerate() {
                let ci = oi * f_count + f;
                if active[ci] {
                    pos_of[oi * live.len() + li] = sel.len();
                    sel.push((ci, li));
                }
            }
        }
        let epss: Vec<Array2<f64>> = sel.iter().map(|&(_, li)| epss_live[li].clone()).collect();
        let force_direct: Vec<bool> = sel
            .iter()
            .map(|&(ci, _)| self.policy.force_direct(&corners[ci]))
            .collect();
        let omega_idx: Vec<usize> = sel.iter().map(|&(ci, _)| corners[ci].omega_idx).collect();
        let is_nominal: Vec<bool> = sel
            .iter()
            .map(|&(ci, _)| !corners[ci].is_varied())
            .collect();
        let evals = if self.fused_sweep {
            let fab_idx: Vec<usize> = sel.iter().map(|&(_, li)| li).collect();
            // Each entry's *global* ω-major product column — the stable
            // identity its Krylov deflation stores are keyed by (the
            // packed position shifts between iterations as the subspace
            // schedule changes; the global column never does).
            let global_cols: Vec<usize> = sel.iter().map(|&(ci, _)| ci).collect();
            let set = crate::compiled::CornerProductSolve {
                strategy,
                nominal_eps,
                epoch,
                omega_idx: &omega_idx,
                is_nominal: &is_nominal,
                force_direct: &force_direct,
                threads: self.config.threads,
                // The fold below weights gradients by the aggregation's
                // exact per-ω weights, so zero-weight adjoint solves are
                // pure waste — the fused batch drops them (under
                // WorstCase that is K−1 of every corner's K adjoints).
                skip_zero_weight_adjoints: Some((self.config.spectral_agg, &fab_idx)),
                recycle: (self.config.recycle.directions > 0).then_some(global_cols.as_slice()),
            };
            self.compiled
                .evaluate_corner_product(&epss, true, &self.objective, scratch, &set)
                .expect("corner sweep failed")
        } else {
            self.eval_per_omega_sets(
                &omega_idx,
                &is_nominal,
                &epss,
                &force_direct,
                nominal_eps,
                epoch,
                scratch,
                strategy,
            )
        };

        // Adaptive-policy updates stay per (corner, ω) label.
        for (&(ci, _), ev) in sel.iter().zip(&evals) {
            if ev.solve.fell_back {
                self.policy.mark_direct(&corners[ci]);
            }
        }

        // Fold the spectral axis per live fabrication corner over its
        // *active* wavelengths (fusion 3 above; the masked aggregation
        // with every wavelength active is bit-identical to the unmasked
        // one).
        let agg = self.config.spectral_agg;
        let nominal_oi = self.compiled.nominal_omega_idx();
        let fab_nominal = live.iter().position(|&f| !fab[f].is_varied());
        let (dr, dc) = problem.design_shape;
        let mut values = vec![0.0; k];
        let mut omask = vec![false; k];
        let mut sweights = vec![0.0; k];
        let outcomes = (0..live.len())
            .map(|li| {
                let f = live[li];
                for oi in 0..k {
                    let pos = pos_of[oi * live.len() + li];
                    omask[oi] = pos != usize::MAX;
                    values[oi] = if omask[oi] { evals[pos].objective } else { 0.0 };
                }
                agg.weights_into_masked(&values, &omask, &mut sweights);
                let mut seed = Array2::<f64>::zeros(dr, dc);
                for oi in 0..k {
                    let wk = sweights[oi];
                    // The column's gradient-norm observation — NaN until
                    // (unless) the weighted branch below computes one.
                    let mut gnorm = f64::NAN;
                    if wk != 0.0 {
                        // Zero-weight entries may carry no gradient at
                        // all (the fused batch skipped their adjoints);
                        // every weighted entry always does.
                        let v_rho = grad_eps_to_rho(
                            evals[pos_of[oi * live.len() + li]]
                                .grad_eps
                                .as_ref()
                                .expect("weighted entry carries a gradient"),
                            problem.design_origin,
                            problem.design_shape,
                            fab[f].temperature,
                        );
                        gnorm = v_rho.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt();
                        for (dst, src) in seed.as_mut_slice().iter_mut().zip(v_rho.as_slice()) {
                            *dst += wk * src;
                        }
                    }
                    if omask[oi] {
                        // The subspace scheduler's EMA feed: every
                        // evaluated column reports its objective, its
                        // spectral weight and (when an adjoint ran) its
                        // gradient norm.
                        observations.push((oi * f_count + f, values[oi], sweights[oi], gnorm));
                    }
                }
                let v_mask = self.chain.vjp_mask_with_etch(&fwds[li], &seed, etch);
                // Readings/FoM come from the corner's centre-wavelength
                // entry when active (always, for the nominal corner —
                // its columns are all forced), else its first active
                // wavelength.
                let centre_pos = {
                    let p = pos_of[nominal_oi * live.len() + li];
                    if p != usize::MAX {
                        p
                    } else {
                        (0..k)
                            .map(|oi| pos_of[oi * live.len() + li])
                            .find(|&p| p != usize::MAX)
                            .expect("live corner has an active wavelength")
                    }
                };
                let centre = &evals[centre_pos];
                let variation_grads = if Some(li) == fab_nominal {
                    // The worst-case search runs at the centre wavelength
                    // (nominal entries are evaluated outside the batch,
                    // so their gradient is always present).
                    let grad_eps = centre.grad_eps.as_ref().expect("gradient requested");
                    let dt = grad_temperature(
                        grad_eps,
                        &problem.background_solid,
                        problem.design_origin,
                        &fwds[li].rho_fab,
                        fab[f].temperature,
                    );
                    let v_rho_centre = grad_eps_to_rho(
                        grad_eps,
                        problem.design_origin,
                        problem.design_shape,
                        fab[f].temperature,
                    );
                    let dxi = self.chain.vjp_xi_with_etch(&fwds[li], &v_rho_centre, etch);
                    Some((dt, dxi))
                } else {
                    None
                };
                CornerOutcome {
                    objective: agg.aggregate_masked(&values, &omask),
                    fom: centre.fom,
                    readings: centre.readings.clone(),
                    v_mask,
                    variation_grads,
                    factorizations: (0..k)
                        .filter_map(|oi| {
                            let pos = pos_of[oi * live.len() + li];
                            (pos != usize::MAX).then(|| evals[pos].factorizations)
                        })
                        .sum(),
                    bicgstab_iterations: (0..k)
                        .filter_map(|oi| {
                            let pos = pos_of[oi * live.len() + li];
                            (pos != usize::MAX).then(|| evals[pos].solve.total_iterations)
                        })
                        .sum(),
                    bicgstab_solves: (0..k)
                        .filter_map(|oi| {
                            let pos = pos_of[oi * live.len() + li];
                            (pos != usize::MAX && evals[pos].solve.used_iterative)
                                .then(|| evals[pos].solve.solves)
                        })
                        .sum(),
                }
            })
            .collect();
        (outcomes, live, fab_nominal)
    }

    /// The pre-fusion reference fan-out: one batched sweep per contiguous
    /// ω group ([`CompiledProblem::evaluate_corner_set`]). Kept as the
    /// A/B verification path for the fused product — the regression tests
    /// assert both produce bit-identical runs. Entries are described by
    /// parallel per-entry slices (so partial subspace products, which are
    /// still ω-contiguous, flow through unchanged).
    #[allow(clippy::too_many_arguments)] // mirrors eval_corners_batched
    fn eval_per_omega_sets(
        &self,
        omega_idx: &[usize],
        is_nominal: &[bool],
        epss: &[Array2<f64>],
        force_direct: &[bool],
        nominal_eps: &Array2<f64>,
        epoch: u64,
        scratch: &mut EvalScratch,
        strategy: SolverStrategy,
    ) -> Vec<crate::compiled::Evaluation> {
        let mut evals: Vec<crate::compiled::Evaluation> = Vec::with_capacity(epss.len());
        let mut start = 0usize;
        while start < epss.len() {
            let oi = omega_idx[start];
            let mut end = start + 1;
            while end < epss.len() && omega_idx[end] == oi {
                end += 1;
            }
            assert!(
                omega_idx[end..].iter().all(|&o| o != oi),
                "corner set is not ω-contiguous"
            );
            let group_nominal = is_nominal[start..end].iter().position(|&n| n);
            let set = crate::compiled::CornerSetSolve {
                strategy,
                nominal_eps,
                epoch,
                nominal_idx: group_nominal,
                force_direct: &force_direct[start..end],
                omega_idx: oi,
            };
            evals.extend(
                self.compiled
                    .evaluate_corner_set(&epss[start..end], true, &self.objective, scratch, &set)
                    .expect("corner sweep failed"),
            );
            start = end;
        }
        evals
    }

    /// Evaluates the unrestricted ("ideal") term: the raw density drives
    /// the permittivity directly, bypassing litho and etch.
    fn eval_free(
        &self,
        rho: &Array2<f64>,
        scratch: &mut EvalScratch,
    ) -> (f64, f64, Readings, Array2<f64>) {
        let problem = self.compiled.problem();
        let eps = assemble_eps(
            &problem.background_solid,
            problem.design_origin,
            rho,
            boson_fab::temperature::T_NOMINAL,
        );
        let ev = self
            .compiled
            .evaluate_eps_scratch(&eps, true, &self.objective, scratch)
            .expect("free simulation failed");
        let v_rho = grad_eps_to_rho(
            ev.grad_eps.as_ref().expect("gradient requested"),
            problem.design_origin,
            problem.design_shape,
            boson_fab::temperature::T_NOMINAL,
        );
        (ev.objective, ev.fom, ev.readings, v_rho)
    }

    /// Number of pool workers the configuration asks for (0 = run corners
    /// inline on the main thread).
    ///
    /// The iterative strategy needs none: its fan-out is the batched
    /// lockstep sweep, which amortises the preconditioner's memory
    /// traffic across corners far better than per-corner threads would.
    fn pool_threads(&self) -> usize {
        if !self.config.fab_aware {
            return 0;
        }
        if matches!(
            self.config.solver,
            SolverStrategy::PreconditionedIterative { .. }
                | SolverStrategy::MultigridIterative { .. }
        ) {
            return 0;
        }
        let max_useful = self.config.sampling.corners_per_iteration();
        let t = self.config.threads.min(max_useful);
        if t <= 1 {
            0
        } else {
            t
        }
    }

    /// Runs the optimisation from `theta0`.
    ///
    /// # Panics
    ///
    /// Panics if `theta0` does not match the parameterisation.
    pub fn run(&mut self, theta0: Vec<f64>) -> RunResult {
        assert_eq!(
            theta0.len(),
            self.param.num_params(),
            "theta length mismatch"
        );
        let this: &Self = self;
        this.run_inner(theta0)
    }

    /// The loop body. No thread scope: the corner pool executes on the
    /// process-lifetime `boson_num::pool` substrate, so a run spawns no
    /// threads of its own.
    fn run_inner(&self, theta0: Vec<f64>) -> RunResult {
        let mut theta = theta0;
        let mut adam = Adam::new(theta.len(), self.config.adam);
        let beta_sched = BetaSchedule::new(
            self.config.beta_start,
            self.config.beta_end,
            self.config.iterations.max(1),
        );
        let mut trajectory = Vec::with_capacity(self.config.iterations);
        let mut factorizations = 0usize;
        let (dr, dc) = self.param.design_shape();

        // Main-thread scratch (free term, worst-case corner, inline mode).
        // It also hosts the batched iterative fan-out, so the temporal
        // axis — lagged nominal factors + cross-iteration Krylov
        // recycling — is armed here (a no-op for the default, disabled
        // config).
        let mut scratch = EvalScratch::new();
        scratch.configure_recycling(&self.config.recycle);
        // The adaptive corner-subspace scheduler: per-run importance
        // state over the (fabrication corner × ω) cross product. `None`
        // when disabled — every iteration then sweeps the full product.
        let mut subspace: Option<SubspaceScheduler> =
            (self.config.fab_aware && self.config.subspace.is_enabled()).then(|| {
                SubspaceScheduler::new(
                    self.space.product_columns(self.config.sampling),
                    self.config.subspace,
                )
            });
        // (column, objective, spectral weight, gradient norm)
        // observations of one iteration's sweep — the scheduler's EMA
        // feed.
        let mut observations: Vec<(usize, f64, f64, f64)> = Vec::new();
        // Persistent corner pool: worker closures built once, each
        // keeping its EvalScratch (and factor buffers) warm for the
        // whole run; execution rides the process-wide substrate, so no
        // threads are spawned here.
        let mut pool: Option<WorkerPool<'_, CornerJob, (usize, CornerOutcome)>> =
            match self.pool_threads() {
                0 => None,
                threads => Some(WorkerPool::new(threads, |_| {
                    let mut scratch = EvalScratch::new();
                    move |job: CornerJob| {
                        // The pool only ever runs the direct strategy
                        // (the iterative strategy fans out through the
                        // batched sweep instead), so no solver context.
                        let out = self.eval_corner(
                            &job.rho,
                            &job.corner,
                            job.etch,
                            job.want_variation_grads,
                            &mut scratch,
                            None,
                            0,
                            false,
                        );
                        (job.slot, out)
                    }
                })),
            };

        for iter in 0..self.config.iterations {
            let etch = EtchProjection::new(beta_sched.beta(iter));
            let rho = Arc::new(self.param.forward(&theta));
            let p = if self.config.fab_aware {
                self.config.relaxation.p(iter)
            } else {
                0.0
            };

            let mut v_mask_total = Array2::<f64>::zeros(dr, dc);
            let mut objective = 0.0;
            let mut nominal_readings: Option<(Readings, f64)> = None;
            let mut active_set: Option<ActiveSetRecord> = None;
            let fact_before = factorizations;
            let (mut bicg_iters, mut bicg_solves) = (0usize, 0usize);

            if self.config.fab_aware {
                let mut rng =
                    StdRng::seed_from_u64(self.config.seed ^ (iter as u64).wrapping_mul(0x9E37));
                let lambda_c = 2.0 * std::f64::consts::PI / self.compiled.problem().omega;
                // The (fabrication corner × ω) cross product, ω-major; a
                // single-wavelength space degenerates to the plain corner
                // set bit-identically.
                let mut corners =
                    self.space
                        .spectral_corners(self.config.sampling, lambda_c, &mut rng);
                let k = self.compiled.omega_count();
                let f_count = corners.len() / k;
                debug_assert_eq!(f_count * k, corners.len(), "ragged cross product");
                let nominal_oi = self.compiled.nominal_omega_idx();
                // Identify the nominal corner (fabrication-nominal at the
                // centre wavelength) for worst-case gradients and
                // trajectory recording.
                let nominal_idx = corners
                    .iter()
                    .position(|c| !c.is_varied() && c.omega_idx == nominal_oi);
                // The iterative strategy shares one nominal operator per
                // iteration: materialise its permittivity once so every
                // worker preconditions against bit-identical factors.
                let nominal_eps: Option<Arc<Array2<f64>>> = match self.config.solver {
                    SolverStrategy::Direct => None,
                    SolverStrategy::PreconditionedIterative { .. }
                    | SolverStrategy::MultigridIterative { .. } => {
                        let fwd = self.chain.forward_with_etch(
                            &rho,
                            &VariationCorner::nominal(),
                            false,
                            etch,
                        );
                        let problem = self.compiled.problem();
                        Some(Arc::new(assemble_eps(
                            &problem.background_solid,
                            problem.design_origin,
                            &fwd.rho_fab,
                            boson_fab::temperature::T_NOMINAL,
                        )))
                    }
                };
                // The fan-out's outcome granularity differs by strategy:
                // the direct pool evaluates every (corner, ω) product
                // entry (`agg_k = k` groups of `f_count`), while the
                // batched iterative path returns outcomes already folded
                // over ω — one per fabrication corner (`agg_k = 1`), its
                // spectral aggregation applied inside the fold. Both
                // shapes flow through the same weighted sum below.
                let (outcomes, agg_k, agg_nominal_idx) = match self.config.solver {
                    SolverStrategy::Direct => (
                        self.eval_corners(
                            pool.as_mut(),
                            &rho,
                            &corners,
                            etch,
                            nominal_idx,
                            &mut scratch,
                        ),
                        k,
                        nominal_idx,
                    ),
                    strategy @ (SolverStrategy::PreconditionedIterative { .. }
                    | SolverStrategy::MultigridIterative { .. }) => {
                        // The subspace scheduler's plan for this
                        // iteration (all columns when disabled). The
                        // forced set — always-active columns — is the
                        // fabrication-nominal corner at every ω.
                        let plan = match subspace.as_ref() {
                            Some(s) => {
                                let forced: Vec<bool> =
                                    corners.iter().map(|c| !c.is_varied()).collect();
                                let plan = s.plan(iter, &forced);
                                active_set = Some(plan.record());
                                plan
                            }
                            // Disabled scheduler: a full sweep, `refresh`
                            // true per SweepPlan's contract (every column
                            // active).
                            None => SweepPlan {
                                active: vec![true; corners.len()],
                                refresh: true,
                            },
                        };
                        observations.clear();
                        let (outcomes, _live, nominal_li) = self.eval_corners_batched(
                            &rho,
                            &corners,
                            etch,
                            nominal_eps.as_ref().expect("iterative strategy nominal"),
                            iter as u64,
                            &mut scratch,
                            strategy,
                            &plan.active,
                            &mut observations,
                        );
                        if let Some(s) = subspace.as_mut() {
                            for &(ci, obj, w, g) in &observations {
                                s.record(ci, obj, w);
                                // Zero-weight columns skipped their
                                // adjoints (gnorm NaN): no gradient
                                // observation for them.
                                if g.is_finite() {
                                    s.record_gradient(ci, g);
                                }
                            }
                        }
                        (outcomes, 1, nominal_li)
                    }
                };
                let agg_product_len = outcomes.len();
                factorizations += outcomes.iter().map(|o| o.factorizations).sum::<usize>();

                // Worst-case corner from the nominal gradients.
                let mut all_outcomes = outcomes;
                if self.config.sampling.needs_worst_case() {
                    if let Some(ni) = agg_nominal_idx {
                        if let Some((dt, dxi)) = &all_outcomes[ni].variation_grads {
                            // The worst-case search runs at the centre
                            // wavelength (its gradients were taken there).
                            let mut worst = self.space.worst_case_corner(*dt, dxi);
                            worst.omega_idx = nominal_oi;
                            let o = self.eval_corner(
                                &rho,
                                &worst,
                                etch,
                                false,
                                &mut scratch,
                                nominal_eps.as_deref(),
                                iter as u64,
                                false,
                            );
                            factorizations += o.factorizations;
                            corners.push(worst);
                            all_outcomes.push(o);
                        }
                    }
                }
                for o in &all_outcomes {
                    bicg_iters += o.bicgstab_iterations;
                    bicg_solves += o.bicgstab_solves;
                }
                // Robust objective: uniform weight over fabrication
                // corners, each contributing the spectral aggregate of
                // its K per-ω objectives (K = 1: the value itself — the
                // original weighting, bit-identically). Gradients carry
                // the aggregation's exact per-ω weights; the folded
                // iterative outcomes (`agg_k = 1`) arrive pre-aggregated,
                // so for them this loop degenerates to the plain weighted
                // sum.
                let agg_f_count = agg_product_len / agg_k;
                let extras = all_outcomes.len() - agg_product_len; // worst-case corners
                let w = 1.0 / (agg_f_count + extras) as f64;
                let agg = self.config.spectral_agg;
                let mut values = vec![0.0; agg_k];
                let mut sweights = vec![0.0; agg_k];
                let mut obj_fab = 0.0;
                let mut v_fab = Array2::<f64>::zeros(dr, dc);
                for f in 0..agg_f_count {
                    for oi in 0..agg_k {
                        values[oi] = all_outcomes[oi * agg_f_count + f].objective;
                    }
                    obj_fab += w * agg.aggregate(&values);
                    agg.weights_into(&values, &mut sweights);
                    for oi in 0..agg_k {
                        let wk = w * sweights[oi];
                        if wk != 0.0 {
                            let o = &all_outcomes[oi * agg_f_count + f];
                            for (dst, src) in
                                v_fab.as_mut_slice().iter_mut().zip(o.v_mask.as_slice())
                            {
                                *dst += wk * src;
                            }
                        }
                    }
                }
                // Appended worst-case corners are single-ω groups.
                for o in &all_outcomes[agg_product_len..] {
                    obj_fab += w * agg.aggregate(&[o.objective]);
                    for (dst, src) in v_fab.as_mut_slice().iter_mut().zip(o.v_mask.as_slice()) {
                        *dst += w * src;
                    }
                }
                if let Some(ni) = agg_nominal_idx {
                    let o = &all_outcomes[ni];
                    nominal_readings = Some((o.readings.clone(), o.fom));
                }
                objective += p * obj_fab;
                for (dst, src) in v_mask_total.as_mut_slice().iter_mut().zip(v_fab.as_slice()) {
                    *dst += p * src;
                }
            }

            if p < 1.0 {
                let (obj_free, fom_free, readings_free, v_free) =
                    self.eval_free(&rho, &mut scratch);
                factorizations += 1;
                objective += (1.0 - p) * obj_free;
                for (dst, src) in v_mask_total
                    .as_mut_slice()
                    .iter_mut()
                    .zip(v_free.as_slice())
                {
                    *dst += (1.0 - p) * src;
                }
                if nominal_readings.is_none() {
                    nominal_readings = Some((readings_free, fom_free));
                }
            }

            let grad_theta = self.param.vjp(&theta, &v_mask_total);
            adam.step(&mut theta, &grad_theta);

            let (readings_nominal, fom_nominal) =
                nominal_readings.expect("at least one term evaluated");
            trajectory.push(IterationRecord {
                iter,
                objective,
                fom_nominal,
                readings_nominal,
                p,
                active_set,
                factorizations: factorizations - fact_before,
                mean_bicgstab_iterations: if bicg_solves > 0 {
                    bicg_iters as f64 / bicg_solves as f64
                } else {
                    0.0
                },
            });
        }

        let mask = self.param.forward(&theta);
        RunResult {
            theta,
            mask,
            trajectory,
            factorizations,
        }
    }

    /// Evaluates a corner set — on the persistent pool when one exists,
    /// inline on the main-thread scratch otherwise. Results come back in
    /// corner order regardless of completion order.
    fn eval_corners(
        &self,
        pool: Option<&mut WorkerPool<'_, CornerJob, (usize, CornerOutcome)>>,
        rho: &Arc<Array2<f64>>,
        corners: &[VariationCorner],
        etch: EtchProjection,
        nominal_idx: Option<usize>,
        scratch: &mut EvalScratch,
    ) -> Vec<CornerOutcome> {
        match pool {
            Some(pool) if corners.len() > 1 => {
                for (ci, corner) in corners.iter().enumerate() {
                    pool.submit(CornerJob {
                        slot: ci,
                        rho: Arc::clone(rho),
                        corner: corner.clone(),
                        etch,
                        want_variation_grads: Some(ci) == nominal_idx,
                    });
                }
                let mut slots: Vec<Option<CornerOutcome>> =
                    (0..corners.len()).map(|_| None).collect();
                for _ in 0..corners.len() {
                    let (slot, out) = pool.recv();
                    slots[slot] = Some(out);
                }
                slots
                    .into_iter()
                    .map(|s| s.expect("every slot filled"))
                    .collect()
            }
            _ => corners
                .iter()
                .enumerate()
                .map(|(ci, c)| {
                    self.eval_corner(
                        rho,
                        c,
                        etch,
                        Some(ci) == nominal_idx,
                        scratch,
                        None,
                        0,
                        false,
                    )
                })
                .collect(),
        }
    }
}

/// Parameterisations that can be seeded from geometry (both built-in
/// parameterisations implement this).
pub trait SeedableParam: Parameterization {
    /// Latent variables reproducing (approximately) the given geometry.
    fn theta_from_geometry(&self, geometry: &boson_param::sdf::Geometry) -> Vec<f64>;
}

impl SeedableParam for boson_param::LevelSetParam {
    fn theta_from_geometry(&self, geometry: &boson_param::sdf::Geometry) -> Vec<f64> {
        boson_param::LevelSetParam::theta_from_geometry(self, geometry)
    }
}

impl SeedableParam for boson_param::DensityParam {
    fn theta_from_geometry(&self, geometry: &boson_param::sdf::Geometry) -> Vec<f64> {
        boson_param::DensityParam::theta_from_geometry(self, geometry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{levelset_param, standard_chain};
    use crate::problem::bending;

    fn tiny_config(threads: usize, sampling: SamplingStrategy) -> RunnerConfig {
        RunnerConfig {
            iterations: 2,
            sampling,
            relaxation: RelaxationSchedule::over(1),
            threads,
            ..RunnerConfig::default()
        }
    }

    /// The persistent pool must be an implementation detail: a threaded
    /// run and a single-threaded run are bit-identical.
    #[test]
    fn parallel_and_serial_runs_agree() {
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace::default();
        let mut results = Vec::new();
        for threads in [1usize, 4] {
            let mut designer = InverseDesigner::new(
                &compiled,
                &param,
                standard_chain(&problem),
                space.clone(),
                tiny_config(threads, SamplingStrategy::AxialSingleSided),
            );
            let mut rng = StdRng::seed_from_u64(3);
            let theta0 = designer.initial_theta(&mut rng);
            results.push(designer.run(theta0));
        }
        let (a, b) = (&results[0], &results[1]);
        assert_eq!(a.factorizations, b.factorizations);
        for (ra, rb) in a.trajectory.iter().zip(&b.trajectory) {
            assert!(
                (ra.objective - rb.objective).abs() < 1e-12,
                "iter {}: {} vs {}",
                ra.iter,
                ra.objective,
                rb.objective
            );
        }
        for (ta, tb) in a.theta.iter().zip(&b.theta) {
            assert!((ta - tb).abs() < 1e-12);
        }
    }

    /// The iterative corner solver must also be an implementation detail
    /// of the fan-out: threaded and serial runs stay bit-identical
    /// because every worker preconditions against bit-identical nominal
    /// factors and the adaptive policy is shared.
    #[test]
    fn iterative_parallel_and_serial_runs_agree() {
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace::default();
        let mut results = Vec::new();
        for threads in [1usize, 4] {
            let mut designer = InverseDesigner::new(
                &compiled,
                &param,
                standard_chain(&problem),
                space.clone(),
                RunnerConfig {
                    solver: SolverStrategy::preconditioned_iterative(),
                    ..tiny_config(threads, SamplingStrategy::AxialSingleSided)
                },
            );
            let mut rng = StdRng::seed_from_u64(3);
            let theta0 = designer.initial_theta(&mut rng);
            results.push(designer.run(theta0));
        }
        let (a, b) = (&results[0], &results[1]);
        for (ra, rb) in a.trajectory.iter().zip(&b.trajectory) {
            assert_eq!(
                ra.objective, rb.objective,
                "iter {}: {} vs {}",
                ra.iter, ra.objective, rb.objective
            );
        }
        for (ta, tb) in a.theta.iter().zip(&b.theta) {
            assert_eq!(ta, tb);
        }
    }

    /// The iterative strategy reproduces the direct strategy's trajectory
    /// to solver tolerance while factoring far fewer operators — across
    /// different etch-sharpening β schedules (sharper β means stronger
    /// corner perturbations).
    #[test]
    fn iterative_strategy_matches_direct_and_saves_factorizations() {
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace::default();
        for (beta_start, beta_end) in [(10.0, 40.0), (40.0, 80.0)] {
            let run_with = |solver: SolverStrategy| {
                let mut designer = InverseDesigner::new(
                    &compiled,
                    &param,
                    standard_chain(&problem),
                    space.clone(),
                    RunnerConfig {
                        solver,
                        beta_start,
                        beta_end,
                        ..tiny_config(1, SamplingStrategy::AxialSingleSided)
                    },
                );
                let mut rng = StdRng::seed_from_u64(3);
                let theta0 = designer.initial_theta(&mut rng);
                designer.run(theta0)
            };
            let direct = run_with(SolverStrategy::Direct);
            let iterative = run_with(SolverStrategy::PreconditionedIterative {
                tol: 1e-10,
                max_iters: 40,
            });
            for (rd, ri) in direct.trajectory.iter().zip(&iterative.trajectory) {
                assert!(
                    (rd.objective - ri.objective).abs() < 1e-7 * (1.0 + rd.objective.abs()),
                    "β=({beta_start},{beta_end}) iter {}: direct {} vs iterative {}",
                    rd.iter,
                    rd.objective,
                    ri.objective
                );
            }
            assert!(
                iterative.factorizations < direct.factorizations,
                "β=({beta_start},{beta_end}): iterative did {} factorizations, direct {}",
                iterative.factorizations,
                direct.factorizations
            );
        }
    }

    /// A starved iteration budget makes every non-nominal corner fall
    /// back, so the run degrades to the direct strategy **bit-exactly**
    /// — and the adaptive policy pins those corners to the direct path
    /// afterwards (no repeated wasted iterative attempts).
    #[test]
    fn starved_iterative_budget_degrades_to_direct_bitwise() {
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace::default();
        let run_with = |solver: SolverStrategy| {
            let mut designer = InverseDesigner::new(
                &compiled,
                &param,
                standard_chain(&problem),
                space.clone(),
                RunnerConfig {
                    solver,
                    ..tiny_config(1, SamplingStrategy::AxialSingleSided)
                },
            );
            let mut rng = StdRng::seed_from_u64(3);
            let theta0 = designer.initial_theta(&mut rng);
            let marked = designer.policy.direct.lock().unwrap().len();
            assert_eq!(marked, 0);
            let res = designer.run(theta0);
            let marked = designer.policy.direct.lock().unwrap().len();
            (res, marked)
        };
        let (direct, _) = run_with(SolverStrategy::Direct);
        // An impossible tolerance within a one-iteration budget: every
        // perturbed corner must miss and fall back.
        let (starved, marked) = run_with(SolverStrategy::PreconditionedIterative {
            tol: 1e-300,
            max_iters: 1,
        });
        for (rd, ri) in direct.trajectory.iter().zip(&starved.trajectory) {
            assert_eq!(rd.objective, ri.objective, "iter {}", rd.iter);
        }
        for (td, ti) in direct.theta.iter().zip(&starved.theta) {
            assert_eq!(td, ti);
        }
        // AxialSingleSided = nominal + 3 varied corners: all three marked.
        assert_eq!(marked, 3, "policy should pin every hard corner");
    }

    /// The spectral axis must be a *strict* extension: a `K = 1` axis —
    /// whatever its half-span or aggregation — runs **bit-identically**
    /// to the original single-ω pipeline, for both solver strategies and
    /// both fan-out modes.
    #[test]
    fn k1_spectral_runs_are_bit_identical_to_single_omega_runs() {
        use crate::objective::SpectralAggregation;
        use boson_fab::SpectralAxis;
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        for solver in [
            SolverStrategy::Direct,
            SolverStrategy::preconditioned_iterative(),
        ] {
            for threads in [1usize, 4] {
                let run = |space: VariationSpace, agg: SpectralAggregation| {
                    let mut designer = InverseDesigner::new(
                        &compiled,
                        &param,
                        standard_chain(&problem),
                        space,
                        RunnerConfig {
                            solver,
                            spectral_agg: agg,
                            ..tiny_config(threads, SamplingStrategy::AxialSingleSided)
                        },
                    );
                    let mut rng = StdRng::seed_from_u64(3);
                    let theta0 = designer.initial_theta(&mut rng);
                    designer.run(theta0)
                };
                let base = run(VariationSpace::default(), SpectralAggregation::Mean);
                // K = 1 with a non-zero half-span still samples only λ_c.
                let k1 = VariationSpace {
                    spectral: SpectralAxis::around(0.05, 1),
                    ..VariationSpace::default()
                };
                for agg in [SpectralAggregation::Mean, SpectralAggregation::WorstCase] {
                    let spectral = run(k1.clone(), agg);
                    assert_eq!(
                        base.factorizations, spectral.factorizations,
                        "{solver:?}/{threads}/{agg:?}"
                    );
                    for (rb, rs) in base.trajectory.iter().zip(&spectral.trajectory) {
                        assert_eq!(
                            rb.objective, rs.objective,
                            "{solver:?}/{threads}/{agg:?} iter {}",
                            rb.iter
                        );
                        assert_eq!(rb.fom_nominal, rs.fom_nominal);
                    }
                    for (tb, ts) in base.theta.iter().zip(&spectral.theta) {
                        assert_eq!(tb, ts, "{solver:?}/{threads}/{agg:?}");
                    }
                }
            }
        }
    }

    /// Broadband (K = 3) robust runs: the batched spectral-iterative path
    /// reproduces the direct strategy to solver tolerance with far fewer
    /// factorisations, and both strategies are thread-count invariant.
    #[test]
    fn broadband_iterative_matches_direct_and_is_thread_invariant() {
        use boson_fab::SpectralAxis;
        let axis = SpectralAxis::around(0.02, 3);
        let compiled = CompiledProblem::compile_spectral(bending(), axis).unwrap();
        assert_eq!(compiled.omega_count(), 3);
        assert_eq!(compiled.nominal_omega_idx(), 1);
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace {
            spectral: axis,
            ..VariationSpace::default()
        };
        let run = |solver: SolverStrategy, threads: usize| {
            let mut designer = InverseDesigner::new(
                &compiled,
                &param,
                standard_chain(&problem),
                space.clone(),
                RunnerConfig {
                    solver,
                    spectral_agg: crate::objective::SpectralAggregation::WorstCase,
                    ..tiny_config(threads, SamplingStrategy::AxialSingleSided)
                },
            );
            let mut rng = StdRng::seed_from_u64(3);
            let theta0 = designer.initial_theta(&mut rng);
            designer.run(theta0)
        };
        let direct = run(SolverStrategy::Direct, 1);
        let direct_threaded = run(SolverStrategy::Direct, 4);
        let iterative = run(
            SolverStrategy::PreconditionedIterative {
                tol: 1e-10,
                max_iters: 40,
            },
            1,
        );
        let iterative_threaded = run(
            SolverStrategy::PreconditionedIterative {
                tol: 1e-10,
                max_iters: 40,
            },
            4,
        );
        for (rd, ri) in direct.trajectory.iter().zip(&iterative.trajectory) {
            assert!(
                (rd.objective - ri.objective).abs() < 1e-7 * (1.0 + rd.objective.abs()),
                "iter {}: direct {} vs iterative {}",
                rd.iter,
                rd.objective,
                ri.objective
            );
        }
        assert!(
            iterative.factorizations < direct.factorizations,
            "iterative {} !< direct {}",
            iterative.factorizations,
            direct.factorizations
        );
        // Thread-count invariance, bit-exact, for both strategies.
        for ((a, b), what) in [
            ((&direct, &direct_threaded), "direct"),
            ((&iterative, &iterative_threaded), "iterative"),
        ] {
            for (ra, rb) in a.trajectory.iter().zip(&b.trajectory) {
                assert_eq!(ra.objective, rb.objective, "{what} iter {}", ra.iter);
            }
            for (ta, tb) in a.theta.iter().zip(&b.theta) {
                assert_eq!(ta, tb, "{what}");
            }
        }
    }

    /// The fused (corner × ω) lockstep batch must be an implementation
    /// detail: full broadband runs through the fused product and through
    /// the pre-fusion per-ω batches are **bit-identical** — for both
    /// spectral aggregations, healthy and starved iteration budgets (the
    /// starved case drives every perturbed (corner, ω) column through the
    /// budget-miss → direct-fallback path), serial and threaded.
    #[test]
    fn fused_product_runs_are_bit_identical_to_per_omega_runs() {
        use boson_fab::SpectralAxis;
        let axis = SpectralAxis::around(0.02, 3);
        let compiled = CompiledProblem::compile_spectral(bending(), axis).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace {
            spectral: axis,
            ..VariationSpace::default()
        };
        let healthy = SolverStrategy::preconditioned_iterative();
        let starved = SolverStrategy::PreconditionedIterative {
            tol: 1e-300,
            max_iters: 1,
        };
        let cases = [
            (SpectralAggregation::Mean, healthy, 1usize),
            (SpectralAggregation::Mean, healthy, 4),
            (SpectralAggregation::WorstCase, healthy, 1),
            (SpectralAggregation::Mean, starved, 1),
            (SpectralAggregation::WorstCase, starved, 1),
        ];
        for (agg, solver, threads) in cases {
            let run = |fused: bool| {
                let mut designer = InverseDesigner::new(
                    &compiled,
                    &param,
                    standard_chain(&problem),
                    space.clone(),
                    RunnerConfig {
                        solver,
                        spectral_agg: agg,
                        ..tiny_config(threads, SamplingStrategy::AxialSingleSided)
                    },
                );
                designer.fused_sweep = fused;
                let mut rng = StdRng::seed_from_u64(3);
                let theta0 = designer.initial_theta(&mut rng);
                designer.run(theta0)
            };
            let fused = run(true);
            let per_omega = run(false);
            let tag = format!("{agg:?}/{solver:?}/threads={threads}");
            assert_eq!(
                fused.factorizations, per_omega.factorizations,
                "{tag}: factorisation counts diverged"
            );
            for (rf, rp) in fused.trajectory.iter().zip(&per_omega.trajectory) {
                assert_eq!(rf.objective, rp.objective, "{tag} iter {}", rf.iter);
                assert_eq!(rf.fom_nominal, rp.fom_nominal, "{tag} iter {}", rf.iter);
            }
            for (tf, tp) in fused.theta.iter().zip(&per_omega.theta) {
                assert_eq!(tf, tp, "{tag}");
            }
        }
    }

    /// The subspace scheduler with `M =` the full product must be a pure
    /// no-op: runs are **bit-identical** to the scheduler-disabled fused
    /// pipeline — for both aggregations, serial and threaded — and the
    /// telemetry records every iteration as a full sweep.
    #[test]
    fn subspace_full_m_runs_are_bit_identical_to_full_sweeps() {
        use crate::subspace::SubspaceConfig;
        use boson_fab::SpectralAxis;
        let axis = SpectralAxis::around(0.02, 3);
        let compiled = CompiledProblem::compile_spectral(bending(), axis).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace {
            spectral: axis,
            ..VariationSpace::default()
        };
        let columns = space.product_columns(SamplingStrategy::AxialSingleSided);
        assert_eq!(columns, 4 * 3);
        for agg in [SpectralAggregation::Mean, SpectralAggregation::WorstCase] {
            for threads in [1usize, 4] {
                let run = |subspace: SubspaceConfig| {
                    let mut designer = InverseDesigner::new(
                        &compiled,
                        &param,
                        standard_chain(&problem),
                        space.clone(),
                        RunnerConfig {
                            solver: SolverStrategy::preconditioned_iterative(),
                            spectral_agg: agg,
                            subspace,
                            ..tiny_config(threads, SamplingStrategy::AxialSingleSided)
                        },
                    );
                    let mut rng = StdRng::seed_from_u64(3);
                    let theta0 = designer.initial_theta(&mut rng);
                    designer.run(theta0)
                };
                let disabled = run(SubspaceConfig::default());
                let full_m = run(SubspaceConfig::with_active_columns(columns));
                let tag = format!("{agg:?}/threads={threads}");
                assert_eq!(
                    disabled.factorizations, full_m.factorizations,
                    "{tag}: factorisation counts diverged"
                );
                for (rd, rf) in disabled.trajectory.iter().zip(&full_m.trajectory) {
                    assert_eq!(rd.objective, rf.objective, "{tag} iter {}", rd.iter);
                    assert_eq!(rd.fom_nominal, rf.fom_nominal, "{tag} iter {}", rd.iter);
                }
                for (td, tf) in disabled.theta.iter().zip(&full_m.theta) {
                    assert_eq!(td, tf, "{tag}");
                }
                // Telemetry: disabled = no record; M = full = every
                // iteration a full sweep.
                assert!(disabled.trajectory.iter().all(|r| r.active_set.is_none()));
                for r in &full_m.trajectory {
                    let rec = r.active_set.expect("scheduler enabled");
                    assert_eq!(rec.active_columns, columns);
                    assert_eq!(rec.product_columns, columns);
                    assert!(rec.refresh);
                }
            }
        }
    }

    /// `M = 1` clamps to the forced set — the fabrication-nominal corner
    /// at every wavelength — so partial iterations evaluate exactly K
    /// columns (and one fabrication forward), while refresh epochs still
    /// sweep everything.
    #[test]
    fn subspace_m1_degenerates_to_nominal_only_between_refreshes() {
        use crate::subspace::SubspaceConfig;
        use boson_fab::SpectralAxis;
        let axis = SpectralAxis::around(0.02, 3);
        let compiled = CompiledProblem::compile_spectral(bending(), axis).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace {
            spectral: axis,
            ..VariationSpace::default()
        };
        let columns = space.product_columns(SamplingStrategy::AxialSingleSided);
        let mut designer = InverseDesigner::new(
            &compiled,
            &param,
            standard_chain(&problem),
            space,
            RunnerConfig {
                iterations: 4,
                solver: SolverStrategy::preconditioned_iterative(),
                subspace: SubspaceConfig {
                    refresh_every: 3,
                    ..SubspaceConfig::with_active_columns(1)
                },
                sampling: SamplingStrategy::AxialSingleSided,
                relaxation: RelaxationSchedule::over(1),
                threads: 1,
                ..RunnerConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let theta0 = designer.initial_theta(&mut rng);
        let res = designer.run(theta0);
        assert_eq!(res.trajectory.len(), 4);
        for r in &res.trajectory {
            let rec = r.active_set.expect("scheduler enabled");
            assert_eq!(rec.product_columns, columns);
            if r.iter % 3 == 0 {
                assert!(rec.refresh, "iter {}", r.iter);
                assert_eq!(rec.active_columns, columns, "iter {}", r.iter);
            } else {
                assert!(!rec.refresh, "iter {}", r.iter);
                // The forced set alone: the nominal corner's 3 columns.
                assert_eq!(rec.active_columns, 3, "iter {}", r.iter);
            }
            assert!(r.objective.is_finite());
        }
    }

    /// A partial subspace schedule must be an implementation detail of
    /// the sweep *engine* too: runs through the fused product and through
    /// the per-ω reference batches are bit-identical under the same
    /// partial schedule, and thread-count invariant.
    #[test]
    fn subspace_partial_runs_are_engine_and_thread_invariant() {
        use crate::subspace::SubspaceConfig;
        use boson_fab::SpectralAxis;
        let axis = SpectralAxis::around(0.02, 3);
        let compiled = CompiledProblem::compile_spectral(bending(), axis).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace {
            spectral: axis,
            ..VariationSpace::default()
        };
        let run = |fused: bool, threads: usize| {
            let mut designer = InverseDesigner::new(
                &compiled,
                &param,
                standard_chain(&problem),
                space.clone(),
                RunnerConfig {
                    iterations: 4,
                    solver: SolverStrategy::preconditioned_iterative(),
                    spectral_agg: SpectralAggregation::WorstCase,
                    subspace: SubspaceConfig {
                        refresh_every: 3,
                        ..SubspaceConfig::with_active_columns(6)
                    },
                    sampling: SamplingStrategy::AxialSingleSided,
                    relaxation: RelaxationSchedule::over(1),
                    threads,
                    ..RunnerConfig::default()
                },
            );
            designer.fused_sweep = fused;
            let mut rng = StdRng::seed_from_u64(3);
            let theta0 = designer.initial_theta(&mut rng);
            designer.run(theta0)
        };
        let base = run(true, 1);
        // Some iteration actually ran partial (6 of 12 columns).
        assert!(base
            .trajectory
            .iter()
            .any(|r| r.active_set.is_some_and(|rec| rec.active_columns == 6)));
        for (what, other) in [("per-ω", run(false, 1)), ("threaded", run(true, 4))] {
            assert_eq!(base.factorizations, other.factorizations, "{what}");
            for (ra, rb) in base.trajectory.iter().zip(&other.trajectory) {
                assert_eq!(ra.objective, rb.objective, "{what} iter {}", ra.iter);
                assert_eq!(ra.active_set, rb.active_set, "{what} iter {}", ra.iter);
            }
            for (ta, tb) in base.theta.iter().zip(&other.theta) {
                assert_eq!(ta, tb, "{what}");
            }
        }
    }

    /// The refresh epoch composes with [`CornerPolicy`] direct-pinning: a
    /// corner pinned during a partial sweep stays pinned through refresh
    /// epochs (and vice versa) — the policy is keyed by (corner, ω)
    /// label, not by schedule.
    #[test]
    fn subspace_schedule_composes_with_corner_policy_pinning() {
        use crate::subspace::SubspaceConfig;
        use boson_fab::SpectralAxis;
        let axis = SpectralAxis::around(0.02, 3);
        let compiled = CompiledProblem::compile_spectral(bending(), axis).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace {
            spectral: axis,
            ..VariationSpace::default()
        };
        // A starved budget: every evaluated varied column falls back and
        // is pinned.
        let mut designer = InverseDesigner::new(
            &compiled,
            &param,
            standard_chain(&problem),
            space,
            RunnerConfig {
                iterations: 4,
                solver: SolverStrategy::PreconditionedIterative {
                    tol: 1e-300,
                    max_iters: 1,
                },
                subspace: SubspaceConfig {
                    refresh_every: 3,
                    ..SubspaceConfig::with_active_columns(6)
                },
                sampling: SamplingStrategy::AxialSingleSided,
                relaxation: RelaxationSchedule::over(1),
                threads: 1,
                ..RunnerConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let theta0 = designer.initial_theta(&mut rng);
        let res = designer.run(theta0);
        assert_eq!(res.trajectory.len(), 4);
        // The full product's varied stable columns: 3 varied corners × 3
        // ω — all seen by the iteration-0 refresh epoch, all pinned.
        let marked = designer.policy.direct.lock().unwrap().len();
        assert_eq!(marked, 9, "refresh epoch should pin every hard column");
    }

    /// Enabling the scheduler under the direct strategy is refused up
    /// front (partial products ride the fused batch).
    #[test]
    #[should_panic(expected = "PreconditionedIterative")]
    fn subspace_with_direct_strategy_panics() {
        use crate::subspace::SubspaceConfig;
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let _ = InverseDesigner::new(
            &compiled,
            &param,
            standard_chain(&problem),
            VariationSpace::default(),
            RunnerConfig {
                subspace: SubspaceConfig::with_active_columns(3),
                ..tiny_config(1, SamplingStrategy::AxialSingleSided)
            },
        );
    }

    /// A K > 1 variation space requires a matching spectral compilation.
    #[test]
    #[should_panic(expected = "compiled for")]
    fn spectral_space_against_single_omega_problem_panics() {
        use boson_fab::SpectralAxis;
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace {
            spectral: SpectralAxis::around(0.02, 3),
            ..VariationSpace::default()
        };
        let _ = InverseDesigner::new(
            &compiled,
            &param,
            standard_chain(&problem),
            space,
            tiny_config(1, SamplingStrategy::AxialSingleSided),
        );
    }

    /// With the temporal axis disabled (the default [`RecycleConfig`]),
    /// broadband runs are **bit-identical** to the eager pre-recycling
    /// pipeline — regression-tested against the per-ω reference engine
    /// for both aggregations, serial and threaded. The disabled config
    /// must be a pure no-op: same solves, same factors, same arithmetic
    /// order.
    #[test]
    fn recycle_disabled_runs_are_bit_identical_to_eager_pipeline() {
        use boson_fab::SpectralAxis;
        let axis = SpectralAxis::around(0.02, 3);
        let compiled = CompiledProblem::compile_spectral(bending(), axis).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace {
            spectral: axis,
            ..VariationSpace::default()
        };
        for agg in [SpectralAggregation::Mean, SpectralAggregation::WorstCase] {
            for threads in [1usize, 4] {
                let run = |fused: bool| {
                    let mut designer = InverseDesigner::new(
                        &compiled,
                        &param,
                        standard_chain(&problem),
                        space.clone(),
                        RunnerConfig {
                            solver: SolverStrategy::preconditioned_iterative(),
                            spectral_agg: agg,
                            recycle: RecycleConfig::default(),
                            ..tiny_config(threads, SamplingStrategy::AxialSingleSided)
                        },
                    );
                    designer.fused_sweep = fused;
                    let mut rng = StdRng::seed_from_u64(3);
                    let theta0 = designer.initial_theta(&mut rng);
                    designer.run(theta0)
                };
                let fused = run(true);
                let per_omega = run(false);
                let tag = format!("{agg:?}/threads={threads}");
                assert_eq!(fused.factorizations, per_omega.factorizations, "{tag}");
                for (rf, rp) in fused.trajectory.iter().zip(&per_omega.trajectory) {
                    assert_eq!(rf.objective, rp.objective, "{tag} iter {}", rf.iter);
                    assert_eq!(rf.fom_nominal, rp.fom_nominal, "{tag} iter {}", rf.iter);
                    assert_eq!(
                        rf.factorizations, rp.factorizations,
                        "{tag} iter {}",
                        rf.iter
                    );
                }
                for (tf, tp) in fused.theta.iter().zip(&per_omega.theta) {
                    assert_eq!(tf, tp, "{tag}");
                }
            }
        }
    }

    /// The armed temporal axis — Krylov recycling + lagged nominal
    /// factors — reproduces the eager trajectory to solver tolerance
    /// while factoring strictly fewer operators, stays serial ↔ threaded
    /// bit-identical, and reports the win through the new per-iteration
    /// telemetry (refactor counts and mean BiCGSTAB iterations).
    #[test]
    fn recycling_matches_eager_to_tolerance_and_saves_factorizations() {
        use boson_fab::SpectralAxis;
        let axis = SpectralAxis::around(0.02, 3);
        let compiled = CompiledProblem::compile_spectral(bending(), axis).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let space = VariationSpace {
            spectral: axis,
            ..VariationSpace::default()
        };
        let run = |recycle: RecycleConfig, threads: usize| {
            let mut designer = InverseDesigner::new(
                &compiled,
                &param,
                standard_chain(&problem),
                space.clone(),
                RunnerConfig {
                    iterations: 4,
                    solver: SolverStrategy::PreconditionedIterative {
                        tol: 1e-10,
                        max_iters: 40,
                    },
                    spectral_agg: SpectralAggregation::WorstCase,
                    recycle,
                    sampling: SamplingStrategy::AxialSingleSided,
                    relaxation: RelaxationSchedule::over(1),
                    threads,
                    ..RunnerConfig::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(3);
            let theta0 = designer.initial_theta(&mut rng);
            designer.run(theta0)
        };
        let eager = run(RecycleConfig::default(), 1);
        let recycled = run(RecycleConfig::enabled(), 1);
        let recycled_threaded = run(RecycleConfig::enabled(), 4);
        for (re, rr) in eager.trajectory.iter().zip(&recycled.trajectory) {
            assert!(
                (re.objective - rr.objective).abs() < 1e-6 * (1.0 + re.objective.abs()),
                "iter {}: eager {} vs recycled {}",
                re.iter,
                re.objective,
                rr.objective
            );
        }
        assert!(
            recycled.factorizations < eager.factorizations,
            "recycled {} !< eager {}",
            recycled.factorizations,
            eager.factorizations
        );
        // Telemetry: the first epoch builds every ω factor; lag-kept
        // steady-state epochs refactor less (here: not at all beyond the
        // free term), and iterative solves report a positive mean.
        let first = &recycled.trajectory[0];
        assert!(first.factorizations >= 3, "epoch 0 builds the ω factors");
        for r in &recycled.trajectory[1..] {
            assert!(
                r.factorizations < first.factorizations,
                "iter {}: {} refactors !< epoch-0 {}",
                r.iter,
                r.factorizations,
                first.factorizations
            );
            assert!(r.mean_bicgstab_iterations > 0.0, "iter {}", r.iter);
        }
        // Recycling keeps the serial ↔ threaded invariance: the deflation
        // pre-pass and harvests run outside the threaded sweep split.
        assert_eq!(recycled.factorizations, recycled_threaded.factorizations);
        for (ra, rb) in recycled
            .trajectory
            .iter()
            .zip(&recycled_threaded.trajectory)
        {
            assert_eq!(ra.objective, rb.objective, "iter {}", ra.iter);
            assert_eq!(
                ra.mean_bicgstab_iterations, rb.mean_bicgstab_iterations,
                "iter {}",
                ra.iter
            );
        }
        for (ta, tb) in recycled.theta.iter().zip(&recycled_threaded.theta) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn nominal_only_runs_without_pool() {
        let compiled = CompiledProblem::compile(bending()).unwrap();
        let problem = compiled.problem().clone();
        let param = levelset_param(&problem, false);
        let mut designer = InverseDesigner::new(
            &compiled,
            &param,
            standard_chain(&problem),
            VariationSpace::default(),
            tiny_config(8, SamplingStrategy::NominalOnly),
        );
        assert_eq!(designer.pool_threads(), 0, "one corner needs no pool");
        let mut rng = StdRng::seed_from_u64(3);
        let theta0 = designer.initial_theta(&mut rng);
        let res = designer.run(theta0);
        assert_eq!(res.trajectory.len(), 2);
        assert!(res.factorizations > 0);
    }
}
