//! The BOSON-1 optimisation loop.
//!
//! One iteration of the full method:
//!
//! 1. materialise the density `ρ = P(θ)`;
//! 2. draw the variation corners (axial set; plus a worst-case corner
//!    from one gradient-ascent step on `(T, ξ)` at the nominal corner);
//! 3. for every corner, run the fabrication model and the FDFD forward +
//!    adjoint simulations *in parallel* (one thread per corner), chaining
//!    the field gradient back through etch → litho → `ρ`;
//! 4. blend the fab-aware gradient with the unrestricted "tunnel"
//!    gradient according to the relaxation schedule `p`;
//! 5. back-propagate through the parameterisation and take an Adam step.
//!
//! Baselines reuse the same loop with features disabled (`fab_aware =
//! false`, sparse objective, nominal-only sampling, random init …), which
//! is exactly how the paper's ablation table is generated.

use crate::compiled::CompiledProblem;
use crate::fabchain::{assemble_eps, grad_eps_to_rho, grad_temperature, FabChain};
use crate::objective::{ObjectiveSpec, Readings};
use crate::optimizer::{Adam, AdamConfig};
use crate::schedule::{BetaSchedule, RelaxationSchedule};
use boson_fab::{EtchProjection, SamplingStrategy, VariationCorner, VariationSpace};
use boson_num::Array2;
use boson_param::Parameterization;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How to initialise the latent variables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitKind {
    /// Light-concentrated seed from the problem's geometry (§III-D3).
    Seeded,
    /// Uniform random in `[-amplitude, amplitude]` — the ablation's
    /// "random init".
    Random {
        /// Half-width of the uniform distribution.
        amplitude: f64,
    },
}

/// Full runner configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Optimisation iterations.
    pub iterations: usize,
    /// Adam hyper-parameters.
    pub adam: AdamConfig,
    /// Variation sampling strategy.
    pub sampling: SamplingStrategy,
    /// Conditional subspace relaxation schedule.
    pub relaxation: RelaxationSchedule,
    /// Etch-projection sharpening (start, end β).
    pub beta_start: f64,
    /// Final β of the sharpening schedule.
    pub beta_end: f64,
    /// Keep the dense auxiliary objectives? (`false` = sparse baseline.)
    pub dense_objectives: bool,
    /// Optimise through the fabrication model? (`false` = free-space
    /// baseline à la Density/LS.)
    pub fab_aware: bool,
    /// Initialisation.
    pub init: InitKind,
    /// RNG seed (corner draws, random init).
    pub seed: u64,
    /// Worker threads for corner evaluation.
    pub threads: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            iterations: 40,
            adam: AdamConfig::default(),
            sampling: SamplingStrategy::AxialPlusWorst,
            relaxation: RelaxationSchedule::over(20),
            beta_start: 10.0,
            beta_end: 40.0,
            dense_objectives: true,
            fab_aware: true,
            init: InitKind::Seeded,
            seed: 7,
            threads: 8,
        }
    }
}

/// One trajectory sample (Fig. 5 data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index.
    pub iter: usize,
    /// Combined (robust) objective value.
    pub objective: f64,
    /// Nominal-corner figure of merit.
    pub fom_nominal: f64,
    /// Nominal-corner readings (fab-aware when available, otherwise the
    /// unrestricted model's own view).
    pub readings_nominal: Readings,
    /// Relaxation weight `p` used this iteration.
    pub p: f64,
}

/// Result of an optimisation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final latent variables.
    pub theta: Vec<f64>,
    /// Final mask `ρ = P(θ)` (continuous, pre-binarisation).
    pub mask: Array2<f64>,
    /// Per-iteration trace.
    pub trajectory: Vec<IterationRecord>,
    /// Total linear-system factorisations (simulation cost proxy).
    pub factorizations: usize,
}

/// Per-corner evaluation output.
struct CornerOutcome {
    objective: f64,
    fom: f64,
    readings: Readings,
    v_mask: Array2<f64>,
    /// `(d obj/dT, d obj/dξ)` — only filled for the nominal corner.
    variation_grads: Option<(f64, Vec<f64>)>,
}

/// The optimisation driver.
pub struct InverseDesigner<'a, P: Parameterization + Sync> {
    compiled: &'a CompiledProblem,
    param: &'a P,
    chain: FabChain,
    space: VariationSpace,
    config: RunnerConfig,
    objective: ObjectiveSpec,
}

impl<'a, P: Parameterization + Sync> InverseDesigner<'a, P> {
    /// Creates a designer.
    ///
    /// # Panics
    ///
    /// Panics if the parameterisation shape disagrees with the problem's
    /// design region.
    pub fn new(
        compiled: &'a CompiledProblem,
        param: &'a P,
        chain: FabChain,
        space: VariationSpace,
        config: RunnerConfig,
    ) -> Self {
        assert_eq!(
            param.design_shape(),
            compiled.problem().design_shape,
            "parameterisation/design-region shape mismatch"
        );
        let objective = if config.dense_objectives {
            compiled.problem().objective.clone()
        } else {
            compiled.problem().objective.sparse()
        };
        Self {
            compiled,
            param,
            chain,
            space,
            config,
            objective,
        }
    }

    /// The initial latent vector per the configuration.
    pub fn initial_theta(&self, rng: &mut StdRng) -> Vec<f64>
    where
        P: SeedableParam,
    {
        match self.config.init {
            InitKind::Seeded => self.param.theta_from_geometry(&self.compiled.problem().seed),
            InitKind::Random { amplitude } => (0..self.param.num_params())
                .map(|_| rng.gen_range(-amplitude..amplitude))
                .collect(),
        }
    }

    /// Evaluates one corner: fabrication forward, EM forward + adjoint,
    /// chain backward. `want_variation_grads` additionally produces
    /// `(dT, dξ)` for the worst-case search.
    fn eval_corner(
        &self,
        rho: &Array2<f64>,
        corner: &VariationCorner,
        want_variation_grads: bool,
    ) -> CornerOutcome {
        let problem = self.compiled.problem();
        let fwd = self.chain.forward(rho, corner, false);
        let eps = assemble_eps(
            &problem.background_solid,
            problem.design_origin,
            &fwd.rho_fab,
            corner.temperature,
        );
        let ev = self
            .compiled
            .evaluate_eps_with(&eps, true, &self.objective)
            .expect("corner simulation failed");
        let grad_eps = ev.grad_eps.as_ref().expect("gradient requested");
        let v_rho = grad_eps_to_rho(
            grad_eps,
            problem.design_origin,
            problem.design_shape,
            corner.temperature,
        );
        let v_mask = self.chain.vjp_mask(&fwd, &v_rho);
        let variation_grads = if want_variation_grads {
            let dt = grad_temperature(
                grad_eps,
                &problem.background_solid,
                problem.design_origin,
                &fwd.rho_fab,
                corner.temperature,
            );
            let dxi = self.chain.vjp_xi(&fwd, &v_rho);
            Some((dt, dxi))
        } else {
            None
        };
        CornerOutcome {
            objective: ev.objective,
            fom: ev.fom,
            readings: ev.readings,
            v_mask,
            variation_grads,
        }
    }

    /// Evaluates the unrestricted ("ideal") term: the raw density drives
    /// the permittivity directly, bypassing litho and etch.
    fn eval_free(&self, rho: &Array2<f64>) -> (f64, f64, Readings, Array2<f64>) {
        let problem = self.compiled.problem();
        let eps = assemble_eps(
            &problem.background_solid,
            problem.design_origin,
            rho,
            boson_fab::temperature::T_NOMINAL,
        );
        let ev = self
            .compiled
            .evaluate_eps_with(&eps, true, &self.objective)
            .expect("free simulation failed");
        let v_rho = grad_eps_to_rho(
            ev.grad_eps.as_ref().expect("gradient requested"),
            problem.design_origin,
            problem.design_shape,
            boson_fab::temperature::T_NOMINAL,
        );
        (ev.objective, ev.fom, ev.readings, v_rho)
    }

    /// Runs the optimisation from `theta0`.
    pub fn run(&mut self, theta0: Vec<f64>) -> RunResult {
        let mut theta = theta0;
        assert_eq!(theta.len(), self.param.num_params(), "theta length mismatch");
        let mut adam = Adam::new(theta.len(), self.config.adam);
        let beta_sched = BetaSchedule::new(
            self.config.beta_start,
            self.config.beta_end,
            self.config.iterations.max(1),
        );
        let mut trajectory = Vec::with_capacity(self.config.iterations);
        let mut factorizations = 0usize;
        let (dr, dc) = self.param.design_shape();

        for iter in 0..self.config.iterations {
            self.chain.set_etch(EtchProjection::new(beta_sched.beta(iter)));
            let rho = self.param.forward(&theta);
            let p = if self.config.fab_aware {
                self.config.relaxation.p(iter)
            } else {
                0.0
            };

            let mut v_mask_total = Array2::<f64>::zeros(dr, dc);
            let mut objective = 0.0;
            let mut nominal_readings: Option<(Readings, f64)> = None;

            if self.config.fab_aware {
                let mut rng = StdRng::seed_from_u64(self.config.seed ^ (iter as u64).wrapping_mul(0x9E37));
                let mut corners = self.space.corners(self.config.sampling, &mut rng);
                // Identify the nominal corner for worst-case gradients and
                // trajectory recording.
                let nominal_idx = corners.iter().position(|c| !c.is_varied());
                let outcomes = self.eval_corners_parallel(&rho, &corners, nominal_idx);
                factorizations += corners.len();

                // Worst-case corner from the nominal gradients.
                let mut all_outcomes = outcomes;
                if self.config.sampling.needs_worst_case() {
                    if let Some(ni) = nominal_idx {
                        if let Some((dt, dxi)) = &all_outcomes[ni].variation_grads {
                            let worst = self.space.worst_case_corner(*dt, dxi);
                            let o = self.eval_corner(&rho, &worst, false);
                            factorizations += 1;
                            corners.push(worst);
                            all_outcomes.push(o);
                        }
                    }
                }
                let w = 1.0 / all_outcomes.len() as f64;
                let mut obj_fab = 0.0;
                let mut v_fab = Array2::<f64>::zeros(dr, dc);
                for (ci, o) in all_outcomes.iter().enumerate() {
                    obj_fab += w * o.objective;
                    for (dst, src) in v_fab.as_mut_slice().iter_mut().zip(o.v_mask.as_slice()) {
                        *dst += w * src;
                    }
                    if Some(ci) == nominal_idx {
                        nominal_readings = Some((o.readings.clone(), o.fom));
                    }
                }
                objective += p * obj_fab;
                for (dst, src) in v_mask_total.as_mut_slice().iter_mut().zip(v_fab.as_slice()) {
                    *dst += p * src;
                }
            }

            if p < 1.0 {
                let (obj_free, fom_free, readings_free, v_free) = self.eval_free(&rho);
                factorizations += 1;
                objective += (1.0 - p) * obj_free;
                for (dst, src) in v_mask_total.as_mut_slice().iter_mut().zip(v_free.as_slice()) {
                    *dst += (1.0 - p) * src;
                }
                if nominal_readings.is_none() {
                    nominal_readings = Some((readings_free, fom_free));
                }
            }

            let grad_theta = self.param.vjp(&theta, &v_mask_total);
            adam.step(&mut theta, &grad_theta);

            let (readings_nominal, fom_nominal) =
                nominal_readings.expect("at least one term evaluated");
            trajectory.push(IterationRecord {
                iter,
                objective,
                fom_nominal,
                readings_nominal,
                p,
            });
        }

        let mask = self.param.forward(&theta);
        RunResult {
            theta,
            mask,
            trajectory,
            factorizations,
        }
    }

    /// Evaluates a corner set in parallel with scoped threads.
    fn eval_corners_parallel(
        &self,
        rho: &Array2<f64>,
        corners: &[VariationCorner],
        nominal_idx: Option<usize>,
    ) -> Vec<CornerOutcome> {
        let threads = self.config.threads.max(1).min(corners.len().max(1));
        if threads <= 1 || corners.len() <= 1 {
            return corners
                .iter()
                .enumerate()
                .map(|(ci, c)| self.eval_corner(rho, c, Some(ci) == nominal_idx))
                .collect();
        }
        let mut slots: Vec<Option<CornerOutcome>> = Vec::new();
        slots.resize_with(corners.len(), || None);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots_mutex = parking_lot::Mutex::new(&mut slots);
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let ci = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if ci >= corners.len() {
                        break;
                    }
                    let out = self.eval_corner(rho, &corners[ci], Some(ci) == nominal_idx);
                    slots_mutex.lock()[ci] = Some(out);
                });
            }
        })
        .expect("corner evaluation thread panicked");
        slots.into_iter().map(|s| s.expect("slot filled")).collect()
    }
}

/// Parameterisations that can be seeded from geometry (both built-in
/// parameterisations implement this).
pub trait SeedableParam: Parameterization {
    /// Latent variables reproducing (approximately) the given geometry.
    fn theta_from_geometry(&self, geometry: &boson_param::sdf::Geometry) -> Vec<f64>;
}

impl SeedableParam for boson_param::LevelSetParam {
    fn theta_from_geometry(&self, geometry: &boson_param::sdf::Geometry) -> Vec<f64> {
        boson_param::LevelSetParam::theta_from_geometry(self, geometry)
    }
}

impl SeedableParam for boson_param::DensityParam {
    fn theta_from_geometry(&self, geometry: &boson_param::sdf::Geometry) -> Vec<f64> {
        boson_param::DensityParam::theta_from_geometry(self, geometry)
    }
}
