//! Objective and auxiliary-constraint specification (paper Eq. 2).
//!
//! The conventional inverse-design objective is a single *sparse* reading
//! (power at one output monitor), which the paper shows yields a hostile
//! loss landscape with vanishing gradients. BOSON-1 adds *dense* auxiliary
//! objectives — hinge penalties on extra monitors (reflection, radiation,
//! crosstalk) — that vanish once satisfied, leaving the main objective in
//! charge near convergence.
//!
//! Objectives are always *maximised* here; "minimise contrast" is encoded
//! as maximising its negation.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Numerical floor added to denominators in ratio objectives.
pub const RATIO_FLOOR: f64 = 1e-6;

/// Direction of an auxiliary constraint bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bound {
    /// Reading must be at least this value (e.g. transmission ≥ 0.8).
    AtLeast(f64),
    /// Reading must be at most this value (e.g. reflection ≤ 0.1).
    AtMost(f64),
}

/// One auxiliary penalty term `w·[F_i − C_i]₊`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Excitation index the monitored reading belongs to.
    pub excitation: usize,
    /// Monitor name within that excitation.
    pub monitor: String,
    /// Bound direction and value.
    pub bound: Bound,
    /// Penalty weight `w_i`.
    pub weight: f64,
}

/// The main (reported) figure of merit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MainObjective {
    /// Maximise one monitor power (bending / crossing transmission).
    MaximizePower {
        /// Excitation index.
        excitation: usize,
        /// Monitor name.
        monitor: String,
    },
    /// Minimise the isolation contrast `Σ bwd / (fwd + δ)`.
    MinimizeContrast {
        /// Forward-transmission reading `(excitation, monitor)`.
        fwd: (usize, String),
        /// Backward-leak readings, summed.
        bwd: Vec<(usize, String)>,
    },
}

/// Full objective: main FoM plus dense auxiliary penalties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveSpec {
    /// The main objective.
    pub main: MainObjective,
    /// Auxiliary hinge constraints (may be emptied to model the sparse
    /// baseline objective).
    pub constraints: Vec<Constraint>,
}

/// Monitor readings for all excitations: `readings[excitation][monitor]`.
pub type Readings = Vec<HashMap<String, f64>>;

/// How the per-wavelength objective values of one fabrication corner
/// combine into its contribution to the robust objective (the spectral
/// axis' analogue of the corner-weighted sum).
///
/// Both variants expose exact gradients through
/// [`SpectralAggregation::weights_into`]: the aggregate is a weighted sum
/// `Σ w_k·obj_k` with `Σ w_k = 1` and `∂agg/∂obj_k = w_k` (for
/// [`SpectralAggregation::WorstCase`] this is the subgradient at the
/// active wavelength, exact almost everywhere), so the per-ω adjoint
/// gradients flow through unchanged — no finite differencing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SpectralAggregation {
    /// Uniform average over the K wavelengths. With `K = 1` this is the
    /// identity, reproducing the single-ω pipeline bit-identically.
    #[default]
    Mean,
    /// The worst wavelength dominates: the aggregate is `min_k obj_k`
    /// (objectives are maximised), all weight on the first minimiser.
    WorstCase,
}

impl SpectralAggregation {
    /// The aggregate of `values` (one objective per wavelength).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn aggregate(&self, values: &[f64]) -> f64 {
        assert!(!values.is_empty(), "no wavelengths to aggregate");
        match self {
            // Σ (w·v) with w = 1/K, matching `weights_into` term-for-term
            // so aggregate and gradient weights are exactly consistent
            // (and K = 1 reduces to `1.0 * v`, bit-identical to v alone
            // inside the runner's weighted corner sum).
            SpectralAggregation::Mean => {
                let w = 1.0 / values.len() as f64;
                values.iter().map(|v| w * v).sum()
            }
            SpectralAggregation::WorstCase => values.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }

    /// The aggregate over the `active` subset of `values` — the partial
    /// sweep's view of a fabrication corner whose dormant wavelengths
    /// were not evaluated this iteration (the adaptive subspace
    /// scheduler, [`crate::subspace`]). Inactive entries are ignored
    /// entirely: they contribute neither value nor weight, exactly as if
    /// the corner's spectral axis had only its active samples.
    ///
    /// An all-`true` mask is **bit-identical** to
    /// [`SpectralAggregation::aggregate`] (same terms, same order), which
    /// is what makes the `M = full` subspace schedule indistinguishable
    /// from the fused full sweep.
    ///
    /// # Panics
    ///
    /// Panics if `values` and `active` disagree in length or the active
    /// subset is empty.
    pub fn aggregate_masked(&self, values: &[f64], active: &[bool]) -> f64 {
        assert_eq!(values.len(), active.len(), "mask length mismatch");
        let count = active.iter().filter(|&&a| a).count();
        assert!(count > 0, "no active wavelengths to aggregate");
        match self {
            SpectralAggregation::Mean => {
                let w = 1.0 / count as f64;
                values
                    .iter()
                    .zip(active)
                    .filter(|(_, &a)| a)
                    .map(|(v, _)| w * v)
                    .sum()
            }
            SpectralAggregation::WorstCase => values
                .iter()
                .zip(active)
                .filter(|(_, &a)| a)
                .map(|(&v, _)| v)
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Masked counterpart of [`SpectralAggregation::weights_into`]:
    /// gradient weights over the `active` subset, inactive entries
    /// receiving exactly `0.0` (their values are never read). An
    /// all-`true` mask is bit-identical to `weights_into`.
    ///
    /// # Panics
    ///
    /// Panics if the three slices disagree in length or the active subset
    /// is empty.
    pub fn weights_into_masked(&self, values: &[f64], active: &[bool], out: &mut [f64]) {
        assert_eq!(values.len(), active.len(), "mask length mismatch");
        assert_eq!(values.len(), out.len(), "weight buffer length mismatch");
        let count = active.iter().filter(|&&a| a).count();
        assert!(count > 0, "no active wavelengths to aggregate");
        out.fill(0.0);
        match self {
            SpectralAggregation::Mean => {
                let w = 1.0 / count as f64;
                for (o, &a) in out.iter_mut().zip(active) {
                    if a {
                        *o = w;
                    }
                }
            }
            SpectralAggregation::WorstCase => {
                // Same strict-< lowest-index tie-break as the unmasked
                // scan, restricted to the active entries.
                let mut argmin: Option<usize> = None;
                for (i, (&v, &a)) in values.iter().zip(active).enumerate() {
                    if a && argmin.is_none_or(|am| v < values[am]) {
                        argmin = Some(i);
                    }
                }
                out[argmin.expect("active subset is non-empty")] = 1.0;
            }
        }
    }

    /// Writes the per-wavelength gradient weights `w_k = ∂agg/∂obj_k`
    /// into `out` (`Σ w_k = 1`).
    ///
    /// [`SpectralAggregation::WorstCase`] puts all weight on the
    /// **lowest-index** minimiser: when two wavelengths share the exact
    /// minimum the subgradient is not unique, and a deterministic,
    /// order-independent tie-break (strict `<` scan from index 0) keeps
    /// the gradient — and therefore whole optimisation trajectories —
    /// reproducible across evaluation orders, serial ↔ threaded runs and
    /// fused ↔ per-ω sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `values` and `out` differ in length or are empty.
    pub fn weights_into(&self, values: &[f64], out: &mut [f64]) {
        assert!(!values.is_empty(), "no wavelengths to aggregate");
        assert_eq!(values.len(), out.len(), "weight buffer length mismatch");
        match self {
            SpectralAggregation::Mean => out.fill(1.0 / values.len() as f64),
            SpectralAggregation::WorstCase => {
                out.fill(0.0);
                // Explicit strict-< scan: ties keep the earliest ω index,
                // by construction rather than by iterator implementation
                // detail. (NaN objectives never win the scan; the runner
                // never produces them — the solver breaks down first.)
                let mut argmin = 0usize;
                for (i, &v) in values.iter().enumerate().skip(1) {
                    if v < values[argmin] {
                        argmin = i;
                    }
                }
                out[argmin] = 1.0;
            }
        }
    }
}

impl ObjectiveSpec {
    /// Copy of this spec with all auxiliary constraints removed — the
    /// conventional sparse objective used by the ablation/baselines.
    pub fn sparse(&self) -> ObjectiveSpec {
        ObjectiveSpec {
            main: self.main.clone(),
            constraints: Vec::new(),
        }
    }

    /// The *reported* figure of merit (higher-is-better for power
    /// objectives, the contrast itself for contrast objectives — callers
    /// know which way is up via [`ObjectiveSpec::fom_higher_is_better`]).
    pub fn fom(&self, readings: &Readings) -> f64 {
        match &self.main {
            MainObjective::MaximizePower {
                excitation,
                monitor,
            } => read(readings, *excitation, monitor),
            MainObjective::MinimizeContrast { fwd, bwd } => {
                let f = read(readings, fwd.0, &fwd.1);
                let b: f64 = bwd.iter().map(|(e, m)| read(readings, *e, m)).sum();
                b / (f + RATIO_FLOOR)
            }
        }
    }

    /// `true` when larger FoM values are better.
    pub fn fom_higher_is_better(&self) -> bool {
        matches!(self.main, MainObjective::MaximizePower { .. })
    }

    /// The scalar objective value that the optimiser maximises:
    /// main term minus penalty terms.
    pub fn objective(&self, readings: &Readings) -> f64 {
        let main = match &self.main {
            MainObjective::MaximizePower { .. } => self.fom(readings),
            MainObjective::MinimizeContrast { .. } => -self.fom(readings),
        };
        main - self.penalty(readings)
    }

    /// Total hinge penalty `Σ w_i·[violation]₊`.
    pub fn penalty(&self, readings: &Readings) -> f64 {
        self.constraints
            .iter()
            .map(|c| {
                let v = read(readings, c.excitation, &c.monitor);
                let violation = match c.bound {
                    Bound::AtLeast(t) => (t - v).max(0.0),
                    Bound::AtMost(t) => (v - t).max(0.0),
                };
                c.weight * violation
            })
            .sum()
    }

    /// Partial derivatives `∂objective/∂reading` for every reading that
    /// matters, as `(excitation, monitor, ∂obj/∂P)` triples.
    pub fn objective_grad(&self, readings: &Readings) -> Vec<(usize, String, f64)> {
        let mut grads: HashMap<(usize, String), f64> = HashMap::new();
        match &self.main {
            MainObjective::MaximizePower {
                excitation,
                monitor,
            } => {
                *grads.entry((*excitation, monitor.clone())).or_default() += 1.0;
            }
            MainObjective::MinimizeContrast { fwd, bwd } => {
                let f = read(readings, fwd.0, &fwd.1);
                let b: f64 = bwd.iter().map(|(e, m)| read(readings, *e, m)).sum();
                // obj_main = -b/(f+δ):  ∂/∂b_i = -1/(f+δ), ∂/∂f = b/(f+δ)².
                let denom = f + RATIO_FLOOR;
                for (e, m) in bwd {
                    *grads.entry((*e, m.clone())).or_default() += -1.0 / denom;
                }
                *grads.entry((fwd.0, fwd.1.clone())).or_default() += b / (denom * denom);
            }
        }
        for c in &self.constraints {
            let v = read(readings, c.excitation, &c.monitor);
            let g = match c.bound {
                // penalty = w(t−v)₊ ⇒ ∂obj/∂v = +w while violated.
                Bound::AtLeast(t) => {
                    if v < t {
                        c.weight
                    } else {
                        0.0
                    }
                }
                // penalty = w(v−t)₊ ⇒ ∂obj/∂v = −w while violated.
                Bound::AtMost(t) => {
                    if v > t {
                        -c.weight
                    } else {
                        0.0
                    }
                }
            };
            if g != 0.0 {
                *grads.entry((c.excitation, c.monitor.clone())).or_default() += g;
            }
        }
        grads.into_iter().map(|((e, m), g)| (e, m, g)).collect()
    }
}

fn read(readings: &Readings, excitation: usize, monitor: &str) -> f64 {
    *readings
        .get(excitation)
        .and_then(|m| m.get(monitor))
        .unwrap_or_else(|| panic!("missing reading: excitation {excitation} monitor {monitor}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn readings(pairs: &[(usize, &str, f64)]) -> Readings {
        let n = pairs.iter().map(|p| p.0).max().unwrap_or(0) + 1;
        let mut out: Readings = vec![HashMap::new(); n];
        for (e, m, v) in pairs {
            out[*e].insert((*m).to_owned(), *v);
        }
        out
    }

    fn power_spec() -> ObjectiveSpec {
        ObjectiveSpec {
            main: MainObjective::MaximizePower {
                excitation: 0,
                monitor: "trans".into(),
            },
            constraints: vec![
                Constraint {
                    excitation: 0,
                    monitor: "refl".into(),
                    bound: Bound::AtMost(0.1),
                    weight: 0.5,
                },
                Constraint {
                    excitation: 0,
                    monitor: "trans".into(),
                    bound: Bound::AtLeast(0.8),
                    weight: 1.0,
                },
            ],
        }
    }

    #[test]
    fn objective_without_violations_is_main() {
        let spec = power_spec();
        let r = readings(&[(0, "trans", 0.9), (0, "refl", 0.05)]);
        assert!((spec.objective(&r) - 0.9).abs() < 1e-12);
        assert_eq!(spec.penalty(&r), 0.0);
        assert_eq!(spec.fom(&r), 0.9);
        assert!(spec.fom_higher_is_better());
    }

    #[test]
    fn penalties_subtract_when_violated() {
        let spec = power_spec();
        let r = readings(&[(0, "trans", 0.5), (0, "refl", 0.3)]);
        // penalty = 0.5·(0.3−0.1) + 1.0·(0.8−0.5) = 0.1 + 0.3
        assert!((spec.penalty(&r) - 0.4).abs() < 1e-12);
        assert!((spec.objective(&r) - (0.5 - 0.4)).abs() < 1e-12);
    }

    #[test]
    fn gradient_signs() {
        let spec = power_spec();
        let r = readings(&[(0, "trans", 0.5), (0, "refl", 0.3)]);
        let grads = spec.objective_grad(&r);
        let g = |name: &str| -> f64 {
            grads
                .iter()
                .find(|(_, m, _)| m == name)
                .map(|(_, _, v)| *v)
                .unwrap_or(0.0)
        };
        // trans: main +1, violated AtLeast adds +1.
        assert!((g("trans") - 2.0).abs() < 1e-12);
        // refl: violated AtMost pushes down.
        assert!((g("refl") + 0.5).abs() < 1e-12);
    }

    #[test]
    fn contrast_objective_and_grad() {
        let spec = ObjectiveSpec {
            main: MainObjective::MinimizeContrast {
                fwd: (0, "trans3".into()),
                bwd: vec![(1, "leak0".into()), (1, "leak2".into())],
            },
            constraints: vec![],
        };
        let r = readings(&[(0, "trans3", 0.8), (1, "leak0", 0.02), (1, "leak2", 0.02)]);
        let c = spec.fom(&r);
        assert!((c - 0.04 / (0.8 + RATIO_FLOOR)).abs() < 1e-9);
        assert!(!spec.fom_higher_is_better());
        assert!((spec.objective(&r) + c).abs() < 1e-12);
        let grads = spec.objective_grad(&r);
        // Raising fwd power raises the objective; raising leaks lowers it.
        for (e, m, g) in &grads {
            if m == "trans3" {
                assert!(*g > 0.0, "({e},{m})");
            } else {
                assert!(*g < 0.0, "({e},{m})");
            }
        }
        // FD check on the objective gradient.
        let h = 1e-7;
        for (e, m, g) in grads {
            let mut rp = r.clone();
            *rp[e].get_mut(&m).unwrap() += h;
            let fd = (spec.objective(&rp) - spec.objective(&r)) / h;
            assert!(
                (fd - g).abs() < 1e-5 * (1.0 + fd.abs()),
                "({e},{m}): {fd} vs {g}"
            );
        }
    }

    #[test]
    fn sparse_strips_constraints() {
        let spec = power_spec();
        let sparse = spec.sparse();
        assert!(sparse.constraints.is_empty());
        let r = readings(&[(0, "trans", 0.2), (0, "refl", 0.9)]);
        assert_eq!(sparse.objective(&r), 0.2);
    }

    #[test]
    fn spectral_aggregation_values_and_weights() {
        let vs = [0.8, 0.3, 0.6];
        let mut w = [0.0; 3];

        let mean = SpectralAggregation::Mean;
        assert!((mean.aggregate(&vs) - (0.8 + 0.3 + 0.6) / 3.0).abs() < 1e-12);
        mean.weights_into(&vs, &mut w);
        assert!(w.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-12));

        let worst = SpectralAggregation::WorstCase;
        assert_eq!(worst.aggregate(&vs), 0.3);
        worst.weights_into(&vs, &mut w);
        assert_eq!(w, [0.0, 1.0, 0.0]);

        // The aggregate is the weight-consistent sum: Σ w·v == agg.
        for agg in [mean, worst] {
            agg.weights_into(&vs, &mut w);
            let sum: f64 = w.iter().zip(&vs).map(|(wk, v)| wk * v).sum();
            assert!((sum - agg.aggregate(&vs)).abs() < 1e-12, "{agg:?}");
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }

        // K = 1: both aggregations are the identity — the spectral axis
        // degenerates away exactly.
        for agg in [mean, worst] {
            assert_eq!(agg.aggregate(&[0.7]), 0.7, "{agg:?}");
            let mut w1 = [0.0];
            agg.weights_into(&[0.7], &mut w1);
            assert_eq!(w1, [1.0], "{agg:?}");
        }
    }

    #[test]
    fn masked_aggregation_ignores_inactive_entries() {
        let vs = [0.8, 0.3, 0.6];
        let mut w = [0.0; 3];
        for agg in [SpectralAggregation::Mean, SpectralAggregation::WorstCase] {
            // All-true mask: bit-identical to the unmasked API.
            let all = [true; 3];
            assert_eq!(
                agg.aggregate_masked(&vs, &all),
                agg.aggregate(&vs),
                "{agg:?}"
            );
            let mut wm = [0.0; 3];
            agg.weights_into(&vs, &mut w);
            agg.weights_into_masked(&vs, &all, &mut wm);
            assert_eq!(w, wm, "{agg:?}");
        }
        // Partial mask: the inactive middle entry (the global minimum)
        // contributes nothing — values or weights.
        let active = [true, false, true];
        let mean = SpectralAggregation::Mean;
        assert!((mean.aggregate_masked(&vs, &active) - (0.8 + 0.6) / 2.0).abs() < 1e-15);
        mean.weights_into_masked(&vs, &active, &mut w);
        assert_eq!(w, [0.5, 0.0, 0.5]);
        let worst = SpectralAggregation::WorstCase;
        assert_eq!(worst.aggregate_masked(&vs, &active), 0.6);
        worst.weights_into_masked(&vs, &active, &mut w);
        assert_eq!(w, [0.0, 0.0, 1.0]);
        // Inactive values are never read: poisoning them changes nothing.
        let poisoned = [0.8, f64::NAN, 0.6];
        assert_eq!(worst.aggregate_masked(&poisoned, &active), 0.6);
        worst.weights_into_masked(&poisoned, &active, &mut w);
        assert_eq!(w, [0.0, 0.0, 1.0]);
        // Ties among active entries keep the lowest active index.
        worst.weights_into_masked(&[0.5, 0.3, 0.3], &[false, true, true], &mut w);
        assert_eq!(w, [0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "no active wavelengths")]
    fn masked_aggregation_rejects_empty_active_set() {
        SpectralAggregation::Mean.aggregate_masked(&[1.0, 2.0], &[false, false]);
    }

    /// Two wavelengths sharing the exact minimum: the worst-case
    /// subgradient must deterministically pick the lowest ω index —
    /// whatever the tie's position — so gradients don't depend on
    /// evaluation order (the property that keeps serial ↔ threaded and
    /// fused ↔ per-ω runs bit-identical at a tie).
    #[test]
    fn worst_case_tied_minimum_takes_lowest_omega_index() {
        let worst = SpectralAggregation::WorstCase;
        let mut w = [0.0; 3];

        // Tie between indices 1 and 2 → weight on 1.
        worst.weights_into(&[0.8, 0.3, 0.3], &mut w);
        assert_eq!(w, [0.0, 1.0, 0.0]);
        // Tie between indices 0 and 2 → weight on 0.
        worst.weights_into(&[0.3, 0.8, 0.3], &mut w);
        assert_eq!(w, [1.0, 0.0, 0.0]);
        // All tied → weight on 0.
        worst.weights_into(&[0.3, 0.3, 0.3], &mut w);
        assert_eq!(w, [1.0, 0.0, 0.0]);
        // Signed zeros compare equal: -0.0 at a later index must not
        // displace +0.0 at an earlier one.
        let mut w2 = [0.0; 2];
        worst.weights_into(&[0.0, -0.0], &mut w2);
        assert_eq!(w2, [1.0, 0.0]);

        // The aggregate stays the weight-consistent sum at a tie, and the
        // gradient weights are reversal-stable: reversing the tied pair
        // moves the weight to the (new) lowest index, never "the one seen
        // last".
        let tied = [0.5, 0.2, 0.2];
        assert_eq!(worst.aggregate(&tied), 0.2);
        worst.weights_into(&tied, &mut w);
        let sum: f64 = w.iter().zip(&tied).map(|(wk, v)| wk * v).sum();
        assert_eq!(sum, worst.aggregate(&tied));
        let reversed = [0.2, 0.2, 0.5];
        worst.weights_into(&reversed, &mut w);
        assert_eq!(w, [1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "missing reading")]
    fn missing_reading_panics() {
        let spec = power_spec();
        let r = readings(&[(0, "trans", 0.5)]);
        let _ = spec.objective(&r);
    }
}
