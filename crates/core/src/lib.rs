//! # boson-core — BOSON-1: physically-robust photonic inverse design
//!
//! The paper's primary contribution, assembled from the substrate crates:
//!
//! * [`problem`] — the three device benchmarks (bending, crossing,
//!   isolator) with ports, monitors and dense objectives;
//! * [`compiled`] — benchmark compilation (modes, sources, calibration)
//!   and forward+adjoint evaluation of permittivity maps;
//! * [`fabchain`] — the compound differentiable fabrication mapping
//!   `T_t ∘ E_η ∘ L_l ∘ P` (paper Eq. 1) with exact VJPs;
//! * [`objective`] — dense auxiliary objectives / loss-landscape
//!   reshaping (Eq. 2);
//! * [`schedule`] — conditional subspace relaxation (Eq. 3) and etch
//!   projection sharpening;
//! * [`runner`] — the adaptive variation-aware optimisation loop with
//!   parallel corner evaluation and the worst-case corner search;
//! * [`subspace`] — the adaptive corner-subspace scheduler: per-(corner,
//!   ω) importance tracking that restricts each robust iteration to the
//!   top-M columns of the (fabrication corner × wavelength) cross
//!   product, with periodic full-sweep refresh epochs (§III);
//! * [`baselines`] — every comparison method from the paper's tables,
//!   including the two-stage InvFabCor mask-correction flow;
//! * [`eval`] — pre-fab vs Monte-Carlo post-fab evaluation;
//! * [`spectrum`] — finished-design wavelength sweeps at K solves per
//!   sweep (the spectral axis' evaluation counterpart: broadband robust
//!   *optimisation* runs through [`runner`] with a
//!   `boson_fab::SpectralAxis` in the variation space);
//! * [`optimizer`] — Adam.
//!
//! # Examples
//!
//! A miniature end-to-end run (tiny iteration budget; see
//! `examples/` for realistic ones):
//!
//! ```no_run
//! use boson_core::baselines::{run_method, BaseRunConfig, MethodSpec};
//! use boson_core::compiled::CompiledProblem;
//! use boson_core::problem::bending;
//!
//! let compiled = CompiledProblem::compile(bending()).unwrap();
//! let base = BaseRunConfig { iterations: 5, ..Default::default() };
//! let run = run_method(&compiled, &MethodSpec::boson1(5), &base);
//! println!("{}: {} factorisations", run.name, run.factorizations);
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod compiled;
pub mod eval;
pub mod fabchain;
pub mod objective;
pub mod optimizer;
pub mod pool;
pub mod problem;
pub mod runner;
pub mod schedule;
pub mod spectrum;
pub mod subspace;
