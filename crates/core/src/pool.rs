//! Persistent corner-evaluation fan-out on the process-wide substrate.
//!
//! The seed spawned a fresh set of scoped threads (plus a fresh results
//! mutex) for **every** corner batch of **every** optimisation iteration;
//! a first rework amortised that to one scoped spawn per optimisation
//! run. [`WorkerPool`] now spawns nothing at all: jobs are queued with
//! [`WorkerPool::submit`] and executed on the process-lifetime
//! [`boson_num::pool`] substrate — the same long-lived workers that drive
//! the fused preconditioner sweeps and the parallel multigrid column
//! chunks — so one pool serves direct fan-out, fused sweeps, and many
//! concurrent runs, and a steady-state robust iteration spawns **zero**
//! threads.
//!
//! What survives from the previous generations is the *worker-state*
//! contract: `make_worker(i)` builds one closure per worker lane,
//! capturing whatever expensive private state the caller wants kept warm
//! (an `EvalScratch` with its factor buffers, for the corner loop). The
//! substrate guarantees each lane index is owned by exactly one OS
//! thread per dispatch, which is what makes handing lane `i`'s closure
//! its jobs sound without any further locking.
//!
//! A panic inside a worker's job is caught, stored with the job's slot,
//! and re-raised on the thread calling [`WorkerPool::recv`] — matching
//! the loud-failure behaviour of the generations this replaces (a
//! silently hung run would otherwise be the failure mode).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use boson_num::pool::{self, DisjointSlots};

/// A fixed set of worker closures processing jobs of type `J` into
/// results of type `R` on the process-wide pool. `'env` is the lifetime
/// of whatever environment the worker closures borrow.
///
/// Results come back in **submission order** (the dispatch itself is
/// dynamic, but every queued job completes before the first
/// [`WorkerPool::recv`] returns, so ordering costs nothing); callers
/// that tag jobs with a slot index keep working unchanged.
pub struct WorkerPool<'env, J: Send, R: Send> {
    /// One closure per worker lane, each owning its private state.
    workers: Vec<Box<dyn FnMut(J) -> R + Send + 'env>>,
    /// Jobs queued since the last flush (`None` = already taken).
    queue: Vec<Option<J>>,
    /// Finished results in submission order, drained by `recv`.
    results: VecDeque<std::thread::Result<R>>,
}

impl<'env, J: Send, R: Send> WorkerPool<'env, J, R> {
    /// Builds `threads` worker closures; `make_worker(i)` constructs the
    /// per-lane closure (capturing that lane's private state). No
    /// threads are spawned — execution happens on the process-wide pool,
    /// on up to `threads` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new<F, W>(threads: usize, mut make_worker: F) -> Self
    where
        F: FnMut(usize) -> W,
        W: FnMut(J) -> R + Send + 'env,
    {
        assert!(threads > 0, "worker pool needs at least one worker");
        let mut workers: Vec<Box<dyn FnMut(J) -> R + Send + 'env>> = Vec::with_capacity(threads);
        for i in 0..threads {
            workers.push(Box::new(make_worker(i)));
        }
        Self {
            workers,
            queue: Vec::new(),
            results: VecDeque::new(),
        }
    }

    /// Number of worker closures (the pool's lane budget).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one job; nothing runs until [`WorkerPool::recv`] needs a
    /// result (batch submission then keeps a single pool dispatch for
    /// the whole fan-out).
    pub fn submit(&mut self, job: J) {
        self.queue.push(Some(job));
    }

    /// Blocks for the next finished result, in submission order.
    ///
    /// # Panics
    ///
    /// Re-raises a panic that occurred inside a worker's job (remaining
    /// results stay retrievable), and panics if called with no job
    /// submitted.
    pub fn recv(&mut self) -> R {
        if self.results.is_empty() {
            self.flush();
        }
        match self.results.pop_front() {
            Some(Ok(result)) => result,
            Some(Err(payload)) => resume_unwind(payload),
            None => panic!("worker pool recv with no job submitted"),
        }
    }

    /// Runs every queued job on the process-wide pool, filling
    /// `self.results` in submission order.
    fn flush(&mut self) {
        let njobs = self.queue.len();
        if njobs == 0 {
            return;
        }
        let lanes = self.workers.len();
        let mut out: Vec<Option<std::thread::Result<R>>> = Vec::with_capacity(njobs);
        out.resize_with(njobs, || None);
        {
            let jobs = DisjointSlots::new(&mut self.queue);
            let outs = DisjointSlots::new(&mut out);
            let workers = DisjointSlots::new(&mut self.workers);
            pool::global().run(njobs, lanes, &|lane, part| {
                // SAFETY: part `part` owns job and output slot `part`
                // exclusively (each part runs exactly once), and the
                // substrate guarantees lane `lane` is owned by exactly
                // one OS thread per dispatch, so its worker closure (and
                // the private state it captures) is never aliased.
                unsafe {
                    let job = jobs.get(part).take().expect("job not yet taken");
                    let work = workers.get(lane);
                    *outs.get(part) = Some(catch_unwind(AssertUnwindSafe(|| work(job))));
                }
            });
        }
        self.queue.clear();
        self.results
            .extend(out.into_iter().map(|r| r.expect("every part ran")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_processes_all_jobs_with_persistent_state() {
        // Each worker counts its own jobs — persistent per-lane state.
        let mut pool: WorkerPool<usize, (usize, usize, usize)> = WorkerPool::new(3, |wid| {
            let mut handled = 0usize;
            move |job: usize| {
                handled += 1;
                (job, job * job, wid * handled)
            }
        });
        let njobs = 40;
        for j in 0..njobs {
            pool.submit(j);
        }
        let mut out = vec![0usize; njobs];
        for _ in 0..njobs {
            let (j, sq, _) = pool.recv();
            out[j] = sq;
        }
        for (j, sq) in out.iter().enumerate() {
            assert_eq!(*sq, j * j);
        }
    }

    #[test]
    fn pool_survives_multiple_batches() {
        let mut pool: WorkerPool<u64, u64> = WorkerPool::new(2, |_| |x: u64| x + 1);
        for batch in 0..5u64 {
            for j in 0..8 {
                pool.submit(batch * 100 + j);
            }
            let mut sum = 0;
            for _ in 0..8 {
                sum += pool.recv();
            }
            assert_eq!(sum, (0..8).map(|j| batch * 100 + j + 1).sum::<u64>());
        }
    }

    #[test]
    fn pool_borrows_its_environment() {
        // The 'env lifetime lets workers borrow run-local state, the way
        // the runner's workers borrow the compiled problem.
        let base = [10u64, 20, 30, 40];
        let mut pool: WorkerPool<usize, u64> = WorkerPool::new(2, |_| |i: usize| base[i] * 2);
        for i in 0..base.len() {
            pool.submit(i);
        }
        let got: Vec<u64> = (0..base.len()).map(|_| pool.recv()).collect();
        assert_eq!(got, vec![20, 40, 60, 80]);
    }

    #[test]
    #[should_panic(expected = "corner exploded")]
    fn worker_panic_propagates_to_consumer() {
        let mut pool: WorkerPool<u32, u32> = WorkerPool::new(2, |_| {
            |x: u32| {
                if x == 3 {
                    panic!("corner exploded");
                }
                x
            }
        });
        for j in 0..4 {
            pool.submit(j);
        }
        for _ in 0..4 {
            pool.recv();
        }
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let mut pool: WorkerPool<u32, u32> = WorkerPool::new(4, |_| |x: u32| x * x);
        for j in [5u32, 1, 9, 2] {
            pool.submit(j);
        }
        let got: Vec<u32> = (0..4).map(|_| pool.recv()).collect();
        assert_eq!(got, vec![25, 1, 81, 4]);
    }
}
