//! A persistent scoped worker pool for corner evaluation.
//!
//! The seed spawned a fresh set of scoped threads (plus a fresh results
//! mutex) for **every** corner batch of **every** optimisation iteration.
//! [`WorkerPool`] instead spawns its workers once per [`std::thread::scope`]
//! region — in practice once per optimisation *run* — and feeds them jobs
//! over a channel, so the per-iteration fan-out cost is a handful of
//! channel sends. Each worker owns whatever expensive state the caller's
//! `make_worker` factory builds for it (an `EvalScratch` with its factor
//! buffers, for the corner loop), which is what makes the zero-allocation
//! solve path possible across threads.
//!
//! The pool is deliberately tiny: unbounded MPSC job queue shared through
//! a mutex-wrapped receiver, results funnelled back over a second channel
//! tagged by job. A panic inside a worker's job is caught, shipped back,
//! and re-raised on the thread calling [`WorkerPool::recv`] — matching
//! the loud-failure behaviour of the scoped-spawn code this replaces
//! (a silently hung run would otherwise be the failure mode). Dropping
//! the pool closes the job channel, the workers drain and exit, and the
//! enclosing scope joins them.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::Scope;

/// A fixed set of worker threads processing jobs of type `J` into results
/// of type `R`, alive for the lifetime of the enclosing thread scope.
pub struct WorkerPool<'scope, J: Send + 'scope, R: Send + 'scope> {
    job_tx: Option<Sender<J>>,
    res_rx: Receiver<std::thread::Result<R>>,
    workers: usize,
    _scope: PhantomData<&'scope ()>,
}

impl<'scope, J: Send + 'scope, R: Send + 'scope> WorkerPool<'scope, J, R> {
    /// Spawns `threads` workers on `scope`. `make_worker(i)` builds the
    /// per-thread closure (capturing that thread's private state); the
    /// closure is called once per job.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new<'env, F, W>(
        scope: &'scope Scope<'scope, 'env>,
        threads: usize,
        mut make_worker: F,
    ) -> Self
    where
        F: FnMut(usize) -> W,
        W: FnMut(J) -> R + Send + 'scope,
    {
        assert!(threads > 0, "worker pool needs at least one thread");
        let (job_tx, job_rx) = channel::<J>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (res_tx, res_rx) = channel::<std::thread::Result<R>>();
        for i in 0..threads {
            let rx = Arc::clone(&job_rx);
            let tx = res_tx.clone();
            let mut work = make_worker(i);
            scope.spawn(move || loop {
                // Take the lock only for the dequeue, not for the work.
                let job = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => break, // a sibling panicked mid-recv
                };
                match job {
                    Ok(job) => {
                        // Catch panics so the consumer re-raises them
                        // instead of deadlocking on a missing result.
                        // (The worker's private state may be torn after a
                        // panic, so this worker retires afterwards.)
                        let outcome = catch_unwind(AssertUnwindSafe(|| work(job)));
                        let failed = outcome.is_err();
                        if tx.send(outcome).is_err() || failed {
                            break;
                        }
                    }
                    Err(_) => break, // job channel closed: pool dropped
                }
            });
        }
        Self {
            job_tx: Some(job_tx),
            res_rx,
            workers: threads,
            _scope: PhantomData,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues one job.
    ///
    /// # Panics
    ///
    /// Panics if every worker has exited (i.e. one of them panicked).
    pub fn submit(&self, job: J) {
        self.job_tx
            .as_ref()
            .expect("job channel open while pool is alive")
            .send(job)
            .expect("worker pool has no live workers");
    }

    /// Blocks for the next finished result (in completion order, not
    /// submission order — tag jobs with a slot index to reassemble).
    ///
    /// # Panics
    ///
    /// Re-raises a panic that occurred inside a worker's job, and panics
    /// if every worker exited with results still outstanding.
    pub fn recv(&self) -> R {
        match self.res_rx.recv() {
            Ok(Ok(result)) => result,
            Ok(Err(payload)) => resume_unwind(payload),
            Err(_) => panic!("worker pool has no live workers"),
        }
    }
}

impl<'scope, J: Send + 'scope, R: Send + 'scope> Drop for WorkerPool<'scope, J, R> {
    fn drop(&mut self) {
        // Closing the job channel lets the workers drain and exit; the
        // enclosing scope joins them.
        self.job_tx.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_processes_all_jobs_with_persistent_state() {
        let results = std::thread::scope(|scope| {
            // Each worker counts its own jobs — persistent per-thread state.
            let pool: WorkerPool<usize, (usize, usize, usize)> = WorkerPool::new(scope, 3, |wid| {
                let mut handled = 0usize;
                move |job: usize| {
                    handled += 1;
                    (job, job * job, wid * handled)
                }
            });
            let njobs = 40;
            for j in 0..njobs {
                pool.submit(j);
            }
            let mut out = vec![0usize; njobs];
            for _ in 0..njobs {
                let (j, sq, _) = pool.recv();
                out[j] = sq;
            }
            out
        });
        for (j, sq) in results.iter().enumerate() {
            assert_eq!(*sq, j * j);
        }
    }

    #[test]
    fn pool_survives_multiple_batches() {
        std::thread::scope(|scope| {
            let pool: WorkerPool<u64, u64> = WorkerPool::new(scope, 2, |_| |x: u64| x + 1);
            for batch in 0..5u64 {
                for j in 0..8 {
                    pool.submit(batch * 100 + j);
                }
                let mut sum = 0;
                for _ in 0..8 {
                    sum += pool.recv();
                }
                assert_eq!(sum, (0..8).map(|j| batch * 100 + j + 1).sum::<u64>());
            }
        });
    }

    #[test]
    #[should_panic(expected = "corner exploded")]
    fn worker_panic_propagates_to_consumer() {
        std::thread::scope(|scope| {
            let pool: WorkerPool<u32, u32> = WorkerPool::new(scope, 2, |_| {
                |x: u32| {
                    if x == 3 {
                        panic!("corner exploded");
                    }
                    x
                }
            });
            for j in 0..4 {
                pool.submit(j);
            }
            for _ in 0..4 {
                pool.recv();
            }
        });
    }

    #[test]
    fn dropping_pool_releases_workers() {
        // The scope exits only if the workers exit: this test hanging
        // would mean the drop protocol is broken.
        std::thread::scope(|scope| {
            let pool: WorkerPool<(), ()> = WorkerPool::new(scope, 4, |_| |()| ());
            pool.submit(());
            pool.recv();
            drop(pool);
        });
    }
}
