//! # boson-fab — fabrication & operation variation models
//!
//! The `E_η` (etching) and `T_t` (operation) stages of the paper's
//! compound fabrication mapping, plus the variation-corner algebra that
//! powers the adaptive sampling strategy (§III-E):
//!
//! * [`etch`] — differentiable tanh projection with per-pixel thresholds,
//!   and the *hard* threshold used for honest post-fab evaluation;
//! * [`eole`] — EOLE discretisation of the spatially-varying etch
//!   threshold random field (squared-exponential covariance);
//! * [`temperature`] — thermo-optic silicon permittivity
//!   `ε(t) = (3.48 + 1.8e-4·(t − 300))²`;
//! * [`corners`] — [`VariationCorner`] and every sampling strategy from
//!   Fig. 6(a): nominal-only, exhaustive 3³ sweep, single/double-sided
//!   axial, axial+random and axial+worst-case — plus the corner-subspace
//!   selection API ([`VariationSpace::product_columns`],
//!   [`VariationSpace::select_top_columns`]) that the adaptive subspace
//!   scheduler in `boson_core` builds its active sets with;
//! * [`spectral`] — the operating-wavelength axis ([`SpectralAxis`]):
//!   `K` wavelengths around λ_c that cross with the fabrication corners
//!   into the broadband variation space (`K = 1` reproduces the
//!   single-wavelength pipeline bit-identically).
//!
//! # Examples
//!
//! ```
//! use boson_fab::{SamplingStrategy, VariationSpace};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let space = VariationSpace::default();
//! let mut rng = StdRng::seed_from_u64(7);
//! let axial = space.corners(SamplingStrategy::AxialDoubleSided, &mut rng);
//! assert_eq!(axial.len(), 7); // linear in the number of axes
//! let sweep = space.corners(SamplingStrategy::CornerSweep, &mut rng);
//! assert_eq!(sweep.len(), 27); // exponential
//! ```

#![warn(missing_docs)]

pub mod corners;
pub mod eole;
pub mod etch;
pub mod spectral;
pub mod temperature;

pub use corners::{SamplingStrategy, VariationCorner, VariationSpace};
pub use eole::{EoleField, EoleParams};
pub use etch::{hard_threshold, EtchProjection};
pub use spectral::SpectralAxis;
pub use temperature::TemperatureModel;
