//! The spectral (operating-wavelength) variation axis.
//!
//! BOSON-1 optimises at a single centre wavelength λ_c, but a deployed
//! device must hold its figure of merit across its operating band —
//! spectral detuning is as real a variation axis as lithography dose or
//! temperature. [`SpectralAxis`] discretises that axis into `K`
//! wavelengths spanning `λ_c ± half_span`; the variation machinery then
//! treats every fabrication corner × wavelength pair as one corner of the
//! extended variation space (see
//! [`VariationSpace::spectral_corners`](crate::VariationSpace::spectral_corners)).
//!
//! `K = 1` is the degenerate single-wavelength axis and reproduces the
//! original single-ω pipeline **bit-identically**: the axis contributes
//! exactly `[λ_c]` (the `half_span` is ignored), no labels change, and no
//! extra simulations run.

use serde::{Deserialize, Serialize};

/// A symmetric wavelength window `λ_c ± half_span` sampled at `count`
/// equispaced points (endpoints included).
///
/// The *nominal* sample is the one closest to λ_c: the exact centre for
/// odd `count`, the lower of the two middle samples for even `count`
/// (an even-length sweep has no true centre).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralAxis {
    /// Wavelength half-span around the centre (µm). Ignored when
    /// `count == 1`.
    pub half_span: f64,
    /// Number of wavelength samples `K ≥ 1`.
    pub count: usize,
}

impl Default for SpectralAxis {
    fn default() -> Self {
        Self::single()
    }
}

impl SpectralAxis {
    /// The degenerate single-wavelength axis (today's behaviour).
    pub fn single() -> Self {
        Self {
            half_span: 0.0,
            count: 1,
        }
    }

    /// `count` wavelengths spanning `λ_c ± half_span`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `half_span < 0`.
    pub fn around(half_span: f64, count: usize) -> Self {
        assert!(count >= 1, "spectral axis needs at least one wavelength");
        assert!(half_span >= 0.0, "spectral half-span must be non-negative");
        Self { half_span, count }
    }

    /// `true` for the degenerate `K = 1` axis.
    pub fn is_single(&self) -> bool {
        self.count == 1
    }

    /// The sampled wavelengths for centre `lambda_c`, ascending.
    /// `K = 1` returns exactly `[lambda_c]`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` (the fields are public and serde-reachable,
    /// so an invalid axis can bypass [`SpectralAxis::around`]'s guard).
    pub fn lambdas(&self, lambda_c: f64) -> Vec<f64> {
        assert!(
            self.count >= 1,
            "spectral axis needs at least one wavelength"
        );
        if self.count == 1 {
            return vec![lambda_c];
        }
        (0..self.count)
            .map(|k| {
                lambda_c - self.half_span
                    + 2.0 * self.half_span * k as f64 / (self.count as f64 - 1.0)
            })
            .collect()
    }

    /// The sampled angular frequencies for centre frequency `omega_c`
    /// (`ω = 2π/λ`, c = 1), in the order of [`SpectralAxis::lambdas`]
    /// (i.e. descending ω). `K = 1` returns exactly `[omega_c]` — no
    /// λ↔ω round-trip, so the single-wavelength axis is bit-identical to
    /// the unextended pipeline.
    pub fn omegas(&self, omega_c: f64) -> Vec<f64> {
        if self.count == 1 {
            return vec![omega_c];
        }
        let lambda_c = 2.0 * std::f64::consts::PI / omega_c;
        self.lambdas(lambda_c)
            .into_iter()
            .map(|l| 2.0 * std::f64::consts::PI / l)
            .collect()
    }

    /// Index of the nominal (closest-to-centre) wavelength: `(K − 1) / 2`
    /// — the exact centre for odd `K`, the lower middle sample for even
    /// `K`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn nominal_index(&self) -> usize {
        assert!(
            self.count >= 1,
            "spectral axis needs at least one wavelength"
        );
        (self.count - 1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_axis_is_exactly_the_centre() {
        let a = SpectralAxis::single();
        assert!(a.is_single());
        assert_eq!(a.lambdas(1.55), vec![1.55]);
        let wc = 2.0 * std::f64::consts::PI / 1.55;
        // Bit-exact: no λ↔ω round trip for K = 1.
        assert_eq!(a.omegas(wc), vec![wc]);
        assert_eq!(a.nominal_index(), 0);
        // A K=1 axis with a non-zero half-span is still the bare centre.
        let b = SpectralAxis::around(0.03, 1);
        assert_eq!(b.lambdas(1.55), vec![1.55]);
        assert_eq!(b.omegas(wc), vec![wc]);
    }

    #[test]
    fn odd_axis_centres_on_lambda_c() {
        let a = SpectralAxis::around(0.02, 5);
        let ls = a.lambdas(1.55);
        assert_eq!(ls.len(), 5);
        assert!((ls[0] - 1.53).abs() < 1e-12);
        assert!((ls[4] - 1.57).abs() < 1e-12);
        assert!((ls[a.nominal_index()] - 1.55).abs() < 1e-12);
    }

    #[test]
    fn even_axis_nominal_is_lower_middle() {
        let a = SpectralAxis::around(0.03, 4);
        assert_eq!(a.nominal_index(), 1);
        let ls = a.lambdas(1.55);
        // The two middle samples straddle the centre; nominal is the lower.
        assert!(ls[1] < 1.55 && ls[2] > 1.55);
        assert!(((1.55 - ls[1]) - (ls[2] - 1.55)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn lambdas_are_monotone_and_symmetric(
            half in 0.001f64..0.2,
            count in 1usize..9,
            lambda_c in 0.8f64..3.0,
        ) {
            let a = SpectralAxis::around(half, count);
            let ls = a.lambdas(lambda_c);
            prop_assert_eq!(ls.len(), count);
            for w in ls.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            // Symmetric about λ_c: λ_k + λ_{K−1−k} = 2 λ_c.
            for k in 0..count {
                prop_assert!((ls[k] + ls[count - 1 - k] - 2.0 * lambda_c).abs() < 1e-9);
            }
            // The nominal sample is (one of) the closest to λ_c.
            let ni = a.nominal_index();
            for l in &ls {
                prop_assert!(
                    (ls[ni] - lambda_c).abs() <= (l - lambda_c).abs() + 1e-12
                );
            }
            // ω order matches λ order reversed in magnitude.
            let ws = a.omegas(2.0 * std::f64::consts::PI / lambda_c);
            for (l, w) in ls.iter().zip(&ws) {
                prop_assert!((l * w - 2.0 * std::f64::consts::PI).abs() < 1e-9);
            }
        }
    }
}
