//! Differentiable etching model: threshold projection of the aerial image.
//!
//! Etching binarises the continuous post-lithography intensity: resist
//! develops where the dose exceeds a threshold `η`. For optimisation we use
//! the standard smoothed Heaviside (tanh) projection from topology
//! optimisation — the paper's "gradient-estimated etching modeling" — and
//! for *evaluation* we use the exact hard threshold, so reported post-fab
//! numbers are true binary-device numbers.
//!
//! The threshold may vary per pixel: spatially-varying etch non-uniformity
//! is modelled by the EOLE random field in [`crate::eole`].

use boson_num::Array2;
use serde::{Deserialize, Serialize};

/// Smoothed-projection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EtchProjection {
    /// Projection sharpness β; larger is closer to a hard threshold.
    pub beta: f64,
}

impl Default for EtchProjection {
    fn default() -> Self {
        Self { beta: 20.0 }
    }
}

impl EtchProjection {
    /// Creates a projection with sharpness `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 0`.
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0, "projection sharpness must be positive");
        Self { beta }
    }

    /// Smoothed projection of a single intensity `i` against threshold
    /// `eta`, in `[0, 1]`:
    /// `ρ = (tanh(βη) + tanh(β(i−η))) / (tanh(βη) + tanh(β(1−η)))`.
    #[inline]
    pub fn project(&self, i: f64, eta: f64) -> f64 {
        let b = self.beta;
        let denom = (b * eta).tanh() + (b * (1.0 - eta)).tanh();
        ((b * eta).tanh() + (b * (i - eta)).tanh()) / denom
    }

    /// Derivative `∂ρ/∂i`.
    #[inline]
    pub fn d_project_d_i(&self, i: f64, eta: f64) -> f64 {
        let b = self.beta;
        let denom = (b * eta).tanh() + (b * (1.0 - eta)).tanh();
        let t = (b * (i - eta)).tanh();
        b * (1.0 - t * t) / denom
    }

    /// Derivative `∂ρ/∂η` (used by the worst-case variation corner).
    ///
    /// Includes the dependence through both the numerator terms; the
    /// denominator term is retained as well for exactness.
    #[inline]
    pub fn d_project_d_eta(&self, i: f64, eta: f64) -> f64 {
        let b = self.beta;
        let te = (b * eta).tanh();
        let t1e = (b * (1.0 - eta)).tanh();
        let ti = (b * (i - eta)).tanh();
        let denom = te + t1e;
        let num = te + ti;
        let dnum = b * (1.0 - te * te) - b * (1.0 - ti * ti);
        let ddenom = b * (1.0 - te * te) - b * (1.0 - t1e * t1e);
        (dnum * denom - num * ddenom) / (denom * denom)
    }

    /// Projects a whole image against a per-pixel threshold field.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn project_image(&self, intensity: &Array2<f64>, eta: &Array2<f64>) -> Array2<f64> {
        intensity.zip_map(eta, |&i, &e| self.project(i, e))
    }

    /// Chain-rule helper: given `v = ∂L/∂ρ`, returns `∂L/∂I`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn vjp_intensity(
        &self,
        intensity: &Array2<f64>,
        eta: &Array2<f64>,
        v: &Array2<f64>,
    ) -> Array2<f64> {
        assert_eq!(intensity.shape(), v.shape(), "vjp shape mismatch");
        let mut out = intensity.zip_map(eta, |&i, &e| self.d_project_d_i(i, e));
        for (o, vv) in out.as_mut_slice().iter_mut().zip(v.as_slice()) {
            *o *= vv;
        }
        out
    }

    /// Chain-rule helper: given `v = ∂L/∂ρ`, returns `∂L/∂η` per pixel.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn vjp_eta(
        &self,
        intensity: &Array2<f64>,
        eta: &Array2<f64>,
        v: &Array2<f64>,
    ) -> Array2<f64> {
        assert_eq!(intensity.shape(), v.shape(), "vjp shape mismatch");
        let mut out = intensity.zip_map(eta, |&i, &e| self.d_project_d_eta(i, e));
        for (o, vv) in out.as_mut_slice().iter_mut().zip(v.as_slice()) {
            *o *= vv;
        }
        out
    }
}

/// Hard (exact) threshold used for post-fabrication *evaluation*:
/// `ρ = 1` where `I > η`, else `0`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn hard_threshold(intensity: &Array2<f64>, eta: &Array2<f64>) -> Array2<f64> {
    intensity.zip_map(eta, |&i, &e| if i > e { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_endpoints() {
        let p = EtchProjection::new(30.0);
        assert!(p.project(0.0, 0.5) < 1e-6);
        assert!((p.project(1.0, 0.5) - 1.0).abs() < 1e-6);
        assert!((p.project(0.5, 0.5) - 0.5).abs() < 0.02);
    }

    #[test]
    fn projection_is_monotone_in_intensity() {
        let p = EtchProjection::default();
        let mut prev = -1.0;
        for k in 0..=40 {
            let i = k as f64 / 40.0;
            let v = p.project(i, 0.5);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn sharper_beta_approaches_hard_threshold() {
        let soft = EtchProjection::new(5.0);
        let sharp = EtchProjection::new(200.0);
        // At i = 0.6, η = 0.5 the hard answer is 1.
        assert!(sharp.project(0.6, 0.5) > soft.project(0.6, 0.5));
        assert!((sharp.project(0.6, 0.5) - 1.0).abs() < 1e-6);
        assert!((sharp.project(0.4, 0.5)).abs() < 1e-6);
    }

    #[test]
    fn threshold_shift_models_over_under_etch() {
        let p = EtchProjection::new(50.0);
        // Raising η (under-etch) shrinks the developed area.
        let i = 0.52;
        assert!(p.project(i, 0.45) > 0.9); // low threshold: develops
        assert!(p.project(i, 0.60) < 0.1); // high threshold: wiped
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let p = EtchProjection::new(17.0);
        let h = 1e-7;
        for &(i, e) in &[
            (0.3, 0.5),
            (0.5, 0.5),
            (0.7, 0.45),
            (0.9, 0.6),
            (0.05, 0.55),
        ] {
            let fd_i = (p.project(i + h, e) - p.project(i - h, e)) / (2.0 * h);
            let an_i = p.d_project_d_i(i, e);
            assert!(
                (fd_i - an_i).abs() < 1e-5 * (1.0 + fd_i.abs()),
                "d/di at ({i},{e})"
            );
            let fd_e = (p.project(i, e + h) - p.project(i, e - h)) / (2.0 * h);
            let an_e = p.d_project_d_eta(i, e);
            assert!(
                (fd_e - an_e).abs() < 1e-5 * (1.0 + fd_e.abs()),
                "d/dη at ({i},{e})"
            );
        }
    }

    #[test]
    fn image_level_vjps() {
        let p = EtchProjection::new(12.0);
        let intensity = Array2::from_fn(4, 5, |r, c| (r as f64 * 0.2 + c as f64 * 0.1).min(1.0));
        let eta = Array2::filled(4, 5, 0.5);
        let v = Array2::from_fn(4, 5, |r, c| ((r + c) % 3) as f64 - 1.0);
        let gi = p.vjp_intensity(&intensity, &eta, &v);
        let ge = p.vjp_eta(&intensity, &eta, &v);
        let h = 1e-6;
        // Scalar loss L = Σ v·ρ.
        let loss = |ii: &Array2<f64>, ee: &Array2<f64>| -> f64 {
            p.project_image(ii, ee).zip_map(&v, |a, b| a * b).sum()
        };
        let mut ip = intensity.clone();
        ip[(2, 3)] += h;
        let fd = (loss(&ip, &eta) - loss(&intensity, &eta)) / h;
        assert!((fd - gi[(2, 3)]).abs() < 1e-4 * (1.0 + fd.abs()));
        let mut ep = eta.clone();
        ep[(1, 2)] += h;
        let fde = (loss(&intensity, &ep) - loss(&intensity, &eta)) / h;
        assert!((fde - ge[(1, 2)]).abs() < 1e-4 * (1.0 + fde.abs()));
    }

    #[test]
    fn hard_threshold_is_binary() {
        let intensity = Array2::from_fn(3, 3, |r, c| (r * 3 + c) as f64 / 8.0);
        let eta = Array2::filled(3, 3, 0.5);
        let b = hard_threshold(&intensity, &eta);
        for v in b.as_slice() {
            assert!(*v == 0.0 || *v == 1.0);
        }
        assert_eq!(b[(0, 0)], 0.0);
        assert_eq!(b[(2, 2)], 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_beta_panics() {
        let _ = EtchProjection::new(0.0);
    }
}
