//! Variation-corner algebra and the adaptive sampling strategies.
//!
//! The variation space has three fabrication/operation axes (paper
//! §III-E): lithography corner `L`, operating temperature `T`, and global
//! etch threshold `η`, plus the high-dimensional EOLE field weights `ξ`
//! for spatial etch variation — and, since the spectral extension, the
//! operating wavelength as a fourth axis ([`SpectralAxis`]: `K`
//! wavelengths around λ_c, `K = 1` degenerating to the original
//! single-wavelength behaviour bit-identically). Exhaustive corner
//! sweeping costs `3^N` simulations per iteration; the paper's *axial*
//! sampling visits only the `2N` single-axis excursions plus the nominal
//! point (linear cost), and appends one *worst-case* corner found by a
//! single gradient-ascent step on `(T, ξ)`.
//!
//! All strategies from Fig. 6(a) are implemented so the comparison can be
//! regenerated. [`VariationSpace::spectral_corners`] forms the
//! (fabrication corner × wavelength) cross product that the broadband
//! robust loop sweeps.

use crate::eole::EoleParams;
use crate::spectral::SpectralAxis;
use crate::temperature::{TemperatureModel, T_NOMINAL};
use boson_litho::LithoCorner;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One fully-specified fabrication/operation condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationCorner {
    /// Lithography corner.
    pub litho: LithoCorner,
    /// Operating temperature (K).
    pub temperature: f64,
    /// Global etch-threshold shift added to the EOLE mean.
    pub eta_shift: f64,
    /// EOLE spatial-field weights (empty = flat field).
    pub xi: Vec<f64>,
    /// Index of this corner's operating wavelength in the spectral axis
    /// (see [`SpectralAxis`]); `0` for the single-wavelength space.
    pub omega_idx: usize,
    /// Weight of this corner in the robust objective.
    pub weight: f64,
    /// Human-readable label for traces and reports.
    pub label: String,
}

impl VariationCorner {
    /// The nominal (no-variation) corner at the first (and for the
    /// single-wavelength space, only) spectral sample.
    pub fn nominal() -> Self {
        Self {
            litho: LithoCorner::Nominal,
            temperature: T_NOMINAL,
            eta_shift: 0.0,
            xi: Vec::new(),
            omega_idx: 0,
            weight: 1.0,
            label: "nominal".to_owned(),
        }
    }

    /// `true` if this corner deviates from nominal in any *fabrication*
    /// axis (the spectral index is judged separately because the nominal
    /// wavelength index depends on the axis — see
    /// [`SpectralAxis::nominal_index`]).
    pub fn is_varied(&self) -> bool {
        self.litho != LithoCorner::Nominal
            || self.temperature != T_NOMINAL
            || self.eta_shift != 0.0
            || self.xi.iter().any(|&x| x != 0.0)
    }

    /// This corner re-targeted to spectral sample `omega_idx` at
    /// wavelength `lambda` (µm); the label gains a `@λ=…` suffix so
    /// per-corner solver policies key on the exact `(corner, ω)` pair.
    pub fn at_omega(&self, omega_idx: usize, lambda: f64) -> Self {
        Self {
            omega_idx,
            label: format!("{}@λ={lambda:.4}", self.label),
            ..self.clone()
        }
    }
}

/// Corner-sampling strategy (Fig. 6(a) of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Nominal corner only — no variation awareness.
    NominalOnly,
    /// Exhaustive 3×3×3 sweep — `O(3^N)`, the paper's scalability strawman.
    CornerSweep,
    /// Nominal + one-sided excursion per axis — `O(N)`, asymmetric.
    AxialSingleSided,
    /// Nominal + both excursions per axis — `O(2N)`, the paper's axial set.
    AxialDoubleSided,
    /// Axial set + `count` random corners (cost-matched control).
    AxialPlusRandom {
        /// Number of random corners to append.
        count: usize,
    },
    /// Axial set + one worst-case corner from a gradient-ascent step —
    /// the full BOSON-1 strategy.
    AxialPlusWorst,
}

impl SamplingStrategy {
    /// Whether the optimiser must compute and append a worst-case corner.
    pub fn needs_worst_case(self) -> bool {
        matches!(self, SamplingStrategy::AxialPlusWorst)
    }

    /// Deterministic corner count (excluding any appended worst-case
    /// corner and random draws).
    pub fn base_corner_count(self) -> usize {
        match self {
            SamplingStrategy::NominalOnly => 1,
            SamplingStrategy::CornerSweep => 27,
            SamplingStrategy::AxialSingleSided => 4,
            SamplingStrategy::AxialDoubleSided
            | SamplingStrategy::AxialPlusRandom { .. }
            | SamplingStrategy::AxialPlusWorst => 7,
        }
    }

    /// Number of corners actually drawn per iteration: the base set plus
    /// any random extras. (The worst-case corner of `AxialPlusWorst` is
    /// derived *after* this batch and is not included.) This is the right
    /// bound for sizing a parallel corner-evaluation pool.
    pub fn corners_per_iteration(self) -> usize {
        match self {
            SamplingStrategy::AxialPlusRandom { count } => self.base_corner_count() + count,
            other => other.base_corner_count(),
        }
    }
}

/// The variation space: axis excursions, the spatial-field model, and the
/// spectral (operating-wavelength) axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationSpace {
    /// Temperature model (excursion ±Δ).
    pub temperature: TemperatureModel,
    /// Global threshold excursion ±Δη for the η axis.
    pub eta_delta: f64,
    /// EOLE parameters for spatially-varying etching.
    pub eole: EoleParams,
    /// Spectral axis: `K` wavelengths around λ_c (default: the single
    /// centre wavelength, which reproduces the unextended pipeline
    /// bit-identically).
    pub spectral: SpectralAxis,
}

impl Default for VariationSpace {
    fn default() -> Self {
        Self {
            temperature: TemperatureModel::default(),
            eta_delta: 0.05,
            eole: EoleParams::default(),
            spectral: SpectralAxis::single(),
        }
    }
}

impl VariationSpace {
    /// Generates the deterministic corner set for `strategy`.
    ///
    /// Random corners (for [`SamplingStrategy::AxialPlusRandom`]) are drawn
    /// from `rng`; the worst-case corner of
    /// [`SamplingStrategy::AxialPlusWorst`] is *not* included — the
    /// optimiser computes it from gradients and appends it.
    pub fn corners<R: Rng>(&self, strategy: SamplingStrategy, rng: &mut R) -> Vec<VariationCorner> {
        let (t_lo, t_hi) = self.temperature.range();
        let mut out: Vec<VariationCorner> = Vec::new();
        let nominal = VariationCorner::nominal();
        match strategy {
            SamplingStrategy::NominalOnly => out.push(nominal),
            SamplingStrategy::CornerSweep => {
                for litho in LithoCorner::ALL {
                    for &t in &self.temperature.corners() {
                        for &de in &[-self.eta_delta, 0.0, self.eta_delta] {
                            out.push(VariationCorner {
                                litho,
                                temperature: t,
                                eta_shift: de,
                                label: format!("sweep:{litho:?}/T={t}/dη={de:+.2}"),
                                ..VariationCorner::nominal()
                            });
                        }
                    }
                }
            }
            SamplingStrategy::AxialSingleSided => {
                out.push(nominal);
                out.push(self.litho_corner(LithoCorner::Max));
                out.push(self.temp_corner(t_hi));
                out.push(self.eta_corner(self.eta_delta));
            }
            SamplingStrategy::AxialDoubleSided
            | SamplingStrategy::AxialPlusRandom { .. }
            | SamplingStrategy::AxialPlusWorst => {
                out.push(nominal);
                out.push(self.litho_corner(LithoCorner::Min));
                out.push(self.litho_corner(LithoCorner::Max));
                out.push(self.temp_corner(t_lo));
                out.push(self.temp_corner(t_hi));
                out.push(self.eta_corner(-self.eta_delta));
                out.push(self.eta_corner(self.eta_delta));
                if let SamplingStrategy::AxialPlusRandom { count } = strategy {
                    for k in 0..count {
                        let mut c = self.sample_random(rng);
                        c.label = format!("random-{k}");
                        out.push(c);
                    }
                }
            }
        }
        let w = 1.0 / out.len() as f64;
        for c in &mut out {
            c.weight = w;
        }
        out
    }

    /// The (fabrication corner × wavelength) cross product for
    /// `strategy`: every corner of [`VariationSpace::corners`] replicated
    /// at each of the spectral axis' `K` wavelengths, ω-major (all
    /// fabrication corners at ω₀, then all at ω₁, …) so each wavelength's
    /// group is contiguous for the per-ω batched solver sweep. Weights
    /// are renormalised across the whole product.
    ///
    /// With the default single-wavelength axis this returns exactly
    /// [`VariationSpace::corners`] — same labels, same weights, same
    /// `omega_idx = 0` — so `K = 1` runs are bit-identical to the
    /// unextended pipeline.
    ///
    /// `lambda_c` is the centre wavelength (µm) used only to render the
    /// `@λ=…` label suffixes of the `K > 1` product.
    pub fn spectral_corners<R: Rng>(
        &self,
        strategy: SamplingStrategy,
        lambda_c: f64,
        rng: &mut R,
    ) -> Vec<VariationCorner> {
        let fab = self.corners(strategy, rng);
        if self.spectral.is_single() {
            return fab;
        }
        let lambdas = self.spectral.lambdas(lambda_c);
        let w = 1.0 / (fab.len() * lambdas.len()) as f64;
        let mut out = Vec::with_capacity(fab.len() * lambdas.len());
        for (oi, &lambda) in lambdas.iter().enumerate() {
            for c in &fab {
                let mut sc = c.at_omega(oi, lambda);
                sc.weight = w;
                out.push(sc);
            }
        }
        out
    }

    /// Number of columns in the ω-major (fabrication corner × wavelength)
    /// cross product that [`VariationSpace::spectral_corners`] forms for
    /// `strategy` — the size of the per-(corner, ω) state an adaptive
    /// subspace scheduler has to track. Random corners occupy stable
    /// column slots (their *content* is redrawn per iteration, their
    /// position is not), so slot-keyed statistics stay well defined.
    pub fn product_columns(&self, strategy: SamplingStrategy) -> usize {
        strategy.corners_per_iteration() * self.spectral.count
    }

    /// Selects the active subset of the cross product for one robust
    /// iteration: the `forced` columns (the fabrication-nominal corner at
    /// every wavelength — they refresh the per-ω preconditioner factors
    /// and warm starts, so a schedule without them is never valid) plus
    /// the highest-`scores` remaining columns until `m` columns are
    /// active in total.
    ///
    /// Deterministic by construction: ties in the score keep the lowest
    /// column index, so the same scores always produce the same active
    /// set whatever produced them. `m` is effectively clamped to
    /// `[forced count, len]` — every forced column is active even when
    /// `m` is smaller, and `m ≥ len` activates everything (the full
    /// sweep). NaN scores rank below every finite score.
    ///
    /// # Panics
    ///
    /// Panics if `scores` and `forced` disagree in length.
    pub fn select_top_columns(scores: &[f64], forced: &[bool], m: usize) -> Vec<bool> {
        assert_eq!(
            scores.len(),
            forced.len(),
            "score/forced column count mismatch"
        );
        let mut active = forced.to_vec();
        let mut budget = m.saturating_sub(forced.iter().filter(|&&f| f).count());
        let mut ranked: Vec<usize> = (0..scores.len()).filter(|&ci| !forced[ci]).collect();
        ranked.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                // NaN never outranks a comparable score; among
                // themselves NaNs fall back to the index tie-break.
                .unwrap_or_else(|| scores[a].is_nan().cmp(&scores[b].is_nan()))
                .then(a.cmp(&b))
        });
        for ci in ranked {
            if budget == 0 {
                break;
            }
            active[ci] = true;
            budget -= 1;
        }
        active
    }

    fn litho_corner(&self, litho: LithoCorner) -> VariationCorner {
        VariationCorner {
            litho,
            label: format!("litho:{litho:?}"),
            ..VariationCorner::nominal()
        }
    }

    fn temp_corner(&self, t: f64) -> VariationCorner {
        VariationCorner {
            temperature: t,
            label: format!("T={t}"),
            ..VariationCorner::nominal()
        }
    }

    fn eta_corner(&self, de: f64) -> VariationCorner {
        VariationCorner {
            eta_shift: de,
            label: format!("dη={de:+.2}"),
            ..VariationCorner::nominal()
        }
    }

    /// Draws one random corner for Monte-Carlo evaluation: uniform litho
    /// corner, uniform temperature in range, standard-normal EOLE weights.
    pub fn sample_random<R: Rng>(&self, rng: &mut R) -> VariationCorner {
        let litho = LithoCorner::ALL[rng.gen_range(0..3usize)];
        let (t_lo, t_hi) = self.temperature.range();
        let temperature = rng.gen_range(t_lo..=t_hi);
        let xi: Vec<f64> = (0..self.eole.terms)
            .map(|_| {
                // Box–Muller standard normal.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        VariationCorner {
            litho,
            temperature,
            xi,
            label: "mc".to_owned(),
            ..VariationCorner::nominal()
        }
    }

    /// Builds the worst-case corner from objective gradients: one
    /// projected gradient-*descent* step on the FoM (= ascent on the loss)
    /// over `(T, ξ)`, clipped to the operating range / ±3σ.
    ///
    /// `d_fom_dt` and `d_fom_dxi` are the derivatives of the figure of
    /// merit being *maximised*; the worst corner moves against them.
    pub fn worst_case_corner(&self, d_fom_dt: f64, d_fom_dxi: &[f64]) -> VariationCorner {
        let (t_lo, t_hi) = self.temperature.range();
        // Temperature: move to whichever bound degrades the FoM.
        let temperature = if d_fom_dt > 0.0 { t_lo } else { t_hi };
        // ξ: one normalised step of length √K against the gradient,
        // clipped to ±3.
        let k = d_fom_dxi.len();
        let norm = d_fom_dxi.iter().map(|g| g * g).sum::<f64>().sqrt();
        let xi: Vec<f64> = if norm > 0.0 {
            let step = (k as f64).sqrt();
            d_fom_dxi
                .iter()
                .map(|g| (-g / norm * step).clamp(-3.0, 3.0))
                .collect()
        } else {
            vec![0.0; k]
        };
        VariationCorner {
            temperature,
            xi,
            label: "worst-case".to_owned(),
            ..VariationCorner::nominal()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> VariationSpace {
        VariationSpace::default()
    }

    #[test]
    fn corner_counts_match_paper() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.corners(SamplingStrategy::NominalOnly, &mut rng).len(), 1);
        assert_eq!(s.corners(SamplingStrategy::CornerSweep, &mut rng).len(), 27);
        assert_eq!(
            s.corners(SamplingStrategy::AxialSingleSided, &mut rng)
                .len(),
            4
        );
        assert_eq!(
            s.corners(SamplingStrategy::AxialDoubleSided, &mut rng)
                .len(),
            7
        );
        assert_eq!(
            s.corners(SamplingStrategy::AxialPlusRandom { count: 2 }, &mut rng)
                .len(),
            9
        );
        // Worst-case corner appended by the optimiser, not here.
        assert_eq!(
            s.corners(SamplingStrategy::AxialPlusWorst, &mut rng).len(),
            7
        );
        assert!(SamplingStrategy::AxialPlusWorst.needs_worst_case());
        assert!(!SamplingStrategy::AxialDoubleSided.needs_worst_case());
    }

    #[test]
    fn weights_sum_to_one() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        for strat in [
            SamplingStrategy::NominalOnly,
            SamplingStrategy::CornerSweep,
            SamplingStrategy::AxialSingleSided,
            SamplingStrategy::AxialDoubleSided,
            SamplingStrategy::AxialPlusRandom { count: 3 },
        ] {
            let total: f64 = s.corners(strat, &mut rng).iter().map(|c| c.weight).sum();
            assert!((total - 1.0).abs() < 1e-12, "{strat:?}: {total}");
        }
    }

    #[test]
    fn axial_corners_vary_one_axis_at_a_time() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        let corners = s.corners(SamplingStrategy::AxialDoubleSided, &mut rng);
        assert!(!corners[0].is_varied());
        for c in &corners[1..] {
            let axes_varied = [
                (c.litho != LithoCorner::Nominal) as u8,
                (c.temperature != T_NOMINAL) as u8,
                (c.eta_shift != 0.0) as u8,
            ]
            .iter()
            .sum::<u8>();
            assert_eq!(
                axes_varied, 1,
                "corner {} varies {axes_varied} axes",
                c.label
            );
        }
    }

    #[test]
    fn sweep_covers_all_combinations() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(4);
        let corners = s.corners(SamplingStrategy::CornerSweep, &mut rng);
        let unique: std::collections::BTreeSet<String> =
            corners.iter().map(|c| c.label.clone()).collect();
        assert_eq!(unique.len(), 27);
    }

    #[test]
    fn random_corner_within_bounds() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let c = s.sample_random(&mut rng);
            let (lo, hi) = s.temperature.range();
            assert!(c.temperature >= lo && c.temperature <= hi);
            assert_eq!(c.xi.len(), s.eole.terms);
        }
    }

    #[test]
    fn single_wavelength_spectral_corners_are_identical_to_corners() {
        let s = space();
        for strat in [
            SamplingStrategy::NominalOnly,
            SamplingStrategy::CornerSweep,
            SamplingStrategy::AxialDoubleSided,
            SamplingStrategy::AxialPlusRandom { count: 2 },
        ] {
            // Same RNG seed on both sides: the draws must match too.
            let mut rng_a = StdRng::seed_from_u64(11);
            let mut rng_b = StdRng::seed_from_u64(11);
            let plain = s.corners(strat, &mut rng_a);
            let spectral = s.spectral_corners(strat, 1.55, &mut rng_b);
            assert_eq!(plain, spectral, "{strat:?}");
        }
    }

    #[test]
    fn spectral_cross_product_replicates_corners_per_wavelength() {
        let mut s = space();
        s.spectral = crate::SpectralAxis::around(0.02, 3);
        let mut rng = StdRng::seed_from_u64(12);
        let product = s.spectral_corners(SamplingStrategy::AxialDoubleSided, 1.55, &mut rng);
        assert_eq!(product.len(), 7 * 3);
        // ω-major: the first 7 share ω₀, the next 7 share ω₁, …
        for (i, c) in product.iter().enumerate() {
            assert_eq!(c.omega_idx, i / 7, "{}", c.label);
            assert!(c.label.contains("@λ="), "{}", c.label);
        }
        // Weights renormalised across the whole product.
        let total: f64 = product.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Each ω group contains exactly one fabrication-nominal corner,
        // and the nominal spectral sample is the centre wavelength.
        for oi in 0..3 {
            let group: Vec<_> = product.iter().filter(|c| c.omega_idx == oi).collect();
            assert_eq!(group.iter().filter(|c| !c.is_varied()).count(), 1);
        }
        assert_eq!(s.spectral.nominal_index(), 1);
    }

    #[test]
    fn at_omega_retargets_and_relabels() {
        let c = VariationCorner::nominal();
        let c2 = c.at_omega(2, 1.57);
        assert_eq!(c2.omega_idx, 2);
        assert!(c2.label.starts_with("nominal@λ=1.57"));
        assert!(!c2.is_varied(), "spectral index is not a fabrication axis");
    }

    #[test]
    fn product_columns_counts_the_cross_product() {
        let mut s = space();
        assert_eq!(s.product_columns(SamplingStrategy::CornerSweep), 27);
        s.spectral = crate::SpectralAxis::around(0.02, 3);
        assert_eq!(s.product_columns(SamplingStrategy::CornerSweep), 81);
        assert_eq!(
            s.product_columns(SamplingStrategy::AxialPlusRandom { count: 2 }),
            9 * 3
        );
        // The shape promise the scheduler relies on: the product really
        // has that many columns.
        let mut rng = StdRng::seed_from_u64(9);
        let product = s.spectral_corners(SamplingStrategy::CornerSweep, 1.55, &mut rng);
        assert_eq!(
            product.len(),
            s.product_columns(SamplingStrategy::CornerSweep)
        );
    }

    #[test]
    fn select_top_columns_keeps_forced_and_ranks_deterministically() {
        let scores = [0.1, 0.9, 0.5, 0.9, 0.0];
        let forced = [false, false, false, false, true];
        // m = 3: the forced column plus the two best scores; the 0.9 tie
        // keeps the lower index.
        let active = VariationSpace::select_top_columns(&scores, &forced, 3);
        assert_eq!(active, [false, true, false, true, true]);
        // m = 1 < forced count: the forced set alone survives.
        let active = VariationSpace::select_top_columns(&scores, &forced, 1);
        assert_eq!(active, [false, false, false, false, true]);
        // m = 0 behaves the same (clamped to the forced set).
        let active = VariationSpace::select_top_columns(&scores, &forced, 0);
        assert_eq!(active, [false, false, false, false, true]);
        // m ≥ len: everything active — the full sweep.
        let active = VariationSpace::select_top_columns(&scores, &forced, 99);
        assert!(active.iter().all(|&a| a));
        // +∞ outranks everything; NaN outranks nothing.
        let scores = [f64::NAN, 0.2, f64::INFINITY];
        let forced = [false; 3];
        let active = VariationSpace::select_top_columns(&scores, &forced, 2);
        assert_eq!(active, [false, true, true]);
    }

    #[test]
    fn worst_case_moves_against_gradient() {
        let s = space();
        // FoM improves with temperature → worst case is the cold bound.
        let w = s.worst_case_corner(0.5, &[1.0, -2.0]);
        assert_eq!(w.temperature, s.temperature.range().0);
        // ξ step is anti-parallel to the gradient.
        assert!(w.xi[0] < 0.0 && w.xi[1] > 0.0);
        // Clipped at ±3.
        assert!(w.xi.iter().all(|x| x.abs() <= 3.0));
        // Zero gradient: flat field, hot bound.
        let w2 = s.worst_case_corner(-0.1, &[0.0, 0.0]);
        assert_eq!(w2.temperature, s.temperature.range().1);
        assert!(w2.xi.iter().all(|&x| x == 0.0));
    }
}
