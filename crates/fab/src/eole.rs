//! EOLE discretisation of the spatially-varying etch-threshold field.
//!
//! Following Schevenels et al. (the paper's reference \[15\]), the random
//! threshold field `η(x) = η₀ + δ(x)` with squared-exponential covariance
//! `C(x, x') = σ² exp(-|x-x'|²/(2ℓ²))` is discretised by *Expansion
//! Optimal Linear Estimation*: pick `M` observation points, eigendecompose
//! the `M×M` covariance, and keep the `K` dominant terms
//!
//! ```text
//! η(x) ≈ η₀ + Σ_{k<K} ξ_k/√λ_k · ψ_kᵀ C(x, ·M)
//! ```
//!
//! with iid standard-normal `ξ_k`. The basis fields are precomputed on the
//! design grid, so sampling a field (or differentiating an objective with
//! respect to `ξ` — needed by the worst-case corner) is a few AXPYs.

use boson_num::jacobi::sym_eigen;
use boson_num::Array2;
use serde::{Deserialize, Serialize};

/// Parameters of the random threshold field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EoleParams {
    /// Mean threshold η₀.
    pub mean: f64,
    /// Standard deviation σ of the field.
    pub std: f64,
    /// Correlation length ℓ in µm.
    pub corr_len: f64,
    /// Observation points per axis (M = grid²).
    pub obs_per_axis: usize,
    /// Number of expansion terms kept.
    pub terms: usize,
}

impl Default for EoleParams {
    fn default() -> Self {
        Self {
            // Dose-to-size calibrated: the partially-coherent aerial image
            // of a large feature crosses ≈0.42 at the geometric edge, so
            // this mean prints nominal features at size (zero print bias).
            mean: 0.42,
            std: 0.03,
            corr_len: 0.4,
            obs_per_axis: 5,
            terms: 8,
        }
    }
}

/// Precomputed EOLE basis over a rectangular design region.
#[derive(Debug, Clone)]
pub struct EoleField {
    params: EoleParams,
    /// Basis fields on the design grid, one per retained term.
    basis: Vec<Array2<f64>>,
    /// Eigenvalues of the observation covariance (retained terms).
    lambdas: Vec<f64>,
}

impl EoleField {
    /// Builds the basis for a `rows × cols` design region sampled at `dx`
    /// µm.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty or `params.terms` is zero.
    pub fn new(rows: usize, cols: usize, dx: f64, params: EoleParams) -> Self {
        assert!(rows > 0 && cols > 0, "design region must be non-empty");
        assert!(params.terms > 0, "need at least one expansion term");
        let m_axis = params.obs_per_axis.max(2);
        let m = m_axis * m_axis;
        // Observation points spread uniformly over the physical region.
        let w = cols as f64 * dx;
        let h = rows as f64 * dx;
        let obs: Vec<(f64, f64)> = (0..m)
            .map(|k| {
                let i = k % m_axis;
                let j = k / m_axis;
                (
                    (i as f64 + 0.5) / m_axis as f64 * w,
                    (j as f64 + 0.5) / m_axis as f64 * h,
                )
            })
            .collect();
        let cov = |a: (f64, f64), b: (f64, f64)| -> f64 {
            let d2 = (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2);
            params.std * params.std * (-d2 / (2.0 * params.corr_len * params.corr_len)).exp()
        };
        let cmat = Array2::from_fn(m, m, |r, c| cov(obs[r], obs[c]));
        let eig = sym_eigen(&cmat, 100);
        let terms = params.terms.min(m);
        // Basis field k at pixel x: (1/λ_k)·ψ_kᵀ C(x,·) — scaled so that
        // η = mean + Σ ξ_k √λ_k … we fold everything into the stored field:
        // field_k(x) = (1/√λ_k)·Σ_m ψ_km·C(x, x_m), with Var(Σ ξ field) → σ².
        let mut basis = Vec::with_capacity(terms);
        let mut lambdas = Vec::with_capacity(terms);
        for k in 0..terms {
            let lam = eig.values[k].max(1e-300);
            let psi = eig.vectors.col(k);
            let field = Array2::from_fn(rows, cols, |r, c| {
                let x = ((c as f64 + 0.5) * dx, (r as f64 + 0.5) * dx);
                let mut acc = 0.0;
                for (mi, &p) in psi.iter().enumerate() {
                    acc += p * cov(x, obs[mi]);
                }
                acc / lam.sqrt()
            });
            basis.push(field);
            lambdas.push(lam);
        }
        Self {
            params,
            basis,
            lambdas,
        }
    }

    /// The field parameters.
    pub fn params(&self) -> &EoleParams {
        &self.params
    }

    /// Number of retained terms K.
    pub fn terms(&self) -> usize {
        self.basis.len()
    }

    /// Retained covariance eigenvalues (descending).
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// The `k`-th basis field.
    ///
    /// # Panics
    ///
    /// Panics if `k >= terms()`.
    pub fn basis(&self, k: usize) -> &Array2<f64> {
        &self.basis[k]
    }

    /// Realises the threshold field `η₀ + shift + Σ ξ_k·basis_k` for
    /// expansion weights `xi` and a global threshold shift.
    ///
    /// # Panics
    ///
    /// Panics if `xi.len() != terms()`.
    pub fn realise(&self, xi: &[f64], shift: f64) -> Array2<f64> {
        assert_eq!(xi.len(), self.terms(), "xi length mismatch");
        let (rows, cols) = self.basis[0].shape();
        let mut eta = Array2::filled(rows, cols, self.params.mean + shift);
        for (k, b) in self.basis.iter().enumerate() {
            if xi[k] == 0.0 {
                continue;
            }
            for (e, v) in eta.as_mut_slice().iter_mut().zip(b.as_slice()) {
                *e += xi[k] * v;
            }
        }
        eta
    }

    /// Gradient of a scalar loss with respect to `ξ`, given `∂L/∂η` on the
    /// design grid: `∂L/∂ξ_k = Σ_x (∂L/∂η)(x)·basis_k(x)`.
    ///
    /// # Panics
    ///
    /// Panics if the shape mismatches the basis.
    pub fn grad_xi(&self, d_eta: &Array2<f64>) -> Vec<f64> {
        self.basis
            .iter()
            .map(|b| {
                assert_eq!(b.shape(), d_eta.shape(), "grad shape mismatch");
                b.as_slice()
                    .iter()
                    .zip(d_eta.as_slice())
                    .map(|(x, y)| x * y)
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn field() -> EoleField {
        EoleField::new(20, 24, 0.05, EoleParams::default())
    }

    #[test]
    fn zero_weights_give_mean_field() {
        let f = field();
        let mean = f.params().mean;
        let eta = f.realise(&vec![0.0; f.terms()], 0.0);
        for v in eta.as_slice() {
            assert!((v - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_moves_whole_field() {
        let f = field();
        let mean = f.params().mean;
        let eta = f.realise(&vec![0.0; f.terms()], 0.05);
        for v in eta.as_slice() {
            assert!((v - (mean + 0.05)).abs() < 1e-12);
        }
    }

    #[test]
    fn eigenvalues_sorted_and_positive() {
        let f = field();
        for w in f.lambdas().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(f.lambdas().iter().all(|&l| l > 0.0));
    }

    #[test]
    fn realised_field_is_smooth() {
        // Correlation length 0.4 µm over 50 nm pixels: neighbouring pixels
        // must differ by far less than σ.
        let f = field();
        let mut rng = StdRng::seed_from_u64(7);
        let xi: Vec<f64> = (0..f.terms()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let eta = f.realise(&xi, 0.0);
        let (rows, cols) = eta.shape();
        for r in 0..rows {
            for c in 1..cols {
                let d = (eta[(r, c)] - eta[(r, c - 1)]).abs();
                assert!(d < 0.02, "field jump {d} at ({r},{c})");
            }
        }
    }

    #[test]
    fn sample_statistics_match_sigma() {
        // Monte-Carlo std of the field at the centre should be close to σ
        // (slightly below because of truncation).
        let f = field();
        let mut rng = StdRng::seed_from_u64(42);
        let mut vals = Vec::new();
        for _ in 0..400 {
            let xi: Vec<f64> = (0..f.terms())
                .map(|_| rng.sample::<f64, _>(rand::distributions::Standard) * 2.0 - 1.0)
                .collect();
            let _ = &xi;
            // Use proper normals via Box-Muller for variance accuracy.
            let xi: Vec<f64> = (0..f.terms())
                .map(|_| {
                    let u1: f64 = rng.gen_range(1e-12..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                })
                .collect();
            let eta = f.realise(&xi, 0.0);
            vals.push(eta[(10, 12)]);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (vals.len() - 1) as f64;
        assert!(
            (mean - EoleParams::default().mean).abs() < 0.01,
            "mean {mean}"
        );
        let sigma = var.sqrt();
        assert!(
            sigma > 0.015 && sigma < 0.045,
            "field std {sigma} should be near 0.03"
        );
    }

    #[test]
    fn grad_xi_matches_finite_difference() {
        let f = field();
        let (rows, cols) = f.basis(0).shape();
        // L = Σ w·η with fixed weights.
        let w = Array2::from_fn(rows, cols, |r, c| ((r * 3 + c) % 7) as f64 * 0.1 - 0.3);
        let xi = vec![0.3; f.terms()];
        let g = f.grad_xi(&w);
        let h = 1e-6;
        for k in [0usize, f.terms() - 1] {
            let mut xp = xi.clone();
            xp[k] += h;
            let lp = f.realise(&xp, 0.0).zip_map(&w, |a, b| a * b).sum();
            xp[k] -= 2.0 * h;
            let lm = f.realise(&xp, 0.0).zip_map(&w, |a, b| a * b).sum();
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - g[k]).abs() < 1e-6 + 1e-6 * fd.abs(),
                "term {k}: {fd} vs {}",
                g[k]
            );
        }
    }

    #[test]
    fn basis_count_capped_by_observations() {
        let p = EoleParams {
            obs_per_axis: 2,
            terms: 100,
            ..EoleParams::default()
        };
        let f = EoleField::new(10, 10, 0.05, p);
        assert_eq!(f.terms(), 4);
    }
}
