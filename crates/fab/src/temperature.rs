//! Temperature-dependent silicon permittivity (operation variation).
//!
//! The paper's `T_t` stage: during operation the device temperature drifts
//! from its 300 K nominal, shifting the silicon index via the thermo-optic
//! coefficient (Komma et al., the paper's reference \[10\]):
//!
//! ```text
//! ε_Si(t) = (3.48 + 1.8·10⁻⁴·(t − 300))²
//! ```

use serde::{Deserialize, Serialize};

/// Nominal silicon refractive index at 300 K, 1550 nm.
pub const N_SI_300K: f64 = 3.48;
/// Thermo-optic coefficient dn/dT (1/K) of silicon at 1550 nm.
pub const DN_DT: f64 = 1.8e-4;
/// Nominal operating temperature (K).
pub const T_NOMINAL: f64 = 300.0;

/// Temperature-dependent silicon permittivity model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperatureModel {
    /// Temperature excursion ±ΔT (K) used by the variation corners.
    pub delta: f64,
}

impl Default for TemperatureModel {
    fn default() -> Self {
        Self { delta: 50.0 }
    }
}

impl TemperatureModel {
    /// Silicon relative permittivity at temperature `t` (K).
    pub fn eps_si(t: f64) -> f64 {
        let n = N_SI_300K + DN_DT * (t - T_NOMINAL);
        n * n
    }

    /// Derivative `dε/dt` at temperature `t`.
    pub fn d_eps_si_dt(t: f64) -> f64 {
        2.0 * (N_SI_300K + DN_DT * (t - T_NOMINAL)) * DN_DT
    }

    /// The three temperature corners `{300−Δ, 300, 300+Δ}`.
    pub fn corners(&self) -> [f64; 3] {
        [T_NOMINAL - self.delta, T_NOMINAL, T_NOMINAL + self.delta]
    }

    /// Bounds of the operating range.
    pub fn range(&self) -> (f64, f64) {
        (T_NOMINAL - self.delta, T_NOMINAL + self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_matches_handbook() {
        assert!((TemperatureModel::eps_si(300.0) - 3.48 * 3.48).abs() < 1e-12);
    }

    #[test]
    fn permittivity_increases_with_temperature() {
        assert!(TemperatureModel::eps_si(350.0) > TemperatureModel::eps_si(300.0));
        assert!(TemperatureModel::eps_si(250.0) < TemperatureModel::eps_si(300.0));
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-3;
        for t in [250.0, 300.0, 350.0] {
            let fd =
                (TemperatureModel::eps_si(t + h) - TemperatureModel::eps_si(t - h)) / (2.0 * h);
            let an = TemperatureModel::d_eps_si_dt(t);
            assert!((fd - an).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn corners_are_symmetric() {
        let m = TemperatureModel { delta: 40.0 };
        let c = m.corners();
        assert_eq!(c, [260.0, 300.0, 340.0]);
        assert_eq!(m.range(), (260.0, 340.0));
    }

    #[test]
    fn drift_magnitude_is_small_but_nonzero() {
        // 50 K drift shifts ε by ~0.06 — a perturbation, not a redesign.
        let d = TemperatureModel::eps_si(350.0) - TemperatureModel::eps_si(300.0);
        assert!(d > 0.01 && d < 0.2, "Δε = {d}");
    }
}
