//! Assembly of the symmetrised FDFD Helmholtz operator.
//!
//! For 2-D TM polarisation (out-of-plane `Ez`) with stretched-coordinate
//! PML the frequency-domain wave equation is
//!
//! ```text
//! (1/sx)∂x[(1/sx)∂x Ez] + (1/sy)∂y[(1/sy)∂y Ez] + k0² ε Ez = -i k0 Jz
//! ```
//!
//! Multiplying each row by `sx(i)·sy(j)` yields a **complex-symmetric**
//! matrix (the s-factor of the row's own axis cancels, the other axis'
//! factor is constant across the stencil), so the adjoint system `Aᵀλ = g`
//! shares the forward factorisation. The assembled row for cell `(i,j)` is
//!
//! ```text
//! sy_j/dx² [ (E_{i+1,j}-E_{i,j})/sx_{i+½} - (E_{i,j}-E_{i-1,j})/sx_{i-½} ]
//! + sx_i/dx² [ ... y-terms ... ] + k0² ε_{ij} sx_i sy_j E_{ij}
//! = -i k0 sx_i sy_j Jz_{ij}
//! ```
//!
//! Dirichlet (`Ez = 0`) closes the outer boundary; fields there have
//! already been absorbed by the PML.

use crate::grid::SimGrid;
use crate::pml::SFactors;
use boson_num::banded::{BandedMatrix, SingularMatrixError};
use boson_num::complex::{vmul, vmul_add};
use boson_num::{Array2, Complex64};
use boson_sparse::multigrid::{FineStencil, Multigrid};
use boson_sparse::{CooMatrix, CsrMatrix};

/// All coefficients of one assembled stencil row.
#[derive(Debug, Clone, Copy)]
struct StencilRow {
    center: Complex64,
    west: Complex64,
    east: Complex64,
    south: Complex64,
    north: Complex64,
}

/// The ε-independent pieces of one stencil row: the neighbour couplings,
/// the Dirichlet-consistent diagonal contribution `center0 = -(Σ full
/// couplings)`, and the row scaling `sxy = sx·sy` that multiplies the
/// `k₀²·ε` term. Shared by the direct per-row assembly and the
/// [`StencilCache`] so both produce bit-identical coefficients.
#[derive(Debug, Clone, Copy)]
struct StencilParts {
    center0: Complex64,
    west: Complex64,
    east: Complex64,
    south: Complex64,
    north: Complex64,
    sxy: Complex64,
}

fn stencil_parts(grid: &SimGrid, s: &SFactors, ix: usize, iy: usize) -> StencilParts {
    let inv_dx2 = 1.0 / (grid.dx * grid.dx);
    let sy = s.sy_int(iy);
    let sx = s.sx_int(ix);
    // x-neighbour couplings (scaled by sy).
    let cxe = if ix + 1 < grid.nx {
        sy * s.sx_half(ix).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    let cxw = if ix > 0 {
        sy * s.sx_half(ix - 1).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    // y-neighbour couplings (scaled by sx).
    let cyn = if iy + 1 < grid.ny {
        sx * s.sy_half(iy).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    let cys = if iy > 0 {
        sx * s.sy_half(iy - 1).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    // At the Dirichlet boundary the missing neighbour contributes zero but
    // the diagonal keeps the full stencil weight for consistency.
    let full_cxe = sy * s.sx_half(ix.min(grid.nx - 2)).inv() * inv_dx2;
    let full_cxw = sy * s.sx_half(ix.saturating_sub(1)).inv() * inv_dx2;
    let full_cyn = sx * s.sy_half(iy.min(grid.ny - 2)).inv() * inv_dx2;
    let full_cys = sx * s.sy_half(iy.saturating_sub(1)).inv() * inv_dx2;
    StencilParts {
        center0: -(full_cxe + full_cxw + full_cyn + full_cys),
        west: cxw,
        east: cxe,
        south: cys,
        north: cyn,
        sxy: sx * sy,
    }
}

fn stencil_row(
    grid: &SimGrid,
    s: &SFactors,
    eps: &Array2<f64>,
    omega: f64,
    ix: usize,
    iy: usize,
) -> StencilRow {
    let parts = stencil_parts(grid, s, ix, iy);
    let k2 = omega * omega;
    StencilRow {
        center: parts.center0 + parts.sxy * (k2 * eps[(iy, ix)]),
        west: parts.west,
        east: parts.east,
        south: parts.south,
        north: parts.north,
    }
}

/// Assembles the symmetrised Helmholtz operator as a banded matrix with
/// `kl = ku = nx` (x-fastest flat ordering).
///
/// Allocates fresh band storage; hot loops should keep a workspace matrix
/// and use [`assemble_banded_into`] instead.
///
/// # Panics
///
/// Panics if `eps` does not have shape `(ny, nx)`.
pub fn assemble_banded(
    grid: &SimGrid,
    s: &SFactors,
    eps: &Array2<f64>,
    omega: f64,
) -> BandedMatrix {
    let mut a = BandedMatrix::new(grid.n(), grid.nx, grid.nx);
    fill_banded(grid, s, eps, omega, &mut a);
    a
}

/// Assembles the operator into a caller-owned matrix, reshaping/zeroing it
/// in place — no heap allocation once `a` has the right capacity.
///
/// # Panics
///
/// Panics if `eps` does not have shape `(ny, nx)`.
pub fn assemble_banded_into(
    grid: &SimGrid,
    s: &SFactors,
    eps: &Array2<f64>,
    omega: f64,
    a: &mut BandedMatrix,
) {
    if a.n() == grid.n() && a.kl() == grid.nx && a.ku() == grid.nx {
        a.reset();
    } else {
        a.reshape(grid.n(), grid.nx, grid.nx);
    }
    fill_banded(grid, s, eps, omega, a);
}

fn fill_banded(grid: &SimGrid, s: &SFactors, eps: &Array2<f64>, omega: f64, a: &mut BandedMatrix) {
    assert_eq!(
        eps.shape(),
        (grid.ny, grid.nx),
        "eps shape must be (ny, nx)"
    );
    for iy in 0..grid.ny {
        for ix in 0..grid.nx {
            let k = grid.idx(ix, iy);
            let row = stencil_row(grid, s, eps, omega, ix, iy);
            a.set(k, k, row.center);
            if ix > 0 {
                a.set(k, k - 1, row.west);
            }
            if ix + 1 < grid.nx {
                a.set(k, k + 1, row.east);
            }
            if iy > 0 {
                a.set(k, k - grid.nx, row.south);
            }
            if iy + 1 < grid.ny {
                a.set(k, k + grid.nx, row.north);
            }
        }
    }
}

/// Cached ε-independent stencil coefficients for one `(grid, ω)`.
///
/// Assembling the FDFD operator re-derives every PML-stretched neighbour
/// coupling per corner, but only the diagonal `k₀²·ε·sx·sy` term actually
/// varies across the variation corners of an optimisation iteration. This
/// cache stores the couplings (and the ε-independent diagonal part) once
/// per `(grid, ω)` so a corner needs just
///
/// * [`StencilCache::diag_into`] — an `O(n)` rewrite of the diagonal — and
/// * either [`StencilCache::assemble_with_diag`] (banded image for a
///   direct factorisation) or [`StencilCache::apply`] (matrix-free
///   `O(5n)` operator application for the preconditioned iterative path).
///
/// Coefficients come from the same `stencil_parts` helper as the per-row
/// assembly, so cache-based assembly is bit-identical to
/// [`assemble_banded_into`] (asserted in tests).
#[derive(Debug, Clone)]
pub struct StencilCache {
    nx: usize,
    n: usize,
    k2: f64,
    west: Vec<Complex64>,
    east: Vec<Complex64>,
    south: Vec<Complex64>,
    north: Vec<Complex64>,
    /// ε-independent diagonal `-(Σ full couplings)` per cell.
    diag0: Vec<Complex64>,
    /// Row scaling `sx·sy` per cell (multiplies `k₀²·ε`).
    sxy: Vec<Complex64>,
}

impl StencilCache {
    /// Derives the couplings for `(grid, ω)`. Allocates; build once per
    /// geometry and reuse across corners.
    pub fn build(grid: &SimGrid, s: &SFactors, omega: f64) -> Self {
        let n = grid.n();
        let mut cache = Self {
            nx: grid.nx,
            n,
            k2: omega * omega,
            west: vec![Complex64::ZERO; n],
            east: vec![Complex64::ZERO; n],
            south: vec![Complex64::ZERO; n],
            north: vec![Complex64::ZERO; n],
            diag0: vec![Complex64::ZERO; n],
            sxy: vec![Complex64::ZERO; n],
        };
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                let k = grid.idx(ix, iy);
                let parts = stencil_parts(grid, s, ix, iy);
                cache.west[k] = parts.west;
                cache.east[k] = parts.east;
                cache.south[k] = parts.south;
                cache.north[k] = parts.north;
                cache.diag0[k] = parts.center0;
                cache.sxy[k] = parts.sxy;
            }
        }
        cache
    }

    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Grid width (fastest-varying index).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Borrowed [`FineStencil`] view of this cache bound to `diag` — the
    /// lingua franca of the [`boson_sparse::multigrid`] machinery
    /// (hierarchy rebuilds, boundary-band assembly, residual products).
    ///
    /// # Panics
    ///
    /// Panics if `diag.len()` does not match the cached grid size.
    pub fn fine_stencil<'a>(&'a self, diag: &'a [Complex64]) -> FineStencil<'a> {
        assert_eq!(diag.len(), self.n, "diagonal size mismatch");
        FineStencil {
            nx: self.nx,
            ny: self.n / self.nx,
            west: &self.west,
            east: &self.east,
            south: &self.south,
            north: &self.north,
            diag,
        }
    }

    /// Writes the full operator diagonal for `eps` into `diag` (resized
    /// once, then reused): `diag[k] = diag0[k] + sx·sy·(k₀²·ε_k)`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` does not match the cached grid size.
    pub fn diag_into(&self, eps: &Array2<f64>, diag: &mut Vec<Complex64>) {
        assert_eq!(eps.as_slice().len(), self.n, "eps size mismatch");
        diag.clear();
        diag.extend(
            self.diag0
                .iter()
                .zip(&self.sxy)
                .zip(eps.as_slice())
                .map(|((&d0, &sxy), &e)| d0 + sxy * (self.k2 * e)),
        );
    }

    /// Like [`StencilCache::diag_into`] but with a complex shift on the
    /// mass term: `diag[k] = diag0[k] + (1 + i·beta)·sx·sy·(k₀²·ε_k)` —
    /// the Erlangga-style damped-Helmholtz diagonal whose operator
    /// geometric multigrid converges on (the undamped indefinite operator
    /// admits no stable coarse correction at realistic wavenumbers).
    ///
    /// # Panics
    ///
    /// Panics if `eps` does not match the cached grid size.
    pub fn shifted_diag_into(&self, eps: &Array2<f64>, beta: f64, diag: &mut Vec<Complex64>) {
        assert_eq!(eps.as_slice().len(), self.n, "eps size mismatch");
        let shift = Complex64::new(1.0, beta);
        diag.clear();
        diag.extend(
            self.diag0
                .iter()
                .zip(&self.sxy)
                .zip(eps.as_slice())
                .map(|((&d0, &sxy), &e)| d0 + shift * sxy * (self.k2 * e)),
        );
    }

    /// Writes the banded image of the operator whose diagonal is `diag`
    /// (as produced by [`StencilCache::diag_into`]) into `a`, reshaping /
    /// zeroing in place — the fast-path replacement for
    /// [`assemble_banded_into`].
    ///
    /// # Panics
    ///
    /// Panics if `diag.len()` does not match the cached grid size.
    pub fn assemble_with_diag(&self, diag: &[Complex64], a: &mut BandedMatrix) {
        assert_eq!(diag.len(), self.n, "diagonal size mismatch");
        let nx = self.nx;
        if a.n() == self.n && a.kl() == nx && a.ku() == nx {
            a.reset();
        } else {
            a.reshape(self.n, nx, nx);
        }
        for (k, &d) in diag.iter().enumerate() {
            a.set(k, k, d);
            let ix = k % nx;
            if ix > 0 {
                a.set(k, k - 1, self.west[k]);
            }
            if ix + 1 < nx {
                a.set(k, k + 1, self.east[k]);
            }
            if k >= nx {
                a.set(k, k - nx, self.south[k]);
            }
            if k + nx < self.n {
                a.set(k, k + nx, self.north[k]);
            }
        }
    }

    /// Matrix-free operator application `y = A x` with diagonal `diag`,
    /// in `O(5n)` — the corner operator of the preconditioned iterative
    /// solver.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the cached grid size.
    pub fn apply(&self, diag: &[Complex64], x: &[Complex64], y: &mut [Complex64]) {
        let n = self.n;
        assert_eq!(diag.len(), n, "diagonal size mismatch");
        assert_eq!(x.len(), n, "input size mismatch");
        assert_eq!(y.len(), n, "output size mismatch");
        let nx = self.nx;
        vmul(diag, x, y);
        // West/east couplings are zero at row boundaries (ix = 0 /
        // ix = nx−1), so the shifted whole-array updates cannot couple
        // across grid rows.
        vmul_add(&self.west[1..], &x[..n - 1], &mut y[1..]);
        vmul_add(&self.east[..n - 1], &x[1..], &mut y[..n - 1]);
        vmul_add(&self.south[nx..], &x[..n - nx], &mut y[nx..]);
        vmul_add(&self.north[..n - nx], &x[nx..], &mut y[..n - nx]);
    }

    /// (Re)builds a geometric multigrid hierarchy for the operator
    /// `A(ε)` whose diagonal `diag` was produced by
    /// [`StencilCache::diag_into`]. All hierarchy storage is reused, so a
    /// same-grid rebuild (a new nominal ε epoch) performs no heap
    /// allocation beyond the first call.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the Galerkin-coarsened
    /// coarsest-level operator is singular.
    ///
    /// # Panics
    ///
    /// Panics if `diag.len()` does not match the cached grid size.
    pub fn rebuild_multigrid(
        &self,
        diag: &[Complex64],
        mg: &mut Multigrid,
    ) -> Result<(), SingularMatrixError> {
        mg.rebuild(&self.fine_stencil(diag))
    }
}

/// A [`StencilCache`] bound to one corner's diagonal, usable as the
/// matrix-free operator of [`boson_num::krylov`].
///
/// The symmetrised FDFD operator is complex-symmetric by construction
/// (the east coupling of a cell equals the west coupling of its
/// neighbour), so the transpose application is the plain application.
#[derive(Debug, Clone, Copy)]
pub struct StencilOp<'a> {
    /// Cached ε-independent couplings.
    pub cache: &'a StencilCache,
    /// Operator diagonal for the current corner.
    pub diag: &'a [Complex64],
}

impl boson_num::krylov::LinearOp for StencilOp<'_> {
    fn dim(&self) -> usize {
        self.cache.n()
    }

    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.cache.apply(self.diag, x, y);
    }

    fn apply_transpose(&self, x: &[Complex64], y: &mut [Complex64]) {
        // Complex-symmetric operator: Aᵀ = A.
        self.cache.apply(self.diag, x, y);
    }
}

/// A *family* of corner operators sharing one [`StencilCache`]: solve
/// column `col` applies the operator whose diagonal is stored at
/// `diags[(col / cols_per_diag)·n ..][..n]` — the
/// [`boson_num::krylov::ColumnOp`] of a batched variation-corner sweep,
/// where every corner contributes `cols_per_diag` right-hand sides (its
/// excitations) and all corners advance in lockstep against the shared
/// nominal preconditioner.
#[derive(Debug, Clone, Copy)]
pub struct MultiCornerOp<'a> {
    /// Cached ε-independent couplings (shared by every corner).
    pub cache: &'a StencilCache,
    /// Concatenated per-corner operator diagonals, `n` entries each.
    pub diags: &'a [Complex64],
    /// Right-hand-side columns per corner diagonal.
    pub cols_per_diag: usize,
}

impl boson_num::krylov::ColumnOp for MultiCornerOp<'_> {
    fn dim(&self) -> usize {
        self.cache.n()
    }

    fn apply_col(&self, col: usize, x: &[Complex64], y: &mut [Complex64]) {
        let n = self.cache.n();
        let d = col / self.cols_per_diag;
        self.cache.apply(&self.diags[d * n..(d + 1) * n], x, y);
    }

    fn apply_col_transpose(&self, col: usize, x: &[Complex64], y: &mut [Complex64]) {
        // Complex-symmetric operator: Aᵀ = A.
        self.apply_col(col, x, y);
    }
}

/// Assembles the same operator in CSR form (used by the BiCGSTAB
/// cross-check and by tests).
///
/// # Panics
///
/// Panics if `eps` does not have shape `(ny, nx)`.
pub fn assemble_csr(grid: &SimGrid, s: &SFactors, eps: &Array2<f64>, omega: f64) -> CsrMatrix {
    assert_eq!(
        eps.shape(),
        (grid.ny, grid.nx),
        "eps shape must be (ny, nx)"
    );
    let n = grid.n();
    let mut coo = CooMatrix::new(n, n);
    for iy in 0..grid.ny {
        for ix in 0..grid.nx {
            let k = grid.idx(ix, iy);
            let row = stencil_row(grid, s, eps, omega, ix, iy);
            coo.push(k, k, row.center);
            if ix > 0 {
                coo.push(k, k - 1, row.west);
            }
            if ix + 1 < grid.nx {
                coo.push(k, k + 1, row.east);
            }
            if iy > 0 {
                coo.push(k, k - grid.nx, row.south);
            }
            if iy + 1 < grid.ny {
                coo.push(k, k + grid.nx, row.north);
            }
        }
    }
    coo.to_csr()
}

/// The right-hand-side scaling applied to a raw current source `Jz`:
/// `b_k = -i·ω·sx(i)·sy(j)·Jz_k` (row scaling of the symmetrised system).
pub fn scale_source(grid: &SimGrid, s: &SFactors, omega: f64, jz: &[Complex64]) -> Vec<Complex64> {
    let mut b = vec![Complex64::ZERO; grid.n()];
    scale_source_into(grid, s, omega, jz, &mut b);
    b
}

/// In-place variant of [`scale_source`]: writes the scaled right-hand side
/// into the caller's buffer (overwriting every entry).
///
/// # Panics
///
/// Panics if `jz.len()` or `b.len()` does not match the grid.
pub fn scale_source_into(
    grid: &SimGrid,
    s: &SFactors,
    omega: f64,
    jz: &[Complex64],
    b: &mut [Complex64],
) {
    assert_eq!(jz.len(), grid.n(), "source length mismatch");
    assert_eq!(b.len(), grid.n(), "rhs length mismatch");
    for iy in 0..grid.ny {
        let row_jz = &jz[iy * grid.nx..(iy + 1) * grid.nx];
        let row_b = &mut b[iy * grid.nx..(iy + 1) * grid.nx];
        for (ix, (dst, &src)) in row_b.iter_mut().zip(row_jz).enumerate() {
            *dst = if src != Complex64::ZERO {
                Complex64::I * (-omega) * s.sxy(ix, iy) * src
            } else {
                Complex64::ZERO
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boson_num::c64;

    fn setup(nx: usize, ny: usize) -> (SimGrid, SFactors, Array2<f64>, f64) {
        let grid = SimGrid::new(nx, ny, 0.05, 8);
        let omega = 2.0 * std::f64::consts::PI / 1.55;
        let s = SFactors::new(&grid, omega);
        let eps = Array2::filled(ny, nx, 1.0);
        (grid, s, eps, omega)
    }

    #[test]
    fn operator_is_complex_symmetric() {
        let (grid, s, eps, omega) = setup(30, 26);
        let a = assemble_banded(&grid, &s, &eps, omega);
        assert!(
            a.asymmetry() < 1e-13,
            "symmetrised operator asymmetry = {}",
            a.asymmetry()
        );
    }

    #[test]
    fn banded_and_csr_agree() {
        let (grid, s, mut eps, omega) = setup(25, 22);
        // Non-trivial permittivity.
        for iy in 0..22 {
            for ix in 0..25 {
                eps[(iy, ix)] = 1.0 + 11.0 * ((ix * iy) % 3 == 0) as u8 as f64;
            }
        }
        let ab = assemble_banded(&grid, &s, &eps, omega);
        let ac = assemble_csr(&grid, &s, &eps, omega);
        let x: Vec<Complex64> = (0..grid.n())
            .map(|k| c64((k as f64 * 0.01).sin(), (k as f64 * 0.03).cos()))
            .collect();
        let yb = ab.matvec(&x);
        let yc = ac.matvec(&x);
        for (p, q) in yb.iter().zip(&yc) {
            assert!((*p - *q).abs() < 1e-10);
        }
    }

    #[test]
    fn interior_stencil_matches_helmholtz() {
        // Away from the PML the row must be the plain 5-point Helmholtz
        // stencil: (E_w + E_e + E_s + E_n - 4E_c)/dx² + k0²ε E_c.
        let (grid, s, eps, omega) = setup(30, 30);
        let a = assemble_banded(&grid, &s, &eps, omega);
        let k = grid.idx(15, 15);
        let inv_dx2 = 1.0 / (grid.dx * grid.dx);
        assert!((a.get(k, k + 1) - c64(inv_dx2, 0.0)).abs() < 1e-10);
        assert!((a.get(k, k - 1) - c64(inv_dx2, 0.0)).abs() < 1e-10);
        let expect_c = -4.0 * inv_dx2 + omega * omega;
        assert!((a.get(k, k) - c64(expect_c, 0.0)).abs() < 1e-9);
    }

    #[test]
    fn plane_wave_residual_small_in_interior() {
        // A discrete plane wave with the discrete dispersion relation
        // satisfies the interior equation to machine precision.
        let (grid, s, eps, omega) = setup(40, 40);
        let a = assemble_csr(&grid, &s, &eps, omega);
        // Discrete dispersion: (4/dx²) sin²(β dx/2) = ω² ε  (1-D propagation).
        let beta = (2.0 / grid.dx) * ((omega * grid.dx / 2.0).sin()).asin();
        // Solve actual discrete relation: sin(β dx/2) = ω dx/2 → β as below.
        let beta_d = (2.0 / grid.dx) * (omega * grid.dx / 2.0).asin();
        let _ = beta;
        let x: Vec<Complex64> = (0..grid.n())
            .map(|k| {
                let (ix, _) = grid.coords(k);
                Complex64::cis(beta_d * ix as f64 * grid.dx)
            })
            .collect();
        let y = a.matvec(&x);
        // Check rows well inside the interior and far from y-boundaries
        // (plane wave is constant along y so y-stencil cancels).
        for iy in 18..22 {
            for ix in 15..25 {
                let k = grid.idx(ix, iy);
                assert!(
                    y[k].abs() < 1e-9 / grid.dx / grid.dx * 1e-3,
                    "residual {} at ({ix},{iy})",
                    y[k].abs()
                );
            }
        }
    }

    #[test]
    fn assemble_into_reuse_matches_fresh_assembly() {
        let (grid, s, eps, omega) = setup(24, 20);
        let mut ws = BandedMatrix::new(1, 0, 0); // wrong shape on purpose
        assemble_banded_into(&grid, &s, &eps, omega, &mut ws);
        // Second assembly with a different permittivity must fully
        // overwrite the first.
        let mut eps2 = eps.clone();
        for iy in 0..20 {
            for ix in 0..24 {
                eps2[(iy, ix)] = 1.0 + ((ix + 2 * iy) % 4) as f64;
            }
        }
        assemble_banded_into(&grid, &s, &eps2, omega, &mut ws);
        let fresh = assemble_banded(&grid, &s, &eps2, omega);
        for i in 0..grid.n() {
            for j in i.saturating_sub(grid.nx)..=(i + grid.nx).min(grid.n() - 1) {
                assert!((ws.get(i, j) - fresh.get(i, j)).abs() < 1e-15, "({i},{j})");
            }
        }
    }

    #[test]
    fn stencil_cache_assembly_is_bit_identical_to_full_assembly() {
        let (grid, s, mut eps, omega) = setup(26, 24);
        for iy in 0..24 {
            for ix in 0..26 {
                eps[(iy, ix)] = 1.0 + 11.11 * (((ix * 7 + iy * 3) % 5) as f64) / 4.0;
            }
        }
        let cache = StencilCache::build(&grid, &s, omega);
        let mut diag = Vec::new();
        cache.diag_into(&eps, &mut diag);
        let mut fast = BandedMatrix::new(1, 0, 0); // wrong shape on purpose
        cache.assemble_with_diag(&diag, &mut fast);
        let full = assemble_banded(&grid, &s, &eps, omega);
        for i in 0..grid.n() {
            for j in i.saturating_sub(grid.nx)..=(i + grid.nx).min(grid.n() - 1) {
                assert_eq!(fast.get(i, j), full.get(i, j), "entry ({i},{j}) differs");
            }
        }
        // Temperature-style corner: only ε changes → only the diagonal
        // rewrite is needed, and it must again match the full assembly.
        let eps2 = eps.map(|&e| if e > 1.0 { e + 0.037 } else { e });
        cache.diag_into(&eps2, &mut diag);
        cache.assemble_with_diag(&diag, &mut fast);
        let full2 = assemble_banded(&grid, &s, &eps2, omega);
        for i in 0..grid.n() {
            for j in i.saturating_sub(grid.nx)..=(i + grid.nx).min(grid.n() - 1) {
                assert_eq!(fast.get(i, j), full2.get(i, j), "corner entry ({i},{j})");
            }
        }
    }

    #[test]
    fn stencil_apply_matches_assembled_matvec() {
        let (grid, s, mut eps, omega) = setup(22, 20);
        for iy in 0..20 {
            for ix in 0..22 {
                eps[(iy, ix)] = 1.0 + ((ix + iy) % 3) as f64 * 4.0;
            }
        }
        let cache = StencilCache::build(&grid, &s, omega);
        let mut diag = Vec::new();
        cache.diag_into(&eps, &mut diag);
        let a = assemble_banded(&grid, &s, &eps, omega);
        let x: Vec<Complex64> = (0..grid.n())
            .map(|k| c64((k as f64 * 0.017).sin(), (k as f64 * 0.029).cos()))
            .collect();
        let dense = a.matvec(&x);
        let mut fast = vec![c64(7.0, -7.0); grid.n()]; // poisoned
        cache.apply(&diag, &x, &mut fast);
        let scale: f64 = dense.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (k, (p, q)) in fast.iter().zip(&dense).enumerate() {
            assert!((*p - *q).abs() < 1e-12 * scale, "cell {k}: {p:?} vs {q:?}");
        }
        // Transpose application equals the plain one (complex-symmetric).
        use boson_num::krylov::LinearOp;
        let op = StencilOp {
            cache: &cache,
            diag: &diag,
        };
        let mut yt = vec![Complex64::ZERO; grid.n()];
        op.apply_transpose(&x, &mut yt);
        assert_eq!(yt, fast);
    }

    #[test]
    fn scale_source_into_overwrites_stale_buffer() {
        let (grid, s, _eps, omega) = setup(20, 20);
        let mut jz = vec![Complex64::ZERO; grid.n()];
        jz[grid.idx(10, 10)] = c64(1.0, -0.5);
        let fresh = scale_source(&grid, &s, omega, &jz);
        let mut buf = vec![c64(9.0, 9.0); grid.n()]; // poisoned
        scale_source_into(&grid, &s, omega, &jz, &mut buf);
        for (p, q) in buf.iter().zip(&fresh) {
            assert_eq!(*p, *q);
        }
    }

    #[test]
    fn source_scaling_applies_sfactors() {
        let (grid, s, _eps, omega) = setup(25, 25);
        let mut jz = vec![Complex64::ZERO; grid.n()];
        let k_in = grid.idx(12, 12); // interior: sxy = 1
        let k_pml = grid.idx(2, 12); // in PML: sxy != 1
        jz[k_in] = Complex64::ONE;
        jz[k_pml] = Complex64::ONE;
        let b = scale_source(&grid, &s, omega, &jz);
        assert!((b[k_in] - c64(0.0, -omega)).abs() < 1e-12);
        assert!((b[k_pml].abs() - (omega * s.sx_int(2).abs())).abs() < 1e-9);
    }
}
