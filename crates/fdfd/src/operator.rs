//! Assembly of the symmetrised FDFD Helmholtz operator.
//!
//! For 2-D TM polarisation (out-of-plane `Ez`) with stretched-coordinate
//! PML the frequency-domain wave equation is
//!
//! ```text
//! (1/sx)∂x[(1/sx)∂x Ez] + (1/sy)∂y[(1/sy)∂y Ez] + k0² ε Ez = -i k0 Jz
//! ```
//!
//! Multiplying each row by `sx(i)·sy(j)` yields a **complex-symmetric**
//! matrix (the s-factor of the row's own axis cancels, the other axis'
//! factor is constant across the stencil), so the adjoint system `Aᵀλ = g`
//! shares the forward factorisation. The assembled row for cell `(i,j)` is
//!
//! ```text
//! sy_j/dx² [ (E_{i+1,j}-E_{i,j})/sx_{i+½} - (E_{i,j}-E_{i-1,j})/sx_{i-½} ]
//! + sx_i/dx² [ ... y-terms ... ] + k0² ε_{ij} sx_i sy_j E_{ij}
//! = -i k0 sx_i sy_j Jz_{ij}
//! ```
//!
//! Dirichlet (`Ez = 0`) closes the outer boundary; fields there have
//! already been absorbed by the PML.

use crate::grid::SimGrid;
use crate::pml::SFactors;
use boson_num::banded::BandedMatrix;
use boson_num::{Array2, Complex64};
use boson_sparse::{CooMatrix, CsrMatrix};

/// All coefficients of one assembled stencil row.
#[derive(Debug, Clone, Copy)]
struct StencilRow {
    center: Complex64,
    west: Complex64,
    east: Complex64,
    south: Complex64,
    north: Complex64,
}

fn stencil_row(
    grid: &SimGrid,
    s: &SFactors,
    eps: &Array2<f64>,
    omega: f64,
    ix: usize,
    iy: usize,
) -> StencilRow {
    let inv_dx2 = 1.0 / (grid.dx * grid.dx);
    let sy = s.sy_int(iy);
    let sx = s.sx_int(ix);
    // x-neighbour couplings (scaled by sy).
    let cxe = if ix + 1 < grid.nx {
        sy * s.sx_half(ix).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    let cxw = if ix > 0 {
        sy * s.sx_half(ix - 1).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    // y-neighbour couplings (scaled by sx).
    let cyn = if iy + 1 < grid.ny {
        sx * s.sy_half(iy).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    let cys = if iy > 0 {
        sx * s.sy_half(iy - 1).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    let k2 = omega * omega;
    // At the Dirichlet boundary the missing neighbour contributes zero but
    // the diagonal keeps the full stencil weight for consistency.
    let full_cxe = sy * s.sx_half(ix.min(grid.nx - 2)).inv() * inv_dx2;
    let full_cxw = sy * s.sx_half(ix.saturating_sub(1)).inv() * inv_dx2;
    let full_cyn = sx * s.sy_half(iy.min(grid.ny - 2)).inv() * inv_dx2;
    let full_cys = sx * s.sy_half(iy.saturating_sub(1)).inv() * inv_dx2;
    let center = -(full_cxe + full_cxw + full_cyn + full_cys) + sx * sy * (k2 * eps[(iy, ix)]);
    StencilRow {
        center,
        west: cxw,
        east: cxe,
        south: cys,
        north: cyn,
    }
}

/// Assembles the symmetrised Helmholtz operator as a banded matrix with
/// `kl = ku = nx` (x-fastest flat ordering).
///
/// Allocates fresh band storage; hot loops should keep a workspace matrix
/// and use [`assemble_banded_into`] instead.
///
/// # Panics
///
/// Panics if `eps` does not have shape `(ny, nx)`.
pub fn assemble_banded(
    grid: &SimGrid,
    s: &SFactors,
    eps: &Array2<f64>,
    omega: f64,
) -> BandedMatrix {
    let mut a = BandedMatrix::new(grid.n(), grid.nx, grid.nx);
    fill_banded(grid, s, eps, omega, &mut a);
    a
}

/// Assembles the operator into a caller-owned matrix, reshaping/zeroing it
/// in place — no heap allocation once `a` has the right capacity.
///
/// # Panics
///
/// Panics if `eps` does not have shape `(ny, nx)`.
pub fn assemble_banded_into(
    grid: &SimGrid,
    s: &SFactors,
    eps: &Array2<f64>,
    omega: f64,
    a: &mut BandedMatrix,
) {
    if a.n() == grid.n() && a.kl() == grid.nx && a.ku() == grid.nx {
        a.reset();
    } else {
        a.reshape(grid.n(), grid.nx, grid.nx);
    }
    fill_banded(grid, s, eps, omega, a);
}

fn fill_banded(grid: &SimGrid, s: &SFactors, eps: &Array2<f64>, omega: f64, a: &mut BandedMatrix) {
    assert_eq!(
        eps.shape(),
        (grid.ny, grid.nx),
        "eps shape must be (ny, nx)"
    );
    for iy in 0..grid.ny {
        for ix in 0..grid.nx {
            let k = grid.idx(ix, iy);
            let row = stencil_row(grid, s, eps, omega, ix, iy);
            a.set(k, k, row.center);
            if ix > 0 {
                a.set(k, k - 1, row.west);
            }
            if ix + 1 < grid.nx {
                a.set(k, k + 1, row.east);
            }
            if iy > 0 {
                a.set(k, k - grid.nx, row.south);
            }
            if iy + 1 < grid.ny {
                a.set(k, k + grid.nx, row.north);
            }
        }
    }
}

/// Assembles the same operator in CSR form (used by the BiCGSTAB
/// cross-check and by tests).
///
/// # Panics
///
/// Panics if `eps` does not have shape `(ny, nx)`.
pub fn assemble_csr(grid: &SimGrid, s: &SFactors, eps: &Array2<f64>, omega: f64) -> CsrMatrix {
    assert_eq!(
        eps.shape(),
        (grid.ny, grid.nx),
        "eps shape must be (ny, nx)"
    );
    let n = grid.n();
    let mut coo = CooMatrix::new(n, n);
    for iy in 0..grid.ny {
        for ix in 0..grid.nx {
            let k = grid.idx(ix, iy);
            let row = stencil_row(grid, s, eps, omega, ix, iy);
            coo.push(k, k, row.center);
            if ix > 0 {
                coo.push(k, k - 1, row.west);
            }
            if ix + 1 < grid.nx {
                coo.push(k, k + 1, row.east);
            }
            if iy > 0 {
                coo.push(k, k - grid.nx, row.south);
            }
            if iy + 1 < grid.ny {
                coo.push(k, k + grid.nx, row.north);
            }
        }
    }
    coo.to_csr()
}

/// The right-hand-side scaling applied to a raw current source `Jz`:
/// `b_k = -i·ω·sx(i)·sy(j)·Jz_k` (row scaling of the symmetrised system).
pub fn scale_source(grid: &SimGrid, s: &SFactors, omega: f64, jz: &[Complex64]) -> Vec<Complex64> {
    let mut b = vec![Complex64::ZERO; grid.n()];
    scale_source_into(grid, s, omega, jz, &mut b);
    b
}

/// In-place variant of [`scale_source`]: writes the scaled right-hand side
/// into the caller's buffer (overwriting every entry).
///
/// # Panics
///
/// Panics if `jz.len()` or `b.len()` does not match the grid.
pub fn scale_source_into(
    grid: &SimGrid,
    s: &SFactors,
    omega: f64,
    jz: &[Complex64],
    b: &mut [Complex64],
) {
    assert_eq!(jz.len(), grid.n(), "source length mismatch");
    assert_eq!(b.len(), grid.n(), "rhs length mismatch");
    for iy in 0..grid.ny {
        let row_jz = &jz[iy * grid.nx..(iy + 1) * grid.nx];
        let row_b = &mut b[iy * grid.nx..(iy + 1) * grid.nx];
        for (ix, (dst, &src)) in row_b.iter_mut().zip(row_jz).enumerate() {
            *dst = if src != Complex64::ZERO {
                Complex64::I * (-omega) * s.sxy(ix, iy) * src
            } else {
                Complex64::ZERO
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boson_num::c64;

    fn setup(nx: usize, ny: usize) -> (SimGrid, SFactors, Array2<f64>, f64) {
        let grid = SimGrid::new(nx, ny, 0.05, 8);
        let omega = 2.0 * std::f64::consts::PI / 1.55;
        let s = SFactors::new(&grid, omega);
        let eps = Array2::filled(ny, nx, 1.0);
        (grid, s, eps, omega)
    }

    #[test]
    fn operator_is_complex_symmetric() {
        let (grid, s, eps, omega) = setup(30, 26);
        let a = assemble_banded(&grid, &s, &eps, omega);
        assert!(
            a.asymmetry() < 1e-13,
            "symmetrised operator asymmetry = {}",
            a.asymmetry()
        );
    }

    #[test]
    fn banded_and_csr_agree() {
        let (grid, s, mut eps, omega) = setup(25, 22);
        // Non-trivial permittivity.
        for iy in 0..22 {
            for ix in 0..25 {
                eps[(iy, ix)] = 1.0 + 11.0 * ((ix * iy) % 3 == 0) as u8 as f64;
            }
        }
        let ab = assemble_banded(&grid, &s, &eps, omega);
        let ac = assemble_csr(&grid, &s, &eps, omega);
        let x: Vec<Complex64> = (0..grid.n())
            .map(|k| c64((k as f64 * 0.01).sin(), (k as f64 * 0.03).cos()))
            .collect();
        let yb = ab.matvec(&x);
        let yc = ac.matvec(&x);
        for (p, q) in yb.iter().zip(&yc) {
            assert!((*p - *q).abs() < 1e-10);
        }
    }

    #[test]
    fn interior_stencil_matches_helmholtz() {
        // Away from the PML the row must be the plain 5-point Helmholtz
        // stencil: (E_w + E_e + E_s + E_n - 4E_c)/dx² + k0²ε E_c.
        let (grid, s, eps, omega) = setup(30, 30);
        let a = assemble_banded(&grid, &s, &eps, omega);
        let k = grid.idx(15, 15);
        let inv_dx2 = 1.0 / (grid.dx * grid.dx);
        assert!((a.get(k, k + 1) - c64(inv_dx2, 0.0)).abs() < 1e-10);
        assert!((a.get(k, k - 1) - c64(inv_dx2, 0.0)).abs() < 1e-10);
        let expect_c = -4.0 * inv_dx2 + omega * omega;
        assert!((a.get(k, k) - c64(expect_c, 0.0)).abs() < 1e-9);
    }

    #[test]
    fn plane_wave_residual_small_in_interior() {
        // A discrete plane wave with the discrete dispersion relation
        // satisfies the interior equation to machine precision.
        let (grid, s, eps, omega) = setup(40, 40);
        let a = assemble_csr(&grid, &s, &eps, omega);
        // Discrete dispersion: (4/dx²) sin²(β dx/2) = ω² ε  (1-D propagation).
        let beta = (2.0 / grid.dx) * ((omega * grid.dx / 2.0).sin()).asin();
        // Solve actual discrete relation: sin(β dx/2) = ω dx/2 → β as below.
        let beta_d = (2.0 / grid.dx) * (omega * grid.dx / 2.0).asin();
        let _ = beta;
        let x: Vec<Complex64> = (0..grid.n())
            .map(|k| {
                let (ix, _) = grid.coords(k);
                Complex64::cis(beta_d * ix as f64 * grid.dx)
            })
            .collect();
        let y = a.matvec(&x);
        // Check rows well inside the interior and far from y-boundaries
        // (plane wave is constant along y so y-stencil cancels).
        for iy in 18..22 {
            for ix in 15..25 {
                let k = grid.idx(ix, iy);
                assert!(
                    y[k].abs() < 1e-9 / grid.dx / grid.dx * 1e-3,
                    "residual {} at ({ix},{iy})",
                    y[k].abs()
                );
            }
        }
    }

    #[test]
    fn assemble_into_reuse_matches_fresh_assembly() {
        let (grid, s, eps, omega) = setup(24, 20);
        let mut ws = BandedMatrix::new(1, 0, 0); // wrong shape on purpose
        assemble_banded_into(&grid, &s, &eps, omega, &mut ws);
        // Second assembly with a different permittivity must fully
        // overwrite the first.
        let mut eps2 = eps.clone();
        for iy in 0..20 {
            for ix in 0..24 {
                eps2[(iy, ix)] = 1.0 + ((ix + 2 * iy) % 4) as f64;
            }
        }
        assemble_banded_into(&grid, &s, &eps2, omega, &mut ws);
        let fresh = assemble_banded(&grid, &s, &eps2, omega);
        for i in 0..grid.n() {
            for j in i.saturating_sub(grid.nx)..=(i + grid.nx).min(grid.n() - 1) {
                assert!((ws.get(i, j) - fresh.get(i, j)).abs() < 1e-15, "({i},{j})");
            }
        }
    }

    #[test]
    fn scale_source_into_overwrites_stale_buffer() {
        let (grid, s, _eps, omega) = setup(20, 20);
        let mut jz = vec![Complex64::ZERO; grid.n()];
        jz[grid.idx(10, 10)] = c64(1.0, -0.5);
        let fresh = scale_source(&grid, &s, omega, &jz);
        let mut buf = vec![c64(9.0, 9.0); grid.n()]; // poisoned
        scale_source_into(&grid, &s, omega, &jz, &mut buf);
        for (p, q) in buf.iter().zip(&fresh) {
            assert_eq!(*p, *q);
        }
    }

    #[test]
    fn source_scaling_applies_sfactors() {
        let (grid, s, _eps, omega) = setup(25, 25);
        let mut jz = vec![Complex64::ZERO; grid.n()];
        let k_in = grid.idx(12, 12); // interior: sxy = 1
        let k_pml = grid.idx(2, 12); // in PML: sxy != 1
        jz[k_in] = Complex64::ONE;
        jz[k_pml] = Complex64::ONE;
        let b = scale_source(&grid, &s, omega, &jz);
        assert!((b[k_in] - c64(0.0, -omega)).abs() < 1e-12);
        assert!((b[k_pml].abs() - (omega * s.sx_int(2).abs())).abs() < 1e-9);
    }
}
