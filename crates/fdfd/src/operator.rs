//! Assembly of the symmetrised FDFD Helmholtz operator.
//!
//! For 2-D TM polarisation (out-of-plane `Ez`) with stretched-coordinate
//! PML the frequency-domain wave equation is
//!
//! ```text
//! (1/sx)∂x[(1/sx)∂x Ez] + (1/sy)∂y[(1/sy)∂y Ez] + k0² ε Ez = -i k0 Jz
//! ```
//!
//! Multiplying each row by `sx(i)·sy(j)` yields a **complex-symmetric**
//! matrix (the s-factor of the row's own axis cancels, the other axis'
//! factor is constant across the stencil), so the adjoint system `Aᵀλ = g`
//! shares the forward factorisation. The assembled row for cell `(i,j)` is
//!
//! ```text
//! sy_j/dx² [ (E_{i+1,j}-E_{i,j})/sx_{i+½} - (E_{i,j}-E_{i-1,j})/sx_{i-½} ]
//! + sx_i/dx² [ ... y-terms ... ] + k0² ε_{ij} sx_i sy_j E_{ij}
//! = -i k0 sx_i sy_j Jz_{ij}
//! ```
//!
//! Dirichlet (`Ez = 0`) closes the outer boundary; fields there have
//! already been absorbed by the PML.

use crate::grid::SimGrid;
use crate::pml::SFactors;
use boson_num::banded::BandedMatrix;
use boson_num::{Array2, Complex64};
use boson_sparse::{CooMatrix, CsrMatrix};

/// All coefficients of one assembled stencil row.
#[derive(Debug, Clone, Copy)]
struct StencilRow {
    center: Complex64,
    west: Complex64,
    east: Complex64,
    south: Complex64,
    north: Complex64,
}

fn stencil_row(
    grid: &SimGrid,
    s: &SFactors,
    eps: &Array2<f64>,
    omega: f64,
    ix: usize,
    iy: usize,
) -> StencilRow {
    let inv_dx2 = 1.0 / (grid.dx * grid.dx);
    let sy = s.sy_int(iy);
    let sx = s.sx_int(ix);
    // x-neighbour couplings (scaled by sy).
    let cxe = if ix + 1 < grid.nx {
        sy * s.sx_half(ix).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    let cxw = if ix > 0 {
        sy * s.sx_half(ix - 1).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    // y-neighbour couplings (scaled by sx).
    let cyn = if iy + 1 < grid.ny {
        sx * s.sy_half(iy).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    let cys = if iy > 0 {
        sx * s.sy_half(iy - 1).inv() * inv_dx2
    } else {
        Complex64::ZERO
    };
    let k2 = omega * omega;
    // At the Dirichlet boundary the missing neighbour contributes zero but
    // the diagonal keeps the full stencil weight for consistency.
    let full_cxe = sy * s.sx_half(ix.min(grid.nx - 2)).inv() * inv_dx2;
    let full_cxw = sy * s.sx_half(ix.saturating_sub(1)).inv() * inv_dx2;
    let full_cyn = sx * s.sy_half(iy.min(grid.ny - 2)).inv() * inv_dx2;
    let full_cys = sx * s.sy_half(iy.saturating_sub(1)).inv() * inv_dx2;
    let center =
        -(full_cxe + full_cxw + full_cyn + full_cys) + sx * sy * (k2 * eps[(iy, ix)]);
    StencilRow {
        center,
        west: cxw,
        east: cxe,
        south: cys,
        north: cyn,
    }
}

/// Assembles the symmetrised Helmholtz operator as a banded matrix with
/// `kl = ku = nx` (x-fastest flat ordering).
///
/// # Panics
///
/// Panics if `eps` does not have shape `(ny, nx)`.
pub fn assemble_banded(
    grid: &SimGrid,
    s: &SFactors,
    eps: &Array2<f64>,
    omega: f64,
) -> BandedMatrix {
    assert_eq!(
        eps.shape(),
        (grid.ny, grid.nx),
        "eps shape must be (ny, nx)"
    );
    let n = grid.n();
    let mut a = BandedMatrix::new(n, grid.nx, grid.nx);
    for iy in 0..grid.ny {
        for ix in 0..grid.nx {
            let k = grid.idx(ix, iy);
            let row = stencil_row(grid, s, eps, omega, ix, iy);
            a.set(k, k, row.center);
            if ix > 0 {
                a.set(k, k - 1, row.west);
            }
            if ix + 1 < grid.nx {
                a.set(k, k + 1, row.east);
            }
            if iy > 0 {
                a.set(k, k - grid.nx, row.south);
            }
            if iy + 1 < grid.ny {
                a.set(k, k + grid.nx, row.north);
            }
        }
    }
    a
}

/// Assembles the same operator in CSR form (used by the BiCGSTAB
/// cross-check and by tests).
///
/// # Panics
///
/// Panics if `eps` does not have shape `(ny, nx)`.
pub fn assemble_csr(grid: &SimGrid, s: &SFactors, eps: &Array2<f64>, omega: f64) -> CsrMatrix {
    assert_eq!(eps.shape(), (grid.ny, grid.nx), "eps shape must be (ny, nx)");
    let n = grid.n();
    let mut coo = CooMatrix::new(n, n);
    for iy in 0..grid.ny {
        for ix in 0..grid.nx {
            let k = grid.idx(ix, iy);
            let row = stencil_row(grid, s, eps, omega, ix, iy);
            coo.push(k, k, row.center);
            if ix > 0 {
                coo.push(k, k - 1, row.west);
            }
            if ix + 1 < grid.nx {
                coo.push(k, k + 1, row.east);
            }
            if iy > 0 {
                coo.push(k, k - grid.nx, row.south);
            }
            if iy + 1 < grid.ny {
                coo.push(k, k + grid.nx, row.north);
            }
        }
    }
    coo.to_csr()
}

/// The right-hand-side scaling applied to a raw current source `Jz`:
/// `b_k = -i·ω·sx(i)·sy(j)·Jz_k` (row scaling of the symmetrised system).
pub fn scale_source(grid: &SimGrid, s: &SFactors, omega: f64, jz: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(jz.len(), grid.n(), "source length mismatch");
    let mut b = vec![Complex64::ZERO; grid.n()];
    for iy in 0..grid.ny {
        for ix in 0..grid.nx {
            let k = grid.idx(ix, iy);
            if jz[k] != Complex64::ZERO {
                b[k] = Complex64::I * (-omega) * s.sxy(ix, iy) * jz[k];
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use boson_num::c64;

    fn setup(nx: usize, ny: usize) -> (SimGrid, SFactors, Array2<f64>, f64) {
        let grid = SimGrid::new(nx, ny, 0.05, 8);
        let omega = 2.0 * std::f64::consts::PI / 1.55;
        let s = SFactors::new(&grid, omega);
        let eps = Array2::filled(ny, nx, 1.0);
        (grid, s, eps, omega)
    }

    #[test]
    fn operator_is_complex_symmetric() {
        let (grid, s, eps, omega) = setup(30, 26);
        let a = assemble_banded(&grid, &s, &eps, omega);
        assert!(
            a.asymmetry() < 1e-13,
            "symmetrised operator asymmetry = {}",
            a.asymmetry()
        );
    }

    #[test]
    fn banded_and_csr_agree() {
        let (grid, s, mut eps, omega) = setup(25, 22);
        // Non-trivial permittivity.
        for iy in 0..22 {
            for ix in 0..25 {
                eps[(iy, ix)] = 1.0 + 11.0 * ((ix * iy) % 3 == 0) as u8 as f64;
            }
        }
        let ab = assemble_banded(&grid, &s, &eps, omega);
        let ac = assemble_csr(&grid, &s, &eps, omega);
        let x: Vec<Complex64> = (0..grid.n())
            .map(|k| c64((k as f64 * 0.01).sin(), (k as f64 * 0.03).cos()))
            .collect();
        let yb = ab.matvec(&x);
        let yc = ac.matvec(&x);
        for (p, q) in yb.iter().zip(&yc) {
            assert!((*p - *q).abs() < 1e-10);
        }
    }

    #[test]
    fn interior_stencil_matches_helmholtz() {
        // Away from the PML the row must be the plain 5-point Helmholtz
        // stencil: (E_w + E_e + E_s + E_n - 4E_c)/dx² + k0²ε E_c.
        let (grid, s, eps, omega) = setup(30, 30);
        let a = assemble_banded(&grid, &s, &eps, omega);
        let k = grid.idx(15, 15);
        let inv_dx2 = 1.0 / (grid.dx * grid.dx);
        assert!((a.get(k, k + 1) - c64(inv_dx2, 0.0)).abs() < 1e-10);
        assert!((a.get(k, k - 1) - c64(inv_dx2, 0.0)).abs() < 1e-10);
        let expect_c = -4.0 * inv_dx2 + omega * omega;
        assert!((a.get(k, k) - c64(expect_c, 0.0)).abs() < 1e-9);
    }

    #[test]
    fn plane_wave_residual_small_in_interior() {
        // A discrete plane wave with the discrete dispersion relation
        // satisfies the interior equation to machine precision.
        let (grid, s, eps, omega) = setup(40, 40);
        let a = assemble_csr(&grid, &s, &eps, omega);
        // Discrete dispersion: (4/dx²) sin²(β dx/2) = ω² ε  (1-D propagation).
        let beta = (2.0 / grid.dx) * ((omega * grid.dx / 2.0).sin()).asin();
        // Solve actual discrete relation: sin(β dx/2) = ω dx/2 → β as below.
        let beta_d = (2.0 / grid.dx) * ((omega * grid.dx / 2.0)).asin();
        let _ = beta;
        let x: Vec<Complex64> = (0..grid.n())
            .map(|k| {
                let (ix, _) = grid.coords(k);
                Complex64::cis(beta_d * ix as f64 * grid.dx)
            })
            .collect();
        let y = a.matvec(&x);
        // Check rows well inside the interior and far from y-boundaries
        // (plane wave is constant along y so y-stencil cancels).
        for iy in 18..22 {
            for ix in 15..25 {
                let k = grid.idx(ix, iy);
                assert!(
                    y[k].abs() < 1e-9 / grid.dx / grid.dx * 1e-3,
                    "residual {} at ({ix},{iy})",
                    y[k].abs()
                );
            }
        }
    }

    #[test]
    fn source_scaling_applies_sfactors() {
        let (grid, s, _eps, omega) = setup(25, 25);
        let mut jz = vec![Complex64::ZERO; grid.n()];
        let k_in = grid.idx(12, 12); // interior: sxy = 1
        let k_pml = grid.idx(2, 12); // in PML: sxy != 1
        jz[k_in] = Complex64::ONE;
        jz[k_pml] = Complex64::ONE;
        let b = scale_source(&grid, &s, omega, &jz);
        assert!((b[k_in] - c64(0.0, -omega)).abs() < 1e-12);
        assert!((b[k_pml].abs() - (omega * s.sx_int(2).abs())).abs() < 1e-9);
    }
}
