//! Unidirectional modal current sources.
//!
//! A single line of current in a waveguide radiates equally in both
//! directions; a [`ModalSource`] uses *two* adjacent lines with the phase
//! relation `a₂ = -e^{iβ_d·dx}` so that the two backward emissions cancel
//! and the forward ones reinforce. With the discrete propagation constant
//! `β_d` the cancellation is exact for the discrete operator.
//!
//! The raw output is a `Jz` current distribution; the solver applies the
//! symmetrised-system scaling (`-iω·sx·sy`) separately.

use crate::grid::{Sign, SimGrid};
use crate::modes::{discrete_beta, SlabMode};
use crate::port::Port;
use boson_num::Complex64;

/// A two-line unidirectional modal current source at a port plane.
#[derive(Debug, Clone)]
pub struct ModalSource {
    /// Port this source injects through.
    pub port: Port,
    /// Mode injected.
    pub mode: SlabMode,
    /// Direction of propagation.
    pub direction: Sign,
    /// Complex amplitude multiplier.
    pub amplitude: Complex64,
}

impl ModalSource {
    /// Creates a unit-amplitude source injecting `mode` through `port`
    /// towards `direction`.
    pub fn new(port: Port, mode: SlabMode, direction: Sign) -> Self {
        Self {
            port,
            mode,
            direction,
            amplitude: Complex64::ONE,
        }
    }

    /// Builds the raw `Jz` current vector on the full grid.
    ///
    /// The second line sits one cell *behind* the main line (relative to
    /// the propagation direction) so the emission cancels behind the
    /// source.
    ///
    /// # Panics
    ///
    /// Panics if the port plane or its behind-neighbour leaves the grid.
    pub fn current(&self, grid: &SimGrid) -> Vec<Complex64> {
        let mut jz = vec![Complex64::ZERO; grid.n()];
        self.current_into(grid, &mut jz);
        jz
    }

    /// In-place variant of [`ModalSource::current`]: zeroes `jz` and fills
    /// the two source lines, reusing the caller's buffer.
    ///
    /// # Panics
    ///
    /// Panics if `jz.len()` does not match the grid, or if the port plane
    /// or its behind-neighbour leaves the grid.
    pub fn current_into(&self, grid: &SimGrid, jz: &mut [Complex64]) {
        assert_eq!(jz.len(), grid.n(), "current buffer length mismatch");
        jz.fill(Complex64::ZERO);
        let beta_d = discrete_beta(self.mode.beta, grid.dx);
        let behind: isize = match self.direction {
            Sign::Plus => -1,
            Sign::Minus => 1,
        };
        // Backward-cancelling amplitude for the second line.
        let a2 = -Complex64::cis(beta_d * grid.dx);
        for (m, t) in (self.port.t_lo..self.port.t_hi).enumerate() {
            let phi = self.mode.profile[m];
            if phi == 0.0 {
                continue;
            }
            let k1 = self.port.cell_at(grid, t, 0);
            let k2 = self.port.cell_at(grid, t, behind);
            jz[k1] += self.amplitude * phi;
            jz[k2] += self.amplitude * a2 * phi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Axis;

    const OMEGA: f64 = 2.0 * std::f64::consts::PI / 1.55;

    fn flat_mode(width: usize, dt: f64, beta: f64) -> SlabMode {
        let raw: f64 = width as f64 * dt;
        let scale = (2.0 * OMEGA / (beta * raw)).sqrt();
        SlabMode {
            beta,
            neff: beta / OMEGA,
            profile: vec![scale; width],
            order: 0,
        }
    }

    #[test]
    fn current_occupies_two_planes() {
        let grid = SimGrid::new(40, 30, 0.05, 8);
        let port = Port::new("in", Axis::X, 12, 10, 20);
        let mode = flat_mode(10, grid.dx, OMEGA);
        let src = ModalSource::new(port, mode, Sign::Plus);
        let jz = src.current(&grid);
        let nz: Vec<usize> = jz
            .iter()
            .enumerate()
            .filter(|(_, v)| v.abs() > 0.0)
            .map(|(k, _)| k)
            .collect();
        assert_eq!(nz.len(), 20, "two lines × 10 cells");
        let planes: std::collections::BTreeSet<usize> =
            nz.iter().map(|&k| grid.coords(k).0).collect();
        assert_eq!(planes.into_iter().collect::<Vec<_>>(), vec![11, 12]);
    }

    #[test]
    fn backward_line_is_phase_shifted() {
        let grid = SimGrid::new(40, 30, 0.05, 8);
        let port = Port::new("in", Axis::X, 12, 10, 20);
        let mode = flat_mode(10, grid.dx, OMEGA);
        let src = ModalSource::new(port, mode.clone(), Sign::Plus);
        let jz = src.current(&grid);
        let k_main = grid.idx(12, 15);
        let k_back = grid.idx(11, 15);
        let ratio = jz[k_back] / jz[k_main];
        let beta_d = discrete_beta(mode.beta, grid.dx);
        let expect = -Complex64::cis(beta_d * grid.dx);
        assert!((ratio - expect).abs() < 1e-12);
    }

    #[test]
    fn minus_direction_places_line_ahead() {
        let grid = SimGrid::new(40, 30, 0.05, 8);
        let port = Port::new("out", Axis::X, 25, 10, 20);
        let mode = flat_mode(10, grid.dx, OMEGA);
        let src = ModalSource::new(port, mode, Sign::Minus);
        let jz = src.current(&grid);
        let planes: std::collections::BTreeSet<usize> = jz
            .iter()
            .enumerate()
            .filter(|(_, v)| v.abs() > 0.0)
            .map(|(k, _)| grid.coords(k).0)
            .collect();
        assert_eq!(planes.into_iter().collect::<Vec<_>>(), vec![25, 26]);
    }

    #[test]
    fn amplitude_scales_linearly() {
        let grid = SimGrid::new(40, 30, 0.05, 8);
        let port = Port::new("in", Axis::X, 12, 10, 20);
        let mode = flat_mode(10, grid.dx, OMEGA);
        let mut src = ModalSource::new(port, mode, Sign::Plus);
        let j1 = src.current(&grid);
        src.amplitude = Complex64::from_real(2.0);
        let j2 = src.current(&grid);
        for (a, b) in j1.iter().zip(&j2) {
            assert!((*a * 2.0 - *b).abs() < 1e-14);
        }
    }
}
