//! Lightweight rendering of fields and material patterns.
//!
//! Inverse-design debugging lives and dies by looking at patterns and
//! fields. This module renders [`Array2`] data as ASCII art (for
//! terminals/logs) and as binary PGM images (for any image viewer),
//! without pulling an image dependency.

use boson_num::{Array2, Complex64};
use std::io::{self, Write};
use std::path::Path;

/// Grey-scale ramp used by [`ascii_art`] (dark → bright).
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a non-negative scalar field as ASCII art, normalised to its
/// maximum.
///
/// # Examples
///
/// ```
/// use boson_num::Array2;
/// let a = Array2::from_fn(2, 4, |r, c| (r * 4 + c) as f64);
/// let art = boson_fdfd::render::ascii_art(&a);
/// assert_eq!(art.lines().count(), 2);
/// ```
pub fn ascii_art(field: &Array2<f64>) -> String {
    let max = field.max().max(f64::MIN_POSITIVE);
    let (rows, cols) = field.shape();
    let mut out = String::with_capacity(rows * (cols + 1));
    for r in 0..rows {
        for c in 0..cols {
            let v = (field[(r, c)].max(0.0) / max).min(1.0);
            let idx = ((RAMP.len() - 1) as f64 * v).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Renders a binary/density pattern with `#` for solid (> 0.5) and `.`
/// for void.
pub fn pattern_art(rho: &Array2<f64>) -> String {
    let (rows, cols) = rho.shape();
    let mut out = String::with_capacity(rows * (cols + 1));
    for r in 0..rows {
        for c in 0..cols {
            out.push(if rho[(r, c)] > 0.5 { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Field magnitude |Ez| of a complex field as a real array (helper for
/// rendering solved fields).
pub fn magnitude(field: &Array2<Complex64>) -> Array2<f64> {
    field.map(|v| v.abs())
}

/// Writes a scalar field as an 8-bit binary PGM image (max-normalised).
///
/// # Errors
///
/// Propagates I/O errors from file creation/writes.
pub fn write_pgm<P: AsRef<Path>>(path: P, field: &Array2<f64>) -> io::Result<()> {
    let (rows, cols) = field.shape();
    let max = field.max().max(f64::MIN_POSITIVE);
    let min = field.min().min(0.0);
    let span = (max - min).max(f64::MIN_POSITIVE);
    let mut file = std::fs::File::create(path)?;
    write!(file, "P5\n{cols} {rows}\n255\n")?;
    let mut bytes = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = ((field[(r, c)] - min) / span * 255.0)
                .round()
                .clamp(0.0, 255.0);
            bytes.push(v as u8);
        }
    }
    file.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boson_num::c64;

    #[test]
    fn ascii_art_shape_and_ramp() {
        let a = Array2::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        let art = ascii_art(&a);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 5));
        // Brightest cell uses the last ramp char.
        assert!(lines[2].ends_with('@'));
        // Darkest cell uses the first ramp char.
        assert!(lines[0].starts_with(' '));
    }

    #[test]
    fn ascii_art_handles_all_zero() {
        let a = Array2::zeros(2, 2);
        let art = ascii_art(&a);
        assert_eq!(art, "  \n  \n");
    }

    #[test]
    fn pattern_art_binary() {
        let a = Array2::from_vec(1, 3, vec![0.2, 0.6, 1.0]);
        assert_eq!(pattern_art(&a), ".##\n");
    }

    #[test]
    fn magnitude_of_complex_field() {
        let a = Array2::filled(2, 2, c64(3.0, 4.0));
        let m = magnitude(&a);
        assert!((m[(1, 1)] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pgm_round_trip_header() {
        let a = Array2::from_fn(4, 6, |r, c| (r + c) as f64);
        let dir = std::env::temp_dir().join("boson_render_test.pgm");
        write_pgm(&dir, &a).unwrap();
        let data = std::fs::read(&dir).unwrap();
        let header = String::from_utf8_lossy(&data[..11]);
        assert!(header.starts_with("P5\n6 4\n255"), "{header}");
        assert_eq!(data.len(), 11 + 24);
        let _ = std::fs::remove_file(dir);
    }
}
