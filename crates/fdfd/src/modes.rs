//! 1-D slab waveguide eigenmode solver.
//!
//! Waveguide ports inject and measure *modes*: solutions of the transverse
//! eigenproblem `(d²/dt² + k0² ε(t)) φ(t) = β² φ(t)` on the port's
//! cross-section, discretised with the same pitch as the 2-D grid so the
//! discrete modes are consistent with the FDFD operator.
//!
//! Mode indexing follows the paper: `TM1` is the fundamental (index 0),
//! `TM3` is the third mode (index 2).
//!
//! # Examples
//!
//! ```
//! use boson_fdfd::modes::solve_modes;
//!
//! // 0.5 µm silicon core in air at λ = 1.55 µm, 25 nm pitch.
//! let eps: Vec<f64> = (0..80)
//!     .map(|i| if (30..50).contains(&i) { 12.11 } else { 1.0 })
//!     .collect();
//! let modes = solve_modes(&eps, 0.025, 2.0 * std::f64::consts::PI / 1.55, 3);
//! assert!(!modes.is_empty());
//! // The fundamental is guided: k0 < β < k0·n_core.
//! let k0 = 2.0 * std::f64::consts::PI / 1.55;
//! assert!(modes[0].beta > k0 && modes[0].beta < k0 * 12.11f64.sqrt());
//! ```

use boson_num::tridiag::SymTridiag;
use serde::{Deserialize, Serialize};

/// One guided slab mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlabMode {
    /// Propagation constant β (µm⁻¹), from the discrete eigenvalue.
    pub beta: f64,
    /// Effective index β/k0.
    pub neff: f64,
    /// Power-normalised transverse profile φ(t) sampled at the port cells:
    /// `(β/(2ω)) Σ φ² dt = 1`.
    pub profile: Vec<f64>,
    /// Mode order (0 = fundamental).
    pub order: usize,
}

impl SlabMode {
    /// Transverse overlap `Σ φ·f dt` of this mode with a field slice.
    ///
    /// # Panics
    ///
    /// Panics if `f.len() != profile.len()`.
    pub fn overlap(&self, f: &[f64], dt: f64) -> f64 {
        assert_eq!(f.len(), self.profile.len(), "overlap length mismatch");
        self.profile.iter().zip(f).map(|(p, v)| p * v).sum::<f64>() * dt
    }

    /// Normalisation integral `Σ φ² dt` (≈ `2ω/β` after power
    /// normalisation).
    pub fn norm_integral(&self, dt: f64) -> f64 {
        self.profile.iter().map(|p| p * p).sum::<f64>() * dt
    }
}

/// Solves for up to `count` guided modes of the permittivity profile
/// `eps` sampled at pitch `dt`, at angular frequency `omega` (= k0 with
/// c = 1).
///
/// Only *guided* modes (β² > k0²·ε_min of the profile edges) are returned,
/// so the result may contain fewer than `count` entries.
///
/// # Panics
///
/// Panics if `eps` has fewer than 3 samples.
pub fn solve_modes(eps: &[f64], dt: f64, omega: f64, count: usize) -> Vec<SlabMode> {
    assert!(eps.len() >= 3, "profile too short: {}", eps.len());
    let n = eps.len();
    let inv_dt2 = 1.0 / (dt * dt);
    let diag: Vec<f64> = eps
        .iter()
        .map(|&e| -2.0 * inv_dt2 + omega * omega * e)
        .collect();
    let off = vec![inv_dt2; n - 1];
    let t = SymTridiag::new(diag, off);
    // Cladding permittivity: take the boundary cells (the profile is
    // embedded in cladding on both sides in our devices).
    let eps_clad = eps[0].min(eps[n - 1]);
    let cutoff = omega * omega * eps_clad;

    let pairs = t.largest_eigenpairs(count.min(n));
    let mut modes = Vec::new();
    for (order, p) in pairs.into_iter().enumerate() {
        if p.value <= cutoff {
            break; // descending order: everything after is radiative too
        }
        let beta = p.value.sqrt();
        // Power normalisation: (β/(2ω)) ∫φ² dt = 1.
        let raw: f64 = p.vector.iter().map(|v| v * v).sum::<f64>() * dt;
        let scale = (2.0 * omega / (beta * raw)).sqrt();
        let profile: Vec<f64> = p.vector.iter().map(|v| v * scale).collect();
        modes.push(SlabMode {
            beta,
            neff: beta / omega,
            profile,
            order,
        });
    }
    modes
}

/// Discrete propagation constant for the 5-point FDFD stencil: the 2-D
/// discrete plane-wave dispersion maps the transverse eigenvalue β² to an
/// axial wavenumber `β_d = (2/dx)·asin(β·dx/2)`.
///
/// Using `β_d` instead of β when phasing directional sources and
/// direction-separating monitors removes the O((βdx)²) discretisation
/// mismatch.
pub fn discrete_beta(beta: f64, dx: f64) -> f64 {
    let s = (beta * dx / 2.0).min(1.0);
    (2.0 / dx) * s.asin()
}

/// The effective first-derivative factor of a central difference applied
/// to a discrete plane wave: `∂x e^{iβ_d x} ≈ i·(sin(β_d dx)/dx)·e^{iβ_d x}`.
pub fn central_diff_factor(beta_d: f64, dx: f64) -> f64 {
    (beta_d * dx).sin() / dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const LAMBDA: f64 = 1.55;

    fn k0() -> f64 {
        2.0 * PI / LAMBDA
    }

    fn slab(core_cells: usize, total: usize, dt: f64) -> Vec<f64> {
        let start = (total - core_cells) / 2;
        let _ = dt;
        (0..total)
            .map(|i| {
                if (start..start + core_cells).contains(&i) {
                    12.11
                } else {
                    1.0
                }
            })
            .collect()
    }

    #[test]
    fn single_mode_narrow_waveguide() {
        // 0.2 µm slab: strictly single-mode at 1.55 µm.
        let dt = 0.025;
        let eps = slab(8, 120, dt);
        let modes = solve_modes(&eps, dt, k0(), 4);
        assert_eq!(modes.len(), 1, "expected single guided mode");
        assert!(modes[0].neff > 1.0 && modes[0].neff < 12.11f64.sqrt());
    }

    #[test]
    fn multimode_wide_waveguide() {
        // 1.5 µm slab supports ≥ 3 modes.
        let dt = 0.025;
        let eps = slab(60, 200, dt);
        let modes = solve_modes(&eps, dt, k0(), 4);
        assert!(modes.len() >= 3, "got {} modes", modes.len());
        // β strictly decreasing with order.
        for w in modes.windows(2) {
            assert!(w[0].beta > w[1].beta);
        }
    }

    #[test]
    fn neff_matches_analytic_dispersion() {
        // Compare the fundamental TE (Ez) slab mode against the analytic
        // dispersion relation tan(κa) relationship via a coarse check on
        // n_eff for a 0.4 µm slab: the exact symmetric-slab solution
        // satisfies tan(κ w/2) = γ/κ with κ² = k0²n₁² - β², γ² = β² - k0²n₂².
        let dt = 0.01;
        let w = 0.4;
        let cells = (w / dt) as usize;
        let eps = slab(cells, 600, dt);
        let modes = solve_modes(&eps, dt, k0(), 1);
        let beta = modes[0].beta;
        let kappa = (k0() * k0() * 12.11 - beta * beta).sqrt();
        let gamma = (beta * beta - k0() * k0()).sqrt();
        let lhs = (kappa * w / 2.0).tan();
        let rhs = gamma / kappa;
        assert!(
            (lhs - rhs).abs() / rhs < 0.03,
            "dispersion mismatch: tan(κw/2)={lhs}, γ/κ={rhs}"
        );
    }

    #[test]
    fn mode_profiles_orthogonal() {
        let dt = 0.025;
        let eps = slab(60, 200, dt);
        let modes = solve_modes(&eps, dt, k0(), 3);
        for a in 0..modes.len() {
            for b in 0..a {
                let dot: f64 = modes[a]
                    .profile
                    .iter()
                    .zip(&modes[b].profile)
                    .map(|(x, y)| x * y)
                    .sum();
                let na = modes[a].profile.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nb = modes[b].profile.iter().map(|x| x * x).sum::<f64>().sqrt();
                assert!(dot.abs() / (na * nb) < 1e-6, "modes {a},{b} overlap");
            }
        }
    }

    #[test]
    fn power_normalisation() {
        let dt = 0.025;
        let eps = slab(20, 160, dt);
        let modes = solve_modes(&eps, dt, k0(), 1);
        let m = &modes[0];
        let p = m.beta / (2.0 * k0()) * m.norm_integral(dt);
        assert!((p - 1.0).abs() < 1e-10, "power normalisation: {p}");
    }

    #[test]
    fn fundamental_mode_has_no_nodes() {
        let dt = 0.025;
        let eps = slab(30, 150, dt);
        let modes = solve_modes(&eps, dt, k0(), 2);
        let sign_changes = modes[0]
            .profile
            .windows(2)
            .filter(|w| w[0].signum() != w[1].signum() && w[0].abs() > 1e-6 && w[1].abs() > 1e-6)
            .count();
        assert_eq!(sign_changes, 0, "fundamental must be nodeless");
        // Second mode has exactly one node.
        if modes.len() > 1 {
            let nodes = modes[1]
                .profile
                .windows(2)
                .filter(|w| {
                    w[0].signum() != w[1].signum() && w[0].abs() > 1e-6 && w[1].abs() > 1e-6
                })
                .count();
            assert_eq!(nodes, 1, "second mode must have one node");
        }
    }

    #[test]
    fn discrete_beta_correction() {
        let dx = 0.05;
        let beta = 8.0;
        let bd = discrete_beta(beta, dx);
        assert!(
            bd > beta,
            "discrete β exceeds continuous for the 5-pt stencil"
        );
        // (4/dx²) sin²(β_d dx/2) = β² must hold.
        let lhs = (2.0 / dx * (bd * dx / 2.0).sin()).powi(2);
        assert!((lhs - beta * beta).abs() < 1e-9);
        // Factor → β as dx → 0.
        assert!((discrete_beta(beta, 1e-6) - beta).abs() < 1e-6);
    }

    #[test]
    fn central_diff_factor_limits() {
        assert!((central_diff_factor(5.0, 1e-9) - 5.0).abs() < 1e-6);
        let f = central_diff_factor(5.0, 0.05);
        assert!(f < 5.0, "central difference underestimates the derivative");
    }
}
