//! Simulation grid geometry.
//!
//! A [`SimGrid`] describes a uniform 2-D Yee grid: `nx × ny` cells of pitch
//! `dx` (µm), with `npml` cells of perfectly-matched layer on every edge.
//! `Ez` lives at integer grid points; flat indexing is x-fastest
//! (`idx = iy * nx + ix`) so the FDFD operator bandwidth equals `nx`.
//!
//! # Examples
//!
//! ```
//! use boson_fdfd::grid::SimGrid;
//!
//! let g = SimGrid::new(80, 60, 0.05, 10);
//! assert_eq!(g.n(), 4800);
//! assert_eq!(g.idx(3, 2), 2 * 80 + 3);
//! assert!((g.width() - 4.0).abs() < 1e-12);
//! assert_eq!(g.interior_x(), 10..70);
//! ```

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Axis selector for ports, planes and monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Planes of constant *x*; propagation along x.
    X,
    /// Planes of constant *y*; propagation along y.
    Y,
}

/// Propagation direction along an axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// Towards increasing coordinate.
    Plus,
    /// Towards decreasing coordinate.
    Minus,
}

impl Sign {
    /// `+1.0` or `-1.0`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Sign::Plus => 1.0,
            Sign::Minus => -1.0,
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// Uniform 2-D Yee grid with PML on all four edges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimGrid {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cell pitch in µm (uniform in x and y).
    pub dx: f64,
    /// PML thickness in cells (per edge).
    pub npml: usize,
}

impl SimGrid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if the interior (non-PML) region would be empty.
    pub fn new(nx: usize, ny: usize, dx: f64, npml: usize) -> Self {
        assert!(
            nx > 2 * npml + 2 && ny > 2 * npml + 2,
            "grid {nx}x{ny} too small for npml={npml}"
        );
        assert!(dx > 0.0, "cell pitch must be positive");
        Self { nx, ny, dx, npml }
    }

    /// Total number of unknowns (`nx·ny`).
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.nx * self.ny
    }

    /// Flat index of cell `(ix, iy)` — x-fastest ordering.
    #[inline(always)]
    pub fn idx(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }

    /// Inverse of [`SimGrid::idx`].
    #[inline(always)]
    pub fn coords(&self, k: usize) -> (usize, usize) {
        (k % self.nx, k / self.nx)
    }

    /// Physical domain width (µm).
    pub fn width(&self) -> f64 {
        self.nx as f64 * self.dx
    }

    /// Physical domain height (µm).
    pub fn height(&self) -> f64 {
        self.ny as f64 * self.dx
    }

    /// Physical x coordinate of column `ix` (cell centres).
    pub fn x_of(&self, ix: usize) -> f64 {
        (ix as f64 + 0.5) * self.dx
    }

    /// Physical y coordinate of row `iy`.
    pub fn y_of(&self, iy: usize) -> f64 {
        (iy as f64 + 0.5) * self.dx
    }

    /// Column index nearest to physical coordinate `x` (clamped).
    pub fn ix_of(&self, x: f64) -> usize {
        ((x / self.dx - 0.5).round().max(0.0) as usize).min(self.nx - 1)
    }

    /// Row index nearest to physical coordinate `y` (clamped).
    pub fn iy_of(&self, y: f64) -> usize {
        ((y / self.dx - 0.5).round().max(0.0) as usize).min(self.ny - 1)
    }

    /// Range of x indices outside the PML.
    pub fn interior_x(&self) -> Range<usize> {
        self.npml..self.nx - self.npml
    }

    /// Range of y indices outside the PML.
    pub fn interior_y(&self) -> Range<usize> {
        self.npml..self.ny - self.npml
    }

    /// `true` when `(ix, iy)` lies in the PML skirt.
    pub fn in_pml(&self, ix: usize, iy: usize) -> bool {
        ix < self.npml || ix >= self.nx - self.npml || iy < self.npml || iy >= self.ny - self.npml
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let g = SimGrid::new(33, 21, 0.04, 5);
        for iy in [0, 7, 20] {
            for ix in [0, 13, 32] {
                let k = g.idx(ix, iy);
                assert_eq!(g.coords(k), (ix, iy));
            }
        }
    }

    #[test]
    fn physical_coordinates() {
        let g = SimGrid::new(40, 40, 0.025, 8);
        assert!((g.width() - 1.0).abs() < 1e-12);
        assert!((g.x_of(0) - 0.0125).abs() < 1e-12);
        assert_eq!(g.ix_of(0.0126), 0);
        assert_eq!(g.ix_of(0.9), g.ix_of(g.x_of(g.ix_of(0.9))));
        assert_eq!(g.iy_of(-5.0), 0);
        assert_eq!(g.iy_of(99.0), 39);
    }

    #[test]
    fn pml_membership() {
        let g = SimGrid::new(30, 30, 0.05, 6);
        assert!(g.in_pml(0, 15));
        assert!(g.in_pml(29, 15));
        assert!(g.in_pml(15, 5));
        assert!(!g.in_pml(15, 15));
        assert_eq!(g.interior_x(), 6..24);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn too_small_grid_panics() {
        let _ = SimGrid::new(10, 30, 0.05, 5);
    }

    #[test]
    fn sign_helpers() {
        assert_eq!(Sign::Plus.as_f64(), 1.0);
        assert_eq!(Sign::Minus.flip(), Sign::Plus);
    }
}
