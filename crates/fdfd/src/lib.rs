//! # boson-fdfd — 2-D frequency-domain electromagnetic solver with adjoints
//!
//! The simulation substrate of the BOSON-1 reproduction: a 2-D TM
//! (out-of-plane `Ez`) finite-difference frequency-domain solver with
//!
//! * stretched-coordinate PML absorbing boundaries ([`pml`]),
//! * a complex-*symmetric* operator assembly so forward and adjoint solves
//!   share one banded LU factorisation ([`operator`], [`sim`]),
//! * slab-waveguide eigenmode ports ([`modes`], [`port`]),
//! * unidirectional two-line modal sources ([`source`]),
//! * direction-separating modal monitors and Poynting-flux monitors, all
//!   with exact Wirtinger gradients for the adjoint method ([`monitor`]).
//!
//! Units: lengths in µm, `c = ε₀ = μ₀ = 1`, so `ω = k₀ = 2π/λ`.
//! Time convention `e^{-iωt}`.
//!
//! # Examples
//!
//! A miniature end-to-end simulation of a straight waveguide:
//!
//! ```
//! use boson_fdfd::prelude::*;
//! use boson_num::Array2;
//!
//! let grid = SimGrid::new(50, 40, 0.05, 8);
//! let omega = 2.0 * std::f64::consts::PI / 1.55;
//! // 0.4 µm silicon strip.
//! let eps = Array2::from_fn(40, 50, |iy, _| if (16..24).contains(&iy) { 12.11 } else { 1.0 });
//! let sim = Simulation::new(grid, omega, eps.clone())?;
//! let port = Port::new("in", Axis::X, 12, 8, 32);
//! let mode = port.solve_modes(&grid, &eps, omega, 1).remove(0);
//! let src = ModalSource::new(port, mode.clone(), Sign::Plus);
//! let field = sim.solve_current(&src.current(&grid));
//! let out = Port::new("out", Axis::X, 38, 8, 32);
//! let mon = ModalMonitor::new(&grid, &out, &mode, Sign::Plus);
//! assert!(mon.power(&field.ez) > 0.0);
//! # Ok::<(), boson_num::banded::SingularMatrixError>(())
//! ```

#![warn(missing_docs)]

pub mod grid;
pub mod modes;
pub mod monitor;
pub mod operator;
pub mod pml;
pub mod port;
pub mod render;
pub mod sim;
pub mod source;

/// Convenient glob-import of the main API surface.
pub mod prelude {
    pub use crate::grid::{Axis, Sign, SimGrid};
    pub use crate::modes::{solve_modes, SlabMode};
    pub use crate::monitor::{FluxMonitor, LinearForm, ModalMonitor};
    pub use crate::port::Port;
    pub use crate::sim::{Field, Simulation};
    pub use crate::source::ModalSource;
}
