//! Stretched-coordinate perfectly matched layers (SC-PML).
//!
//! Every spatial derivative in the frequency-domain Maxwell operator is
//! replaced by `(1/s(u)) ∂/∂u` where the complex stretch factor
//! `s(u) = 1 + i σ(u)/ω` grows polynomially inside the absorbing layer.
//! With the `e^{-iωt}` time convention this damps outgoing waves with no
//! reflection at the PML interface (in the continuum limit).
//!
//! # Examples
//!
//! ```
//! use boson_fdfd::{grid::SimGrid, pml::SFactors};
//!
//! let g = SimGrid::new(40, 40, 0.05, 8);
//! let s = SFactors::new(&g, 2.0 * std::f64::consts::PI / 1.55);
//! // Interior factors are exactly 1.
//! assert_eq!(s.sx_int(20), boson_num::Complex64::ONE);
//! // Deep inside the PML the imaginary part is large.
//! assert!(s.sx_int(0).im > 1.0);
//! ```

use crate::grid::SimGrid;
use boson_num::{c64, Complex64};

/// Polynomial grading order for the conductivity profile.
const GRADE: f64 = 3.0;
/// Target normal-incidence reflection coefficient.
const R_TARGET: f64 = 1e-8;

/// Precomputed complex stretch factors at integer and half-integer grid
/// positions along both axes.
#[derive(Debug, Clone)]
pub struct SFactors {
    sx_int: Vec<Complex64>,
    sx_half: Vec<Complex64>, // sx at i+1/2, length nx (last unused)
    sy_int: Vec<Complex64>,
    sy_half: Vec<Complex64>,
}

impl SFactors {
    /// Builds stretch factors for `grid` at angular frequency `omega`
    /// (with c = 1, `omega == k0 = 2π/λ`).
    pub fn new(grid: &SimGrid, omega: f64) -> Self {
        let d = grid.npml as f64 * grid.dx;
        // σ_max from the standard reflection-target formula, impedance 1.
        let sigma_max = -(GRADE + 1.0) * R_TARGET.ln() / (2.0 * d);
        let profile = |dist_into_pml: f64| -> f64 {
            if dist_into_pml <= 0.0 {
                0.0
            } else {
                sigma_max * (dist_into_pml / d).powf(GRADE)
            }
        };
        let build = |n: usize, offset: f64| -> Vec<Complex64> {
            (0..n)
                .map(|i| {
                    let u = (i as f64 + offset) * grid.dx;
                    let lo = grid.npml as f64 * grid.dx - u;
                    let hi = u - (n as f64 - grid.npml as f64) * grid.dx;
                    let sigma = profile(lo.max(hi));
                    c64(1.0, sigma / omega)
                })
                .collect()
        };
        Self {
            sx_int: build(grid.nx, 0.5),
            sx_half: build(grid.nx, 1.0),
            sy_int: build(grid.ny, 0.5),
            sy_half: build(grid.ny, 1.0),
        }
    }

    /// `s_x` at integer position `ix` (cell centre).
    #[inline(always)]
    pub fn sx_int(&self, ix: usize) -> Complex64 {
        self.sx_int[ix]
    }

    /// `s_x` at half position `ix + 1/2`.
    #[inline(always)]
    pub fn sx_half(&self, ix: usize) -> Complex64 {
        self.sx_half[ix]
    }

    /// `s_y` at integer position `iy`.
    #[inline(always)]
    pub fn sy_int(&self, iy: usize) -> Complex64 {
        self.sy_int[iy]
    }

    /// `s_y` at half position `iy + 1/2`.
    #[inline(always)]
    pub fn sy_half(&self, iy: usize) -> Complex64 {
        self.sy_half[iy]
    }

    /// `s_x(ix)·s_y(iy)` — the row scaling of the symmetrised operator.
    #[inline(always)]
    pub fn sxy(&self, ix: usize, iy: usize) -> Complex64 {
        self.sx_int[ix] * self.sy_int[iy]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SimGrid {
        SimGrid::new(50, 40, 0.05, 10)
    }

    #[test]
    fn interior_is_identity() {
        let g = grid();
        let s = SFactors::new(&g, 4.0);
        for ix in g.interior_x() {
            assert_eq!(s.sx_int(ix), Complex64::ONE, "ix={ix}");
        }
        for iy in 12..28 {
            assert_eq!(s.sy_int(iy), Complex64::ONE, "iy={iy}");
        }
    }

    #[test]
    fn profile_monotone_into_pml() {
        let g = grid();
        let s = SFactors::new(&g, 4.0);
        for ix in 1..g.npml {
            assert!(
                s.sx_int(ix - 1).im > s.sx_int(ix).im,
                "imag part should grow towards the boundary"
            );
        }
        for ix in g.nx - g.npml..g.nx - 1 {
            assert!(s.sx_int(ix + 1).im > s.sx_int(ix).im);
        }
    }

    #[test]
    fn real_part_is_unity_everywhere() {
        let g = grid();
        let s = SFactors::new(&g, 4.0);
        for ix in 0..g.nx {
            assert_eq!(s.sx_int(ix).re, 1.0);
            assert_eq!(s.sx_half(ix).re, 1.0);
        }
    }

    #[test]
    fn symmetric_profile() {
        let g = SimGrid::new(40, 40, 0.05, 8);
        let s = SFactors::new(&g, 4.0);
        for ix in 0..g.nx {
            let mirror = g.nx - 1 - ix;
            assert!(
                (s.sx_int(ix).im - s.sx_int(mirror).im).abs() < 1e-12,
                "ix={ix} vs {mirror}"
            );
        }
    }

    #[test]
    fn scaling_with_frequency() {
        let g = grid();
        let s1 = SFactors::new(&g, 2.0);
        let s2 = SFactors::new(&g, 4.0);
        // σ/ω halves when ω doubles.
        assert!((s1.sx_int(0).im - 2.0 * s2.sx_int(0).im).abs() < 1e-12);
    }
}
