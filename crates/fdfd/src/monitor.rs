//! Field monitors: directional modal power and Poynting flux.
//!
//! Every monitor is a closed-form function of the solved `Ez` field that
//! also exposes its exact Wirtinger gradient `∂F/∂E` — the adjoint source.
//! Two kinds are provided:
//!
//! * [`ModalMonitor`] — the complex amplitude of one guided mode travelling
//!   in one direction through a port (its squared magnitude is the modal
//!   power). Direction separation uses the field and its axial
//!   central-difference derivative with the *discrete* propagation constant,
//!   so a forward-only wave registers (almost) zero backward power.
//! * [`FluxMonitor`] — time-averaged Poynting power through a grid-aligned
//!   segment (used for radiation accounting).
//!
//! Gradients follow the convention `dF = 2·Re(Σ_i g_i·dE_i)`.

use crate::grid::{Axis, Sign, SimGrid};
use crate::modes::{central_diff_factor, discrete_beta, SlabMode};
use crate::port::Port;
use boson_num::{c64, Complex64};

/// A sparse linear functional `A(E) = Σ w_k·E_k` of the field.
#[derive(Debug, Clone, Default)]
pub struct LinearForm {
    /// `(flat index, weight)` pairs; indices may repeat.
    pub weights: Vec<(usize, Complex64)>,
}

impl LinearForm {
    /// Evaluates the form on a flat field vector.
    pub fn eval(&self, e: &[Complex64]) -> Complex64 {
        self.weights.iter().map(|&(k, w)| w * e[k]).sum()
    }

    /// Adds `scale × (this form's weights)` into a dense gradient buffer.
    pub fn accumulate(&self, scale: Complex64, out: &mut [Complex64]) {
        for &(k, w) in &self.weights {
            out[k] += scale * w;
        }
    }
}

/// Directional modal amplitude monitor at a port.
#[derive(Debug, Clone)]
pub struct ModalMonitor {
    form: LinearForm,
    /// Port name this monitor was built from.
    pub port_name: String,
    /// Mode order measured.
    pub mode_order: usize,
    /// Direction of propagation measured.
    pub direction: Sign,
}

impl ModalMonitor {
    /// Builds the directional amplitude extractor for `mode` at `port`.
    ///
    /// The monitor needs the planes `plane ± 1` to exist on the grid.
    ///
    /// Derivation: writing the field near the plane as
    /// `E = (A e^{iβ_d s} + B e^{-iβ_d s})φ(t)`, the overlaps with `φ` of
    /// the field and of its axial central difference give
    /// `A = ½[∫Eφ dt + (1/(iκ))∫(∂_s E)φ dt]/N` with
    /// `κ = sin(β_d dx)/dx` and `N = ∫φ² dt`.
    ///
    /// # Panics
    ///
    /// Panics if the port (or its neighbouring planes) leaves the grid.
    pub fn new(grid: &SimGrid, port: &Port, mode: &SlabMode, direction: Sign) -> Self {
        let dt = grid.dx;
        let beta_d = discrete_beta(mode.beta, grid.dx);
        let kappa = central_diff_factor(beta_d, grid.dx);
        let norm = mode.norm_integral(dt);
        let dir = direction.as_f64();
        // Field term: (dt·φ)/(2N).
        let w_center = 0.5 * dt / norm;
        // Derivative term: (dt·φ)/(2N)·(1/(iκ))·(1/(2dx))·dir.
        let w_deriv = c64(0.0, -1.0 / kappa) * (0.5 * dt / norm) * (dir / (2.0 * grid.dx));
        let mut weights = Vec::with_capacity(3 * port.width());
        for (m, t) in (port.t_lo..port.t_hi).enumerate() {
            let phi = mode.profile[m];
            if phi == 0.0 {
                continue;
            }
            weights.push((
                port.cell_at(grid, t, 0),
                Complex64::from_real(w_center * phi),
            ));
            weights.push((port.cell_at(grid, t, 1), w_deriv * phi));
            weights.push((port.cell_at(grid, t, -1), -w_deriv * phi));
        }
        Self {
            form: LinearForm { weights },
            port_name: port.name.clone(),
            mode_order: mode.order,
            direction,
        }
    }

    /// Complex modal amplitude `A`.
    pub fn amplitude(&self, e: &[Complex64]) -> Complex64 {
        self.form.eval(e)
    }

    /// Modal power `|A|²` (units of the mode's power normalisation).
    pub fn power(&self, e: &[Complex64]) -> f64 {
        self.amplitude(e).norm_sqr()
    }

    /// Accumulates the Wirtinger gradient of `scale·|A|²` into `out`.
    pub fn accumulate_power_grad(&self, e: &[Complex64], scale: f64, out: &mut [Complex64]) {
        let a = self.amplitude(e);
        self.form.accumulate(a.conj() * scale, out);
    }
}

/// Poynting-flux monitor through a grid-aligned segment.
///
/// `orientation` selects which way counts as positive power flow.
#[derive(Debug, Clone)]
pub struct FluxMonitor {
    /// One term per transverse cell: `(centre, plus-neighbour, minus-neighbour)`.
    cells: Vec<(usize, usize, usize)>,
    /// `γ = i/(2·dx·ω)` — central-difference H-field factor.
    gamma: Complex64,
    /// Per-term real prefactor (includes dt, ±½ and axis sign).
    alpha: f64,
    /// Monitor label for reports.
    pub name: String,
}

impl FluxMonitor {
    /// Builds a flux monitor on the plane `plane` (x index for
    /// [`Axis::X`]), transverse window `[t_lo, t_hi)`, counting power
    /// flowing in `orientation` as positive, at angular frequency `omega`.
    ///
    /// The Poynting component along the axis reduces (for both axes, after
    /// tracking the curl signs) to
    /// `S = ½·Re(Ez · conj(γ·(E₊ − E₋)))` per cell with `γ = i/(2·dx·ω)`,
    /// positive for power flowing towards +axis.
    ///
    /// # Panics
    ///
    /// Panics if the segment or its neighbour planes leave the grid, or if
    /// `omega <= 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        grid: &SimGrid,
        axis: Axis,
        plane: usize,
        t_lo: usize,
        t_hi: usize,
        orientation: Sign,
        omega: f64,
    ) -> Self {
        assert!(t_hi > t_lo, "flux window must be non-empty");
        assert!(plane >= 1, "flux plane needs both neighbours");
        assert!(omega > 0.0, "omega must be positive");
        let port = Port::new(name, axis, plane, t_lo, t_hi);
        let cells: Vec<(usize, usize, usize)> = (t_lo..t_hi)
            .map(|t| {
                (
                    port.cell_at(grid, t, 0),
                    port.cell_at(grid, t, 1),
                    port.cell_at(grid, t, -1),
                )
            })
            .collect();
        // Per cell, h = γ(E₊-E₋) is exactly the tangential H component
        // (Hy for X planes, -Hx for Y planes), and the Poynting component
        // towards +axis is -½Re(Ez·h*) for both axes.
        Self {
            cells,
            gamma: c64(0.0, 1.0 / (2.0 * grid.dx * omega)),
            alpha: -0.5 * grid.dx * orientation.as_f64(),
            name: name.to_owned(),
        }
    }

    /// Time-averaged power through the segment (positive along
    /// `orientation`).
    pub fn power(&self, e: &[Complex64]) -> f64 {
        let mut p = 0.0;
        for &(a, bp, bm) in &self.cells {
            let h = self.gamma * (e[bp] - e[bm]);
            p += self.alpha * (e[a] * h.conj()).re;
        }
        p
    }

    /// Accumulates the Wirtinger gradient of `scale·power` into `out`.
    pub fn accumulate_power_grad(&self, e: &[Complex64], scale: f64, out: &mut [Complex64]) {
        let half = 0.5 * self.alpha * scale;
        for &(a, bp, bm) in &self.cells {
            let q = self.gamma * (e[bp] - e[bm]);
            out[a] += q.conj() * half;
            out[bp] += e[a].conj() * self.gamma * half;
            out[bm] -= e[a].conj() * self.gamma * half;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SimGrid;
    use crate::modes::SlabMode;
    use boson_num::Complex64;

    const OMEGA: f64 = 2.0 * std::f64::consts::PI / 1.55;

    fn grid() -> SimGrid {
        SimGrid::new(50, 40, 0.05, 8)
    }

    /// A uniform "mode" spanning the window (plane-wave check).
    fn flat_mode(width: usize, dt: f64, beta: f64) -> SlabMode {
        let raw: f64 = width as f64 * dt;
        let scale = (2.0 * OMEGA / (beta * raw)).sqrt();
        SlabMode {
            beta,
            neff: beta / OMEGA,
            profile: vec![scale; width],
            order: 0,
        }
    }

    /// Synthesise a discrete plane wave exp(±i β_d x) over the grid.
    fn plane_wave(g: &SimGrid, beta: f64, sign: f64) -> Vec<Complex64> {
        let bd = discrete_beta(beta, g.dx);
        (0..g.n())
            .map(|k| {
                let (ix, _) = g.coords(k);
                Complex64::cis(sign * bd * ix as f64 * g.dx)
            })
            .collect()
    }

    #[test]
    fn modal_monitor_separates_directions() {
        let g = grid();
        let beta = OMEGA; // vacuum plane wave
        let port = Port::new("p", Axis::X, 25, 0, 40);
        let mode = flat_mode(40, g.dx, beta);
        let fwd = ModalMonitor::new(&g, &port, &mode, Sign::Plus);
        let bwd = ModalMonitor::new(&g, &port, &mode, Sign::Minus);
        let e = plane_wave(&g, beta, 1.0);
        let pf = fwd.power(&e);
        let pb = bwd.power(&e);
        assert!(pf > 1e-3, "forward power should be significant, got {pf}");
        assert!(
            pb < 1e-8 * pf,
            "backward leakage {pb} vs forward {pf} (ratio {})",
            pb / pf
        );
        // And the reverse wave swaps the roles exactly.
        let e2 = plane_wave(&g, beta, -1.0);
        let pf2 = fwd.power(&e2);
        let pb2 = bwd.power(&e2);
        assert!(pb2 > 1e-3);
        assert!(pf2 < 1e-8 * pb2);
    }

    #[test]
    fn modal_power_of_unit_plane_wave_is_calibrated() {
        // For E = mode profile × e^{iβ_d x}, A should equal the profile
        // amplitude scale, giving |A|² = power of that wave.
        let g = grid();
        let beta = OMEGA;
        let port = Port::new("p", Axis::X, 25, 0, 40);
        let mode = flat_mode(40, g.dx, beta);
        let fwd = ModalMonitor::new(&g, &port, &mode, Sign::Plus);
        let bd = discrete_beta(beta, g.dx);
        let e: Vec<Complex64> = (0..g.n())
            .map(|k| {
                let (ix, iy) = g.coords(k);
                if iy < 40 {
                    Complex64::cis(bd * ix as f64 * g.dx) * mode.profile[iy]
                } else {
                    Complex64::ZERO
                }
            })
            .collect();
        let p = fwd.power(&e);
        // The wave *is* the power-normalised mode → P = 1.
        assert!((p - 1.0).abs() < 1e-6, "modal power = {p}");
    }

    #[test]
    fn flux_positive_for_forward_wave() {
        let g = grid();
        let f = FluxMonitor::new("f", &g, Axis::X, 25, 5, 35, Sign::Plus, OMEGA);
        let e = plane_wave(&g, OMEGA, 1.0);
        let p = f.power(&e);
        // S = ½·(β/ω)·width·dx for a unit plane wave, β≈ω → ½·width·dx.
        let expect = 0.5 * 30.0 * g.dx;
        assert!(p > 0.0, "flux must be positive, got {p}");
        assert!((p - expect).abs() / expect < 0.02, "flux {p} vs {expect}");
        // Reversed wave gives negative flux of the same magnitude.
        let e2 = plane_wave(&g, OMEGA, -1.0);
        let p2 = f.power(&e2);
        assert!((p + p2).abs() < 1e-9 * p.abs().max(1.0));
    }

    #[test]
    fn flux_orientation_flips_sign() {
        let g = grid();
        let fp = FluxMonitor::new("f", &g, Axis::X, 25, 5, 35, Sign::Plus, OMEGA);
        let fm = FluxMonitor::new("f", &g, Axis::X, 25, 5, 35, Sign::Minus, OMEGA);
        let e = plane_wave(&g, OMEGA, 1.0);
        assert!((fp.power(&e) + fm.power(&e)).abs() < 1e-12);
    }

    #[test]
    fn flux_works_along_y() {
        let g = grid();
        let bd = discrete_beta(OMEGA, g.dx);
        // +y travelling wave.
        let e: Vec<Complex64> = (0..g.n())
            .map(|k| {
                let (_, iy) = g.coords(k);
                Complex64::cis(bd * iy as f64 * g.dx)
            })
            .collect();
        let f = FluxMonitor::new("fy", &g, Axis::Y, 20, 5, 45, Sign::Plus, OMEGA);
        let p = f.power(&e);
        assert!(p > 0.0, "+y wave through +y monitor must be positive: {p}");
    }

    #[test]
    fn modal_grad_matches_finite_difference() {
        let g = grid();
        let port = Port::new("p", Axis::X, 25, 10, 30);
        let mode = flat_mode(20, g.dx, OMEGA);
        let mon = ModalMonitor::new(&g, &port, &mode, Sign::Plus);
        let mut e = plane_wave(&g, OMEGA, 1.0);
        // Perturb a touched cell and compare d|A|² against 2Re(g·dE).
        let mut gbuf = vec![Complex64::ZERO; g.n()];
        mon.accumulate_power_grad(&e, 1.0, &mut gbuf);
        let k = g.idx(25, 15);
        for de in [c64(1e-6, 0.0), c64(0.0, 1e-6)] {
            let p0 = mon.power(&e);
            e[k] += de;
            let p1 = mon.power(&e);
            e[k] -= de;
            let predicted = 2.0 * (gbuf[k] * de).re;
            let actual = p1 - p0;
            assert!(
                (predicted - actual).abs() < 1e-9 + 1e-4 * actual.abs(),
                "grad mismatch: predicted {predicted}, actual {actual}"
            );
        }
    }

    #[test]
    fn flux_grad_matches_finite_difference() {
        let g = grid();
        let f = FluxMonitor::new("f", &g, Axis::X, 25, 10, 30, Sign::Plus, OMEGA);
        let mut e = plane_wave(&g, OMEGA, 1.0);
        let mut gbuf = vec![Complex64::ZERO; g.n()];
        f.accumulate_power_grad(&e, 1.0, &mut gbuf);
        for &k in &[g.idx(25, 15), g.idx(26, 20), g.idx(24, 12)] {
            for de in [c64(1e-6, 0.0), c64(0.0, 1e-6)] {
                let p0 = f.power(&e);
                e[k] += de;
                let p1 = f.power(&e);
                e[k] -= de;
                let predicted = 2.0 * (gbuf[k] * de).re;
                let actual = p1 - p0;
                assert!(
                    (predicted - actual).abs() < 1e-9 + 1e-4 * actual.abs(),
                    "flux grad mismatch at {k}: {predicted} vs {actual}"
                );
            }
        }
    }

    #[test]
    fn linear_form_eval_and_accumulate() {
        let form = LinearForm {
            weights: vec![(0, c64(2.0, 0.0)), (2, c64(0.0, 1.0)), (0, c64(1.0, 0.0))],
        };
        let e = [c64(1.0, 0.0), c64(5.0, 5.0), c64(0.0, -1.0)];
        assert_eq!(
            form.eval(&e),
            c64(3.0, 0.0) + c64(0.0, 1.0) * c64(0.0, -1.0)
        );
        let mut out = vec![Complex64::ZERO; 3];
        form.accumulate(c64(1.0, 0.0), &mut out);
        assert_eq!(out[0], c64(3.0, 0.0));
        assert_eq!(out[2], c64(0.0, 1.0));
    }
}
