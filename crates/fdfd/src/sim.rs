//! The forward/adjoint FDFD simulation driver.
//!
//! [`Simulation`] owns a grid, a permittivity map and a factored operator.
//! The expensive step is [`Simulation::new`] (banded LU factorisation);
//! each subsequent source solve or adjoint solve is a cheap triangular
//! substitution against the same factors — the core economy of the adjoint
//! method: *gradient = two solves, one factorisation*.
//!
//! The adjoint identity implemented by [`Simulation::grad_eps`]: with the
//! symmetrised operator `Ã(ε)·E = b̃`, a real objective `F(E)` with
//! Wirtinger gradient `g = ∂F/∂E` (convention `dF = 2Re(gᵀdE)`), and
//! `λ = Ã⁻¹g` (symmetric ⇒ transpose solve = plain solve),
//!
//! ```text
//! dF/dε_k = -2·Re(λ_k · ω² · sx_k·sy_k · E_k)
//! ```
//!
//! # Workspace / ownership contract
//!
//! [`Simulation`] allocates per construction (it owns its permittivity and
//! factor storage) — convenient for one-off solves and tests. Hot loops
//! that re-factor the *same grid* for many permittivities (the variation
//! corners of every optimisation iteration) should instead keep one
//! [`SimWorkspace`] per thread:
//!
//! * [`SimWorkspace::factor`] reuses the cached [`SFactors`] and stencil
//!   couplings, kept in a small LRU set of **per-ω slots** (one per
//!   `(grid, ω)` pair, up to [`MAX_OMEGA_SLOTS`] wavelengths resident at
//!   once — a multi-wavelength sweep revisits its ωs allocation-free),
//!   reassembles into a retained [`boson_num::banded::BandedMatrix`] and
//!   refactors into a retained [`boson_num::banded::BandedLu`] — after
//!   the first corner of each ω, **zero heap allocations**;
//! * the batched solve methods write into caller-owned buffers and push
//!   all right-hand sides (every excitation's forward solve, then every
//!   adjoint) through a single [`boson_num::banded::BandedLu::solve_many`]
//!   sweep over the factors.
//!
//! Buffers passed to the workspace are resized on first use and retain
//! their capacity afterwards, so a steady-state iteration of the corner
//! loop touches the allocator not at all (verified by the
//! `tests/zero_alloc.rs` counting-allocator test).
//!
//! # Corner solver strategies
//!
//! A variation-corner sweep solves many systems whose operators differ
//! from the *nominal* operator only by small diagonal perturbations.
//! [`SolverStrategy`] selects how [`SimWorkspace`] treats them:
//!
//! * [`SolverStrategy::Direct`] — assemble + LU-factor every corner
//!   (`O(n·b²)` each); the exact reference path.
//! * [`SolverStrategy::PreconditionedIterative`] — factor only the
//!   nominal operator per `(grid, ω, epoch)` — each resident ω slot
//!   caches its own nominal factor, so a broadband (corner × ω) sweep
//!   pays K nominal factorisations per epoch, not K per corner — and
//!   solve every non-nominal corner with nominal-factor-preconditioned
//!   BiCGSTAB ([`boson_num::krylov`]), the corner operator applied
//!   matrix-free from the cached stencil couplings
//!   ([`crate::operator::StencilCache`]). Preconditioner sweeps run on a
//!   single-precision factor copy for ordinary tolerances (residuals
//!   stay `f64`). Corners are prepared one at a time with
//!   [`SimWorkspace::prepare_corner`] + [`SimWorkspace::solve_block`]
//!   (which falls back to a direct factorisation on a budget miss), or —
//!   the fast path — advanced **together** through
//!   [`SimWorkspace::batch_begin`] / [`SimWorkspace::batch_push`] /
//!   [`SimWorkspace::batch_solve`], which packs every corner's active
//!   columns into shared factor sweeps and reports per-corner
//!   convergence for the caller's adaptive fallback policy.

use crate::grid::SimGrid;
use crate::operator::{
    assemble_banded, scale_source, scale_source_into, MultiCornerOp, StencilCache, StencilOp,
};
use crate::pml::SFactors;
use boson_num::banded::{BandedLu, BandedLuF32, BandedMatrix, SingularMatrixError};
use boson_num::krylov::{
    bicgstab_precond_many, bicgstab_precond_transpose_many, ColumnOp, IterativeOptions,
    KrylovWorkspace, PrecondFamily, Precondition, RecycleSpace, RhsStats,
};
use boson_num::pool;
use boson_num::{Array2, Complex64};
use boson_sparse::multigrid::{
    BandScratch, BoundaryBand, MgBandPrecond, MgScratch, Multigrid, MultigridOptions,
};
use serde::{Deserialize, Serialize};

/// A solved `Ez` field on the simulation grid.
#[derive(Debug, Clone)]
pub struct Field {
    /// Flat field values (x-fastest ordering; see [`SimGrid::idx`]).
    pub ez: Vec<Complex64>,
    /// Grid the field lives on.
    pub grid: SimGrid,
}

impl Field {
    /// Views the field as a `(ny, nx)` array.
    pub fn to_array(&self) -> Array2<Complex64> {
        Array2::from_fn(self.grid.ny, self.grid.nx, |iy, ix| {
            self.ez[self.grid.idx(ix, iy)]
        })
    }

    /// Field magnitude squared as a `(ny, nx)` array (for visualisation).
    pub fn intensity(&self) -> Array2<f64> {
        Array2::from_fn(self.grid.ny, self.grid.nx, |iy, ix| {
            self.ez[self.grid.idx(ix, iy)].norm_sqr()
        })
    }
}

/// A factored FDFD problem: grid + permittivity + LU factors.
pub struct Simulation {
    grid: SimGrid,
    omega: f64,
    eps: Array2<f64>,
    sfactors: SFactors,
    lu: BandedLu,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Simulation({}x{}, ω={:.4}, npml={})",
            self.grid.nx, self.grid.ny, self.omega, self.grid.npml
        )
    }
}

impl Simulation {
    /// Assembles and factors the operator for `eps` at angular frequency
    /// `omega` (= 2π/λ with c = 1).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the operator is singular (which
    /// indicates an unphysical configuration, e.g. ω = 0).
    ///
    /// # Panics
    ///
    /// Panics if `eps` does not have shape `(ny, nx)`.
    pub fn new(grid: SimGrid, omega: f64, eps: Array2<f64>) -> Result<Self, SingularMatrixError> {
        assert_eq!(
            eps.shape(),
            (grid.ny, grid.nx),
            "eps shape must be (ny, nx)"
        );
        let sfactors = SFactors::new(&grid, omega);
        let a = assemble_banded(&grid, &sfactors, &eps, omega);
        let lu = a.factor()?;
        Ok(Self {
            grid,
            omega,
            eps,
            sfactors,
            lu,
        })
    }

    /// The simulation grid.
    pub fn grid(&self) -> &SimGrid {
        &self.grid
    }

    /// Angular frequency.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// The permittivity map used to assemble the operator.
    pub fn eps(&self) -> &Array2<f64> {
        &self.eps
    }

    /// PML stretch factors.
    pub fn sfactors(&self) -> &SFactors {
        &self.sfactors
    }

    /// Solves the forward problem for a raw current distribution `jz`.
    ///
    /// # Panics
    ///
    /// Panics if `jz.len()` does not match the grid.
    pub fn solve_current(&self, jz: &[Complex64]) -> Field {
        let mut b = scale_source(&self.grid, &self.sfactors, self.omega, jz);
        self.lu.solve(&mut b);
        Field {
            ez: b,
            grid: self.grid,
        }
    }

    /// Solves the adjoint problem `Ã λ = g` for a Wirtinger objective
    /// gradient `g = ∂F/∂E`.
    ///
    /// The operator is complex-symmetric so this is a plain solve; the
    /// transpose path exists for independent verification.
    ///
    /// Copies `g` into a fresh vector; hot paths should build the adjoint
    /// source in a reusable buffer and call
    /// [`Simulation::solve_adjoint_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if `g.len()` does not match the grid.
    pub fn solve_adjoint(&self, g: &[Complex64]) -> Vec<Complex64> {
        let mut lam = g.to_vec();
        self.solve_adjoint_in_place(&mut lam);
        lam
    }

    /// In-place adjoint solve: `g` (the Wirtinger gradient `∂F/∂E`) is
    /// overwritten with `λ = Ã⁻¹g`. No heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `g.len()` does not match the grid.
    pub fn solve_adjoint_in_place(&self, g: &mut [Complex64]) {
        assert_eq!(g.len(), self.grid.n(), "adjoint source length mismatch");
        self.lu.solve(g);
    }

    /// Adjoint solve through `Ãᵀ` — must agree with
    /// [`Simulation::solve_adjoint`] up to round-off because the operator
    /// is symmetric. Used in tests as an internal consistency check.
    pub fn solve_adjoint_transpose(&self, g: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(g.len(), self.grid.n(), "adjoint source length mismatch");
        let mut lam = g.to_vec();
        self.lu.solve_transpose(&mut lam);
        lam
    }

    /// Computes `dF/dε` for every grid cell from a forward field and the
    /// adjoint field `λ = Ã⁻¹(∂F/∂E)`.
    ///
    /// Returns a `(ny, nx)` array.
    ///
    /// # Panics
    ///
    /// Panics if the field/adjoint lengths do not match the grid.
    pub fn grad_eps(&self, field: &Field, lambda: &[Complex64]) -> Array2<f64> {
        let mut out = Array2::zeros(self.grid.ny, self.grid.nx);
        grad_eps_accumulate(
            &self.grid,
            &self.sfactors,
            self.omega,
            &field.ez,
            lambda,
            &mut out,
        );
        out
    }
}

/// Accumulates the adjoint permittivity gradient
/// `out[k] += -2·Re(λ_k·sx_k·sy_k·E_k)·ω²` into a caller-owned array.
///
/// Shared by [`Simulation::grad_eps`] and [`SimWorkspace`]; allocation-free.
///
/// # Panics
///
/// Panics if the field/adjoint/output shapes do not match the grid.
pub fn grad_eps_accumulate(
    grid: &SimGrid,
    sfactors: &SFactors,
    omega: f64,
    ez: &[Complex64],
    lambda: &[Complex64],
    out: &mut Array2<f64>,
) {
    assert_eq!(ez.len(), grid.n(), "field length mismatch");
    assert_eq!(lambda.len(), grid.n(), "adjoint length mismatch");
    assert_eq!(out.shape(), (grid.ny, grid.nx), "gradient shape mismatch");
    let k2 = omega * omega;
    for iy in 0..grid.ny {
        let row = iy * grid.nx;
        let lam_row = &lambda[row..row + grid.nx];
        let ez_row = &ez[row..row + grid.nx];
        let out_row = &mut out.as_mut_slice()[row..row + grid.nx];
        for (ix, (dst, (&l, &e))) in out_row
            .iter_mut()
            .zip(lam_row.iter().zip(ez_row))
            .enumerate()
        {
            let s = sfactors.sxy(ix, iy);
            *dst += -2.0 * (l * s * e).re * k2;
        }
    }
}

/// How a [`SimWorkspace`] solves the linear systems of a variation
/// corner.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SolverStrategy {
    /// Assemble and LU-factor every corner operator (`O(n·b²)` per
    /// corner) — the exact reference path.
    #[default]
    Direct,
    /// Factor only the **nominal** operator per `(grid, ω, epoch)` and
    /// solve every non-nominal corner with nominal-factor-preconditioned
    /// BiCGSTAB, the corner operator applied matrix-free from the cached
    /// stencil couplings. Corners whose iteration fails the budget fall
    /// back to a direct factorisation (see
    /// [`SimWorkspace::prepare_corner`]).
    PreconditionedIterative {
        /// Relative residual at which a right-hand side is converged.
        tol: f64,
        /// Iteration budget per solve before the direct fallback fires.
        max_iters: usize,
    },
    /// Like [`SolverStrategy::PreconditionedIterative`], but the nominal
    /// preconditioner is a matrix-free geometric **multigrid V-cycle**
    /// ([`boson_sparse::multigrid`]) instead of a banded factorisation —
    /// `O(n)` setup and per-application cost at **any** grid size, with
    /// no `BandedLu`/`BandedLuF32` factor materialised above the
    /// hierarchy's coarsest level. This is what
    /// [`SolverStrategy::PreconditionedIterative`] auto-selects above
    /// [`MULTIGRID_MIN_CELLS`] cells; the explicit variant forces
    /// multigrid at any size (tests, benchmarks, tuning). Budget misses
    /// still fall back to a bit-exact direct factorisation.
    MultigridIterative {
        /// Relative residual at which a right-hand side is converged.
        tol: f64,
        /// Iteration budget per solve before the direct fallback fires.
        max_iters: usize,
    },
}

/// Grid-cell count at which [`SolverStrategy::PreconditionedIterative`]
/// switches its nominal preconditioner from the banded factorisation to
/// the geometric multigrid V-cycle. Below it the banded factor is cheap
/// and its triangular sweeps converge in fewer iterations; above it the
/// `O(n·b²)` factor time and `O(n·b)` factor image dwarf the V-cycle's
/// `O(n)` setup and apply (at 256×256 the factor alone costs seconds).
pub const MULTIGRID_MIN_CELLS: usize = 128 * 128;

/// Complex shift `β` of the multigrid surrogate operator's mass term
/// (`diag0 + (1 + iβ)·sxy·k₀²ε`, see
/// [`StencilCache::shifted_diag_into`]). The indefinite Helmholtz
/// operator admits no stable Galerkin coarse correction at realistic
/// wavenumbers; the imaginary shift damps the wave modes enough for the
/// V-cycle to contract while staying close enough to the true operator
/// for the outer Krylov iteration to converge in a few steps.
pub const MG_SHIFT_BETA: f64 = 0.5;

/// Overlap margin (in cells) the boundary-band strips extend past the
/// PML, so the strip interfaces sit in the unstretched interior where
/// the surrogate hierarchy is accurate.
pub const MG_BAND_MARGIN: usize = 6;

impl SolverStrategy {
    /// The iterative strategy with its production defaults — those of
    /// [`IterativeOptions::default`] (`tol = 1e-6`, `max_iters = 24`).
    pub fn preconditioned_iterative() -> Self {
        let IterativeOptions { tol, max_iters, .. } = IterativeOptions::default();
        SolverStrategy::PreconditionedIterative { tol, max_iters }
    }

    /// The forced-multigrid iterative strategy with the defaults of
    /// [`IterativeOptions::default`] (`tol = 1e-6`, `max_iters = 24`).
    pub fn multigrid_iterative() -> Self {
        let IterativeOptions { tol, max_iters, .. } = IterativeOptions::default();
        SolverStrategy::MultigridIterative { tol, max_iters }
    }

    /// `(tol, max_iters)` of an iterative strategy, `None` for
    /// [`SolverStrategy::Direct`].
    pub fn iterative_params(&self) -> Option<(f64, usize)> {
        match *self {
            SolverStrategy::Direct => None,
            SolverStrategy::PreconditionedIterative { tol, max_iters }
            | SolverStrategy::MultigridIterative { tol, max_iters } => Some((tol, max_iters)),
        }
    }

    /// Whether corner sweeps under this strategy precondition with the
    /// multigrid V-cycle on a grid of `cells` unknowns (as opposed to the
    /// banded nominal factorisation).
    pub fn uses_multigrid(&self, cells: usize) -> bool {
        match self {
            SolverStrategy::Direct => false,
            SolverStrategy::PreconditionedIterative { .. } => cells >= MULTIGRID_MIN_CELLS,
            SolverStrategy::MultigridIterative { .. } => true,
        }
    }
}

/// Corner metadata for [`SimWorkspace::prepare_corner`] under the
/// iterative strategy.
#[derive(Debug, Clone, Copy)]
pub struct CornerContext<'a> {
    /// Permittivity of the nominal corner — the preconditioner source.
    pub nominal_eps: &'a Array2<f64>,
    /// Monotonic token identifying the nominal operator (typically the
    /// optimisation iteration); the nominal factor is rebuilt whenever it
    /// changes.
    pub epoch: u64,
    /// This corner *is* the nominal corner: solve on its factors
    /// directly, no iteration.
    pub is_nominal: bool,
    /// Cached adaptive-policy decision: skip the iterative attempt and
    /// factor this corner directly.
    pub force_direct: bool,
}

/// What the solver did for the last prepared corner — the signal the
/// adaptive fallback policy keys on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CornerSolveReport {
    /// The corner was armed for (and at least attempted) iterative
    /// solves.
    pub used_iterative: bool,
    /// An iterative solve missed its budget and the corner was re-solved
    /// through a direct factorisation. Callers should cache this per
    /// corner and set [`CornerContext::force_direct`] next time.
    pub fell_back: bool,
    /// Every right-hand side of this corner converged (batched sweeps
    /// report non-convergence here and leave the fallback to the
    /// caller).
    pub converged: bool,
    /// LU factorisations performed (nominal refresh, direct corner, or
    /// fallback).
    pub factorizations: usize,
    /// Right-hand sides solved.
    pub solves: usize,
    /// Worst per-RHS BiCGSTAB iteration count.
    pub max_iterations: usize,
    /// Summed per-RHS BiCGSTAB iteration counts (`total_iterations /
    /// solves` = mean iterations — the observable the cross-iteration
    /// recycling is judged by).
    pub total_iterations: usize,
    /// Worst per-RHS final true relative residual of an iterative solve.
    pub max_residual: f64,
}

/// Lagged-nominal-factor policy of a [`SimWorkspace`] (see
/// [`SimWorkspace::set_factor_lag`]): each ω slot keeps its banded
/// nominal factorisation (`BandedLu` + `BandedLuF32`) across optimiser
/// epochs, refactoring only when the nominal diagonal has drifted past
/// `drift_tol`, the factor's age exceeds `max_lag` epochs, or a budget
/// miss was recorded against the stale factor — turning the per-epoch
/// `O(n·b²)` refactor into `O(n)` drift math most iterations. The
/// existing budget-miss → direct-fallback machinery keeps results
/// correct regardless of how stale a kept factor is.
///
/// Only the banded-LU preconditioner lags; the multigrid hierarchy's
/// per-epoch rebuild is already `O(n)` and stays eager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorLag {
    /// Maximum epochs a nominal factor may be reused past the epoch it
    /// was built at (0 = rebuild every epoch, as without lag).
    pub max_lag: u64,
    /// Relative diagonal drift `‖Δdiag‖∞ / ‖diag‖∞` beyond which the
    /// factor is rebuilt regardless of age.
    pub drift_tol: f64,
}

/// Caller-owned recycling state of one
/// [`SimWorkspace::fused_batch_solve_recycled`] call: the deflation
/// stores, the batch-corner → store mapping, the operator orientation,
/// and the optimiser epoch stamped on harvests and checked on
/// applications.
#[derive(Debug)]
pub struct FusedRecycle<'a> {
    /// The caller's per-column deflation stores (typically keyed by the
    /// stable product-column index of the (corner × ω) cross product so
    /// dormant subspace-scheduler columns keep stale-but-monitored
    /// state).
    pub spaces: &'a mut [RecycleSpace],
    /// `keys[corner]` = index into `spaces` of batch corner `corner`;
    /// shared by all of that corner's right-hand-side columns.
    pub keys: &'a [usize],
    /// Apply/harvest against the transpose operator orientation (the
    /// adjoint phase — keep separate stores per orientation).
    pub transpose: bool,
    /// Optimiser epoch of this solve.
    pub epoch: u64,
}

/// Tolerances at least this loose run the preconditioner sweeps on the
/// single-precision factor copy; tighter ones use the f64 factors so the
/// iteration cannot plateau near the f32 noise floor.
const F32_PRECOND_MIN_TOL: f64 = 1e-8;

/// Packed active-column count at which a fused-batch **banded**
/// preconditioner sweep splits across pool lanes
/// (see [`SimWorkspace::fused_batch_solve`]).
///
/// Retuned for pool dispatch (`boson_num::pool`): the scoped-spawn
/// generation paid a thread spawn + join per split (~tens of µs), which
/// needed ≥ 48 columns to amortise; a pool dispatch costs a mutex
/// hand-off and a condvar wake (`bench pool_split`, recorded in
/// `crates/bench/benches/pool_split.rs`), so a 27-corner single-ω batch
/// (~32 columns) now splits too, not just the fused multi-ω products.
/// Below the threshold the per-lane re-reads of the factor image and the
/// dispatch hand-off still outweigh the parallel sweep work. Columns are
/// solved independently, so serial and split sweeps are bit-identical at
/// any lane count.
pub const FUSED_SPLIT_MIN_COLS: usize = 16;

/// Packed active-column count at which a fused-batch **multigrid**
/// preconditioner application splits its column chunks across pool
/// lanes. A V-cycle + boundary-band application costs orders of
/// magnitude more per column than a banded triangular sweep (the
/// large-grid regime it serves), so even two columns are worth a
/// dispatch; columns are independent (`MgBandPrecond::solve_block`
/// iterates them one at a time), keeping any lane count bit-identical.
pub const MG_SPLIT_MIN_COLS: usize = 2;

/// Maximum number of per-ω slots a [`SimWorkspace`] retains. A broadband
/// robust iteration keys its geometry caches and nominal factors by
/// `(grid, ω)`; up to this many wavelengths stay resident simultaneously
/// (allocation-free once warm), beyond it the least-recently-used ω is
/// evicted and rebuilt on return (which re-allocates — keep `K ≤` this
/// for steady-state zero-allocation sweeps).
pub const MAX_OMEGA_SLOTS: usize = 8;

/// The `(grid, ω)`-keyed state of one operating wavelength: PML stretch
/// factors, the ε-independent stencil couplings, and the cached nominal
/// factorisation (plus its single-precision preconditioner copy) with the
/// epoch it belongs to.
#[derive(Debug)]
struct OmegaSlot {
    omega: f64,
    sfactors: SFactors,
    stencil: StencilCache,
    /// Factorisation of this ω's nominal corner operator (iterative
    /// strategy).
    nominal_lu: BandedLu,
    /// Single-precision copy of the nominal factors — the preconditioner
    /// application engine for ordinary tolerances.
    nominal_lu32: BandedLuF32,
    /// Epoch the nominal factor was last **checked** against; `None` =
    /// invalid. Without factor lag this is also the epoch the factor was
    /// built at; with lag the factor itself may be older (see
    /// `factor_epoch`).
    nominal_epoch: Option<u64>,
    /// Epoch `nominal_lu`/`nominal_lu32` were actually factored at;
    /// `None` = no factor. Equal to `nominal_epoch` unless a
    /// [`FactorLag`] policy kept a stale factor.
    factor_epoch: Option<u64>,
    /// Nominal operator diagonal the current factor was built from — the
    /// reference of the `‖Δdiag‖∞ / ‖diag‖∞` drift monitor. Filled only
    /// on refactor; O(n) storage per slot.
    factor_diag: Vec<Complex64>,
    /// Budget misses recorded against the **stale** factor since it was
    /// built; any miss trips a refactor at the next epoch check.
    factor_miss_streak: usize,
    /// Multigrid hierarchy of this ω's nominal **surrogate** operator —
    /// the hard-walled, shift-damped stand-in the V-cycle contracts on
    /// (multigrid preconditioning); empty until a multigrid sweep first
    /// runs on this slot, rebuilt allocation-free per epoch afterwards.
    nominal_mg: Multigrid,
    /// Boundary-band Schwarz strips of the **true** nominal operator —
    /// the companion of `nominal_mg` that removes the boundary-localised
    /// modes the surrogate cannot represent (see
    /// [`boson_sparse::multigrid::BoundaryBand`]).
    nominal_band: BoundaryBand,
    /// The true nominal operator diagonal `nominal_band` and the
    /// preconditioner's intermediate residuals are formed against.
    nominal_diag: Vec<Complex64>,
    /// Hard-walled (`npml = 0`) stencil of this ω on the same grid
    /// footprint — the surrogate's couplings. Built on the first
    /// multigrid epoch, then reused (ε-independent).
    surrogate: Option<StencilCache>,
    /// Shift-damped surrogate diagonal buffer (see [`MG_SHIFT_BETA`]).
    surrogate_diag: Vec<Complex64>,
    /// Epoch `nominal_mg`/`nominal_band` belong to; `None` = invalid.
    /// Tracked independently of `nominal_epoch` so mixed strategies never
    /// reuse a stale hierarchy (and an LU-only run never pays for one).
    mg_epoch: Option<u64>,
    /// LRU stamp (workspace clock at last use).
    last_used: u64,
}

impl OmegaSlot {
    /// Refreshes the multigrid preconditioner pair for this ω's nominal
    /// operator: the V-cycle hierarchy from the hard-walled shift-damped
    /// surrogate, and the boundary-band strips from the true operator.
    /// Allocation-free after the first multigrid epoch (the surrogate
    /// stencil is ε-independent and built once).
    fn rebuild_mg(
        &mut self,
        grid: SimGrid,
        nominal_eps: &Array2<f64>,
    ) -> Result<(), SingularMatrixError> {
        let omega = self.omega;
        let surrogate = self.surrogate.get_or_insert_with(|| {
            let hard_wall = SimGrid::new(grid.nx, grid.ny, grid.dx, 0);
            let sfactors = SFactors::new(&hard_wall, omega);
            StencilCache::build(&hard_wall, &sfactors, omega)
        });
        surrogate.shifted_diag_into(nominal_eps, MG_SHIFT_BETA, &mut self.surrogate_diag);
        surrogate.rebuild_multigrid(&self.surrogate_diag, &mut self.nominal_mg)?;
        self.stencil.diag_into(nominal_eps, &mut self.nominal_diag);
        self.nominal_band.rebuild(
            &self.stencil.fine_stencil(&self.nominal_diag),
            grid.npml + MG_BAND_MARGIN,
        )
    }

    /// The combined V-cycle + boundary-band preconditioner of this ω's
    /// nominal operator, borrowing the caller's scratches.
    fn mg_precond<'a>(
        &'a self,
        mg_scratch: &'a mut MgScratch,
        band_scratch: &'a mut BandScratch,
    ) -> MgBandPrecond<'a> {
        MgBandPrecond {
            mg: &self.nominal_mg,
            band: &self.nominal_band,
            fine: self.stencil.fine_stencil(&self.nominal_diag),
            mg_scratch,
            band_scratch,
        }
    }
}

/// The matrix-free operator family of a **fused** (corner × ω) sweep:
/// column `col` belongs to corner `col / cols_per_corner`, and applies
/// that corner's diagonal through *its own wavelength's* cached stencil
/// couplings — the cross-ω generalisation of
/// [`crate::operator::MultiCornerOp`].
struct FusedCornerOp<'a> {
    slots: &'a [OmegaSlot],
    /// Slot index per batch-local ω.
    fused_slots: &'a [usize],
    /// Batch-local ω index per corner.
    omega_of_corner: &'a [usize],
    /// Concatenated per-corner operator diagonals, `n` entries each.
    diags: &'a [Complex64],
    /// Right-hand-side columns per corner.
    cols_per_corner: usize,
}

impl FusedCornerOp<'_> {
    fn apply_corner_col(&self, col: usize, x: &[Complex64], y: &mut [Complex64]) {
        let corner = col / self.cols_per_corner;
        let slot = &self.slots[self.fused_slots[self.omega_of_corner[corner]]];
        let n = slot.stencil.n();
        slot.stencil
            .apply(&self.diags[corner * n..(corner + 1) * n], x, y);
    }
}

impl ColumnOp for FusedCornerOp<'_> {
    fn dim(&self) -> usize {
        self.slots[self.fused_slots[0]].stencil.n()
    }

    fn apply_col(&self, col: usize, x: &[Complex64], y: &mut [Complex64]) {
        self.apply_corner_col(col, x, y);
    }

    fn apply_col_transpose(&self, col: usize, x: &[Complex64], y: &mut [Complex64]) {
        // Complex-symmetric operator: Aᵀ = A.
        self.apply_corner_col(col, x, y);
    }
}

/// One pool lane's private multigrid application scratch: a V-cycle
/// scratch plus a boundary-band scratch. Every slot's hierarchy shares
/// one grid, so one lane's pair serves any ω's [`OmegaSlot::mg_precond`];
/// giving each lane its own pair is what lets independent column chunks
/// of a multigrid-preconditioned fused sweep run in parallel.
#[derive(Debug, Default)]
struct MgLane {
    mg: MgScratch,
    band: BandScratch,
}

/// The per-column preconditioner family of a fused (corner × ω) sweep:
/// every packed column is preconditioned by **its own wavelength's**
/// nominal factor. Columns of one ω form contiguous runs in the ω-major
/// packed block, so each run costs one factor sweep — and runs above
/// [`FUSED_SPLIT_MIN_COLS`] (banded) / [`MG_SPLIT_MIN_COLS`] (multigrid)
/// total active columns split into independent contiguous column chunks
/// dispatched on the process-wide `boson_num::pool` (columns are solved
/// independently; any split is bit-identical to the serial sweep).
struct FusedPrecond<'a> {
    slots: &'a [OmegaSlot],
    fused_slots: &'a [usize],
    omega_of_corner: &'a [usize],
    cols_per_corner: usize,
    /// Sweep the single-precision factor copies (ordinary tolerances;
    /// banded preconditioning only).
    use_f32: bool,
    /// Precondition with each ω's nominal multigrid pair (surrogate
    /// V-cycle + boundary band) instead of its banded factors (large
    /// grids).
    mg: bool,
    /// One multigrid scratch pair per pool lane (multigrid
    /// preconditioning only); the slice length *is* the split width
    /// (1 = serial).
    mg_lanes: &'a mut [MgLane],
    /// One f32 conversion scratch per lane (banded preconditioning
    /// only); the slice length *is* the split width (1 = serial).
    scratches: &'a mut [Vec<f32>],
}

impl FusedPrecond<'_> {
    fn slot_of_col(&self, col: usize) -> usize {
        self.fused_slots[self.omega_of_corner[col / self.cols_per_corner]]
    }

    fn solve_runs(&mut self, b: &mut [Complex64], cols: &[usize], transpose: bool) {
        let n = self.slots[self.fused_slots[0]].stencil.n();
        let (workers, min_cols) = if self.mg {
            (self.mg_lanes.len(), MG_SPLIT_MIN_COLS)
        } else {
            (self.scratches.len(), FUSED_SPLIT_MIN_COLS)
        };
        let split = workers > 1 && cols.len() >= min_cols;
        let workers = if split { workers } else { 1 };
        let mut rest = b;
        let mut start = 0usize;
        while start < cols.len() {
            let slot_idx = self.slot_of_col(cols[start]);
            let mut end = start + 1;
            while end < cols.len() && self.slot_of_col(cols[end]) == slot_idx {
                end += 1;
            }
            let (run, tail) = rest.split_at_mut((end - start) * n);
            rest = tail;
            let slot = &self.slots[slot_idx];
            if self.mg {
                // The multigrid pair approximates A⁻ᵀ = A⁻¹ on the
                // complex-symmetric operator, so the transpose
                // application is the plain one (see
                // `boson_sparse::multigrid::MgBandPrecond`).
                mg_solve_slot_run(slot, run, end - start, n, &mut self.mg_lanes[..workers]);
            } else {
                solve_slot_run(
                    slot,
                    run,
                    end - start,
                    n,
                    self.use_f32,
                    transpose,
                    &mut self.scratches[..workers],
                );
            }
            start = end;
        }
    }
}

impl PrecondFamily for FusedPrecond<'_> {
    fn dim(&self) -> usize {
        self.slots[self.fused_slots[0]].stencil.n()
    }

    fn solve_packed(&mut self, b: &mut [Complex64], cols: &[usize]) {
        self.solve_runs(b, cols, false);
    }

    fn solve_packed_transpose(&mut self, b: &mut [Complex64], cols: &[usize]) {
        self.solve_runs(b, cols, true);
    }
}

/// Sweeps one ω's nominal factor over a contiguous run of `run_cols`
/// packed columns, optionally split into near-equal contiguous chunks
/// dispatched on the process-wide pool (`scratches.len()` is the split
/// width; the calling thread participates as lane 0). The chunk
/// decomposition depends only on `run_cols` and the split width — never
/// on which lane executes which chunk — so any worker count is
/// bit-identical.
fn solve_slot_run(
    slot: &OmegaSlot,
    run: &mut [Complex64],
    run_cols: usize,
    n: usize,
    use_f32: bool,
    transpose: bool,
    scratches: &mut [Vec<f32>],
) {
    let solve_chunk = |chunk: &mut [Complex64], scratch: &mut Vec<f32>| {
        let ccols = chunk.len() / n;
        match (use_f32, transpose) {
            (true, false) => slot
                .nominal_lu32
                .solve_many_with_scratch(scratch, chunk, ccols),
            (true, true) => slot
                .nominal_lu32
                .solve_transpose_many_with_scratch(scratch, chunk, ccols),
            (false, false) => slot.nominal_lu.solve_many(chunk, ccols),
            (false, true) => slot.nominal_lu.solve_transpose_many(chunk, ccols),
        }
    };
    let workers = scratches.len();
    if workers <= 1 || run_cols < 2 {
        solve_chunk(run, &mut scratches[0]);
        return;
    }
    let per = run_cols.div_ceil(workers);
    pool::global().chunks_with(run, per * n, scratches, |_part, chunk, scratch| {
        solve_chunk(chunk, scratch)
    });
}

/// Multigrid counterpart of [`solve_slot_run`]: applies one ω's nominal
/// multigrid pair (surrogate V-cycle + boundary band) to a contiguous
/// run of packed columns, split into contiguous column chunks dispatched
/// on the process-wide pool — each chunk on its own [`MgLane`] scratch
/// pair (`mg_lanes.len()` is the split width). Columns are applied one
/// at a time inside `solve_block`, so the chunking (and therefore the
/// lane count) never changes results; no transpose variant is needed —
/// the pair approximates `A⁻ᵀ = A⁻¹` on the complex-symmetric operator.
fn mg_solve_slot_run(
    slot: &OmegaSlot,
    run: &mut [Complex64],
    run_cols: usize,
    n: usize,
    mg_lanes: &mut [MgLane],
) {
    let workers = mg_lanes.len();
    if workers <= 1 || run_cols < 2 {
        let lane = &mut mg_lanes[0];
        let mut precond = slot.mg_precond(&mut lane.mg, &mut lane.band);
        precond.solve_block(run, run_cols);
        return;
    }
    let per = run_cols.div_ceil(workers);
    pool::global().chunks_with(run, per * n, mg_lanes, |_part, chunk, lane| {
        let mut precond = slot.mg_precond(&mut lane.mg, &mut lane.band);
        precond.solve_block(chunk, chunk.len() / n);
    });
}

/// Relative ∞-norm drift `‖diag − ref‖∞ / ‖diag‖∞` of a nominal operator
/// diagonal against the snapshot its factor was built from. Compared on
/// squared magnitudes (order-preserving), one `sqrt` at the end. A length
/// mismatch or a zero/non-finite reference norm reports `+∞` (always
/// refactor).
fn diag_drift(diag: &[Complex64], reference: &[Complex64]) -> f64 {
    if diag.len() != reference.len() || diag.is_empty() {
        return f64::INFINITY;
    }
    let mut delta2 = 0.0f64;
    let mut norm2 = 0.0f64;
    for (&d, &r) in diag.iter().zip(reference) {
        delta2 = delta2.max((d - r).norm_sqr());
        norm2 = norm2.max(d.norm_sqr());
    }
    let drift = (delta2 / norm2).sqrt();
    if drift.is_finite() {
        drift
    } else {
        f64::INFINITY
    }
}

/// Refreshes one ω slot's banded nominal factorisation for `epoch` —
/// the shared epoch gate of [`SimWorkspace::prepare_corner`],
/// [`SimWorkspace::batch_begin`] and [`SimWorkspace::fused_batch_begin`].
///
/// Without a [`FactorLag`] policy this is the eager path: any epoch
/// change reassembles and refactors (bit-identical to the pre-lag
/// behaviour). With one, the fresh nominal diagonal is always computed
/// (`O(n)`), but the `O(n·b²)` refactor runs only when the factor has
/// drifted past `drift_tol`, aged past `max_lag` epochs, or accumulated
/// a budget miss; otherwise the stale factor is kept and only the epoch
/// stamp advances.
///
/// Returns the number of factorisations performed (0 or 1). `diag` and
/// `a` are the workspace's assembly scratch buffers.
fn refresh_nominal_banded(
    slot: &mut OmegaSlot,
    diag: &mut Vec<Complex64>,
    a: &mut BandedMatrix,
    nominal_eps: &Array2<f64>,
    epoch: u64,
    lag: Option<FactorLag>,
) -> Result<usize, SingularMatrixError> {
    if slot.nominal_epoch == Some(epoch) {
        return Ok(0);
    }
    slot.stencil.diag_into(nominal_eps, diag);
    if let (Some(lag), Some(built)) = (lag, slot.factor_epoch) {
        let aged = epoch < built || epoch - built > lag.max_lag;
        let keep = !aged
            && slot.factor_miss_streak == 0
            && diag_drift(diag, &slot.factor_diag) <= lag.drift_tol;
        if keep {
            slot.nominal_epoch = Some(epoch);
            return Ok(0);
        }
    }
    slot.stencil.assemble_with_diag(diag, a);
    a.factor_swap_into(&mut slot.nominal_lu)?;
    slot.nominal_lu32.assign_from(&slot.nominal_lu);
    slot.factor_diag.clear();
    slot.factor_diag.extend_from_slice(diag);
    slot.factor_epoch = Some(epoch);
    slot.factor_miss_streak = 0;
    slot.nominal_epoch = Some(epoch);
    Ok(1)
}

/// Folds per-column Krylov stats into per-corner solve reports (shared by
/// the per-ω and fused batched sweeps; repeated solves of one batch —
/// forwards, then adjoints — merge into the same reports).
fn merge_stats_into_reports(
    stats: &[RhsStats],
    reports: &mut Vec<CornerSolveReport>,
    batch_count: usize,
    cols_per_corner: usize,
) {
    reports.resize(
        batch_count,
        CornerSolveReport {
            converged: true,
            used_iterative: true,
            ..CornerSolveReport::default()
        },
    );
    for (col, stats) in stats.iter().enumerate() {
        let report = &mut reports[col / cols_per_corner];
        report.used_iterative = true;
        report.solves += 1;
        report.max_iterations = report.max_iterations.max(stats.iterations);
        report.total_iterations += stats.iterations;
        report.max_residual = report.max_residual.max(stats.residual);
        report.converged &= stats.converged;
    }
}

/// How the currently-prepared operator solves systems.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SolveMode {
    /// `lu` holds this corner's own factorisation.
    DirectLu,
    /// The corner *is* the nominal corner: solve on `nominal_lu`.
    NominalDirect,
    /// Matrix-free iterative path, preconditioned by the nominal banded
    /// factors (`mg == false`) or the nominal multigrid V-cycle
    /// (`mg == true`), falling back to [`SolveMode::DirectLu`] on budget
    /// miss.
    Iterative {
        tol: f64,
        max_iters: usize,
        mg: bool,
    },
}

/// Reusable factor-and-solve workspace for repeated simulations on one
/// grid (see the module docs for the ownership contract).
///
/// Typical lifecycle, once per worker thread:
///
/// ```no_run
/// # use boson_fdfd::grid::SimGrid;
/// # use boson_fdfd::sim::SimWorkspace;
/// # use boson_num::{Array2, Complex64};
/// # let grid = SimGrid::new(40, 30, 0.05, 8);
/// # let omega = 2.0 * std::f64::consts::PI / 1.55;
/// # let eps_of_corner = |_c: usize| Array2::filled(30, 40, 1.0);
/// # let jz = vec![Complex64::ZERO; grid.n()];
/// let mut ws = SimWorkspace::new();
/// let mut field = Vec::new();
/// for corner in 0..8 {
///     let eps = eps_of_corner(corner);
///     ws.factor(grid, omega, &eps).unwrap();     // alloc-free after warm-up
///     ws.solve_current_into(&jz, &mut field);    // forward solve
///     ws.solve_adjoint_in_place(&mut field);     // adjoint reuses factors
/// }
/// ```
///
/// Corner sweeps that want to amortise the factorisation use
/// [`SimWorkspace::prepare_corner`] +
/// [`SimWorkspace::solve_block`] instead of `factor` + direct solves; see
/// [`SolverStrategy::PreconditionedIterative`].
#[derive(Debug)]
pub struct SimWorkspace {
    grid: Option<SimGrid>,
    /// ω of the active slot (0.0 until the first factorisation).
    omega: f64,
    /// Per-ω geometry + nominal-factor caches, LRU-bounded by
    /// [`MAX_OMEGA_SLOTS`]. A single-wavelength run occupies exactly one
    /// slot and follows the same code path as before the spectral
    /// extension (bit-identical results).
    slots: Vec<OmegaSlot>,
    /// Index of the active slot in `slots`.
    active: usize,
    /// Monotonic use counter driving the LRU eviction.
    clock: u64,
    a: BandedMatrix,
    lu: BandedLu,
    factored: bool,
    /// Diagonal of the currently-prepared corner operator.
    diag: Vec<Complex64>,
    /// RHS snapshot so a direct fallback can re-solve the same systems.
    rhs: Vec<Complex64>,
    krylov: KrylovWorkspace,
    mode: SolveMode,
    report: CornerSolveReport,
    /// Concatenated per-corner diagonals of the current batched sweep.
    batch_diags: Vec<Complex64>,
    /// Corners in the current batch.
    batch_count: usize,
    /// Convergence controls of the current batch.
    batch_opts: IterativeOptions,
    /// Per-corner reports of the current batch.
    batch_reports: Vec<CornerSolveReport>,
    /// Batch-local ω index of each corner of the current **fused** batch
    /// (indexes [`SimWorkspace::fused_batch_begin`]'s ω list).
    fused_omega_of_corner: Vec<usize>,
    /// Slot index (into `slots`) of each fused-batch ω, pinned for the
    /// duration of the batch.
    fused_slots: Vec<usize>,
    /// Per-lane f32 conversion scratches for (possibly split) fused
    /// preconditioner sweeps; grown once, then reused.
    fused_scratches: Vec<Vec<f32>>,
    /// Per-lane multigrid scratch pairs for (possibly split)
    /// multigrid-preconditioned fused sweeps; grown once, then reused.
    mg_lanes: Vec<MgLane>,
    /// Boundary-band application scratch, shared by every slot's band
    /// (same grid ⇒ same strip shapes).
    band_scratch: BandScratch,
    /// V-cycle application scratch, shared by every slot's multigrid
    /// hierarchy (one grid ⇒ identical level shapes); sized once, then
    /// reused allocation-free.
    mg_scratch: MgScratch,
    /// The current batch preconditions with multigrid (set by
    /// [`SimWorkspace::batch_begin`] / [`SimWorkspace::fused_batch_begin`]
    /// from the strategy and grid size).
    batch_mg: bool,
    /// Lagged-nominal-factor policy; `None` (default) = eager refactor
    /// every epoch, bit-identical to the pre-lag behaviour.
    factor_lag: Option<FactorLag>,
    /// Initial-guess snapshot of a recycled fused solve (so converged
    /// corrections `x − x₀` can be harvested afterwards); grown once.
    recycle_x0: Vec<Complex64>,
}

impl Default for SimWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SimWorkspace {
    /// An empty workspace; buffers are sized on first
    /// [`SimWorkspace::factor`].
    pub fn new() -> Self {
        Self {
            grid: None,
            omega: 0.0,
            slots: Vec::new(),
            active: 0,
            clock: 0,
            a: BandedMatrix::new(1, 0, 0),
            lu: BandedLu::placeholder(),
            factored: false,
            diag: Vec::new(),
            rhs: Vec::new(),
            krylov: KrylovWorkspace::new(),
            mode: SolveMode::DirectLu,
            report: CornerSolveReport::default(),
            batch_diags: Vec::new(),
            batch_count: 0,
            batch_opts: IterativeOptions::default(),
            batch_reports: Vec::new(),
            fused_omega_of_corner: Vec::new(),
            fused_slots: Vec::new(),
            fused_scratches: Vec::new(),
            mg_lanes: Vec::new(),
            band_scratch: BandScratch::new(),
            mg_scratch: MgScratch::new(),
            batch_mg: false,
            factor_lag: None,
            recycle_x0: Vec::new(),
        }
    }

    /// Sets (or clears) the lagged-nominal-factor policy. With `Some`,
    /// each ω slot's banded nominal factorisation survives across epochs
    /// until diagonal drift, age, or a budget miss trips a rebuild (see
    /// [`FactorLag`]); with `None` (the default) every epoch refactors
    /// eagerly, bit-identical to the pre-lag behaviour. The multigrid
    /// hierarchy is unaffected (its per-epoch rebuild is already `O(n)`).
    ///
    /// While a kept factor is stale the *nominal corner itself* is solved
    /// iteratively (preconditioned by the stale factor, converging in a
    /// few iterations since drift is bounded by `drift_tol`) instead of
    /// directly on the factor — the factor no longer *is* the nominal
    /// operator, and solving on it directly would silently answer last
    /// epoch's physics.
    pub fn set_factor_lag(&mut self, lag: Option<FactorLag>) {
        self.factor_lag = lag;
    }

    /// The current lagged-nominal-factor policy.
    pub fn factor_lag(&self) -> Option<FactorLag> {
        self.factor_lag
    }

    /// `true` once [`SimWorkspace::factor`] has succeeded.
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// The grid of the current factorisation.
    ///
    /// # Panics
    ///
    /// Panics if the workspace has never been factored.
    pub fn grid(&self) -> &SimGrid {
        self.grid.as_ref().expect("SimWorkspace::factor not called")
    }

    /// Angular frequency of the current factorisation.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// PML stretch factors of the current factorisation.
    ///
    /// # Panics
    ///
    /// Panics if the workspace has never been factored.
    pub fn sfactors(&self) -> &SFactors {
        &self
            .slots
            .get(self.active)
            .expect("SimWorkspace::factor not called")
            .sfactors
    }

    /// Number of ω slots currently resident (≤ [`MAX_OMEGA_SLOTS`]).
    pub fn omega_slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Selects (building or evicting as needed) the per-ω slot for
    /// `(grid, ω)` — PML stretch factors, stencil couplings and this ω's
    /// cached nominal factor. A grid change clears every slot; revisiting
    /// a resident ω is an `O(K)` scan with no allocation, which is what
    /// keeps the steady-state multi-wavelength corner sweep
    /// allocation-free for `K ≤` [`MAX_OMEGA_SLOTS`].
    fn ensure_geometry(&mut self, grid: SimGrid, omega: f64) {
        if self.grid != Some(grid) {
            self.slots.clear();
            self.grid = Some(grid);
        }
        self.clock += 1;
        if let Some(idx) = self.slots.iter().position(|s| s.omega == omega) {
            self.active = idx;
        } else {
            let sfactors = SFactors::new(&grid, omega);
            let stencil = StencilCache::build(&grid, &sfactors, omega);
            let slot = OmegaSlot {
                omega,
                sfactors,
                stencil,
                nominal_lu: BandedLu::placeholder(),
                nominal_lu32: BandedLuF32::placeholder(),
                nominal_epoch: None,
                factor_epoch: None,
                factor_diag: Vec::new(),
                factor_miss_streak: 0,
                nominal_mg: Multigrid::new(MultigridOptions::default()),
                nominal_band: BoundaryBand::new(),
                nominal_diag: Vec::new(),
                surrogate: None,
                surrogate_diag: Vec::new(),
                mg_epoch: None,
                // Stamp the clock at *insertion*, not first reuse: a slot
                // born with stamp 0 would be the LRU minimum and could be
                // evicted by the very next new ω — with
                // K = MAX_OMEGA_SLOTS + 1 interleaved visits the freshly
                // built slot would thrash instead of the true LRU victim.
                last_used: self.clock,
            };
            if self.slots.len() < MAX_OMEGA_SLOTS {
                self.slots.push(slot);
                self.active = self.slots.len() - 1;
            } else {
                let lru = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.last_used)
                    .map(|(i, _)| i)
                    .expect("slot cache non-empty");
                self.slots[lru] = slot;
                self.active = lru;
            }
        }
        self.slots[self.active].last_used = self.clock;
        self.omega = omega;
    }

    /// Assembles and factors the operator for `eps`, reusing every buffer.
    ///
    /// The [`SFactors`] and the ε-independent stencil couplings are
    /// recomputed only when `(grid, omega)` differs from the previous
    /// call — a corner assembly rewrites the diagonal `k₀²·ε·sx·sy` band
    /// and copies the cached couplings instead of re-deriving them. The
    /// band assembly and LU storage are reused whenever the grid size is
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the operator is singular; the
    /// workspace is then unfactored until the next successful call.
    ///
    /// # Panics
    ///
    /// Panics if `eps` does not have shape `(ny, nx)`.
    pub fn factor(
        &mut self,
        grid: SimGrid,
        omega: f64,
        eps: &Array2<f64>,
    ) -> Result<(), SingularMatrixError> {
        assert_eq!(
            eps.shape(),
            (grid.ny, grid.nx),
            "eps shape must be (ny, nx)"
        );
        self.ensure_geometry(grid, omega);
        let stencil = &self.slots[self.active].stencil;
        stencil.diag_into(eps, &mut self.diag);
        stencil.assemble_with_diag(&self.diag, &mut self.a);
        self.factored = false;
        // The assembly is rebuilt from scratch every corner, so the band
        // image can be donated to the factorisation instead of copied.
        self.a.factor_swap_into(&mut self.lu)?;
        self.factored = true;
        self.mode = SolveMode::DirectLu;
        Ok(())
    }

    /// Prepares a variation-corner evaluation under `strategy`.
    ///
    /// * [`SolverStrategy::Direct`] — identical to
    ///   [`SimWorkspace::factor`]: assemble + LU-factor this corner.
    /// * [`SolverStrategy::PreconditionedIterative`] — factors only the
    ///   **nominal** operator (once per [`CornerContext::epoch`], from
    ///   [`CornerContext::nominal_eps`]) and arms the matrix-free
    ///   iterative path for this corner: an `O(n)` diagonal rewrite
    ///   replaces the `O(n·b²)` factorisation. The nominal corner itself
    ///   and corners with [`CornerContext::force_direct`] solve directly.
    ///   Above [`MULTIGRID_MIN_CELLS`] cells the nominal preconditioner
    ///   is the multigrid V-cycle (below).
    /// * [`SolverStrategy::MultigridIterative`] — as above, but the
    ///   nominal preconditioner is the geometric multigrid V-cycle at
    ///   **any** grid size: `O(n)` setup per epoch, no banded factor
    ///   above the hierarchy's coarsest level. Every non-`force_direct`
    ///   corner — including the nominal one — solves iteratively.
    ///
    /// Subsequent [`SimWorkspace::solve_block`] /
    /// [`SimWorkspace::solve_block_transpose`] calls dispatch on the
    /// prepared mode; [`SimWorkspace::last_report`] tells what happened.
    /// Steady-state corner preparation performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a required factorisation fails.
    ///
    /// # Panics
    ///
    /// Panics if `eps` does not have shape `(ny, nx)`, or if the
    /// iterative strategy is selected without a [`CornerContext`].
    pub fn prepare_corner(
        &mut self,
        grid: SimGrid,
        omega: f64,
        eps: &Array2<f64>,
        strategy: SolverStrategy,
        ctx: Option<&CornerContext<'_>>,
    ) -> Result<(), SingularMatrixError> {
        self.report = CornerSolveReport {
            // The per-corner path always delivers converged results (the
            // direct fallback guarantees it); batched sweeps overwrite
            // this per corner.
            converged: true,
            ..CornerSolveReport::default()
        };
        match strategy {
            SolverStrategy::Direct => {
                self.factor(grid, omega, eps)?;
                self.report.factorizations = 1;
            }
            SolverStrategy::PreconditionedIterative { tol, max_iters }
            | SolverStrategy::MultigridIterative { tol, max_iters } => {
                let ctx = ctx.expect("iterative strategies require a CornerContext");
                assert_eq!(
                    eps.shape(),
                    (grid.ny, grid.nx),
                    "eps shape must be (ny, nx)"
                );
                self.ensure_geometry(grid, omega);
                self.factored = false;
                let slot = &mut self.slots[self.active];
                if strategy.uses_multigrid(grid.n()) {
                    // Multigrid preconditioning: the nominal surrogate
                    // hierarchy plus boundary-band strips replace the
                    // nominal factor entirely — no banded factor is built
                    // above the hierarchy's coarsest level or thicker
                    // than the band strips. The nominal corner itself
                    // goes through the iterative path too (its
                    // preconditioner targets its own operator, so it
                    // converges in a few iterations).
                    if slot.mg_epoch != Some(ctx.epoch) {
                        slot.rebuild_mg(grid, ctx.nominal_eps)?;
                        slot.mg_epoch = Some(ctx.epoch);
                        self.report.factorizations += 1;
                    }
                    slot.stencil.diag_into(eps, &mut self.diag);
                    if ctx.force_direct {
                        slot.stencil.assemble_with_diag(&self.diag, &mut self.a);
                        self.a.factor_swap_into(&mut self.lu)?;
                        self.factored = true;
                        self.mode = SolveMode::DirectLu;
                        self.report.factorizations += 1;
                    } else {
                        self.mode = SolveMode::Iterative {
                            tol,
                            max_iters,
                            mg: true,
                        };
                        self.report.used_iterative = true;
                    }
                } else {
                    self.report.factorizations += refresh_nominal_banded(
                        slot,
                        &mut self.diag,
                        &mut self.a,
                        ctx.nominal_eps,
                        ctx.epoch,
                        self.factor_lag,
                    )?;
                    // The nominal corner solves directly on the nominal
                    // factor only while the factor actually *is* this
                    // epoch's nominal operator; a lag-kept stale factor
                    // would silently answer last epoch's physics, so the
                    // nominal corner then rides the iterative path like
                    // any drifted corner (its "perturbation" is the
                    // bounded diagonal drift — a few iterations).
                    if ctx.is_nominal && slot.factor_epoch == Some(ctx.epoch) {
                        self.mode = SolveMode::NominalDirect;
                    } else {
                        slot.stencil.diag_into(eps, &mut self.diag);
                        if ctx.force_direct {
                            slot.stencil.assemble_with_diag(&self.diag, &mut self.a);
                            self.a.factor_swap_into(&mut self.lu)?;
                            self.factored = true;
                            self.mode = SolveMode::DirectLu;
                            self.report.factorizations += 1;
                        } else {
                            self.mode = SolveMode::Iterative {
                                tol,
                                max_iters,
                                mg: false,
                            };
                            self.report.used_iterative = true;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Solves `A X = B` for the prepared corner, `nrhs` column-major
    /// right-hand sides in `b` (overwritten with the solutions).
    ///
    /// Direct modes run one batched triangular sweep; the iterative mode
    /// runs nominal-factor-preconditioned BiCGSTAB and, if any right-hand
    /// side misses its budget, transparently factors this corner and
    /// re-solves everything directly (recorded in
    /// [`SimWorkspace::last_report`] — the results are then bit-identical
    /// to the [`SolverStrategy::Direct`] path).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the direct fallback hits a
    /// singular operator.
    ///
    /// # Panics
    ///
    /// Panics if no corner is prepared or `b.len() != n·nrhs`.
    pub fn solve_block(
        &mut self,
        b: &mut [Complex64],
        nrhs: usize,
    ) -> Result<(), SingularMatrixError> {
        self.solve_block_impl(b, nrhs, false)
    }

    /// Transpose counterpart of [`SimWorkspace::solve_block`]: solves
    /// `Aᵀ X = B`. The symmetrised operator makes this numerically equal
    /// to the plain solve; it exists for independent verification and for
    /// adjoints of non-symmetric extensions.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the direct fallback hits a
    /// singular operator.
    ///
    /// # Panics
    ///
    /// Panics if no corner is prepared or `b.len() != n·nrhs`.
    pub fn solve_block_transpose(
        &mut self,
        b: &mut [Complex64],
        nrhs: usize,
    ) -> Result<(), SingularMatrixError> {
        self.solve_block_impl(b, nrhs, true)
    }

    fn solve_block_impl(
        &mut self,
        b: &mut [Complex64],
        nrhs: usize,
        transpose: bool,
    ) -> Result<(), SingularMatrixError> {
        let n = self.grid.expect("SimWorkspace not prepared").n();
        assert_eq!(b.len(), n * nrhs, "solve_block dimension mismatch");
        self.report.solves += nrhs;
        match self.mode {
            SolveMode::DirectLu => {
                assert!(self.factored, "SimWorkspace not factored");
                if transpose {
                    self.lu.solve_transpose_many(b, nrhs);
                } else {
                    self.lu.solve_many(b, nrhs);
                }
            }
            SolveMode::NominalDirect => {
                let nominal_lu = &self.slots[self.active].nominal_lu;
                if transpose {
                    nominal_lu.solve_transpose_many(b, nrhs);
                } else {
                    nominal_lu.solve_many(b, nrhs);
                }
            }
            SolveMode::Iterative {
                tol,
                max_iters,
                mg: true,
            } => {
                self.rhs.clear();
                self.rhs.extend_from_slice(b);
                let slot = &self.slots[self.active];
                let op = StencilOp {
                    cache: &slot.stencil,
                    diag: &self.diag,
                };
                let opts = IterativeOptions {
                    tol,
                    max_iters,
                    use_initial_guess: false,
                    threads: 1,
                };
                // The V-cycle + band sweep is f64 throughout (smoothing,
                // coarse solve and strip sweeps are O(n) — there is no
                // memory-bound full factor image for an f32 copy to
                // halve).
                let mut precond = slot.mg_precond(&mut self.mg_scratch, &mut self.band_scratch);
                let quality = if transpose {
                    bicgstab_precond_transpose_many(
                        &op,
                        &mut precond,
                        &self.rhs,
                        b,
                        nrhs,
                        &opts,
                        &mut self.krylov,
                    )
                } else {
                    bicgstab_precond_many(
                        &op,
                        &mut precond,
                        &self.rhs,
                        b,
                        nrhs,
                        &opts,
                        &mut self.krylov,
                    )
                };
                self.report.max_iterations = self.report.max_iterations.max(quality.max_iterations);
                self.report.total_iterations += self
                    .krylov
                    .stats()
                    .iter()
                    .map(|s| s.iterations)
                    .sum::<usize>();
                self.report.max_residual = self.report.max_residual.max(quality.max_residual);
                if !quality.converged {
                    // Budget miss: factor this corner and re-solve the
                    // snapshot directly — bit-identical to the Direct
                    // path, exactly like the banded-preconditioned
                    // fallback below.
                    self.report.fell_back = true;
                    self.report.factorizations += 1;
                    let slot = &self.slots[self.active];
                    slot.stencil.assemble_with_diag(&self.diag, &mut self.a);
                    self.a.factor_swap_into(&mut self.lu)?;
                    self.factored = true;
                    self.mode = SolveMode::DirectLu;
                    b.copy_from_slice(&self.rhs);
                    if transpose {
                        self.lu.solve_transpose_many(b, nrhs);
                    } else {
                        self.lu.solve_many(b, nrhs);
                    }
                }
            }
            SolveMode::Iterative {
                tol,
                max_iters,
                mg: false,
            } => {
                self.rhs.clear();
                self.rhs.extend_from_slice(b);
                let slot = &mut self.slots[self.active];
                let op = StencilOp {
                    cache: &slot.stencil,
                    diag: &self.diag,
                };
                let opts = IterativeOptions {
                    tol,
                    max_iters,
                    use_initial_guess: false,
                    threads: 1,
                };
                // Memory-bound triangular sweeps dominate the iteration;
                // the f32 factor copy halves their traffic. Only very
                // tight tolerances (which f32 preconditioning could slow
                // down near its noise floor) pay for f64 sweeps.
                let use_f32 = tol >= F32_PRECOND_MIN_TOL;
                let quality = match (transpose, use_f32) {
                    (false, true) => bicgstab_precond_many(
                        &op,
                        &mut slot.nominal_lu32,
                        &self.rhs,
                        b,
                        nrhs,
                        &opts,
                        &mut self.krylov,
                    ),
                    (true, true) => bicgstab_precond_transpose_many(
                        &op,
                        &mut slot.nominal_lu32,
                        &self.rhs,
                        b,
                        nrhs,
                        &opts,
                        &mut self.krylov,
                    ),
                    (false, false) => bicgstab_precond_many(
                        &op,
                        &mut slot.nominal_lu,
                        &self.rhs,
                        b,
                        nrhs,
                        &opts,
                        &mut self.krylov,
                    ),
                    (true, false) => bicgstab_precond_transpose_many(
                        &op,
                        &mut slot.nominal_lu,
                        &self.rhs,
                        b,
                        nrhs,
                        &opts,
                        &mut self.krylov,
                    ),
                };
                self.report.max_iterations = self.report.max_iterations.max(quality.max_iterations);
                self.report.total_iterations += self
                    .krylov
                    .stats()
                    .iter()
                    .map(|s| s.iterations)
                    .sum::<usize>();
                self.report.max_residual = self.report.max_residual.max(quality.max_residual);
                if !quality.converged {
                    // Budget miss: factor this corner and re-solve the
                    // snapshot directly; later solves of this corner go
                    // direct as well.
                    if slot.factor_epoch != slot.nominal_epoch {
                        // The miss happened against a lag-kept stale
                        // factor: trip a refactor at the next epoch
                        // check.
                        slot.factor_miss_streak += 1;
                    }
                    self.report.fell_back = true;
                    self.report.factorizations += 1;
                    slot.stencil.assemble_with_diag(&self.diag, &mut self.a);
                    self.a.factor_swap_into(&mut self.lu)?;
                    self.factored = true;
                    self.mode = SolveMode::DirectLu;
                    b.copy_from_slice(&self.rhs);
                    if transpose {
                        self.lu.solve_transpose_many(b, nrhs);
                    } else {
                        self.lu.solve_many(b, nrhs);
                    }
                }
            }
        }
        Ok(())
    }

    /// What the solver did for the last [`SimWorkspace::prepare_corner`]
    /// (factorisations, iteration counts, residuals, fallback).
    pub fn last_report(&self) -> &CornerSolveReport {
        &self.report
    }

    /// Begins a **batched** corner sweep under the iterative strategy:
    /// ensures the geometry caches and the nominal factor for `epoch`,
    /// then clears the batch. Push corners with
    /// [`SimWorkspace::batch_push`] and solve all of them in lockstep
    /// with [`SimWorkspace::batch_solve`].
    ///
    /// Batching exists because the preconditioner sweeps are memory-bound
    /// on the factor image: sweeping the packed active columns of *every*
    /// corner at once reads the factors one time per half-iteration for
    /// the whole sweep instead of once per corner, which is where the
    /// corner-sweep speedup comes from.
    ///
    /// Returns the number of factorisations performed (1 when the nominal
    /// preconditioner — banded factor or multigrid hierarchy, per the
    /// strategy and grid size — was refreshed, else 0).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the nominal operator is
    /// singular.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_eps` does not have shape `(ny, nx)` or
    /// `strategy` is [`SolverStrategy::Direct`].
    pub fn batch_begin(
        &mut self,
        grid: SimGrid,
        omega: f64,
        nominal_eps: &Array2<f64>,
        epoch: u64,
        strategy: SolverStrategy,
    ) -> Result<usize, SingularMatrixError> {
        assert_eq!(
            nominal_eps.shape(),
            (grid.ny, grid.nx),
            "eps shape must be (ny, nx)"
        );
        let (tol, max_iters) = strategy
            .iterative_params()
            .expect("batched sweeps require an iterative strategy");
        self.batch_mg = strategy.uses_multigrid(grid.n());
        self.ensure_geometry(grid, omega);
        let mut factorizations = 0;
        let slot = &mut self.slots[self.active];
        if self.batch_mg {
            if slot.mg_epoch != Some(epoch) {
                slot.rebuild_mg(grid, nominal_eps)?;
                slot.mg_epoch = Some(epoch);
                factorizations = 1;
            }
        } else {
            factorizations = refresh_nominal_banded(
                slot,
                &mut self.diag,
                &mut self.a,
                nominal_eps,
                epoch,
                self.factor_lag,
            )?;
        }
        self.batch_diags.clear();
        self.batch_count = 0;
        self.batch_reports.clear();
        self.batch_opts = IterativeOptions {
            tol,
            max_iters,
            use_initial_guess: false,
            threads: 1,
        };
        Ok(factorizations)
    }

    /// Appends one corner operator (its diagonal) to the current batch;
    /// returns the corner's slot index.
    ///
    /// # Panics
    ///
    /// Panics if `eps` does not match the batch grid.
    pub fn batch_push(&mut self, eps: &Array2<f64>) -> usize {
        let stencil = &self
            .slots
            .get(self.active)
            .expect("batch_begin before batch_push")
            .stencil;
        let n = stencil.n();
        assert_eq!(eps.as_slice().len(), n, "eps size mismatch");
        // diag_into semantics, appended to the batch block.
        stencil.diag_into(eps, &mut self.diag);
        self.batch_diags.extend_from_slice(&self.diag);
        let slot = self.batch_count;
        self.batch_count += 1;
        slot
    }

    /// Number of corners in the current batch.
    pub fn batch_len(&self) -> usize {
        self.batch_count
    }

    /// Lockstep-solves `cols_per_corner` systems for every batched
    /// corner: `b` holds the right-hand sides (corner-major, column-major
    /// within a corner, `n·cols_per_corner·batch_len()` entries) and the
    /// solutions land in `x`. With `use_initial_guess`, `x` carries warm
    /// starts (e.g. the nominal corner's fields) on entry.
    ///
    /// No direct fallback happens here: corners whose columns miss the
    /// budget are reported with `converged == false` in
    /// [`SimWorkspace::batch_reports`] and the caller re-evaluates them
    /// directly. Calling `batch_solve` again (e.g. for the adjoint phase)
    /// merges into the same per-corner reports.
    ///
    /// # Panics
    ///
    /// Panics if the block lengths disagree with the batch.
    pub fn batch_solve(
        &mut self,
        b: &[Complex64],
        x: &mut [Complex64],
        cols_per_corner: usize,
        use_initial_guess: bool,
    ) {
        let slot = self
            .slots
            .get_mut(self.active)
            .expect("batch_begin before batch_solve");
        let n = slot.stencil.n();
        let ncols = self.batch_count * cols_per_corner;
        assert_eq!(b.len(), n * ncols, "batch rhs block length mismatch");
        assert_eq!(x.len(), n * ncols, "batch solution block length mismatch");
        let op = MultiCornerOp {
            cache: &slot.stencil,
            diags: &self.batch_diags,
            cols_per_diag: cols_per_corner,
        };
        let opts = IterativeOptions {
            use_initial_guess,
            ..self.batch_opts
        };
        if self.batch_mg {
            // One shared nominal preconditioner pair (surrogate V-cycle +
            // boundary band) serves every packed column (the blanket
            // `PrecondFamily` applies it per sweep).
            let mut precond = slot.mg_precond(&mut self.mg_scratch, &mut self.band_scratch);
            bicgstab_precond_many(&op, &mut precond, b, x, ncols, &opts, &mut self.krylov);
        } else {
            let use_f32 = self.batch_opts.tol >= F32_PRECOND_MIN_TOL;
            if use_f32 {
                bicgstab_precond_many(
                    &op,
                    &mut slot.nominal_lu32,
                    b,
                    x,
                    ncols,
                    &opts,
                    &mut self.krylov,
                );
            } else {
                bicgstab_precond_many(
                    &op,
                    &mut slot.nominal_lu,
                    b,
                    x,
                    ncols,
                    &opts,
                    &mut self.krylov,
                );
            }
        }
        // Merge per-column stats into per-corner reports.
        merge_stats_into_reports(
            self.krylov.stats(),
            &mut self.batch_reports,
            self.batch_count,
            cols_per_corner,
        );
        if self.factor_lag.is_some() && !self.batch_mg {
            let slot = &mut self.slots[self.active];
            if slot.factor_epoch != slot.nominal_epoch
                && self.krylov.stats().iter().any(|s| !s.converged)
            {
                // A budget miss against the lag-kept stale factor trips
                // its refactor at the next epoch check.
                slot.factor_miss_streak += 1;
            }
        }
    }

    /// Per-corner convergence reports of the current batch (filled by
    /// [`SimWorkspace::batch_solve`] / [`SimWorkspace::fused_batch_solve`]).
    pub fn batch_reports(&self) -> &[CornerSolveReport] {
        &self.batch_reports
    }

    /// Begins a **fused** (corner × ω) sweep: ensures the geometry caches
    /// and the epoch's nominal factorisation for **every** wavelength of
    /// `omegas` (each resident ω slot pinned for the duration of the
    /// batch), then clears the batch. Push corners with
    /// [`SimWorkspace::fused_batch_push`] — each tagged with its ω — and
    /// advance all of them in one lockstep sweep with
    /// [`SimWorkspace::fused_batch_solve`].
    ///
    /// Where [`SimWorkspace::batch_begin`] amortises the preconditioner's
    /// memory traffic across the corners of *one* wavelength, the fused
    /// batch amortises the whole iteration across the full cross product:
    /// every column is preconditioned by its own ω's nominal factor and
    /// stencil-applied through its own ω's couplings, so a broadband
    /// robust iteration runs **one** batch instead of K.
    ///
    /// Returns the number of nominal factorisations performed (one per ω
    /// whose cached nominal preconditioner — banded factor or multigrid
    /// hierarchy, per the strategy and grid size — was stale for
    /// `epoch`).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a nominal operator is singular.
    ///
    /// # Panics
    ///
    /// Panics if `omegas` is empty or exceeds [`MAX_OMEGA_SLOTS`] (the
    /// batch needs every ω resident simultaneously), if `nominal_eps`
    /// does not have shape `(ny, nx)`, or if `strategy` is
    /// [`SolverStrategy::Direct`].
    pub fn fused_batch_begin(
        &mut self,
        grid: SimGrid,
        omegas: &[f64],
        nominal_eps: &Array2<f64>,
        epoch: u64,
        strategy: SolverStrategy,
    ) -> Result<usize, SingularMatrixError> {
        assert!(!omegas.is_empty(), "fused batch needs at least one ω");
        assert!(
            omegas.len() <= MAX_OMEGA_SLOTS,
            "fused batch carries {} wavelengths but the workspace retains \
             at most {} ω slots",
            omegas.len(),
            MAX_OMEGA_SLOTS
        );
        assert_eq!(
            nominal_eps.shape(),
            (grid.ny, grid.nx),
            "eps shape must be (ny, nx)"
        );
        let (tol, max_iters) = strategy
            .iterative_params()
            .expect("batched sweeps require an iterative strategy");
        self.batch_mg = strategy.uses_multigrid(grid.n());
        let mut factorizations = 0;
        for &omega in omegas {
            self.ensure_geometry(grid, omega);
            let slot = &mut self.slots[self.active];
            if self.batch_mg {
                if slot.mg_epoch != Some(epoch) {
                    slot.rebuild_mg(grid, nominal_eps)?;
                    slot.mg_epoch = Some(epoch);
                    factorizations += 1;
                }
            } else {
                factorizations += refresh_nominal_banded(
                    slot,
                    &mut self.diag,
                    &mut self.a,
                    nominal_eps,
                    epoch,
                    self.factor_lag,
                )?;
            }
        }
        // Pin the batch's slots only after every geometry is ensured: the
        // insertion-time LRU stamps above guarantee the batch's own ωs
        // never evict each other, so each lookup must succeed.
        self.fused_slots.clear();
        for &omega in omegas {
            let idx = self
                .slots
                .iter()
                .position(|s| s.omega == omega)
                .expect("fused-batch ω evicted while ensuring its siblings");
            self.fused_slots.push(idx);
        }
        self.batch_diags.clear();
        self.batch_count = 0;
        self.fused_omega_of_corner.clear();
        self.batch_reports.clear();
        self.batch_opts = IterativeOptions {
            tol,
            max_iters,
            use_initial_guess: false,
            threads: 1,
        };
        Ok(factorizations)
    }

    /// Appends one corner operator (its diagonal, derived through the
    /// `omega_idx`-th batch wavelength's stencil) to the current fused
    /// batch; returns the corner's slot index. ω-grouped push order keeps
    /// each preconditioner run contiguous (required only for speed, not
    /// correctness).
    ///
    /// # Panics
    ///
    /// Panics if `omega_idx` is outside the ω list of the most recent
    /// [`SimWorkspace::fused_batch_begin`], or `eps` does not match its
    /// grid.
    pub fn fused_batch_push(&mut self, eps: &Array2<f64>, omega_idx: usize) -> usize {
        let slot_idx = *self
            .fused_slots
            .get(omega_idx)
            .expect("fused_batch_begin before fused_batch_push");
        let stencil = &self.slots[slot_idx].stencil;
        assert_eq!(eps.as_slice().len(), stencil.n(), "eps size mismatch");
        stencil.diag_into(eps, &mut self.diag);
        self.batch_diags.extend_from_slice(&self.diag);
        self.fused_omega_of_corner.push(omega_idx);
        let slot = self.batch_count;
        self.batch_count += 1;
        slot
    }

    /// Angular frequency of the `omega_idx`-th fused-batch wavelength.
    ///
    /// # Panics
    ///
    /// Panics if `omega_idx` is outside the current fused batch's ω list.
    pub fn fused_omega(&self, omega_idx: usize) -> f64 {
        self.slots[self.fused_slots[omega_idx]].omega
    }

    /// PML stretch factors of the `omega_idx`-th fused-batch wavelength
    /// (for building that ω's right-hand sides while the batch is
    /// pinned).
    ///
    /// # Panics
    ///
    /// Panics if `omega_idx` is outside the current fused batch's ω list.
    pub fn fused_sfactors(&self, omega_idx: usize) -> &SFactors {
        &self.slots[self.fused_slots[omega_idx]].sfactors
    }

    /// Accumulates `dF/dε` at the `omega_idx`-th fused-batch wavelength
    /// (each corner of a fused sweep back-propagates through its own ω's
    /// stretch factors and `ω²`).
    ///
    /// # Panics
    ///
    /// Panics if `omega_idx` is outside the current fused batch's ω list
    /// or shapes mismatch.
    pub fn fused_grad_eps_accumulate(
        &self,
        omega_idx: usize,
        ez: &[Complex64],
        lambda: &[Complex64],
        out: &mut Array2<f64>,
    ) {
        let slot = &self.slots[self.fused_slots[omega_idx]];
        grad_eps_accumulate(
            self.grid.as_ref().expect("SimWorkspace not prepared"),
            &slot.sfactors,
            slot.omega,
            ez,
            lambda,
            out,
        );
    }

    /// Lockstep-solves `cols_per_corner` systems for every corner of the
    /// fused (corner × ω) batch: `b` holds the right-hand sides
    /// (corner-major, column-major within a corner) and the solutions
    /// land in `x`; with `use_initial_guess`, `x` carries warm starts
    /// (each corner's own ω's nominal solution) on entry.
    ///
    /// Every column advances through the one shared BiCGSTAB iteration,
    /// preconditioned by **its own ω's** nominal factor and
    /// stencil-applied through its own ω's couplings — per-column
    /// arithmetic is exactly that of the per-ω batched sweep, so results
    /// are bit-identical to running K separate [`SimWorkspace::batch_solve`]
    /// batches. When the packed active-column count reaches
    /// [`FUSED_SPLIT_MIN_COLS`] (banded) / [`MG_SPLIT_MIN_COLS`]
    /// (multigrid) and `threads > 1`, each preconditioner run splits
    /// into independent contiguous column chunks dispatched on the
    /// process-wide `boson_num::pool` — no threads are spawned, and the
    /// per-column Krylov stages ride the same substrate (bit-identical
    /// at any thread count).
    ///
    /// No direct fallback happens here: corners whose columns miss the
    /// budget are reported with `converged == false` in
    /// [`SimWorkspace::batch_reports`] and the caller re-evaluates them
    /// directly. Calling `fused_batch_solve` again (the adjoint phase)
    /// merges into the same per-corner reports.
    ///
    /// # Panics
    ///
    /// Panics if no fused batch is begun or the block lengths disagree
    /// with it.
    pub fn fused_batch_solve(
        &mut self,
        b: &[Complex64],
        x: &mut [Complex64],
        cols_per_corner: usize,
        use_initial_guess: bool,
        threads: usize,
    ) {
        self.fused_batch_solve_impl(b, x, cols_per_corner, use_initial_guess, threads, None);
    }

    /// [`SimWorkspace::fused_batch_solve`] with **cross-iteration Krylov
    /// recycling**: before the lockstep iteration starts, every column's
    /// initial guess is improved by the Galerkin projection of its
    /// residual onto its [`RecycleSpace`] (see
    /// [`boson_num::krylov::RecycleSpace::try_apply`] — applied through
    /// the same matrix-free operator the iteration uses, and guaranteed
    /// never to worsen a column, only skip); after the solve, every
    /// converged column's correction `x − x₀` is harvested back into its
    /// space for the next epoch.
    ///
    /// `recycle.spaces` holds the caller's deflation stores (keyed
    /// however the caller likes — e.g. by stable product-column index so
    /// dormant subspace columns keep stale-but-monitored state);
    /// `recycle.keys[corner]` maps each batch corner to its store, shared
    /// by that corner's `cols_per_corner` columns. Results differ from
    /// the unrecycled solve only through the improved starting point —
    /// converged solutions satisfy the same residual tolerance.
    ///
    /// # Panics
    ///
    /// Panics if no fused batch is begun, the block lengths disagree with
    /// it, or `recycle.keys` is shorter than the batch.
    pub fn fused_batch_solve_recycled(
        &mut self,
        b: &[Complex64],
        x: &mut [Complex64],
        cols_per_corner: usize,
        use_initial_guess: bool,
        threads: usize,
        recycle: FusedRecycle<'_>,
    ) {
        self.fused_batch_solve_impl(
            b,
            x,
            cols_per_corner,
            use_initial_guess,
            threads,
            Some(recycle),
        );
    }

    fn fused_batch_solve_impl(
        &mut self,
        b: &[Complex64],
        x: &mut [Complex64],
        cols_per_corner: usize,
        use_initial_guess: bool,
        threads: usize,
        mut recycle: Option<FusedRecycle<'_>>,
    ) {
        let Self {
            slots,
            fused_slots,
            fused_omega_of_corner,
            fused_scratches,
            mg_lanes,
            batch_diags,
            batch_count,
            batch_opts,
            batch_reports,
            batch_mg,
            krylov,
            factor_lag,
            recycle_x0,
            ..
        } = self;
        assert!(
            !fused_slots.is_empty(),
            "fused_batch_begin before fused_batch_solve"
        );
        let n = slots[fused_slots[0]].stencil.n();
        let ncols = *batch_count * cols_per_corner;
        assert_eq!(b.len(), n * ncols, "fused rhs block length mismatch");
        assert_eq!(x.len(), n * ncols, "fused solution block length mismatch");
        if let Some(rec) = recycle.as_ref() {
            assert!(
                rec.keys.len() >= *batch_count,
                "recycle keys shorter than the fused batch"
            );
        }
        let workers = threads.max(1);
        if fused_scratches.len() < workers {
            fused_scratches.resize_with(workers, Vec::new);
        }
        if *batch_mg && mg_lanes.len() < workers {
            mg_lanes.resize_with(workers, MgLane::default);
        }
        {
            let op = FusedCornerOp {
                slots,
                fused_slots,
                omega_of_corner: fused_omega_of_corner,
                diags: batch_diags,
                cols_per_corner,
            };
            let mut start_from_guess = use_initial_guess;
            if let Some(rec) = recycle.as_mut() {
                // Recycled pre-pass: turn every column's start into an
                // explicit initial guess (zeroed when the caller had
                // none — `b − A·0` is exactly `b`, so a cold column
                // behaves as before), then Galerkin-project each
                // column's residual onto its deflation store.
                if !use_initial_guess {
                    x.fill(Complex64::ZERO);
                }
                start_from_guess = true;
                for c in 0..ncols {
                    let space = &mut rec.spaces[rec.keys[c / cols_per_corner]];
                    space.ensure_dim(n);
                    space.try_apply(
                        &op,
                        c,
                        rec.transpose,
                        &b[c * n..(c + 1) * n],
                        &mut x[c * n..(c + 1) * n],
                        rec.epoch,
                    );
                }
                // Snapshot x₀ so corrections can be harvested after the
                // solve; grown once, then reused.
                recycle_x0.clear();
                recycle_x0.extend_from_slice(x);
            }
            let mut family = FusedPrecond {
                slots,
                fused_slots,
                omega_of_corner: fused_omega_of_corner,
                cols_per_corner,
                use_f32: !*batch_mg && batch_opts.tol >= F32_PRECOND_MIN_TOL,
                mg: *batch_mg,
                mg_lanes: if *batch_mg {
                    &mut mg_lanes[..workers]
                } else {
                    &mut []
                },
                scratches: &mut fused_scratches[..workers],
            };
            let opts = IterativeOptions {
                use_initial_guess: start_from_guess,
                threads: workers,
                ..*batch_opts
            };
            bicgstab_precond_many(&op, &mut family, b, x, ncols, &opts, krylov);
            if let Some(rec) = recycle.as_mut() {
                // Harvest converged corrections x − x₀ (in place over the
                // snapshot). A column that converged at its starting
                // point contributes a zero correction, which harvest
                // rejects while still advancing the store's epoch stamp.
                for (c, stats) in krylov.stats().iter().enumerate() {
                    if !stats.converged {
                        continue;
                    }
                    let col = c * n..(c + 1) * n;
                    let correction = &mut recycle_x0[col.clone()];
                    for (d, &xi) in correction.iter_mut().zip(&x[col.clone()]) {
                        *d = xi - *d;
                    }
                    let space = &mut rec.spaces[rec.keys[c / cols_per_corner]];
                    space.harvest(correction, rec.epoch);
                    // Remember the full solution too: next epoch's
                    // `try_apply` starts from it when its residual beats
                    // the shared warm start (for multi-column corners the
                    // last column wins — a mismatched remembered solution
                    // is rejected by the residual gate, never committed).
                    space.remember_solution(&x[col], rec.epoch);
                }
            }
        }
        merge_stats_into_reports(krylov.stats(), batch_reports, *batch_count, cols_per_corner);
        if factor_lag.is_some() && !*batch_mg {
            // Budget misses against a lag-kept stale factor trip that
            // slot's refactor at the next epoch check (the caller's
            // direct fallback keeps this epoch's results exact).
            for (c, stats) in krylov.stats().iter().enumerate() {
                if !stats.converged {
                    let slot = &mut slots[fused_slots[fused_omega_of_corner[c / cols_per_corner]]];
                    if slot.factor_epoch != slot.nominal_epoch {
                        slot.factor_miss_streak += 1;
                    }
                }
            }
        }
    }

    /// The current factorisation.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is not factored.
    pub fn lu(&self) -> &BandedLu {
        assert!(self.factored, "SimWorkspace not factored");
        &self.lu
    }

    /// Solves the forward problem for one raw current distribution,
    /// writing the field into `out` (resized once, then reused).
    ///
    /// # Panics
    ///
    /// Panics if the workspace is not factored or `jz` has the wrong
    /// length.
    pub fn solve_current_into(&self, jz: &[Complex64], out: &mut Vec<Complex64>) {
        assert!(self.factored, "SimWorkspace not factored");
        let grid = self.grid();
        let n = grid.n();
        out.clear();
        out.resize(n, Complex64::ZERO);
        scale_source_into(grid, self.sfactors(), self.omega, jz, out);
        self.lu.solve(out);
    }

    /// Batched forward solve: scales every `jz` into one column-major
    /// right-hand-side block and pushes all of them through a single
    /// [`BandedLu::solve_many`] sweep. Column `c` of `out` (stride `n`)
    /// holds the field of `jzs[c]`.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is not factored or any source has the wrong
    /// length.
    pub fn solve_currents_batched(&self, jzs: &[&[Complex64]], out: &mut Vec<Complex64>) {
        assert!(self.factored, "SimWorkspace not factored");
        let grid = self.grid();
        let n = grid.n();
        out.clear();
        out.resize(n * jzs.len(), Complex64::ZERO);
        for (c, jz) in jzs.iter().enumerate() {
            scale_source_into(
                grid,
                self.sfactors(),
                self.omega,
                jz,
                &mut out[c * n..(c + 1) * n],
            );
        }
        self.lu.solve_many(out, jzs.len());
    }

    /// In-place adjoint solve (`g` becomes `λ`); the symmetrised operator
    /// makes this a plain solve against the shared factors.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is not factored or `g` has the wrong
    /// length.
    pub fn solve_adjoint_in_place(&self, g: &mut [Complex64]) {
        assert!(self.factored, "SimWorkspace not factored");
        assert_eq!(g.len(), self.grid().n(), "adjoint source length mismatch");
        self.lu.solve(g);
    }

    /// Batched in-place adjoint solve over `nrhs` column-major gradients.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is not factored or `g.len() != n·nrhs`.
    pub fn solve_adjoints_batched_in_place(&self, g: &mut [Complex64], nrhs: usize) {
        assert!(self.factored, "SimWorkspace not factored");
        assert_eq!(
            g.len(),
            self.grid().n() * nrhs,
            "adjoint block length mismatch"
        );
        self.lu.solve_many(g, nrhs);
    }

    /// Accumulates `dF/dε` from a forward field and its adjoint into a
    /// caller-owned `(ny, nx)` array (see [`grad_eps_accumulate`]).
    ///
    /// # Panics
    ///
    /// Panics if the workspace was never factored/prepared or shapes
    /// mismatch.
    pub fn grad_eps_accumulate(
        &self,
        ez: &[Complex64],
        lambda: &[Complex64],
        out: &mut Array2<f64>,
    ) {
        grad_eps_accumulate(self.grid(), self.sfactors(), self.omega, ez, lambda, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Axis, Sign};
    use crate::monitor::{FluxMonitor, ModalMonitor};
    use crate::port::Port;
    use crate::source::ModalSource;
    use boson_num::c64;

    const LAMBDA: f64 = 1.55;

    fn omega() -> f64 {
        2.0 * std::f64::consts::PI / LAMBDA
    }

    /// Straight horizontal waveguide spanning the domain.
    fn straight_wg(grid: &SimGrid, half_width_cells: usize) -> Array2<f64> {
        let cy = grid.ny / 2;
        Array2::from_fn(grid.ny, grid.nx, |iy, _ix| {
            if iy >= cy - half_width_cells && iy < cy + half_width_cells {
                12.11
            } else {
                1.0
            }
        })
    }

    fn test_grid() -> SimGrid {
        // 3.0 × 2.5 µm at 50 nm, 10-cell PML.
        SimGrid::new(60, 50, 0.05, 10)
    }

    #[test]
    fn straight_waveguide_unity_transmission() {
        let grid = test_grid();
        let eps = straight_wg(&grid, 4); // 0.4 µm core
        let sim = Simulation::new(grid, omega(), eps.clone()).unwrap();

        let port_in = Port::new("in", Axis::X, 14, 10, 40);
        let port_out = Port::new("out", Axis::X, 45, 10, 40);
        let modes_in = port_in.solve_modes(&grid, &eps, omega(), 1);
        let modes_out = port_out.solve_modes(&grid, &eps, omega(), 1);
        assert_eq!(modes_in.len(), 1);

        let src = ModalSource::new(port_in.clone(), modes_in[0].clone(), Sign::Plus);
        let field = sim.solve_current(&src.current(&grid));

        let mon_in = ModalMonitor::new(
            &grid,
            &Port::new("ref", Axis::X, 18, 10, 40),
            &modes_in[0],
            Sign::Plus,
        );
        let mon_out = ModalMonitor::new(&grid, &port_out, &modes_out[0], Sign::Plus);
        let p_in = mon_in.power(&field.ez);
        let p_out = mon_out.power(&field.ez);
        assert!(p_in > 1e-6, "input power should be nonzero: {p_in}");
        let t = p_out / p_in;
        assert!(
            (t - 1.0).abs() < 0.02,
            "straight waveguide transmission = {t} (p_in={p_in}, p_out={p_out})"
        );
    }

    #[test]
    fn source_is_unidirectional() {
        let grid = test_grid();
        let eps = straight_wg(&grid, 4);
        let sim = Simulation::new(grid, omega(), eps.clone()).unwrap();
        let port_in = Port::new("in", Axis::X, 25, 10, 40);
        let modes = port_in.solve_modes(&grid, &eps, omega(), 1);
        let src = ModalSource::new(port_in, modes[0].clone(), Sign::Plus);
        let field = sim.solve_current(&src.current(&grid));
        // Backward power measured behind the source must be tiny.
        let mon_fwd = ModalMonitor::new(
            &grid,
            &Port::new("f", Axis::X, 40, 10, 40),
            &modes[0],
            Sign::Plus,
        );
        let mon_bwd = ModalMonitor::new(
            &grid,
            &Port::new("b", Axis::X, 15, 10, 40),
            &modes[0],
            Sign::Minus,
        );
        let pf = mon_fwd.power(&field.ez);
        let pb = mon_bwd.power(&field.ez);
        assert!(pf > 1e-6);
        assert!(pb / pf < 5e-3, "backward/forward = {}", pb / pf);
    }

    #[test]
    fn energy_conservation_flux_in_equals_flux_out() {
        let grid = test_grid();
        let eps = straight_wg(&grid, 4);
        let sim = Simulation::new(grid, omega(), eps.clone()).unwrap();
        let port_in = Port::new("in", Axis::X, 14, 10, 40);
        let modes = port_in.solve_modes(&grid, &eps, omega(), 1);
        let src = ModalSource::new(port_in, modes[0].clone(), Sign::Plus);
        let field = sim.solve_current(&src.current(&grid));
        let f1 = FluxMonitor::new("a", &grid, Axis::X, 20, 10, 40, Sign::Plus, omega());
        let f2 = FluxMonitor::new("b", &grid, Axis::X, 44, 10, 40, Sign::Plus, omega());
        let p1 = f1.power(&field.ez);
        let p2 = f2.power(&field.ez);
        assert!(p1 > 0.0);
        assert!(
            (p1 - p2).abs() / p1 < 0.02,
            "flux not conserved: {p1} vs {p2}"
        );
    }

    #[test]
    fn pml_absorbs_radiation() {
        // A line source in vacuum: total outgoing flux through a box must
        // be (nearly) independent of the box size — no reflections.
        let grid = SimGrid::new(60, 60, 0.05, 12);
        let eps = Array2::filled(60, 60, 1.0);
        let sim = Simulation::new(grid, omega(), eps).unwrap();
        let mut jz = vec![Complex64::ZERO; grid.n()];
        jz[grid.idx(30, 30)] = Complex64::ONE;
        let field = sim.solve_current(&jz);
        let box_flux = |half: usize| -> f64 {
            let (c, lo, hi) = (30usize, 30 - half, 30 + half);
            let _ = c;
            let right = FluxMonitor::new("r", &grid, Axis::X, hi, lo, hi, Sign::Plus, omega());
            let left = FluxMonitor::new("l", &grid, Axis::X, lo, lo, hi, Sign::Minus, omega());
            let top = FluxMonitor::new("t", &grid, Axis::Y, hi, lo, hi, Sign::Plus, omega());
            let bot = FluxMonitor::new("b", &grid, Axis::Y, lo, lo, hi, Sign::Minus, omega());
            right.power(&field.ez)
                + left.power(&field.ez)
                + top.power(&field.ez)
                + bot.power(&field.ez)
        };
        let p_small = box_flux(8);
        let p_large = box_flux(14);
        assert!(p_small > 0.0);
        assert!(
            (p_small - p_large).abs() / p_small < 0.05,
            "PML reflection detected: {p_small} vs {p_large}"
        );
    }

    #[test]
    fn adjoint_transpose_consistency() {
        let grid = SimGrid::new(40, 36, 0.05, 8);
        let eps = straight_wg(&grid, 3);
        let sim = Simulation::new(grid, omega(), eps).unwrap();
        let g: Vec<Complex64> = (0..grid.n())
            .map(|k| c64((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
            .collect();
        let a = sim.solve_adjoint(&g);
        let b = sim.solve_adjoint_transpose(&g);
        let num: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (*x - *y).norm_sqr())
            .sum::<f64>()
            .sqrt();
        let den: f64 = a.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt();
        assert!(
            num / den < 1e-9,
            "operator not symmetric: rel err {}",
            num / den
        );
    }

    #[test]
    fn workspace_reuse_matches_fresh_simulation_across_corners() {
        let grid = SimGrid::new(40, 36, 0.05, 8);
        let mut ws = SimWorkspace::new();
        let mut field_ws = Vec::new();
        for corner in 0..3 {
            let mut eps = straight_wg(&grid, 3);
            eps[(18, 20)] = 4.0 + corner as f64; // per-corner perturbation
            let sim = Simulation::new(grid, omega(), eps.clone()).unwrap();
            ws.factor(grid, omega(), &eps).unwrap();

            let port = Port::new("in", Axis::X, 12, 9, 27);
            let modes = port.solve_modes(&grid, &eps, omega(), 1);
            let src = ModalSource::new(port, modes[0].clone(), Sign::Plus);
            let jz = src.current(&grid);

            let fresh = sim.solve_current(&jz);
            ws.solve_current_into(&jz, &mut field_ws);
            for (p, q) in fresh.ez.iter().zip(&field_ws) {
                assert!((*p - *q).abs() < 1e-10, "corner {corner}");
            }

            // In-place adjoint ≡ copying adjoint.
            let g: Vec<Complex64> = (0..grid.n())
                .map(|k| c64((k as f64 * 0.011).sin(), (k as f64 * 0.017).cos()))
                .collect();
            let lam_copy = sim.solve_adjoint(&g);
            let mut lam_inplace = g.clone();
            ws.solve_adjoint_in_place(&mut lam_inplace);
            for (p, q) in lam_copy.iter().zip(&lam_inplace) {
                assert!((*p - *q).abs() < 1e-10, "corner {corner}");
            }

            // Gradient accumulation matches the allocating path.
            let dense = sim.grad_eps(&fresh, &lam_copy);
            let mut accum = Array2::zeros(grid.ny, grid.nx);
            ws.grad_eps_accumulate(&field_ws, &lam_inplace, &mut accum);
            for (p, q) in dense.as_slice().iter().zip(accum.as_slice()) {
                assert!((p - q).abs() < 1e-10 * (1.0 + p.abs()), "corner {corner}");
            }
        }
    }

    #[test]
    fn batched_solves_match_individual_solves() {
        let grid = SimGrid::new(36, 30, 0.05, 8);
        let eps = straight_wg(&grid, 3);
        let mut ws = SimWorkspace::new();
        ws.factor(grid, omega(), &eps).unwrap();

        let mut jz1 = vec![Complex64::ZERO; grid.n()];
        jz1[grid.idx(14, 15)] = Complex64::ONE;
        let mut jz2 = vec![Complex64::ZERO; grid.n()];
        jz2[grid.idx(20, 12)] = c64(0.0, 2.0);
        jz2[grid.idx(21, 12)] = c64(-1.0, 0.0);

        let mut f1 = Vec::new();
        let mut f2 = Vec::new();
        ws.solve_current_into(&jz1, &mut f1);
        ws.solve_current_into(&jz2, &mut f2);

        let mut block = Vec::new();
        ws.solve_currents_batched(&[&jz1, &jz2], &mut block);
        let n = grid.n();
        for (p, q) in f1.iter().zip(&block[..n]) {
            assert!((*p - *q).abs() < 1e-11);
        }
        for (p, q) in f2.iter().zip(&block[n..]) {
            assert!((*p - *q).abs() < 1e-11);
        }

        // Batched adjoint block ≡ per-column adjoints.
        let mut g_block: Vec<Complex64> = (0..2 * n)
            .map(|k| c64((k as f64 * 0.003).cos(), (k as f64 * 0.005).sin()))
            .collect();
        let mut col0 = g_block[..n].to_vec();
        let mut col1 = g_block[n..].to_vec();
        ws.solve_adjoints_batched_in_place(&mut g_block, 2);
        ws.solve_adjoint_in_place(&mut col0);
        ws.solve_adjoint_in_place(&mut col1);
        for (p, q) in col0.iter().chain(&col1).zip(&g_block) {
            assert!((*p - *q).abs() < 1e-11);
        }
    }

    /// Corner permittivities around a nominal waveguide: index 0 is the
    /// nominal map, the rest perturb it with temperature-style shifts and
    /// a litho-style blob.
    fn corner_family(grid: &SimGrid) -> Vec<Array2<f64>> {
        let nominal = straight_wg(grid, 3);
        let mut corners = vec![nominal.clone()];
        for k in 1..4 {
            let mut eps = nominal.clone();
            for v in eps.as_mut_slice().iter_mut() {
                if *v > 1.0 {
                    *v += 0.02 * k as f64; // dn/dT-style global core shift
                }
            }
            eps[(18, 20)] += 0.4 * k as f64; // local etch-style defect
            corners.push(eps);
        }
        corners
    }

    #[test]
    fn iterative_corner_solves_match_direct_within_tolerance() {
        let grid = SimGrid::new(40, 36, 0.05, 8);
        let corners = corner_family(&grid);
        let nominal = corners[0].clone();
        let tol = 1e-9;
        let strategy = SolverStrategy::PreconditionedIterative { tol, max_iters: 30 };
        let mut ws = SimWorkspace::new();
        let n = grid.n();
        let b: Vec<Complex64> = (0..2 * n)
            .map(|k| c64((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
            .collect();
        for (ci, eps) in corners.iter().enumerate() {
            let ctx = CornerContext {
                nominal_eps: &nominal,
                epoch: 1,
                is_nominal: ci == 0,
                force_direct: false,
            };
            ws.prepare_corner(grid, omega(), eps, strategy, Some(&ctx))
                .unwrap();
            let mut x_iter = b.clone();
            ws.solve_block(&mut x_iter, 2).unwrap();
            let report = ws.last_report().clone();
            assert!(!report.fell_back, "corner {ci} fell back: {report:?}");
            if ci > 0 {
                assert!(report.used_iterative);
                assert!(report.max_residual <= tol * 10.0, "{report:?}");
            }

            let mut ws_direct = SimWorkspace::new();
            ws_direct.factor(grid, omega(), eps).unwrap();
            let mut x_direct = b.clone();
            ws_direct.solve_block(&mut x_direct, 2).unwrap();
            let scale: f64 = x_direct.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
            let err: f64 = x_iter
                .iter()
                .zip(&x_direct)
                .map(|(p, q)| (*p - *q).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(
                err / scale < 1e-7,
                "corner {ci}: iterative vs direct rel err {}",
                err / scale
            );

            // Transpose path agrees with the direct transpose solve too.
            let mut xt_iter = b.clone();
            ws.prepare_corner(grid, omega(), eps, strategy, Some(&ctx))
                .unwrap();
            ws.solve_block_transpose(&mut xt_iter, 2).unwrap();
            let mut xt_direct = b.clone();
            ws_direct.solve_block_transpose(&mut xt_direct, 2).unwrap();
            let errt: f64 = xt_iter
                .iter()
                .zip(&xt_direct)
                .map(|(p, q)| (*p - *q).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(
                errt / scale < 1e-7,
                "corner {ci}: transpose rel err {}",
                errt / scale
            );
        }
    }

    #[test]
    fn forced_direct_corner_is_bit_identical_to_direct_strategy() {
        let grid = SimGrid::new(40, 36, 0.05, 8);
        let corners = corner_family(&grid);
        let nominal = corners[0].clone();
        let strategy = SolverStrategy::preconditioned_iterative();
        let n = grid.n();
        let b: Vec<Complex64> = (0..n)
            .map(|k| c64((k as f64 * 0.021).cos(), (k as f64 * 0.011).sin()))
            .collect();
        for eps in &corners[1..] {
            let mut ws = SimWorkspace::new();
            let ctx = CornerContext {
                nominal_eps: &nominal,
                epoch: 7,
                is_nominal: false,
                force_direct: true,
            };
            ws.prepare_corner(grid, omega(), eps, strategy, Some(&ctx))
                .unwrap();
            let report = ws.last_report();
            assert!(!report.used_iterative);
            assert_eq!(report.factorizations, 2, "nominal + forced direct");
            let mut x_forced = b.clone();
            ws.solve_block(&mut x_forced, 1).unwrap();

            let mut ws_direct = SimWorkspace::new();
            ws_direct
                .prepare_corner(grid, omega(), eps, SolverStrategy::Direct, None)
                .unwrap();
            let mut x_direct = b.clone();
            ws_direct.solve_block(&mut x_direct, 1).unwrap();
            assert_eq!(x_forced, x_direct, "forced fallback must be bit-identical");
        }
    }

    #[test]
    fn budget_miss_falls_back_to_direct_and_stays_accurate() {
        let grid = SimGrid::new(40, 36, 0.05, 8);
        let nominal = straight_wg(&grid, 3);
        // A violently perturbed corner: half the domain changes index, so
        // the nominal factor is a poor preconditioner.
        let mut hard = nominal.clone();
        for iy in 0..18 {
            for ix in 0..40 {
                hard[(iy, ix)] += 6.0;
            }
        }
        let strategy = SolverStrategy::PreconditionedIterative {
            tol: 1e-10,
            max_iters: 2,
        };
        let ctx = CornerContext {
            nominal_eps: &nominal,
            epoch: 3,
            is_nominal: false,
            force_direct: false,
        };
        let mut ws = SimWorkspace::new();
        ws.prepare_corner(grid, omega(), &hard, strategy, Some(&ctx))
            .unwrap();
        let n = grid.n();
        let b: Vec<Complex64> = (0..n).map(|k| c64((k as f64 * 0.01).sin(), 0.3)).collect();
        let mut x = b.clone();
        ws.solve_block(&mut x, 1).unwrap();
        let report = ws.last_report().clone();
        assert!(report.used_iterative);
        assert!(report.fell_back, "{report:?}");
        assert_eq!(report.factorizations, 2, "nominal + fallback");

        // The fallback result is bit-identical to the direct strategy.
        let mut ws_direct = SimWorkspace::new();
        ws_direct.factor(grid, omega(), &hard).unwrap();
        let mut x_direct = b.clone();
        ws_direct.solve_block(&mut x_direct, 1).unwrap();
        assert_eq!(x, x_direct);

        // After the fallback the corner is in direct mode: later solves
        // (e.g. the adjoint block) go through the fresh factors.
        let mut x2 = b.clone();
        ws.solve_block(&mut x2, 1).unwrap();
        assert_eq!(x2, x_direct);
        assert!(!ws.last_report().fell_back || ws.last_report().fell_back); // report persists per corner
    }

    /// The batched lockstep sweep performs exactly the per-column
    /// arithmetic of the per-corner path (columns are coupled only
    /// through sweep *packing*, never through values), so its results are
    /// bit-identical.
    #[test]
    fn batched_sweep_is_bit_identical_to_per_corner_iterative() {
        let grid = SimGrid::new(40, 36, 0.05, 8);
        let corners = corner_family(&grid);
        let nominal = corners[0].clone();
        let (tol, max_iters) = (1e-6, 24);
        let n = grid.n();
        let b: Vec<Complex64> = (0..n)
            .map(|k| c64((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
            .collect();

        // Batched: all non-nominal corners at once.
        let mut ws = SimWorkspace::new();
        ws.batch_begin(
            grid,
            omega(),
            &nominal,
            5,
            SolverStrategy::PreconditionedIterative { tol, max_iters },
        )
        .unwrap();
        for eps in &corners[1..] {
            ws.batch_push(eps);
        }
        let ncorner = corners.len() - 1;
        let mut rhs = vec![Complex64::ZERO; n * ncorner];
        for c in 0..ncorner {
            rhs[c * n..(c + 1) * n].copy_from_slice(&b);
        }
        let mut x = vec![Complex64::ZERO; n * ncorner];
        ws.batch_solve(&rhs, &mut x, 1, false);
        assert!(ws.batch_reports().iter().all(|r| r.converged));
        assert_eq!(ws.batch_reports().len(), ncorner);

        // Per-corner path, same tolerance.
        let strategy = SolverStrategy::PreconditionedIterative { tol, max_iters };
        for (c, eps) in corners[1..].iter().enumerate() {
            let mut ws1 = SimWorkspace::new();
            let ctx = CornerContext {
                nominal_eps: &nominal,
                epoch: 5,
                is_nominal: false,
                force_direct: false,
            };
            ws1.prepare_corner(grid, omega(), eps, strategy, Some(&ctx))
                .unwrap();
            let mut x1 = b.clone();
            ws1.solve_block(&mut x1, 1).unwrap();
            assert!(!ws1.last_report().fell_back);
            assert_eq!(
                &x[c * n..(c + 1) * n],
                x1.as_slice(),
                "corner {c} diverged from the per-corner path"
            );
        }
    }

    #[test]
    fn nominal_factor_is_reused_across_corners_and_epochs() {
        let grid = SimGrid::new(40, 36, 0.05, 8);
        let corners = corner_family(&grid);
        let nominal = corners[0].clone();
        let strategy = SolverStrategy::preconditioned_iterative();
        let mut ws = SimWorkspace::new();
        let mut total_factorizations = 0usize;
        let n = grid.n();
        let b: Vec<Complex64> = (0..n).map(|k| c64(0.1 * k as f64, -0.2)).collect();
        for epoch in 0..2u64 {
            for (ci, eps) in corners.iter().enumerate() {
                let ctx = CornerContext {
                    nominal_eps: &nominal,
                    epoch,
                    is_nominal: ci == 0,
                    force_direct: false,
                };
                ws.prepare_corner(grid, omega(), eps, strategy, Some(&ctx))
                    .unwrap();
                let mut x = b.clone();
                ws.solve_block(&mut x, 1).unwrap();
                assert!(!ws.last_report().fell_back, "corner {ci} fell back");
                total_factorizations += ws.last_report().factorizations;
            }
        }
        // One nominal factorisation per epoch, nothing else.
        assert_eq!(total_factorizations, 2);
    }

    /// Per-ω slots: alternating between wavelengths keeps each ω's
    /// nominal factor resident, so one epoch pays exactly one nominal
    /// factorisation per ω — and revisiting an ω reproduces the result a
    /// dedicated single-ω workspace computes, bit-for-bit.
    #[test]
    fn omega_slots_cache_nominal_factors_per_wavelength() {
        let grid = SimGrid::new(40, 36, 0.05, 8);
        let corners = corner_family(&grid);
        let nominal = corners[0].clone();
        let strategy = SolverStrategy::preconditioned_iterative();
        let omegas = [omega(), omega() * 1.02, omega() * 0.98];
        let n = grid.n();
        let b: Vec<Complex64> = (0..n)
            .map(|k| c64((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
            .collect();

        let mut ws = SimWorkspace::new();
        let mut total_factorizations = 0usize;
        let mut multi: Vec<Vec<Complex64>> = Vec::new();
        for epoch in 0..2u64 {
            // ω-interleaved sweep: (ω0 c0) (ω1 c0) (ω2 c0) (ω0 c1) …
            for (ci, eps) in corners.iter().enumerate() {
                for &om in &omegas {
                    let ctx = CornerContext {
                        nominal_eps: &nominal,
                        epoch,
                        is_nominal: ci == 0,
                        force_direct: false,
                    };
                    ws.prepare_corner(grid, om, eps, strategy, Some(&ctx))
                        .unwrap();
                    let mut x = b.clone();
                    ws.solve_block(&mut x, 1).unwrap();
                    assert!(!ws.last_report().fell_back, "corner {ci} ω {om}");
                    total_factorizations += ws.last_report().factorizations;
                    if epoch == 0 {
                        multi.push(x);
                    }
                }
            }
        }
        // One nominal factorisation per (ω, epoch) — the ω slots never
        // evict each other across the interleaved revisits.
        assert_eq!(total_factorizations, omegas.len() * 2);
        assert_eq!(ws.omega_slot_count(), omegas.len());

        // Each (corner, ω) solution is bit-identical to a fresh single-ω
        // workspace.
        for (ci, eps) in corners.iter().enumerate() {
            for (oi, &om) in omegas.iter().enumerate() {
                let mut ws1 = SimWorkspace::new();
                let ctx = CornerContext {
                    nominal_eps: &nominal,
                    epoch: 0,
                    is_nominal: ci == 0,
                    force_direct: false,
                };
                ws1.prepare_corner(grid, om, eps, strategy, Some(&ctx))
                    .unwrap();
                let mut x1 = b.clone();
                ws1.solve_block(&mut x1, 1).unwrap();
                assert_eq!(
                    multi[ci * omegas.len() + oi],
                    x1,
                    "corner {ci} ω index {oi}"
                );
            }
        }
    }

    #[test]
    fn omega_slot_cache_is_bounded_and_evicts_lru() {
        let grid = SimGrid::new(30, 26, 0.05, 6);
        let eps = straight_wg(&grid, 3);
        let mut ws = SimWorkspace::new();
        let om_of = |k: usize| omega() * (1.0 + 0.01 * k as f64);
        for k in 0..(MAX_OMEGA_SLOTS + 3) {
            ws.factor(grid, om_of(k), &eps).unwrap();
        }
        assert_eq!(ws.omega_slot_count(), MAX_OMEGA_SLOTS);

        // Interleaved-revisit order with K = MAX_OMEGA_SLOTS + 1: each new
        // ω must evict the **least recently used** slot, never the slot
        // that was just built. (A slot inserted with stamp 0 instead of
        // the current clock would immediately be the LRU minimum and the
        // cache would thrash: every insertion evicting the previous one.)
        let mut ws = SimWorkspace::new();
        for k in 0..MAX_OMEGA_SLOTS {
            ws.factor(grid, om_of(k), &eps).unwrap();
        }
        // ω_MAX is new: evicts ω0 (the LRU), then must itself be resident.
        ws.factor(grid, om_of(MAX_OMEGA_SLOTS), &eps).unwrap();
        assert!(ws.slots.iter().all(|s| s.omega != om_of(0)));
        assert!(ws.slots.iter().any(|s| s.omega == om_of(MAX_OMEGA_SLOTS)));
        // Revisiting ω0 (now cold) must evict ω1 — the true LRU — and NOT
        // the just-built ω_MAX slot.
        ws.factor(grid, om_of(0), &eps).unwrap();
        assert!(ws.slots.iter().all(|s| s.omega != om_of(1)));
        assert!(
            ws.slots.iter().any(|s| s.omega == om_of(MAX_OMEGA_SLOTS)),
            "freshly built slot was thrashed out by the next insertion"
        );
        // Continue the interleaved cycle one more step: ω1 evicts ω2.
        ws.factor(grid, om_of(1), &eps).unwrap();
        assert!(ws.slots.iter().all(|s| s.omega != om_of(2)));
        for survivor in [0, 1, MAX_OMEGA_SLOTS] {
            assert!(
                ws.slots.iter().any(|s| s.omega == om_of(survivor)),
                "ω{survivor} should be resident"
            );
        }

        // A grid change clears every slot.
        let grid2 = SimGrid::new(32, 26, 0.05, 6);
        let eps2 = Array2::filled(26, 32, 1.0);
        ws.factor(grid2, omega(), &eps2).unwrap();
        assert_eq!(ws.omega_slot_count(), 1);
    }

    /// The fused (corner × ω) batch performs, per column, exactly the
    /// per-ω batched sweep's arithmetic — its own ω's stencil apply, its
    /// own ω's nominal-factor preconditioner sweep — so fusing the K
    /// per-ω batches into one lockstep batch is bit-identical, forwards
    /// and (merged) second-phase solves alike.
    #[test]
    fn fused_cross_omega_batch_is_bit_identical_to_per_omega_batches() {
        let grid = SimGrid::new(40, 36, 0.05, 8);
        let corners = corner_family(&grid);
        let nominal = corners[0].clone();
        let omegas = [omega(), omega() * 1.02, omega() * 0.98];
        let (tol, max_iters) = (1e-6, 24);
        let n = grid.n();
        let b: Vec<Complex64> = (0..n)
            .map(|k| c64((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
            .collect();
        let ncorner = corners.len() - 1;

        // Fused: all (corner, ω) pairs, ω-major, one lockstep batch.
        let mut ws = SimWorkspace::new();
        ws.fused_batch_begin(
            grid,
            &omegas,
            &nominal,
            5,
            SolverStrategy::PreconditionedIterative { tol, max_iters },
        )
        .unwrap();
        for oi in 0..omegas.len() {
            for eps in &corners[1..] {
                ws.fused_batch_push(eps, oi);
            }
        }
        let total = ncorner * omegas.len();
        let mut rhs = vec![Complex64::ZERO; n * total];
        for c in 0..total {
            rhs[c * n..(c + 1) * n].copy_from_slice(&b);
        }
        let mut x = vec![Complex64::ZERO; n * total];
        ws.fused_batch_solve(&rhs, &mut x, 1, false, 1);
        assert_eq!(ws.batch_reports().len(), total);
        assert!(ws.batch_reports().iter().all(|r| r.converged));
        // Second phase on the same batch (the adjoint pattern).
        let mut x2 = vec![Complex64::ZERO; n * total];
        ws.fused_batch_solve(&rhs, &mut x2, 1, false, 1);

        // Per-ω reference: K separate batches.
        for (oi, &om) in omegas.iter().enumerate() {
            let mut ws1 = SimWorkspace::new();
            ws1.batch_begin(
                grid,
                om,
                &nominal,
                5,
                SolverStrategy::PreconditionedIterative { tol, max_iters },
            )
            .unwrap();
            for eps in &corners[1..] {
                ws1.batch_push(eps);
            }
            let mut rhs1 = vec![Complex64::ZERO; n * ncorner];
            for c in 0..ncorner {
                rhs1[c * n..(c + 1) * n].copy_from_slice(&b);
            }
            let mut x1 = vec![Complex64::ZERO; n * ncorner];
            ws1.batch_solve(&rhs1, &mut x1, 1, false);
            let fused = &x[oi * ncorner * n..(oi + 1) * ncorner * n];
            assert_eq!(fused, x1.as_slice(), "ω index {oi} diverged");
            let mut x1b = vec![Complex64::ZERO; n * ncorner];
            ws1.batch_solve(&rhs1, &mut x1b, 1, false);
            let fused2 = &x2[oi * ncorner * n..(oi + 1) * ncorner * n];
            assert_eq!(fused2, x1b.as_slice(), "ω index {oi} second phase");
            // Reports agree corner-for-corner (iterations, residuals).
            for c in 0..ncorner {
                let rf = &ws.batch_reports()[oi * ncorner + c];
                let rp = &ws1.batch_reports()[c];
                assert_eq!(rf.max_iterations, rp.max_iterations, "ω {oi} corner {c}");
                assert_eq!(rf.max_residual, rp.max_residual, "ω {oi} corner {c}");
                assert_eq!(rf.converged, rp.converged);
                assert_eq!(rf.solves, rp.solves);
            }
        }

        // K = 1 degenerates to the plain batched sweep bit-identically.
        let mut wsk1 = SimWorkspace::new();
        wsk1.fused_batch_begin(
            grid,
            &omegas[..1],
            &nominal,
            9,
            SolverStrategy::PreconditionedIterative { tol, max_iters },
        )
        .unwrap();
        for eps in &corners[1..] {
            wsk1.fused_batch_push(eps, 0);
        }
        let mut xk1 = vec![Complex64::ZERO; n * ncorner];
        wsk1.fused_batch_solve(&rhs[..n * ncorner], &mut xk1, 1, false, 1);
        let mut ws1 = SimWorkspace::new();
        ws1.batch_begin(
            grid,
            omegas[0],
            &nominal,
            9,
            SolverStrategy::PreconditionedIterative { tol, max_iters },
        )
        .unwrap();
        for eps in &corners[1..] {
            ws1.batch_push(eps);
        }
        let mut x1 = vec![Complex64::ZERO; n * ncorner];
        ws1.batch_solve(&rhs[..n * ncorner], &mut x1, 1, false);
        assert_eq!(xk1, x1);
    }

    /// Splitting the fused preconditioner sweeps across worker threads is
    /// an implementation detail: columns are solved independently, so any
    /// thread count produces bit-identical solutions and reports. The
    /// column count here exceeds [`FUSED_SPLIT_MIN_COLS`] so the split
    /// path really runs.
    #[test]
    fn fused_threaded_sweep_split_is_bit_identical_to_serial() {
        let grid = SimGrid::new(30, 26, 0.05, 6);
        let nominal = straight_wg(&grid, 3);
        let ncorner = 14; // × 2 ω × 2 cols = 56 columns ≥ FUSED_SPLIT_MIN_COLS
        let corners: Vec<Array2<f64>> = (1..=ncorner)
            .map(|k| nominal.map(|&e| if e > 1.0 { e + 0.012 * k as f64 } else { e }))
            .collect();
        let omegas = [omega(), omega() * 1.03];
        let n = grid.n();
        let cols_per_corner = 2;
        let total = ncorner * omegas.len() * cols_per_corner;
        assert!(total >= FUSED_SPLIT_MIN_COLS);
        let rhs: Vec<Complex64> = (0..n * total)
            .map(|k| c64((k as f64 * 0.011).sin(), (k as f64 * 0.017).cos()))
            .collect();
        let mut results = Vec::new();
        for threads in [1usize, 2, 4, 7] {
            let mut ws = SimWorkspace::new();
            ws.fused_batch_begin(
                grid,
                &omegas,
                &nominal,
                3,
                SolverStrategy::preconditioned_iterative(),
            )
            .unwrap();
            for oi in 0..omegas.len() {
                for eps in &corners {
                    ws.fused_batch_push(eps, oi);
                }
            }
            let mut x = vec![Complex64::ZERO; n * total];
            ws.fused_batch_solve(&rhs, &mut x, cols_per_corner, false, threads);
            results.push((threads, x, ws.batch_reports().to_vec()));
        }
        let (_, x_serial, reports_serial) = &results[0];
        assert!(reports_serial.iter().all(|r| r.converged));
        for (threads, x, reports) in &results[1..] {
            assert_eq!(x, x_serial, "threads={threads}");
            assert_eq!(reports, reports_serial, "threads={threads}");
        }
    }

    #[test]
    fn adjoint_gradient_matches_finite_difference() {
        // The definitive check: dF/dε from the adjoint method vs central
        // finite differences of the full solve, for a modal-power objective.
        let grid = SimGrid::new(36, 30, 0.05, 8);
        let mut eps = straight_wg(&grid, 3);
        // Slight perturbation so the problem is not perfectly uniform.
        eps[(15, 18)] = 6.0;
        let om = omega();
        let port_in = Port::new("in", Axis::X, 10, 8, 22);
        let port_out = Port::new("out", Axis::X, 26, 8, 22);
        let modes = port_in.solve_modes(&grid, &eps, om, 1);
        let src = ModalSource::new(port_in, modes[0].clone(), Sign::Plus);
        let jz = src.current(&grid);

        let objective = |eps_map: &Array2<f64>| -> f64 {
            let sim = Simulation::new(grid, om, eps_map.clone()).unwrap();
            let f = sim.solve_current(&jz);
            let mon = ModalMonitor::new(&grid, &port_out, &modes[0], Sign::Plus);
            mon.power(&f.ez)
        };

        // Adjoint gradient.
        let sim = Simulation::new(grid, om, eps.clone()).unwrap();
        let field = sim.solve_current(&jz);
        let mon = ModalMonitor::new(&grid, &port_out, &modes[0], Sign::Plus);
        let mut g = vec![Complex64::ZERO; grid.n()];
        mon.accumulate_power_grad(&field.ez, 1.0, &mut g);
        let lam = sim.solve_adjoint(&g);
        let grad = sim.grad_eps(&field, &lam);

        // Compare at several cells (inside the "design region").
        let h = 1e-5;
        for &(ix, iy) in &[(18usize, 15usize), (17, 14), (19, 16), (16, 15)] {
            let mut ep = eps.clone();
            ep[(iy, ix)] += h;
            let fp = objective(&ep);
            ep[(iy, ix)] -= 2.0 * h;
            let fm = objective(&ep);
            let fd = (fp - fm) / (2.0 * h);
            let ad = grad[(iy, ix)];
            assert!(
                (fd - ad).abs() < 1e-6 + 2e-3 * fd.abs().max(ad.abs()),
                "adjoint {ad} vs FD {fd} at ({ix},{iy})"
            );
        }
    }
}
