//! The forward/adjoint FDFD simulation driver.
//!
//! [`Simulation`] owns a grid, a permittivity map and a factored operator.
//! The expensive step is [`Simulation::new`] (banded LU factorisation);
//! each subsequent source solve or adjoint solve is a cheap triangular
//! substitution against the same factors — the core economy of the adjoint
//! method: *gradient = two solves, one factorisation*.
//!
//! The adjoint identity implemented by [`Simulation::grad_eps`]: with the
//! symmetrised operator `Ã(ε)·E = b̃`, a real objective `F(E)` with
//! Wirtinger gradient `g = ∂F/∂E` (convention `dF = 2Re(gᵀdE)`), and
//! `λ = Ã⁻¹g` (symmetric ⇒ transpose solve = plain solve),
//!
//! ```text
//! dF/dε_k = -2·Re(λ_k · ω² · sx_k·sy_k · E_k)
//! ```
//!
//! # Workspace / ownership contract
//!
//! [`Simulation`] allocates per construction (it owns its permittivity and
//! factor storage) — convenient for one-off solves and tests. Hot loops
//! that re-factor the *same grid* for many permittivities (the variation
//! corners of every optimisation iteration) should instead keep one
//! [`SimWorkspace`] per thread:
//!
//! * [`SimWorkspace::factor`] reuses the cached [`SFactors`] (recomputed
//!   only when `(grid, ω)` changes), reassembles into a retained
//!   [`boson_num::banded::BandedMatrix`] and refactors into a retained
//!   [`boson_num::banded::BandedLu`] — after the first corner, **zero heap
//!   allocations**;
//! * the batched solve methods write into caller-owned buffers and push
//!   all right-hand sides (every excitation's forward solve, then every
//!   adjoint) through a single [`boson_num::banded::BandedLu::solve_many`]
//!   sweep over the factors.
//!
//! Buffers passed to the workspace are resized on first use and retain
//! their capacity afterwards, so a steady-state iteration of the corner
//! loop touches the allocator not at all (verified by the
//! `tests/zero_alloc.rs` counting-allocator test).

use crate::grid::SimGrid;
use crate::operator::{assemble_banded, assemble_banded_into, scale_source, scale_source_into};
use crate::pml::SFactors;
use boson_num::banded::{BandedLu, BandedMatrix, SingularMatrixError};
use boson_num::{Array2, Complex64};

/// A solved `Ez` field on the simulation grid.
#[derive(Debug, Clone)]
pub struct Field {
    /// Flat field values (x-fastest ordering; see [`SimGrid::idx`]).
    pub ez: Vec<Complex64>,
    /// Grid the field lives on.
    pub grid: SimGrid,
}

impl Field {
    /// Views the field as a `(ny, nx)` array.
    pub fn to_array(&self) -> Array2<Complex64> {
        Array2::from_fn(self.grid.ny, self.grid.nx, |iy, ix| {
            self.ez[self.grid.idx(ix, iy)]
        })
    }

    /// Field magnitude squared as a `(ny, nx)` array (for visualisation).
    pub fn intensity(&self) -> Array2<f64> {
        Array2::from_fn(self.grid.ny, self.grid.nx, |iy, ix| {
            self.ez[self.grid.idx(ix, iy)].norm_sqr()
        })
    }
}

/// A factored FDFD problem: grid + permittivity + LU factors.
pub struct Simulation {
    grid: SimGrid,
    omega: f64,
    eps: Array2<f64>,
    sfactors: SFactors,
    lu: BandedLu,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Simulation({}x{}, ω={:.4}, npml={})",
            self.grid.nx, self.grid.ny, self.omega, self.grid.npml
        )
    }
}

impl Simulation {
    /// Assembles and factors the operator for `eps` at angular frequency
    /// `omega` (= 2π/λ with c = 1).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the operator is singular (which
    /// indicates an unphysical configuration, e.g. ω = 0).
    ///
    /// # Panics
    ///
    /// Panics if `eps` does not have shape `(ny, nx)`.
    pub fn new(grid: SimGrid, omega: f64, eps: Array2<f64>) -> Result<Self, SingularMatrixError> {
        assert_eq!(
            eps.shape(),
            (grid.ny, grid.nx),
            "eps shape must be (ny, nx)"
        );
        let sfactors = SFactors::new(&grid, omega);
        let a = assemble_banded(&grid, &sfactors, &eps, omega);
        let lu = a.factor()?;
        Ok(Self {
            grid,
            omega,
            eps,
            sfactors,
            lu,
        })
    }

    /// The simulation grid.
    pub fn grid(&self) -> &SimGrid {
        &self.grid
    }

    /// Angular frequency.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// The permittivity map used to assemble the operator.
    pub fn eps(&self) -> &Array2<f64> {
        &self.eps
    }

    /// PML stretch factors.
    pub fn sfactors(&self) -> &SFactors {
        &self.sfactors
    }

    /// Solves the forward problem for a raw current distribution `jz`.
    ///
    /// # Panics
    ///
    /// Panics if `jz.len()` does not match the grid.
    pub fn solve_current(&self, jz: &[Complex64]) -> Field {
        let mut b = scale_source(&self.grid, &self.sfactors, self.omega, jz);
        self.lu.solve(&mut b);
        Field {
            ez: b,
            grid: self.grid,
        }
    }

    /// Solves the adjoint problem `Ã λ = g` for a Wirtinger objective
    /// gradient `g = ∂F/∂E`.
    ///
    /// The operator is complex-symmetric so this is a plain solve; the
    /// transpose path exists for independent verification.
    ///
    /// Copies `g` into a fresh vector; hot paths should build the adjoint
    /// source in a reusable buffer and call
    /// [`Simulation::solve_adjoint_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if `g.len()` does not match the grid.
    pub fn solve_adjoint(&self, g: &[Complex64]) -> Vec<Complex64> {
        let mut lam = g.to_vec();
        self.solve_adjoint_in_place(&mut lam);
        lam
    }

    /// In-place adjoint solve: `g` (the Wirtinger gradient `∂F/∂E`) is
    /// overwritten with `λ = Ã⁻¹g`. No heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `g.len()` does not match the grid.
    pub fn solve_adjoint_in_place(&self, g: &mut [Complex64]) {
        assert_eq!(g.len(), self.grid.n(), "adjoint source length mismatch");
        self.lu.solve(g);
    }

    /// Adjoint solve through `Ãᵀ` — must agree with
    /// [`Simulation::solve_adjoint`] up to round-off because the operator
    /// is symmetric. Used in tests as an internal consistency check.
    pub fn solve_adjoint_transpose(&self, g: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(g.len(), self.grid.n(), "adjoint source length mismatch");
        let mut lam = g.to_vec();
        self.lu.solve_transpose(&mut lam);
        lam
    }

    /// Computes `dF/dε` for every grid cell from a forward field and the
    /// adjoint field `λ = Ã⁻¹(∂F/∂E)`.
    ///
    /// Returns a `(ny, nx)` array.
    ///
    /// # Panics
    ///
    /// Panics if the field/adjoint lengths do not match the grid.
    pub fn grad_eps(&self, field: &Field, lambda: &[Complex64]) -> Array2<f64> {
        let mut out = Array2::zeros(self.grid.ny, self.grid.nx);
        grad_eps_accumulate(
            &self.grid,
            &self.sfactors,
            self.omega,
            &field.ez,
            lambda,
            &mut out,
        );
        out
    }
}

/// Accumulates the adjoint permittivity gradient
/// `out[k] += -2·Re(λ_k·sx_k·sy_k·E_k)·ω²` into a caller-owned array.
///
/// Shared by [`Simulation::grad_eps`] and [`SimWorkspace`]; allocation-free.
///
/// # Panics
///
/// Panics if the field/adjoint/output shapes do not match the grid.
pub fn grad_eps_accumulate(
    grid: &SimGrid,
    sfactors: &SFactors,
    omega: f64,
    ez: &[Complex64],
    lambda: &[Complex64],
    out: &mut Array2<f64>,
) {
    assert_eq!(ez.len(), grid.n(), "field length mismatch");
    assert_eq!(lambda.len(), grid.n(), "adjoint length mismatch");
    assert_eq!(out.shape(), (grid.ny, grid.nx), "gradient shape mismatch");
    let k2 = omega * omega;
    for iy in 0..grid.ny {
        let row = iy * grid.nx;
        let lam_row = &lambda[row..row + grid.nx];
        let ez_row = &ez[row..row + grid.nx];
        let out_row = &mut out.as_mut_slice()[row..row + grid.nx];
        for (ix, (dst, (&l, &e))) in out_row
            .iter_mut()
            .zip(lam_row.iter().zip(ez_row))
            .enumerate()
        {
            let s = sfactors.sxy(ix, iy);
            *dst += -2.0 * (l * s * e).re * k2;
        }
    }
}

/// Reusable factor-and-solve workspace for repeated simulations on one
/// grid (see the module docs for the ownership contract).
///
/// Typical lifecycle, once per worker thread:
///
/// ```no_run
/// # use boson_fdfd::grid::SimGrid;
/// # use boson_fdfd::sim::SimWorkspace;
/// # use boson_num::{Array2, Complex64};
/// # let grid = SimGrid::new(40, 30, 0.05, 8);
/// # let omega = 2.0 * std::f64::consts::PI / 1.55;
/// # let eps_of_corner = |_c: usize| Array2::filled(30, 40, 1.0);
/// # let jz = vec![Complex64::ZERO; grid.n()];
/// let mut ws = SimWorkspace::new();
/// let mut field = Vec::new();
/// for corner in 0..8 {
///     let eps = eps_of_corner(corner);
///     ws.factor(grid, omega, &eps).unwrap();     // alloc-free after warm-up
///     ws.solve_current_into(&jz, &mut field);    // forward solve
///     ws.solve_adjoint_in_place(&mut field);     // adjoint reuses factors
/// }
/// ```
#[derive(Debug)]
pub struct SimWorkspace {
    grid: Option<SimGrid>,
    omega: f64,
    sfactors: Option<SFactors>,
    a: BandedMatrix,
    lu: BandedLu,
    factored: bool,
}

impl Default for SimWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SimWorkspace {
    /// An empty workspace; buffers are sized on first
    /// [`SimWorkspace::factor`].
    pub fn new() -> Self {
        Self {
            grid: None,
            omega: 0.0,
            sfactors: None,
            a: BandedMatrix::new(1, 0, 0),
            lu: BandedLu::placeholder(),
            factored: false,
        }
    }

    /// `true` once [`SimWorkspace::factor`] has succeeded.
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// The grid of the current factorisation.
    ///
    /// # Panics
    ///
    /// Panics if the workspace has never been factored.
    pub fn grid(&self) -> &SimGrid {
        self.grid.as_ref().expect("SimWorkspace::factor not called")
    }

    /// Angular frequency of the current factorisation.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// PML stretch factors of the current factorisation.
    ///
    /// # Panics
    ///
    /// Panics if the workspace has never been factored.
    pub fn sfactors(&self) -> &SFactors {
        self.sfactors
            .as_ref()
            .expect("SimWorkspace::factor not called")
    }

    /// Assembles and factors the operator for `eps`, reusing every buffer.
    ///
    /// The [`SFactors`] are recomputed only when `(grid, omega)` differs
    /// from the previous call; the band assembly and LU storage are reused
    /// whenever the grid size is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the operator is singular; the
    /// workspace is then unfactored until the next successful call.
    ///
    /// # Panics
    ///
    /// Panics if `eps` does not have shape `(ny, nx)`.
    pub fn factor(
        &mut self,
        grid: SimGrid,
        omega: f64,
        eps: &Array2<f64>,
    ) -> Result<(), SingularMatrixError> {
        assert_eq!(
            eps.shape(),
            (grid.ny, grid.nx),
            "eps shape must be (ny, nx)"
        );
        if self.grid != Some(grid) || self.omega != omega || self.sfactors.is_none() {
            self.sfactors = Some(SFactors::new(&grid, omega));
            self.grid = Some(grid);
            self.omega = omega;
        }
        let s = self.sfactors.as_ref().expect("sfactors cached above");
        assemble_banded_into(&grid, s, eps, omega, &mut self.a);
        self.factored = false;
        // The assembly is rebuilt from scratch every corner, so the band
        // image can be donated to the factorisation instead of copied.
        self.a.factor_swap_into(&mut self.lu)?;
        self.factored = true;
        Ok(())
    }

    /// The current factorisation.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is not factored.
    pub fn lu(&self) -> &BandedLu {
        assert!(self.factored, "SimWorkspace not factored");
        &self.lu
    }

    /// Solves the forward problem for one raw current distribution,
    /// writing the field into `out` (resized once, then reused).
    ///
    /// # Panics
    ///
    /// Panics if the workspace is not factored or `jz` has the wrong
    /// length.
    pub fn solve_current_into(&self, jz: &[Complex64], out: &mut Vec<Complex64>) {
        assert!(self.factored, "SimWorkspace not factored");
        let grid = self.grid();
        let n = grid.n();
        out.clear();
        out.resize(n, Complex64::ZERO);
        scale_source_into(grid, self.sfactors(), self.omega, jz, out);
        self.lu.solve(out);
    }

    /// Batched forward solve: scales every `jz` into one column-major
    /// right-hand-side block and pushes all of them through a single
    /// [`BandedLu::solve_many`] sweep. Column `c` of `out` (stride `n`)
    /// holds the field of `jzs[c]`.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is not factored or any source has the wrong
    /// length.
    pub fn solve_currents_batched(&self, jzs: &[&[Complex64]], out: &mut Vec<Complex64>) {
        assert!(self.factored, "SimWorkspace not factored");
        let grid = self.grid();
        let n = grid.n();
        out.clear();
        out.resize(n * jzs.len(), Complex64::ZERO);
        for (c, jz) in jzs.iter().enumerate() {
            scale_source_into(
                grid,
                self.sfactors(),
                self.omega,
                jz,
                &mut out[c * n..(c + 1) * n],
            );
        }
        self.lu.solve_many(out, jzs.len());
    }

    /// In-place adjoint solve (`g` becomes `λ`); the symmetrised operator
    /// makes this a plain solve against the shared factors.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is not factored or `g` has the wrong
    /// length.
    pub fn solve_adjoint_in_place(&self, g: &mut [Complex64]) {
        assert!(self.factored, "SimWorkspace not factored");
        assert_eq!(g.len(), self.grid().n(), "adjoint source length mismatch");
        self.lu.solve(g);
    }

    /// Batched in-place adjoint solve over `nrhs` column-major gradients.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is not factored or `g.len() != n·nrhs`.
    pub fn solve_adjoints_batched_in_place(&self, g: &mut [Complex64], nrhs: usize) {
        assert!(self.factored, "SimWorkspace not factored");
        assert_eq!(
            g.len(),
            self.grid().n() * nrhs,
            "adjoint block length mismatch"
        );
        self.lu.solve_many(g, nrhs);
    }

    /// Accumulates `dF/dε` from a forward field and its adjoint into a
    /// caller-owned `(ny, nx)` array (see [`grad_eps_accumulate`]).
    ///
    /// # Panics
    ///
    /// Panics if the workspace is not factored or shapes mismatch.
    pub fn grad_eps_accumulate(
        &self,
        ez: &[Complex64],
        lambda: &[Complex64],
        out: &mut Array2<f64>,
    ) {
        assert!(self.factored, "SimWorkspace not factored");
        grad_eps_accumulate(self.grid(), self.sfactors(), self.omega, ez, lambda, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Axis, Sign};
    use crate::monitor::{FluxMonitor, ModalMonitor};
    use crate::port::Port;
    use crate::source::ModalSource;
    use boson_num::c64;

    const LAMBDA: f64 = 1.55;

    fn omega() -> f64 {
        2.0 * std::f64::consts::PI / LAMBDA
    }

    /// Straight horizontal waveguide spanning the domain.
    fn straight_wg(grid: &SimGrid, half_width_cells: usize) -> Array2<f64> {
        let cy = grid.ny / 2;
        Array2::from_fn(grid.ny, grid.nx, |iy, _ix| {
            if iy >= cy - half_width_cells && iy < cy + half_width_cells {
                12.11
            } else {
                1.0
            }
        })
    }

    fn test_grid() -> SimGrid {
        // 3.0 × 2.5 µm at 50 nm, 10-cell PML.
        SimGrid::new(60, 50, 0.05, 10)
    }

    #[test]
    fn straight_waveguide_unity_transmission() {
        let grid = test_grid();
        let eps = straight_wg(&grid, 4); // 0.4 µm core
        let sim = Simulation::new(grid, omega(), eps.clone()).unwrap();

        let port_in = Port::new("in", Axis::X, 14, 10, 40);
        let port_out = Port::new("out", Axis::X, 45, 10, 40);
        let modes_in = port_in.solve_modes(&grid, &eps, omega(), 1);
        let modes_out = port_out.solve_modes(&grid, &eps, omega(), 1);
        assert_eq!(modes_in.len(), 1);

        let src = ModalSource::new(port_in.clone(), modes_in[0].clone(), Sign::Plus);
        let field = sim.solve_current(&src.current(&grid));

        let mon_in = ModalMonitor::new(
            &grid,
            &Port::new("ref", Axis::X, 18, 10, 40),
            &modes_in[0],
            Sign::Plus,
        );
        let mon_out = ModalMonitor::new(&grid, &port_out, &modes_out[0], Sign::Plus);
        let p_in = mon_in.power(&field.ez);
        let p_out = mon_out.power(&field.ez);
        assert!(p_in > 1e-6, "input power should be nonzero: {p_in}");
        let t = p_out / p_in;
        assert!(
            (t - 1.0).abs() < 0.02,
            "straight waveguide transmission = {t} (p_in={p_in}, p_out={p_out})"
        );
    }

    #[test]
    fn source_is_unidirectional() {
        let grid = test_grid();
        let eps = straight_wg(&grid, 4);
        let sim = Simulation::new(grid, omega(), eps.clone()).unwrap();
        let port_in = Port::new("in", Axis::X, 25, 10, 40);
        let modes = port_in.solve_modes(&grid, &eps, omega(), 1);
        let src = ModalSource::new(port_in, modes[0].clone(), Sign::Plus);
        let field = sim.solve_current(&src.current(&grid));
        // Backward power measured behind the source must be tiny.
        let mon_fwd = ModalMonitor::new(
            &grid,
            &Port::new("f", Axis::X, 40, 10, 40),
            &modes[0],
            Sign::Plus,
        );
        let mon_bwd = ModalMonitor::new(
            &grid,
            &Port::new("b", Axis::X, 15, 10, 40),
            &modes[0],
            Sign::Minus,
        );
        let pf = mon_fwd.power(&field.ez);
        let pb = mon_bwd.power(&field.ez);
        assert!(pf > 1e-6);
        assert!(pb / pf < 5e-3, "backward/forward = {}", pb / pf);
    }

    #[test]
    fn energy_conservation_flux_in_equals_flux_out() {
        let grid = test_grid();
        let eps = straight_wg(&grid, 4);
        let sim = Simulation::new(grid, omega(), eps.clone()).unwrap();
        let port_in = Port::new("in", Axis::X, 14, 10, 40);
        let modes = port_in.solve_modes(&grid, &eps, omega(), 1);
        let src = ModalSource::new(port_in, modes[0].clone(), Sign::Plus);
        let field = sim.solve_current(&src.current(&grid));
        let f1 = FluxMonitor::new("a", &grid, Axis::X, 20, 10, 40, Sign::Plus, omega());
        let f2 = FluxMonitor::new("b", &grid, Axis::X, 44, 10, 40, Sign::Plus, omega());
        let p1 = f1.power(&field.ez);
        let p2 = f2.power(&field.ez);
        assert!(p1 > 0.0);
        assert!(
            (p1 - p2).abs() / p1 < 0.02,
            "flux not conserved: {p1} vs {p2}"
        );
    }

    #[test]
    fn pml_absorbs_radiation() {
        // A line source in vacuum: total outgoing flux through a box must
        // be (nearly) independent of the box size — no reflections.
        let grid = SimGrid::new(60, 60, 0.05, 12);
        let eps = Array2::filled(60, 60, 1.0);
        let sim = Simulation::new(grid, omega(), eps).unwrap();
        let mut jz = vec![Complex64::ZERO; grid.n()];
        jz[grid.idx(30, 30)] = Complex64::ONE;
        let field = sim.solve_current(&jz);
        let box_flux = |half: usize| -> f64 {
            let (c, lo, hi) = (30usize, 30 - half, 30 + half);
            let _ = c;
            let right = FluxMonitor::new("r", &grid, Axis::X, hi, lo, hi, Sign::Plus, omega());
            let left = FluxMonitor::new("l", &grid, Axis::X, lo, lo, hi, Sign::Minus, omega());
            let top = FluxMonitor::new("t", &grid, Axis::Y, hi, lo, hi, Sign::Plus, omega());
            let bot = FluxMonitor::new("b", &grid, Axis::Y, lo, lo, hi, Sign::Minus, omega());
            right.power(&field.ez)
                + left.power(&field.ez)
                + top.power(&field.ez)
                + bot.power(&field.ez)
        };
        let p_small = box_flux(8);
        let p_large = box_flux(14);
        assert!(p_small > 0.0);
        assert!(
            (p_small - p_large).abs() / p_small < 0.05,
            "PML reflection detected: {p_small} vs {p_large}"
        );
    }

    #[test]
    fn adjoint_transpose_consistency() {
        let grid = SimGrid::new(40, 36, 0.05, 8);
        let eps = straight_wg(&grid, 3);
        let sim = Simulation::new(grid, omega(), eps).unwrap();
        let g: Vec<Complex64> = (0..grid.n())
            .map(|k| c64((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
            .collect();
        let a = sim.solve_adjoint(&g);
        let b = sim.solve_adjoint_transpose(&g);
        let num: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (*x - *y).norm_sqr())
            .sum::<f64>()
            .sqrt();
        let den: f64 = a.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt();
        assert!(
            num / den < 1e-9,
            "operator not symmetric: rel err {}",
            num / den
        );
    }

    #[test]
    fn workspace_reuse_matches_fresh_simulation_across_corners() {
        let grid = SimGrid::new(40, 36, 0.05, 8);
        let mut ws = SimWorkspace::new();
        let mut field_ws = Vec::new();
        for corner in 0..3 {
            let mut eps = straight_wg(&grid, 3);
            eps[(18, 20)] = 4.0 + corner as f64; // per-corner perturbation
            let sim = Simulation::new(grid, omega(), eps.clone()).unwrap();
            ws.factor(grid, omega(), &eps).unwrap();

            let port = Port::new("in", Axis::X, 12, 9, 27);
            let modes = port.solve_modes(&grid, &eps, omega(), 1);
            let src = ModalSource::new(port, modes[0].clone(), Sign::Plus);
            let jz = src.current(&grid);

            let fresh = sim.solve_current(&jz);
            ws.solve_current_into(&jz, &mut field_ws);
            for (p, q) in fresh.ez.iter().zip(&field_ws) {
                assert!((*p - *q).abs() < 1e-10, "corner {corner}");
            }

            // In-place adjoint ≡ copying adjoint.
            let g: Vec<Complex64> = (0..grid.n())
                .map(|k| c64((k as f64 * 0.011).sin(), (k as f64 * 0.017).cos()))
                .collect();
            let lam_copy = sim.solve_adjoint(&g);
            let mut lam_inplace = g.clone();
            ws.solve_adjoint_in_place(&mut lam_inplace);
            for (p, q) in lam_copy.iter().zip(&lam_inplace) {
                assert!((*p - *q).abs() < 1e-10, "corner {corner}");
            }

            // Gradient accumulation matches the allocating path.
            let dense = sim.grad_eps(&fresh, &lam_copy);
            let mut accum = Array2::zeros(grid.ny, grid.nx);
            ws.grad_eps_accumulate(&field_ws, &lam_inplace, &mut accum);
            for (p, q) in dense.as_slice().iter().zip(accum.as_slice()) {
                assert!((p - q).abs() < 1e-10 * (1.0 + p.abs()), "corner {corner}");
            }
        }
    }

    #[test]
    fn batched_solves_match_individual_solves() {
        let grid = SimGrid::new(36, 30, 0.05, 8);
        let eps = straight_wg(&grid, 3);
        let mut ws = SimWorkspace::new();
        ws.factor(grid, omega(), &eps).unwrap();

        let mut jz1 = vec![Complex64::ZERO; grid.n()];
        jz1[grid.idx(14, 15)] = Complex64::ONE;
        let mut jz2 = vec![Complex64::ZERO; grid.n()];
        jz2[grid.idx(20, 12)] = c64(0.0, 2.0);
        jz2[grid.idx(21, 12)] = c64(-1.0, 0.0);

        let mut f1 = Vec::new();
        let mut f2 = Vec::new();
        ws.solve_current_into(&jz1, &mut f1);
        ws.solve_current_into(&jz2, &mut f2);

        let mut block = Vec::new();
        ws.solve_currents_batched(&[&jz1, &jz2], &mut block);
        let n = grid.n();
        for (p, q) in f1.iter().zip(&block[..n]) {
            assert!((*p - *q).abs() < 1e-11);
        }
        for (p, q) in f2.iter().zip(&block[n..]) {
            assert!((*p - *q).abs() < 1e-11);
        }

        // Batched adjoint block ≡ per-column adjoints.
        let mut g_block: Vec<Complex64> = (0..2 * n)
            .map(|k| c64((k as f64 * 0.003).cos(), (k as f64 * 0.005).sin()))
            .collect();
        let mut col0 = g_block[..n].to_vec();
        let mut col1 = g_block[n..].to_vec();
        ws.solve_adjoints_batched_in_place(&mut g_block, 2);
        ws.solve_adjoint_in_place(&mut col0);
        ws.solve_adjoint_in_place(&mut col1);
        for (p, q) in col0.iter().chain(&col1).zip(&g_block) {
            assert!((*p - *q).abs() < 1e-11);
        }
    }

    #[test]
    fn adjoint_gradient_matches_finite_difference() {
        // The definitive check: dF/dε from the adjoint method vs central
        // finite differences of the full solve, for a modal-power objective.
        let grid = SimGrid::new(36, 30, 0.05, 8);
        let mut eps = straight_wg(&grid, 3);
        // Slight perturbation so the problem is not perfectly uniform.
        eps[(15, 18)] = 6.0;
        let om = omega();
        let port_in = Port::new("in", Axis::X, 10, 8, 22);
        let port_out = Port::new("out", Axis::X, 26, 8, 22);
        let modes = port_in.solve_modes(&grid, &eps, om, 1);
        let src = ModalSource::new(port_in, modes[0].clone(), Sign::Plus);
        let jz = src.current(&grid);

        let objective = |eps_map: &Array2<f64>| -> f64 {
            let sim = Simulation::new(grid, om, eps_map.clone()).unwrap();
            let f = sim.solve_current(&jz);
            let mon = ModalMonitor::new(&grid, &port_out, &modes[0], Sign::Plus);
            mon.power(&f.ez)
        };

        // Adjoint gradient.
        let sim = Simulation::new(grid, om, eps.clone()).unwrap();
        let field = sim.solve_current(&jz);
        let mon = ModalMonitor::new(&grid, &port_out, &modes[0], Sign::Plus);
        let mut g = vec![Complex64::ZERO; grid.n()];
        mon.accumulate_power_grad(&field.ez, 1.0, &mut g);
        let lam = sim.solve_adjoint(&g);
        let grad = sim.grad_eps(&field, &lam);

        // Compare at several cells (inside the "design region").
        let h = 1e-5;
        for &(ix, iy) in &[(18usize, 15usize), (17, 14), (19, 16), (16, 15)] {
            let mut ep = eps.clone();
            ep[(iy, ix)] += h;
            let fp = objective(&ep);
            ep[(iy, ix)] -= 2.0 * h;
            let fm = objective(&ep);
            let fd = (fp - fm) / (2.0 * h);
            let ad = grad[(iy, ix)];
            assert!(
                (fd - ad).abs() < 1e-6 + 2e-3 * fd.abs().max(ad.abs()),
                "adjoint {ad} vs FD {fd} at ({ix},{iy})"
            );
        }
    }
}
