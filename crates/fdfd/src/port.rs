//! Waveguide ports: where light enters and leaves a device.
//!
//! A [`Port`] is a transverse line segment on the grid (a constant-x or
//! constant-y plane restricted to a window of cells) together with the
//! waveguide cross-section it cuts. Ports know how to solve for their own
//! guided modes from the simulation permittivity.
//!
//! # Examples
//!
//! ```
//! use boson_fdfd::{grid::{Axis, SimGrid}, port::Port};
//! use boson_num::Array2;
//!
//! let grid = SimGrid::new(60, 60, 0.05, 10);
//! let mut eps = Array2::filled(60, 60, 1.0);
//! for iy in 26..34 {
//!     for ix in 0..60 {
//!         eps[(iy, ix)] = 12.11; // 0.4 µm waveguide along x
//!     }
//! }
//! let port = Port::new("in", Axis::X, 14, 12, 48);
//! let modes = port.solve_modes(&grid, &eps, 2.0 * std::f64::consts::PI / 1.55, 2);
//! assert!(!modes.is_empty());
//! assert!(modes[0].neff > 1.0); // guided fundamental
//! ```

use crate::grid::{Axis, SimGrid};
use crate::modes::{solve_modes, SlabMode};
use boson_num::Array2;
use serde::{Deserialize, Serialize};

/// A modal port on a constant-coordinate plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Human-readable name used in reports ("in", "out", "xtalk-top", …).
    pub name: String,
    /// Orientation of propagation through this port.
    pub axis: Axis,
    /// Plane index: `ix` for [`Axis::X`], `iy` for [`Axis::Y`].
    pub plane: usize,
    /// Transverse window start (inclusive), in cells.
    pub t_lo: usize,
    /// Transverse window end (exclusive).
    pub t_hi: usize,
}

impl Port {
    /// Creates a port.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn new(name: &str, axis: Axis, plane: usize, t_lo: usize, t_hi: usize) -> Self {
        assert!(t_hi > t_lo, "port window must be non-empty");
        Self {
            name: name.to_owned(),
            axis,
            plane,
            t_lo,
            t_hi,
        }
    }

    /// Number of transverse cells.
    pub fn width(&self) -> usize {
        self.t_hi - self.t_lo
    }

    /// Extracts the permittivity profile along the port's transverse
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if the port does not fit in `grid` / `eps`.
    pub fn eps_profile(&self, grid: &SimGrid, eps: &Array2<f64>) -> Vec<f64> {
        assert_eq!(eps.shape(), (grid.ny, grid.nx), "eps shape mismatch");
        match self.axis {
            Axis::X => {
                assert!(
                    self.plane < grid.nx && self.t_hi <= grid.ny,
                    "port out of bounds"
                );
                (self.t_lo..self.t_hi)
                    .map(|iy| eps[(iy, self.plane)])
                    .collect()
            }
            Axis::Y => {
                assert!(
                    self.plane < grid.ny && self.t_hi <= grid.nx,
                    "port out of bounds"
                );
                (self.t_lo..self.t_hi)
                    .map(|ix| eps[(self.plane, ix)])
                    .collect()
            }
        }
    }

    /// Solves for up to `count` guided modes of this port's cross-section.
    pub fn solve_modes(
        &self,
        grid: &SimGrid,
        eps: &Array2<f64>,
        omega: f64,
        count: usize,
    ) -> Vec<SlabMode> {
        let profile = self.eps_profile(grid, eps);
        solve_modes(&profile, grid.dx, omega, count)
    }

    /// Flat grid index of the `t`-th transverse cell at plane offset
    /// `shift` (signed cells along the propagation axis).
    ///
    /// # Panics
    ///
    /// Panics if the shifted plane leaves the grid.
    pub fn cell_at(&self, grid: &SimGrid, t: usize, shift: isize) -> usize {
        let plane = self.plane as isize + shift;
        assert!(plane >= 0, "port plane shift out of bounds");
        let plane = plane as usize;
        match self.axis {
            Axis::X => {
                assert!(plane < grid.nx, "port plane shift out of bounds");
                grid.idx(plane, t)
            }
            Axis::Y => {
                assert!(plane < grid.ny, "port plane shift out of bounds");
                grid.idx(t, plane)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wg_eps(grid: &SimGrid) -> Array2<f64> {
        let mut eps = Array2::filled(grid.ny, grid.nx, 1.0);
        for iy in 26..34 {
            for ix in 0..grid.nx {
                eps[(iy, ix)] = 12.11;
            }
        }
        eps
    }

    #[test]
    fn profile_extraction_x_axis() {
        let grid = SimGrid::new(60, 60, 0.05, 10);
        let eps = wg_eps(&grid);
        let port = Port::new("in", Axis::X, 14, 20, 40);
        let prof = port.eps_profile(&grid, &eps);
        assert_eq!(prof.len(), 20);
        assert_eq!(prof[0], 1.0);
        assert_eq!(prof[8], 12.11); // iy = 28 inside core
    }

    #[test]
    fn profile_extraction_y_axis() {
        let grid = SimGrid::new(60, 60, 0.05, 10);
        let mut eps = Array2::filled(60, 60, 1.0);
        for ix in 28..36 {
            for iy in 0..60 {
                eps[(iy, ix)] = 12.11;
            }
        }
        let port = Port::new("top", Axis::Y, 45, 20, 44);
        let prof = port.eps_profile(&grid, &eps);
        assert_eq!(prof.len(), 24);
        assert_eq!(prof[10], 12.11); // ix = 30 inside core
        assert_eq!(prof[0], 1.0);
    }

    #[test]
    fn cell_at_maps_correctly() {
        let grid = SimGrid::new(40, 30, 0.05, 8);
        let px = Port::new("px", Axis::X, 12, 5, 25);
        assert_eq!(px.cell_at(&grid, 7, 0), grid.idx(12, 7));
        assert_eq!(px.cell_at(&grid, 7, 1), grid.idx(13, 7));
        assert_eq!(px.cell_at(&grid, 7, -1), grid.idx(11, 7));
        let py = Port::new("py", Axis::Y, 9, 5, 25);
        assert_eq!(py.cell_at(&grid, 7, 0), grid.idx(7, 9));
        assert_eq!(py.cell_at(&grid, 7, 2), grid.idx(7, 11));
    }

    #[test]
    fn modes_from_port() {
        let grid = SimGrid::new(60, 60, 0.05, 10);
        let eps = wg_eps(&grid);
        let port = Port::new("in", Axis::X, 14, 12, 48);
        let modes = port.solve_modes(&grid, &eps, 2.0 * std::f64::consts::PI / 1.55, 3);
        assert!(!modes.is_empty());
        assert!(modes[0].neff > 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_panics() {
        let _ = Port::new("bad", Axis::X, 5, 10, 10);
    }
}
