//! Regression tests of the lagged-nominal-factor policy
//! ([`boson_fdfd::sim::FactorLag`]): a drift of the nominal operator
//! diagonal past `drift_tol` must force a refactor, and the refactored
//! epoch must be bit-identical to the eager (no-lag) pipeline — the lag
//! is a scheduling policy, never a physics change.

use boson_fdfd::grid::SimGrid;
use boson_fdfd::sim::{FactorLag, SimWorkspace, SolverStrategy};
use boson_num::{Array2, Complex64};

fn waveguide(grid: &SimGrid, core: f64) -> Array2<f64> {
    Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            core
        } else {
            1.0
        }
    })
}

/// One batched corner sweep at `epoch` against `nominal`; returns the
/// factorisation count reported by `batch_begin` and the solution block.
fn sweep(
    ws: &mut SimWorkspace,
    grid: SimGrid,
    omega: f64,
    nominal: &Array2<f64>,
    epoch: u64,
    rhs: &[Complex64],
) -> (usize, Vec<Complex64>) {
    let strategy = SolverStrategy::preconditioned_iterative();
    let factorizations = ws
        .batch_begin(grid, omega, nominal, epoch, strategy)
        .expect("nominal factorisation failed");
    for k in 1..4 {
        let eps = nominal.map(|&e| if e > 1.0 { e + 0.01 * k as f64 } else { e });
        ws.batch_push(&eps);
    }
    let n = grid.n();
    let mut x = vec![Complex64::ZERO; n * 3];
    ws.batch_solve(rhs, &mut x, 1, false);
    assert!(
        ws.batch_reports().iter().all(|r| r.converged),
        "sweep at epoch {epoch} did not converge"
    );
    (factorizations, x)
}

#[test]
fn diagonal_drift_past_tolerance_forces_a_refactor_bit_identical_to_eager() {
    let grid = SimGrid::new(48, 40, 0.05, 8);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let n = grid.n();
    let g: Vec<Complex64> = (0..n)
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
        .collect();
    let mut rhs = vec![Complex64::ZERO; n * 3];
    for c in 0..3 {
        rhs[c * n..(c + 1) * n].copy_from_slice(&g);
    }

    // Generous age budget: only the drift monitor decides below.
    let lag = FactorLag {
        max_lag: 100,
        drift_tol: 0.01,
    };
    let mut lagged = SimWorkspace::new();
    lagged.set_factor_lag(Some(lag));
    let mut eager = SimWorkspace::new();

    // Epoch 0: both factor the same fresh nominal — identical paths,
    // bitwise-identical solutions.
    let nominal0 = waveguide(&grid, 12.11);
    let (f_lag, x_lag) = sweep(&mut lagged, grid, omega, &nominal0, 0, &rhs);
    let (f_eag, x_eag) = sweep(&mut eager, grid, omega, &nominal0, 0, &rhs);
    assert_eq!((f_lag, f_eag), (1, 1));
    assert_eq!(x_lag, x_eag, "fresh-factor epoch must be bit-identical");

    // Epoch 1: a tiny nominal drift (well under drift_tol): the lagged
    // workspace keeps its epoch-0 factor (0 factorisations) while the
    // eager one rebuilds. Both converge to the same tolerance-accurate
    // solution of the *same* drifted physics.
    let nominal1 = waveguide(&grid, 12.11 + 0.01);
    let (f_lag, x_lag) = sweep(&mut lagged, grid, omega, &nominal1, 1, &rhs);
    let (f_eag, x_eag) = sweep(&mut eager, grid, omega, &nominal1, 1, &rhs);
    assert_eq!(
        (f_lag, f_eag),
        (0, 1),
        "sub-tolerance drift must keep the stale factor"
    );
    let scale: f64 = x_eag.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
    let err: f64 = x_lag
        .iter()
        .zip(&x_eag)
        .map(|(p, q)| (*p - *q).norm_sqr())
        .sum::<f64>()
        .sqrt();
    assert!(
        err <= 1e-4 * (1.0 + scale),
        "stale-factor epoch drifted from eager: {err}"
    );

    // Epoch 2: the nominal jumps far past drift_tol — the lagged
    // workspace MUST refactor (the drift trip), and having rebuilt from
    // the same diagonal as the eager pipeline, this epoch is again
    // bit-identical to it.
    let nominal2 = waveguide(&grid, 24.0);
    let (f_lag, x_lag) = sweep(&mut lagged, grid, omega, &nominal2, 2, &rhs);
    let (f_eag, x_eag) = sweep(&mut eager, grid, omega, &nominal2, 2, &rhs);
    assert_eq!(f_eag, 1);
    assert_eq!(f_lag, 1, "drift past drift_tol must force a refactor");
    assert_eq!(x_lag, x_eag, "refactored epoch must be bit-identical");

    // And the refreshed factor is kept again on the next quiet epoch.
    let (f_lag, _) = sweep(&mut lagged, grid, omega, &nominal2, 3, &rhs);
    assert_eq!(f_lag, 0, "quiet epoch after the trip must keep the factor");
}

#[test]
fn factor_age_past_max_lag_forces_a_refactor() {
    let grid = SimGrid::new(48, 40, 0.05, 8);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let n = grid.n();
    let g: Vec<Complex64> = (0..n)
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
        .collect();
    let mut rhs = vec![Complex64::ZERO; n * 3];
    for c in 0..3 {
        rhs[c * n..(c + 1) * n].copy_from_slice(&g);
    }
    let mut ws = SimWorkspace::new();
    ws.set_factor_lag(Some(FactorLag {
        max_lag: 2,
        drift_tol: 0.5,
    }));
    let nominal = waveguide(&grid, 12.11);
    // Epoch 0 factors; epochs 1 and 2 ride the kept factor (age 1, 2);
    // epoch 3 exceeds max_lag and must rebuild.
    let expected = [1usize, 0, 0, 1, 0];
    for (epoch, &want) in expected.iter().enumerate() {
        let (f, x) = sweep(&mut ws, grid, omega, &nominal, epoch as u64, &rhs);
        assert_eq!(f, want, "epoch {epoch}");
        assert!(x.iter().any(|v| v.abs() > 0.0));
    }
}
