//! Property tests of the multigrid-preconditioned corner path: for
//! random permittivity landscapes and grid shapes, the forced-multigrid
//! iterative strategy must reproduce the direct banded solve — forward
//! and transpose — to solver tolerance. (A budget miss falls back to a
//! bit-exact direct factorisation, so agreement is the invariant either
//! way; the deterministic test below additionally pins the iterative
//! path itself.)

use boson_fdfd::grid::SimGrid;
use boson_fdfd::sim::{CornerContext, SimWorkspace, SolverStrategy};
use boson_num::{Array2, Complex64};
use proptest::prelude::*;

/// Axis-aligned high-ε rectangle of a random permittivity landscape.
#[derive(Debug, Clone)]
struct Block {
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    eps: f64,
}

fn block() -> impl Strategy<Value = Block> {
    (
        0usize..40,
        0usize..32,
        4usize..16,
        3usize..10,
        2.0f64..12.11,
    )
        .prop_map(|(x0, y0, w, h, eps)| Block { x0, y0, w, h, eps })
}

fn eps_from_blocks(ny: usize, nx: usize, blocks: &[Block]) -> Array2<f64> {
    let mut eps = Array2::from_fn(ny, nx, |_, _| 1.0);
    for b in blocks {
        for y in b.y0..(b.y0 + b.h).min(ny) {
            for x in b.x0..(b.x0 + b.w).min(nx) {
                eps[(y, x)] = b.eps;
            }
        }
    }
    eps
}

fn rhs(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|k| Complex64::new((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
        .collect()
}

fn norm(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Solves one corner under `strategy` (forward and transpose) and
/// returns both solutions.
fn solve_pair(
    grid: SimGrid,
    omega: f64,
    nominal: &Array2<f64>,
    corner: &Array2<f64>,
    strategy: SolverStrategy,
) -> (Vec<Complex64>, Vec<Complex64>, bool) {
    let mut ws = SimWorkspace::new();
    let ctx = CornerContext {
        nominal_eps: nominal,
        epoch: 1,
        is_nominal: false,
        force_direct: false,
    };
    let ctx = match strategy {
        SolverStrategy::Direct => None,
        _ => Some(&ctx),
    };
    ws.prepare_corner(grid, omega, corner, strategy, ctx)
        .unwrap();
    let b = rhs(grid.n());
    let mut x = b.clone();
    ws.solve_block(&mut x, 1).unwrap();
    let mut xt = b;
    ws.solve_block_transpose(&mut xt, 1).unwrap();
    (x, xt, ws.last_report().fell_back)
}

proptest! {
    // Each case pays a direct banded factorisation; a dozen cases keep
    // the binary inside ordinary `cargo test` time.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn multigrid_strategy_agrees_with_direct_solve(
        shape in 0usize..3,
        blocks in proptest::collection::vec(block(), 1..4),
        bump in 0.005f64..0.08,
    ) {
        let (nx, ny) = [(40usize, 33usize), (48, 40), (33, 44)][shape];
        // 0.02 µm pitch keeps every random landscape wave-resolved (the
        // regime the multigrid strategy targets).
        let grid = SimGrid::new(nx, ny, 0.02, 6);
        let omega = 2.0 * std::f64::consts::PI / 1.55;
        let nominal = eps_from_blocks(ny, nx, &blocks);
        let corner = nominal.map(|&e| if e > 1.0 { e + bump } else { e });

        let (xd, xdt, _) =
            solve_pair(grid, omega, &nominal, &corner, SolverStrategy::Direct);
        let (xm, xmt, _) = solve_pair(
            grid,
            omega,
            &nominal,
            &corner,
            SolverStrategy::multigrid_iterative(),
        );

        // BiCGSTAB converges to 1e-6 relative residual; the solution
        // error is that times a modest condition factor. A budget miss
        // falls back to the direct factorisation and agrees bit-exactly.
        let tol = 1e-3;
        let fwd = norm(&xm.iter().zip(&xd).map(|(a, b)| *a - *b).collect::<Vec<_>>());
        prop_assert!(
            fwd <= tol * (1.0 + norm(&xd)),
            "forward mismatch {fwd:.3e} vs ‖x‖ = {:.3e}",
            norm(&xd)
        );
        let adj = norm(&xmt.iter().zip(&xdt).map(|(a, b)| *a - *b).collect::<Vec<_>>());
        prop_assert!(
            adj <= tol * (1.0 + norm(&xdt)),
            "transpose mismatch {adj:.3e} vs ‖x‖ = {:.3e}",
            norm(&xdt)
        );
    }
}

/// Deterministic companion: on a waveguide landscape the forced-multigrid
/// strategy must stay on the iterative path (no budget-miss fallback) and
/// still match the direct solve, forward and transpose.
#[test]
fn multigrid_path_converges_without_fallback_on_waveguide() {
    let grid = SimGrid::new(56, 44, 0.02, 6);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let nominal = Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    });
    let corner = nominal.map(|&e| if e > 1.0 { e + 0.04 } else { e });
    let (xd, xdt, _) = solve_pair(grid, omega, &nominal, &corner, SolverStrategy::Direct);
    let (xm, xmt, fell_back) = solve_pair(
        grid,
        omega,
        &nominal,
        &corner,
        SolverStrategy::multigrid_iterative(),
    );
    assert!(!fell_back, "multigrid corner missed its iteration budget");
    let tol = 1e-3;
    let fwd = norm(&xm.iter().zip(&xd).map(|(a, b)| *a - *b).collect::<Vec<_>>());
    assert!(fwd <= tol * (1.0 + norm(&xd)), "forward mismatch {fwd:.3e}");
    let adj = norm(
        &xmt.iter()
            .zip(&xdt)
            .map(|(a, b)| *a - *b)
            .collect::<Vec<_>>(),
    );
    assert!(
        adj <= tol * (1.0 + norm(&xdt)),
        "transpose mismatch {adj:.3e}"
    );
}
