//! Property test: the fused (corner × ω) lockstep batch is bit-identical
//! to the per-ω batched path.
//!
//! Columns of a lockstep BiCGSTAB batch are coupled only through sweep
//! *packing*, never through values, and every fused column runs exactly
//! the per-ω batch's arithmetic — its own ω's stencil apply, its own ω's
//! nominal-factor preconditioner sweep. This test drives that claim over
//! random corner families, wavelength counts, right-hand sides and
//! iteration budgets — including starved budgets where a hard corner
//! *misses* and is reported unconverged (the caller's direct-fallback
//! trigger), and a second solve on the same batch (the adjoint pattern,
//! which merges into the same per-corner reports).

use boson_fdfd::grid::SimGrid;
use boson_fdfd::sim::{SimWorkspace, SolverStrategy};
use boson_num::{Array2, Complex64};
use proptest::prelude::*;

const LAMBDA: f64 = 1.55;

fn omega_c() -> f64 {
    2.0 * std::f64::consts::PI / LAMBDA
}

/// Deterministic pseudo-random stream (same xorshift family as the
/// solver unit tests).
struct Stream(u64);

impl Stream {
    fn next_unit(&mut self) -> f64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        (self.0.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn waveguide(grid: &SimGrid) -> Array2<f64> {
    let cy = grid.ny / 2;
    Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(cy) < 3 {
            12.11
        } else {
            1.0
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn fused_cross_omega_batch_matches_per_omega_batches_bitwise(
        seed in 0u64..1_000_000,
        nomega in 1usize..4,
        ncorner in 2usize..5,
        cols_per_corner in 1usize..3,
        scale in 0.005f64..0.05,
        starve_sel in 0usize..2,
    ) {
        let starve = starve_sel == 1;
        let grid = SimGrid::new(26, 22, 0.05, 5);
        let n = grid.n();
        let nominal = waveguide(&grid);
        let mut stream = Stream(seed | 1);
        // Random temperature/litho-style corner family; when starving the
        // budget, the last corner is violently perturbed so it must miss.
        let mut corners: Vec<Array2<f64>> = (0..ncorner)
            .map(|_| {
                let bump = scale * (0.5 + stream.next_unit());
                nominal.map(|&e| if e > 1.0 { e + bump } else { e })
            })
            .collect();
        if starve {
            let hard = corners.last_mut().unwrap();
            for iy in 0..grid.ny / 2 {
                for ix in 0..grid.nx {
                    hard[(iy, ix)] += 5.0;
                }
            }
        }
        let omegas: Vec<f64> = [1.0, 1.02, 0.98][..nomega]
            .iter()
            .map(|s| omega_c() * s)
            .collect();
        let (tol, max_iters) = if starve { (1e-10, 3) } else { (1e-6, 24) };
        let total = ncorner * nomega;
        let rhs: Vec<Complex64> = (0..n * total * cols_per_corner)
            .map(|k| {
                Complex64::new((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos())
            })
            .collect();
        let bl = n * cols_per_corner;

        // Fused: every (corner, ω) pair in one lockstep batch, ω-major.
        let mut ws = SimWorkspace::new();
        ws.fused_batch_begin(grid, &omegas, &nominal, 1, SolverStrategy::PreconditionedIterative { tol, max_iters })
            .map_err(|e| TestCaseError::Fail(format!("{e:?}")))?;
        for oi in 0..nomega {
            for eps in &corners {
                ws.fused_batch_push(eps, oi);
            }
        }
        let mut x = vec![Complex64::ZERO; n * total * cols_per_corner];
        ws.fused_batch_solve(&rhs, &mut x, cols_per_corner, false, 1);
        let mut x2 = vec![Complex64::ZERO; n * total * cols_per_corner];
        ws.fused_batch_solve(&rhs, &mut x2, cols_per_corner, false, 1);
        prop_assert_eq!(ws.batch_reports().len(), total);

        // Per-ω reference: K separate batches, same corners and budgets.
        for (oi, &om) in omegas.iter().enumerate() {
            let mut ws1 = SimWorkspace::new();
            ws1.batch_begin(grid, om, &nominal, 1, SolverStrategy::PreconditionedIterative { tol, max_iters })
                .map_err(|e| TestCaseError::Fail(format!("{e:?}")))?;
            for eps in &corners {
                ws1.batch_push(eps);
            }
            let group = &rhs[oi * ncorner * bl..(oi + 1) * ncorner * bl];
            let mut x1 = vec![Complex64::ZERO; ncorner * bl];
            ws1.batch_solve(group, &mut x1, cols_per_corner, false);
            prop_assert!(
                x[oi * ncorner * bl..(oi + 1) * ncorner * bl] == *x1.as_slice(),
                "ω index {} forward phase diverged",
                oi
            );
            let mut x1b = vec![Complex64::ZERO; ncorner * bl];
            ws1.batch_solve(group, &mut x1b, cols_per_corner, false);
            prop_assert!(
                x2[oi * ncorner * bl..(oi + 1) * ncorner * bl] == *x1b.as_slice(),
                "ω index {} second phase diverged",
                oi
            );
            for c in 0..ncorner {
                let rf = &ws.batch_reports()[oi * ncorner + c];
                let rp = &ws1.batch_reports()[c];
                prop_assert!(rf == rp, "ω {} corner {} reports diverged", oi, c);
            }
        }
        // A starved budget must actually report the hard corner(s) as
        // budget misses — the signal the direct fallback keys on.
        if starve {
            prop_assert!(
                (0..nomega).all(|oi| !ws.batch_reports()[oi * ncorner + ncorner - 1].converged),
                "hard corner unexpectedly converged: {:?}",
                ws.batch_reports()
            );
        } else {
            prop_assert!(ws.batch_reports().iter().all(|r| r.converged));
        }
    }
}
