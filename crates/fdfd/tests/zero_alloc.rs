//! Verifies the zero-allocation contract of the workspace solve path: a
//! steady-state factor + forward solve + adjoint solve + gradient
//! accumulation touches the heap **not at all** after warm-up.
//!
//! This is its own integration-test binary so the counting global
//! allocator sees no traffic from unrelated tests.

use boson_fdfd::grid::SimGrid;
use boson_fdfd::sim::{CornerContext, SimWorkspace, SolverStrategy};
use boson_num::{Array2, Complex64};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to the `System` allocator — every method
// forwards its arguments unchanged, so `System`'s layout/aliasing
// guarantees carry over verbatim; the only addition is a Relaxed counter
// bump, which allocates nothing.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same contract as the trait method; the body is delegated to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract — caller obeys `GlobalAlloc::alloc`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as the trait method; the body is delegated to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract, as in `alloc`.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: same contract as the trait method; the body is delegated to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract — `ptr`/`layout` came from this
        // allocator, which is `System` underneath.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: same contract as the trait method; the body is delegated to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded contract — `ptr` was allocated by `System`
        // through the methods above with the same `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_solve_path_performs_no_heap_allocations() {
    let grid = SimGrid::new(48, 40, 0.05, 8);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let mut eps = Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    });
    let mut jz = vec![Complex64::ZERO; grid.n()];
    jz[grid.idx(14, 20)] = Complex64::ONE;
    let g: Vec<Complex64> = (0..grid.n())
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
        .collect();

    let mut ws = SimWorkspace::new();
    let mut field = Vec::new();
    let mut lambda = vec![Complex64::ZERO; grid.n()];
    let mut grad = Array2::zeros(grid.ny, grid.nx);

    // Warm-up: sizes every buffer (two rounds so Vec growth settles).
    for round in 0..2 {
        eps[(20, 24)] = 2.0 + round as f64;
        ws.factor(grid, omega, &eps).unwrap();
        ws.solve_current_into(&jz, &mut field);
        lambda.copy_from_slice(&g);
        ws.solve_adjoint_in_place(&mut lambda);
        ws.grad_eps_accumulate(&field, &lambda, &mut grad);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for round in 0..4 {
        // Per-corner permittivity change, mutated in place.
        eps[(20, 24)] = 3.0 + round as f64;
        ws.factor(grid, omega, &eps).unwrap();
        ws.solve_current_into(&jz, &mut field);
        lambda.copy_from_slice(&g);
        ws.solve_adjoint_in_place(&mut lambda);
        ws.grad_eps_accumulate(&field, &lambda, &mut grad);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state factor+solve path performed {} heap allocations",
        after - before
    );
    // Sanity: the loop really did solve systems.
    assert!(field.iter().any(|v| v.abs() > 0.0));
    assert!(grad.as_slice().iter().any(|v| v.abs() > 0.0));
}

#[test]
fn steady_state_iterative_corner_path_performs_no_heap_allocations() {
    let grid = SimGrid::new(48, 40, 0.05, 8);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let nominal = Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    });
    let mut eps = nominal.clone();
    let g: Vec<Complex64> = (0..grid.n())
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
        .collect();
    let strategy = SolverStrategy::preconditioned_iterative();

    let mut ws = SimWorkspace::new();
    let n = grid.n();
    let mut block = vec![Complex64::ZERO; n];
    let mut grad = Array2::zeros(grid.ny, grid.nx);

    let run_epoch = |ws: &mut SimWorkspace,
                     eps: &mut Array2<f64>,
                     grad: &mut Array2<f64>,
                     block: &mut Vec<Complex64>,
                     epoch: u64| {
        // Nominal corner + three perturbed corners per epoch, mirroring
        // one robust iteration's sweep.
        for corner in 0..4usize {
            for (dst, &nom) in eps.as_mut_slice().iter_mut().zip(nominal.as_slice()) {
                *dst = if nom > 1.0 {
                    nom + 0.01 * corner as f64
                } else {
                    nom
                };
            }
            let ctx = CornerContext {
                nominal_eps: &nominal,
                epoch,
                is_nominal: corner == 0,
                force_direct: false,
            };
            ws.prepare_corner(grid, omega, eps, strategy, Some(&ctx))
                .unwrap();
            block.copy_from_slice(&g);
            ws.solve_block(block, 1).unwrap();
            assert!(!ws.last_report().fell_back, "corner {corner} fell back");
            ws.grad_eps_accumulate(&g, block, grad);
        }
    };

    // Warm-up: two epochs so every buffer (factors, Krylov scratch, RHS
    // snapshot) reaches its steady-state size.
    for epoch in 0..2 {
        run_epoch(&mut ws, &mut eps, &mut grad, &mut block, epoch);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for epoch in 2..6 {
        run_epoch(&mut ws, &mut eps, &mut grad, &mut block, epoch);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state iterative corner path performed {} heap allocations",
        after - before
    );
    assert!(block.iter().any(|v| v.abs() > 0.0));
    assert!(grad.as_slice().iter().any(|v| v.abs() > 0.0));
}

#[test]
fn steady_state_multigrid_corner_sweep_performs_no_heap_allocations() {
    // The forced-multigrid corner path: the surrogate hierarchy, its
    // boundary-band strips and both scratches are sized during warm-up
    // (first epoch builds the hard-walled surrogate stencil once per ω
    // slot), after which per-epoch hierarchy rebuilds, band refactors and
    // V-cycle + Schwarz preconditioner applications all reuse storage.
    let grid = SimGrid::new(48, 40, 0.02, 6);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let nominal = Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    });
    let mut eps = nominal.clone();
    let g: Vec<Complex64> = (0..grid.n())
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
        .collect();
    let strategy = SolverStrategy::multigrid_iterative();

    let mut ws = SimWorkspace::new();
    let n = grid.n();
    let mut block = vec![Complex64::ZERO; n];
    let mut grad = Array2::zeros(grid.ny, grid.nx);

    let run_epoch = |ws: &mut SimWorkspace,
                     eps: &mut Array2<f64>,
                     grad: &mut Array2<f64>,
                     block: &mut Vec<Complex64>,
                     epoch: u64| {
        for corner in 0..4usize {
            for (dst, &nom) in eps.as_mut_slice().iter_mut().zip(nominal.as_slice()) {
                *dst = if nom > 1.0 {
                    nom + 0.01 * corner as f64
                } else {
                    nom
                };
            }
            let ctx = CornerContext {
                nominal_eps: &nominal,
                epoch,
                is_nominal: corner == 0,
                force_direct: false,
            };
            ws.prepare_corner(grid, omega, eps, strategy, Some(&ctx))
                .unwrap();
            block.copy_from_slice(&g);
            ws.solve_block(block, 1).unwrap();
            assert!(!ws.last_report().fell_back, "corner {corner} fell back");
            block.copy_from_slice(&g);
            ws.solve_block_transpose(block, 1).unwrap();
            assert!(
                !ws.last_report().fell_back,
                "corner {corner} adjoint fell back"
            );
            ws.grad_eps_accumulate(&g, block, grad);
        }
    };

    for epoch in 0..2 {
        run_epoch(&mut ws, &mut eps, &mut grad, &mut block, epoch);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for epoch in 2..6 {
        run_epoch(&mut ws, &mut eps, &mut grad, &mut block, epoch);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state multigrid corner sweep performed {} heap allocations",
        after - before
    );
    assert!(block.iter().any(|v| v.abs() > 0.0));
    assert!(grad.as_slice().iter().any(|v| v.abs() > 0.0));
}

#[test]
fn steady_state_spectral_batched_corner_sweep_performs_no_heap_allocations() {
    // The broadband (corner × ω) sweep: per epoch, each of K wavelengths
    // runs one batched lockstep sweep over the corner set against its own
    // per-ω nominal factor. After warm-up every ω's slot (stretch
    // factors, stencil couplings, nominal LU + f32 copy) is resident in
    // the workspace's ω cache, so the steady state touches the heap not
    // at all.
    let grid = SimGrid::new(48, 40, 0.05, 8);
    let lambda = 1.55;
    let omegas: Vec<f64> = (0..3)
        .map(|k| 2.0 * std::f64::consts::PI / (lambda - 0.02 + 0.02 * k as f64))
        .collect();
    let nominal = Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    });
    let corners: Vec<Array2<f64>> = (1..4)
        .map(|k| nominal.map(|&e| if e > 1.0 { e + 0.01 * k as f64 } else { e }))
        .collect();
    let n = grid.n();
    let g: Vec<Complex64> = (0..n)
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
        .collect();
    let mut rhs = vec![Complex64::ZERO; n * corners.len()];
    for c in 0..corners.len() {
        rhs[c * n..(c + 1) * n].copy_from_slice(&g);
    }
    let mut x = vec![Complex64::ZERO; n * corners.len()];

    let mut ws = SimWorkspace::new();
    let run_epoch = |ws: &mut SimWorkspace, x: &mut Vec<Complex64>, epoch: u64| {
        for &omega in &omegas {
            ws.batch_begin(
                grid,
                omega,
                &nominal,
                epoch,
                SolverStrategy::preconditioned_iterative(),
            )
            .unwrap();
            for eps in &corners {
                ws.batch_push(eps);
            }
            x.fill(Complex64::ZERO);
            ws.batch_solve(&rhs, x, 1, false);
            assert!(ws.batch_reports().iter().all(|r| r.converged));
        }
    };

    for epoch in 0..2 {
        run_epoch(&mut ws, &mut x, epoch);
    }
    assert_eq!(ws.omega_slot_count(), omegas.len());
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for epoch in 2..6 {
        run_epoch(&mut ws, &mut x, epoch);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state spectral (corner × ω) sweep performed {} heap allocations",
        after - before
    );
    assert!(x.iter().any(|v| v.abs() > 0.0));
}

#[test]
fn steady_state_fused_cross_omega_sweep_performs_no_heap_allocations() {
    // The fused (corner × ω) sweep: per epoch, ONE lockstep batch carries
    // every (corner, wavelength) column, each preconditioned by its own
    // ω's nominal factor. After warm-up all K slots and the fused batch
    // buffers are resident, so the steady state touches the heap not at
    // all. (The column count here stays below FUSED_SPLIT_MIN_COLS, so
    // this pins the *serial* sweep; the over-threshold pooled dispatch is
    // pinned by `steady_state_pooled_fused_sweep_performs_no_heap_allocations`.)
    use boson_fdfd::sim::FUSED_SPLIT_MIN_COLS;
    let grid = SimGrid::new(48, 40, 0.05, 8);
    let lambda = 1.55;
    let omegas: Vec<f64> = (0..3)
        .map(|k| 2.0 * std::f64::consts::PI / (lambda - 0.02 + 0.02 * k as f64))
        .collect();
    let nominal = Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    });
    let corners: Vec<Array2<f64>> = (1..4)
        .map(|k| nominal.map(|&e| if e > 1.0 { e + 0.01 * k as f64 } else { e }))
        .collect();
    let n = grid.n();
    let total = corners.len() * omegas.len();
    assert!(total < FUSED_SPLIT_MIN_COLS);
    let g: Vec<Complex64> = (0..n)
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
        .collect();
    let mut rhs = vec![Complex64::ZERO; n * total];
    for c in 0..total {
        rhs[c * n..(c + 1) * n].copy_from_slice(&g);
    }
    let mut x = vec![Complex64::ZERO; n * total];

    let mut ws = SimWorkspace::new();
    let run_epoch = |ws: &mut SimWorkspace, x: &mut Vec<Complex64>, epoch: u64| {
        ws.fused_batch_begin(
            grid,
            &omegas,
            &nominal,
            epoch,
            SolverStrategy::preconditioned_iterative(),
        )
        .unwrap();
        for oi in 0..omegas.len() {
            for eps in &corners {
                ws.fused_batch_push(eps, oi);
            }
        }
        x.fill(Complex64::ZERO);
        // Forward phase + a second (adjoint-pattern) phase per epoch.
        ws.fused_batch_solve(&rhs, x, 1, false, 1);
        ws.fused_batch_solve(&rhs, x, 1, false, 1);
        assert!(ws.batch_reports().iter().all(|r| r.converged));
    };

    for epoch in 0..2 {
        run_epoch(&mut ws, &mut x, epoch);
    }
    assert_eq!(ws.omega_slot_count(), omegas.len());
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for epoch in 2..6 {
        run_epoch(&mut ws, &mut x, epoch);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state fused (corner × ω) sweep performed {} heap allocations",
        after - before
    );
    assert!(x.iter().any(|v| v.abs() > 0.0));
}

#[test]
fn steady_state_pooled_fused_sweep_performs_no_heap_allocations() {
    // The pooled dispatch path: enough packed columns that the fused
    // sweep splits its preconditioner half-sweeps (and, above
    // `PAR_MIN_ELEMS`, its per-column Krylov stages) across lanes of the
    // process-wide `boson_num::pool`. The substrate's steady-state
    // dispatch is allocation-free — handing a job to the resident workers
    // is a mutex hand-off plus a condvar wake, and per-lane scratch is
    // sized during warm-up — so the counting allocator (which sees every
    // thread, workers included) must read zero. The global pool itself is
    // built on the first dispatch, inside warm-up.
    use boson_fdfd::sim::FUSED_SPLIT_MIN_COLS;
    let grid = SimGrid::new(48, 40, 0.05, 8);
    let lambda = 1.55;
    let omegas: Vec<f64> = (0..3)
        .map(|k| 2.0 * std::f64::consts::PI / (lambda - 0.02 + 0.02 * k as f64))
        .collect();
    let nominal = Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    });
    let corners: Vec<Array2<f64>> = (1..7)
        .map(|k| nominal.map(|&e| if e > 1.0 { e + 0.01 * k as f64 } else { e }))
        .collect();
    let n = grid.n();
    let total = corners.len() * omegas.len();
    // Over the split threshold: the multi-lane dispatch genuinely runs.
    assert!(total >= FUSED_SPLIT_MIN_COLS);
    let threads = 4;
    let g: Vec<Complex64> = (0..n)
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
        .collect();
    let mut rhs = vec![Complex64::ZERO; n * total];
    for c in 0..total {
        rhs[c * n..(c + 1) * n].copy_from_slice(&g);
    }
    let mut x = vec![Complex64::ZERO; n * total];

    let mut ws = SimWorkspace::new();
    let run_epoch = |ws: &mut SimWorkspace, x: &mut Vec<Complex64>, epoch: u64| {
        ws.fused_batch_begin(
            grid,
            &omegas,
            &nominal,
            epoch,
            SolverStrategy::preconditioned_iterative(),
        )
        .unwrap();
        for oi in 0..omegas.len() {
            for eps in &corners {
                ws.fused_batch_push(eps, oi);
            }
        }
        x.fill(Complex64::ZERO);
        ws.fused_batch_solve(&rhs, x, 1, false, threads);
        assert!(ws.batch_reports().iter().all(|r| r.converged));
    };

    for epoch in 0..2 {
        run_epoch(&mut ws, &mut x, epoch);
    }
    assert_eq!(ws.omega_slot_count(), omegas.len());
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for epoch in 2..6 {
        run_epoch(&mut ws, &mut x, epoch);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state pooled fused sweep performed {} heap allocations",
        after - before
    );
    assert!(x.iter().any(|v| v.abs() > 0.0));
}

#[test]
fn steady_state_recycled_lagged_sweep_performs_no_heap_allocations() {
    // The temporal-axis steady state: the fused (corner × ω) sweep with
    // BOTH cross-iteration Krylov recycling (per-column deflation stores,
    // forward and adjoint orientation) and the lagged nominal-factor
    // policy enabled. After warm-up the deflation stores are dimensioned,
    // the x₀ snapshot buffer is grown, and the kept factors make every
    // epoch's nominal refresh O(n) drift math — none of which may touch
    // the heap.
    use boson_fdfd::sim::{FactorLag, FusedRecycle, FUSED_SPLIT_MIN_COLS};
    use boson_num::krylov::RecycleSpace;
    let grid = SimGrid::new(48, 40, 0.05, 8);
    let lambda = 1.55;
    let omegas: Vec<f64> = (0..3)
        .map(|k| 2.0 * std::f64::consts::PI / (lambda - 0.02 + 0.02 * k as f64))
        .collect();
    let nominal = Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    });
    let mut corners: Vec<Array2<f64>> = (1..4)
        .map(|k| nominal.map(|&e| if e > 1.0 { e + 0.01 * k as f64 } else { e }))
        .collect();
    let n = grid.n();
    let total = corners.len() * omegas.len();
    assert!(total < FUSED_SPLIT_MIN_COLS);
    let g: Vec<Complex64> = (0..n)
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
        .collect();
    let mut rhs = vec![Complex64::ZERO; n * total];
    for c in 0..total {
        rhs[c * n..(c + 1) * n].copy_from_slice(&g);
    }
    let mut x = vec![Complex64::ZERO; n * total];
    let keys: Vec<usize> = (0..total).collect();
    let make_spaces = || -> Vec<RecycleSpace> {
        (0..total)
            .map(|_| {
                let mut s = RecycleSpace::new(4);
                s.set_max_age(4);
                s
            })
            .collect()
    };
    let mut fwd = make_spaces();
    let mut adj = make_spaces();

    let mut ws = SimWorkspace::new();
    ws.set_factor_lag(Some(FactorLag {
        max_lag: 16,
        drift_tol: 0.5,
    }));
    let run_epoch = |ws: &mut SimWorkspace,
                     corners: &mut [Array2<f64>],
                     x: &mut Vec<Complex64>,
                     fwd: &mut Vec<RecycleSpace>,
                     adj: &mut Vec<RecycleSpace>,
                     epoch: u64| {
        // Per-epoch ε drift in place: the corners move a little every
        // epoch, so the harvested corrections are nonzero and the
        // projection has real work to do.
        for eps in corners.iter_mut() {
            for v in eps.as_mut_slice() {
                if *v > 1.0 {
                    *v += 0.001;
                }
            }
        }
        ws.fused_batch_begin(
            grid,
            &omegas,
            &nominal,
            epoch,
            SolverStrategy::preconditioned_iterative(),
        )
        .unwrap();
        for oi in 0..omegas.len() {
            for eps in corners.iter() {
                ws.fused_batch_push(eps, oi);
            }
        }
        // Forward phase, then the adjoint-pattern phase, each against its
        // own orientation's deflation stores.
        x.fill(Complex64::ZERO);
        ws.fused_batch_solve_recycled(
            &rhs,
            x,
            1,
            false,
            1,
            FusedRecycle {
                spaces: fwd,
                keys: &keys,
                transpose: false,
                epoch,
            },
        );
        x.fill(Complex64::ZERO);
        ws.fused_batch_solve_recycled(
            &rhs,
            x,
            1,
            false,
            1,
            FusedRecycle {
                spaces: adj,
                keys: &keys,
                transpose: true,
                epoch,
            },
        );
        assert!(ws.batch_reports().iter().all(|r| r.converged));
    };

    for epoch in 0..2 {
        run_epoch(&mut ws, &mut corners, &mut x, &mut fwd, &mut adj, epoch);
    }
    assert_eq!(ws.omega_slot_count(), omegas.len());
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for epoch in 2..6 {
        run_epoch(&mut ws, &mut corners, &mut x, &mut fwd, &mut adj, epoch);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state recycled + lagged sweep performed {} heap allocations",
        after - before
    );
    assert!(x.iter().any(|v| v.abs() > 0.0));
    // Sanity: recycling really engaged (directions were harvested).
    assert!(fwd.iter().any(|s| !s.is_empty()));
    assert!(adj.iter().any(|s| !s.is_empty()));
}

#[test]
fn steady_state_batched_corner_sweep_performs_no_heap_allocations() {
    let grid = SimGrid::new(48, 40, 0.05, 8);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let nominal = Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    });
    let corners: Vec<Array2<f64>> = (1..4)
        .map(|k| nominal.map(|&e| if e > 1.0 { e + 0.01 * k as f64 } else { e }))
        .collect();
    let n = grid.n();
    let g: Vec<Complex64> = (0..n)
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
        .collect();
    let mut rhs = vec![Complex64::ZERO; n * corners.len()];
    for c in 0..corners.len() {
        rhs[c * n..(c + 1) * n].copy_from_slice(&g);
    }
    let mut x = vec![Complex64::ZERO; n * corners.len()];

    let mut ws = SimWorkspace::new();
    let run_epoch = |ws: &mut SimWorkspace, x: &mut Vec<Complex64>, epoch: u64| {
        ws.batch_begin(
            grid,
            omega,
            &nominal,
            epoch,
            SolverStrategy::preconditioned_iterative(),
        )
        .unwrap();
        for eps in &corners {
            ws.batch_push(eps);
        }
        x.fill(Complex64::ZERO);
        ws.batch_solve(&rhs, x, 1, false);
        assert!(ws.batch_reports().iter().all(|r| r.converged));
    };

    for epoch in 0..2 {
        run_epoch(&mut ws, &mut x, epoch);
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for epoch in 2..6 {
        run_epoch(&mut ws, &mut x, epoch);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state batched corner sweep performed {} heap allocations",
        after - before
    );
    assert!(x.iter().any(|v| v.abs() > 0.0));
}
