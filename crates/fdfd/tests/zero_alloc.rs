//! Verifies the zero-allocation contract of the workspace solve path: a
//! steady-state factor + forward solve + adjoint solve + gradient
//! accumulation touches the heap **not at all** after warm-up.
//!
//! This is its own integration-test binary so the counting global
//! allocator sees no traffic from unrelated tests.

use boson_fdfd::grid::SimGrid;
use boson_fdfd::sim::SimWorkspace;
use boson_num::{Array2, Complex64};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_solve_path_performs_no_heap_allocations() {
    let grid = SimGrid::new(48, 40, 0.05, 8);
    let omega = 2.0 * std::f64::consts::PI / 1.55;
    let mut eps = Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(grid.ny / 2) < 4 {
            12.11
        } else {
            1.0
        }
    });
    let mut jz = vec![Complex64::ZERO; grid.n()];
    jz[grid.idx(14, 20)] = Complex64::ONE;
    let g: Vec<Complex64> = (0..grid.n())
        .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
        .collect();

    let mut ws = SimWorkspace::new();
    let mut field = Vec::new();
    let mut lambda = vec![Complex64::ZERO; grid.n()];
    let mut grad = Array2::zeros(grid.ny, grid.nx);

    // Warm-up: sizes every buffer (two rounds so Vec growth settles).
    for round in 0..2 {
        eps[(20, 24)] = 2.0 + round as f64;
        ws.factor(grid, omega, &eps).unwrap();
        ws.solve_current_into(&jz, &mut field);
        lambda.copy_from_slice(&g);
        ws.solve_adjoint_in_place(&mut lambda);
        ws.grad_eps_accumulate(&field, &lambda, &mut grad);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for round in 0..4 {
        // Per-corner permittivity change, mutated in place.
        eps[(20, 24)] = 3.0 + round as f64;
        ws.factor(grid, omega, &eps).unwrap();
        ws.solve_current_into(&jz, &mut field);
        lambda.copy_from_slice(&g);
        ws.solve_adjoint_in_place(&mut lambda);
        ws.grad_eps_accumulate(&field, &lambda, &mut grad);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state factor+solve path performed {} heap allocations",
        after - before
    );
    // Sanity: the loop really did solve systems.
    assert!(field.iter().any(|v| v.abs() > 0.0));
    assert!(grad.as_slice().iter().any(|v| v.abs() > 0.0));
}
