//! Worker-count bit-identity of the pooled fused sweep.
//!
//! The fused (corner × ω) lockstep batch dispatches its preconditioner
//! half-sweeps, multigrid column chunks and per-column Krylov stages on
//! the process-wide `boson_num::pool`. The substrate's contract is that
//! the worker count **never changes results**: parts are contiguous
//! column chunks whose content depends only on the batch shape, never on
//! which lane executes them. These regression tests pin that contract
//! through the public solve paths at 1 ↔ 2 ↔ 8 workers — the banded
//! fused sweep, the multigrid-preconditioned fused sweep, and the
//! recycled + lagged cross-epoch path.

use boson_fdfd::grid::SimGrid;
use boson_fdfd::sim::{
    FactorLag, FusedRecycle, SimWorkspace, SolverStrategy, FUSED_SPLIT_MIN_COLS,
};
use boson_num::krylov::RecycleSpace;
use boson_num::{Array2, Complex64};

const LAMBDA: f64 = 1.55;

fn omega_c() -> f64 {
    2.0 * std::f64::consts::PI / LAMBDA
}

fn waveguide(grid: &SimGrid) -> Array2<f64> {
    let cy = grid.ny / 2;
    Array2::from_fn(grid.ny, grid.nx, |iy, _| {
        if iy.abs_diff(cy) < 3 {
            12.11
        } else {
            1.0
        }
    })
}

fn corner_family(nominal: &Array2<f64>, ncorner: usize) -> Vec<Array2<f64>> {
    (0..ncorner)
        .map(|k| {
            let bump = 0.01 + 0.007 * k as f64;
            nominal.map(|&e| if e > 1.0 { e + bump } else { e })
        })
        .collect()
}

fn rhs_block(n: usize, cols: usize) -> Vec<Complex64> {
    (0..n * cols)
        .map(|k| Complex64::new((k as f64 * 0.013).sin(), (k as f64 * 0.007).cos()))
        .collect()
}

/// One complete fused sweep (fresh workspace) at the given worker count;
/// returns the solution block and the per-corner reports.
fn fused_sweep(
    grid: SimGrid,
    omegas: &[f64],
    nominal: &Array2<f64>,
    corners: &[Array2<f64>],
    strategy: SolverStrategy,
    threads: usize,
) -> (Vec<Complex64>, Vec<boson_fdfd::sim::CornerSolveReport>) {
    let n = grid.n();
    let total = corners.len() * omegas.len();
    let rhs = rhs_block(n, total);
    let mut ws = SimWorkspace::new();
    ws.fused_batch_begin(grid, omegas, nominal, 1, strategy)
        .expect("nominal factorisation failed");
    for oi in 0..omegas.len() {
        for eps in corners {
            ws.fused_batch_push(eps, oi);
        }
    }
    let mut x = vec![Complex64::ZERO; n * total];
    ws.fused_batch_solve(&rhs, &mut x, 1, false, threads);
    (x, ws.batch_reports().to_vec())
}

#[test]
fn banded_fused_sweep_bit_identical_across_1_2_8_workers() {
    let grid = SimGrid::new(26, 22, 0.05, 5);
    let nominal = waveguide(&grid);
    // 6 corners × 3 ω = 18 packed columns ≥ FUSED_SPLIT_MIN_COLS, so the
    // multi-worker runs genuinely split their preconditioner sweeps.
    let corners = corner_family(&nominal, 6);
    let omegas: Vec<f64> = [1.0, 1.02, 0.98].iter().map(|s| omega_c() * s).collect();
    assert!(corners.len() * omegas.len() >= FUSED_SPLIT_MIN_COLS);
    let strategy = SolverStrategy::PreconditionedIterative {
        tol: 1e-6,
        max_iters: 24,
    };

    let (x1, r1) = fused_sweep(grid, &omegas, &nominal, &corners, strategy, 1);
    assert!(r1.iter().all(|r| r.converged), "reference sweep missed");
    for threads in [2usize, 8] {
        let (xt, rt) = fused_sweep(grid, &omegas, &nominal, &corners, strategy, threads);
        assert!(x1 == xt, "{threads}-worker banded sweep diverged bitwise");
        assert!(r1 == rt, "{threads}-worker banded reports diverged");
    }
}

#[test]
fn multigrid_fused_sweep_bit_identical_across_1_2_8_workers() {
    let grid = SimGrid::new(48, 40, 0.05, 8);
    let nominal = waveguide(&grid);
    let corners = corner_family(&nominal, 4);
    let omegas: Vec<f64> = [1.0, 1.02].iter().map(|s| omega_c() * s).collect();
    // Force the multigrid pair regardless of grid size — this is the
    // path the `split = !mg` exclusion used to keep serial.
    let strategy = SolverStrategy::MultigridIterative {
        tol: 1e-6,
        max_iters: 40,
    };

    let (x1, r1) = fused_sweep(grid, &omegas, &nominal, &corners, strategy, 1);
    assert!(r1.iter().all(|r| r.converged), "reference MG sweep missed");
    for threads in [2usize, 8] {
        let (xt, rt) = fused_sweep(grid, &omegas, &nominal, &corners, strategy, threads);
        assert!(x1 == xt, "{threads}-worker MG sweep diverged bitwise");
        assert!(r1 == rt, "{threads}-worker MG reports diverged");
    }
}

/// Two optimiser epochs of the recycled + lagged fused pipeline at one
/// worker count: epoch 0 cold (harvesting corrections), epoch 1 on a
/// drifted nominal with the lag policy keeping the stale factor and the
/// recycle stores improving every warm start. Returns both epochs'
/// solutions concatenated.
fn recycled_lagged_protocol(threads: usize) -> Vec<Complex64> {
    let grid = SimGrid::new(26, 22, 0.05, 5);
    let n = grid.n();
    let nominal0 = waveguide(&grid);
    let corners0 = corner_family(&nominal0, 6);
    let omegas: Vec<f64> = [1.0, 1.02, 0.98].iter().map(|s| omega_c() * s).collect();
    let total = corners0.len() * omegas.len();
    let rhs = rhs_block(n, total);
    let strategy = SolverStrategy::PreconditionedIterative {
        tol: 1e-8,
        max_iters: 40,
    };

    let mut ws = SimWorkspace::new();
    ws.set_factor_lag(Some(FactorLag {
        max_lag: 100,
        drift_tol: 0.05,
    }));
    let mut spaces: Vec<RecycleSpace> = (0..total).map(|_| RecycleSpace::new(4)).collect();
    let keys: Vec<usize> = (0..total).collect();

    let mut out = Vec::new();
    for epoch in 0..2u64 {
        // A tiny cross-epoch drift (under drift_tol): the lag policy
        // keeps the epoch-0 factor, the recycle stores carry over.
        let drift = 0.001 * epoch as f64;
        let nominal = nominal0.map(|&e| if e > 1.0 { e + drift } else { e });
        let corners: Vec<Array2<f64>> = corners0
            .iter()
            .map(|c| c.map(|&e| if e > 1.0 { e + drift } else { e }))
            .collect();
        ws.fused_batch_begin(grid, &omegas, &nominal, epoch, strategy)
            .expect("nominal factorisation failed");
        for oi in 0..omegas.len() {
            for eps in &corners {
                ws.fused_batch_push(eps, oi);
            }
        }
        let mut x = vec![Complex64::ZERO; n * total];
        ws.fused_batch_solve_recycled(
            &rhs,
            &mut x,
            1,
            false,
            threads,
            FusedRecycle {
                spaces: &mut spaces,
                keys: &keys,
                transpose: false,
                epoch,
            },
        );
        assert!(
            ws.batch_reports().iter().all(|r| r.converged),
            "recycled epoch {epoch} missed at {threads} workers"
        );
        out.extend_from_slice(&x);
    }
    out
}

#[test]
fn recycled_lagged_fused_sweep_bit_identical_across_1_2_8_workers() {
    let reference = recycled_lagged_protocol(1);
    for threads in [2usize, 8] {
        let got = recycled_lagged_protocol(threads);
        assert!(
            reference == got,
            "{threads}-worker recycled+lagged pipeline diverged bitwise"
        );
    }
}
