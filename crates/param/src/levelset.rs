//! Level-set topology parameterisation (the paper's `P`, default in
//! BOSON-1).
//!
//! Design variables `θ` are level-set values on a coarse control grid.
//! They are bilinearly upsampled to the design grid and pushed through a
//! smoothed Heaviside to give the material density `ρ ∈ [0,1]`
//! (`φ > 0` ⇒ solid). The coarse control grid regularises the geometry
//! (features below the control pitch cannot form), and the bilinear+
//! Heaviside chain has an exact, cheap vector–Jacobian product.

use crate::sdf::Geometry;
use crate::Parameterization;
use boson_num::Array2;
use serde::{Deserialize, Serialize};

/// Level-set parameterisation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelSetConfig {
    /// Control points along y (rows).
    pub control_rows: usize,
    /// Control points along x (cols).
    pub control_cols: usize,
    /// Heaviside smoothing half-width in level-set units (≈ µm).
    pub smoothing: f64,
}

impl Default for LevelSetConfig {
    fn default() -> Self {
        Self {
            control_rows: 16,
            control_cols: 16,
            smoothing: 0.05,
        }
    }
}

/// Level-set parameterisation over a fixed design grid.
#[derive(Debug, Clone)]
pub struct LevelSetParam {
    rows: usize,
    cols: usize,
    dx: f64,
    config: LevelSetConfig,
}

impl LevelSetParam {
    /// Creates a parameterisation producing `rows × cols` densities at
    /// pitch `dx` µm.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is smaller than 2.
    pub fn new(rows: usize, cols: usize, dx: f64, config: LevelSetConfig) -> Self {
        assert!(rows >= 2 && cols >= 2, "design grid too small");
        assert!(
            config.control_rows >= 2 && config.control_cols >= 2,
            "control grid too small"
        );
        Self {
            rows,
            cols,
            dx,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LevelSetConfig {
        &self.config
    }

    /// Smoothed Heaviside `H(φ)` with half-width `smoothing`.
    #[inline]
    fn heaviside(&self, phi: f64) -> f64 {
        0.5 * (1.0 + (phi / self.config.smoothing).tanh())
    }

    #[inline]
    fn d_heaviside(&self, phi: f64) -> f64 {
        let t = (phi / self.config.smoothing).tanh();
        0.5 * (1.0 - t * t) / self.config.smoothing
    }

    /// Bilinear interpolation stencil of design pixel `(r, c)`:
    /// `[(control_index, weight); 4]`.
    fn stencil(&self, r: usize, c: usize) -> [(usize, f64); 4] {
        let cr = self.config.control_rows;
        let cc = self.config.control_cols;
        // Pixel centre in unit coordinates of the control lattice.
        let gy = (r as f64 + 0.5) / self.rows as f64 * (cr as f64 - 1.0);
        let gx = (c as f64 + 0.5) / self.cols as f64 * (cc as f64 - 1.0);
        let iy = (gy.floor() as usize).min(cr - 2);
        let ix = (gx.floor() as usize).min(cc - 2);
        let fy = gy - iy as f64;
        let fx = gx - ix as f64;
        [
            (iy * cc + ix, (1.0 - fy) * (1.0 - fx)),
            (iy * cc + ix + 1, (1.0 - fy) * fx),
            ((iy + 1) * cc + ix, fy * (1.0 - fx)),
            ((iy + 1) * cc + ix + 1, fy * fx),
        ]
    }

    /// Upsampled level-set field φ on the design grid.
    pub fn phi(&self, theta: &[f64]) -> Array2<f64> {
        assert_eq!(theta.len(), self.num_params(), "theta length mismatch");
        Array2::from_fn(self.rows, self.cols, |r, c| {
            self.stencil(r, c).iter().map(|&(k, w)| w * theta[k]).sum()
        })
    }

    /// Seeds `θ` from a geometry: `θ = −sdf` sampled at the control
    /// points (positive inside the solid), clipped to ±4·smoothing so the
    /// optimiser can still move the boundary everywhere.
    pub fn theta_from_geometry(&self, geometry: &Geometry) -> Vec<f64> {
        let cr = self.config.control_rows;
        let cc = self.config.control_cols;
        let w = self.cols as f64 * self.dx;
        let h = self.rows as f64 * self.dx;
        let clip = 4.0 * self.config.smoothing;
        let mut theta = Vec::with_capacity(cr * cc);
        for j in 0..cr {
            for i in 0..cc {
                let x = i as f64 / (cc as f64 - 1.0) * w;
                let y = j as f64 / (cr as f64 - 1.0) * h;
                let sdf = geometry.sdf(x, y);
                let phi = if sdf.is_finite() { -sdf } else { -clip };
                theta.push(phi.clamp(-clip, clip));
            }
        }
        theta
    }
}

impl Parameterization for LevelSetParam {
    fn num_params(&self) -> usize {
        self.config.control_rows * self.config.control_cols
    }

    fn design_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn forward(&self, theta: &[f64]) -> Array2<f64> {
        self.phi(theta).map(|&p| self.heaviside(p))
    }

    fn vjp(&self, theta: &[f64], v: &Array2<f64>) -> Vec<f64> {
        assert_eq!(
            v.shape(),
            (self.rows, self.cols),
            "cotangent shape mismatch"
        );
        let phi = self.phi(theta);
        let mut grad = vec![0.0; self.num_params()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                let scale = v[(r, c)] * self.d_heaviside(phi[(r, c)]);
                if scale == 0.0 {
                    continue;
                }
                for (k, w) in self.stencil(r, c) {
                    grad[k] += scale * w;
                }
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdf::Shape;

    fn param() -> LevelSetParam {
        LevelSetParam::new(
            24,
            30,
            0.05,
            LevelSetConfig {
                control_rows: 8,
                control_cols: 10,
                smoothing: 0.05,
            },
        )
    }

    #[test]
    fn forward_bounds() {
        let p = param();
        let theta: Vec<f64> = (0..p.num_params())
            .map(|k| ((k * 37) % 13) as f64 * 0.1 - 0.6)
            .collect();
        let rho = p.forward(&theta);
        for v in rho.as_slice() {
            assert!(*v >= 0.0 && *v <= 1.0);
        }
    }

    #[test]
    fn constant_theta_gives_constant_rho() {
        let p = param();
        let rho_solid = p.forward(&vec![1.0; p.num_params()]);
        let rho_void = p.forward(&vec![-1.0; p.num_params()]);
        assert!(rho_solid.min() > 0.99);
        assert!(rho_void.max() < 0.01);
        let rho_edge = p.forward(&vec![0.0; p.num_params()]);
        for v in rho_edge.as_slice() {
            assert!((v - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn upsample_is_linear_in_theta() {
        let p = param();
        let t1: Vec<f64> = (0..p.num_params()).map(|k| (k % 5) as f64 * 0.1).collect();
        let t2: Vec<f64> = (0..p.num_params())
            .map(|k| ((k + 3) % 7) as f64 * -0.05)
            .collect();
        let sum: Vec<f64> = t1.iter().zip(&t2).map(|(a, b)| a + b).collect();
        let phi_sum = p.phi(&sum);
        let phi_1 = p.phi(&t1);
        let phi_2 = p.phi(&t2);
        for (idx, v) in phi_sum.indexed_iter() {
            assert!((v - (phi_1[idx] + phi_2[idx])).abs() < 1e-12);
        }
    }

    #[test]
    fn geometry_seed_marks_inside_solid() {
        let p = param();
        // Horizontal strip through the middle of the 1.5 × 1.2 µm region.
        let geo = Geometry::new().with(Shape::Rect {
            x0: 0.0,
            y0: 0.4,
            x1: 1.5,
            y1: 0.8,
        });
        let theta = p.theta_from_geometry(&geo);
        let rho = p.forward(&theta);
        assert!(
            rho[(12, 15)] > 0.9,
            "centre should be solid: {}",
            rho[(12, 15)]
        );
        assert!(rho[(1, 15)] < 0.1, "edge should be void: {}", rho[(1, 15)]);
    }

    #[test]
    fn vjp_matches_finite_difference() {
        let p = param();
        let theta: Vec<f64> = (0..p.num_params())
            .map(|k| ((k * 29) % 17) as f64 * 0.03 - 0.25)
            .collect();
        let v = Array2::from_fn(24, 30, |r, c| ((r + 2 * c) % 5) as f64 * 0.2 - 0.4);
        let grad = p.vjp(&theta, &v);
        let loss = |th: &[f64]| -> f64 { p.forward(th).zip_map(&v, |a, b| a * b).sum() };
        let h = 1e-6;
        for k in [0usize, 7, 33, p.num_params() - 1] {
            let mut tp = theta.clone();
            tp[k] += h;
            let lp = loss(&tp);
            tp[k] -= 2.0 * h;
            let lm = loss(&tp);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grad[k]).abs() < 1e-5 + 1e-5 * fd.abs(),
                "vjp mismatch at θ[{k}]: fd={fd} ad={}",
                grad[k]
            );
        }
    }

    #[test]
    fn control_grid_limits_feature_size() {
        // A single control point cannot carve a feature smaller than the
        // control pitch: flipping one θ value changes a blob of pixels.
        let p = param();
        let mut theta = vec![-0.5; p.num_params()];
        let rho0 = p.forward(&theta);
        theta[4 * 10 + 5] = 0.5;
        let rho1 = p.forward(&theta);
        let changed = rho0
            .as_slice()
            .iter()
            .zip(rho1.as_slice())
            .filter(|(a, b)| (*a - *b).abs() > 0.05)
            .count();
        assert!(
            changed > 4,
            "one control point should influence a blob, changed {changed}"
        );
    }
}
