//! Signed distance functions for seed geometry.
//!
//! The paper's *optical-path-concentrated initialisation* (§III-D3) starts
//! the optimisation from a simple geometry that already connects the ports
//! (a straight guide, an L-bend, a crossing, a taper) instead of random
//! noise. These seeds are described as unions of primitive shapes with
//! signed distance functions; the level-set parameterisation samples them
//! directly.
//!
//! Convention: `sdf < 0` inside the solid, `> 0` outside, zero on the
//! boundary. Distances in µm.

use serde::{Deserialize, Serialize};

/// A primitive solid shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// Axis-aligned rectangle spanning `[x0,x1] × [y0,y1]`.
    Rect {
        /// Left edge.
        x0: f64,
        /// Bottom edge.
        y0: f64,
        /// Right edge.
        x1: f64,
        /// Top edge.
        y1: f64,
    },
    /// A thick line segment (capsule) from `(x0,y0)` to `(x1,y1)`.
    Segment {
        /// Start x.
        x0: f64,
        /// Start y.
        y0: f64,
        /// End x.
        x1: f64,
        /// End y.
        y1: f64,
        /// Half-width of the stroke.
        half_width: f64,
    },
    /// A filled circle.
    Circle {
        /// Centre x.
        cx: f64,
        /// Centre y.
        cy: f64,
        /// Radius.
        r: f64,
    },
    /// A linear taper (trapezoid) along x from half-width `hw0` at `x0` to
    /// `hw1` at `x1`, centred on `y = cy`.
    TaperX {
        /// Start x.
        x0: f64,
        /// End x.
        x1: f64,
        /// Centreline y.
        cy: f64,
        /// Half-width at `x0`.
        hw0: f64,
        /// Half-width at `x1`.
        hw1: f64,
    },
}

impl Shape {
    /// Signed distance from `(x, y)` to this shape (< 0 inside).
    pub fn sdf(&self, x: f64, y: f64) -> f64 {
        match *self {
            Shape::Rect { x0, y0, x1, y1 } => {
                let dx = (x0 - x).max(x - x1);
                let dy = (y0 - y).max(y - y1);
                if dx <= 0.0 && dy <= 0.0 {
                    dx.max(dy)
                } else {
                    let ox = dx.max(0.0);
                    let oy = dy.max(0.0);
                    (ox * ox + oy * oy).sqrt()
                }
            }
            Shape::Segment {
                x0,
                y0,
                x1,
                y1,
                half_width,
            } => {
                let (vx, vy) = (x1 - x0, y1 - y0);
                let (px, py) = (x - x0, y - y0);
                let len2 = vx * vx + vy * vy;
                let t = if len2 > 0.0 {
                    ((px * vx + py * vy) / len2).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let (qx, qy) = (px - t * vx, py - t * vy);
                (qx * qx + qy * qy).sqrt() - half_width
            }
            Shape::Circle { cx, cy, r } => ((x - cx).powi(2) + (y - cy).powi(2)).sqrt() - r,
            Shape::TaperX {
                x0,
                x1,
                cy,
                hw0,
                hw1,
            } => {
                // Approximate SDF: exact in the vertical direction within
                // the span, distance-to-span outside. Adequate for seeding.
                let t = ((x - x0) / (x1 - x0)).clamp(0.0, 1.0);
                let hw = hw0 + (hw1 - hw0) * t;
                let dy = (y - cy).abs() - hw;
                let dx_out = (x0 - x).max(x - x1).max(0.0);
                if dx_out > 0.0 {
                    (dx_out * dx_out + dy.max(0.0).powi(2)).sqrt().max(dy)
                } else {
                    dy
                }
            }
        }
    }
}

/// A union of shapes (solid where *any* shape is solid).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Geometry {
    shapes: Vec<Shape>,
}

impl Geometry {
    /// An empty geometry (all void).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a shape to the union; returns `self` for chaining.
    pub fn with(mut self, shape: Shape) -> Self {
        self.shapes.push(shape);
        self
    }

    /// Number of shapes.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// `true` when the geometry holds no shapes.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Signed distance of the union (min over shapes); `+∞` when empty.
    pub fn sdf(&self, x: f64, y: f64) -> f64 {
        self.shapes
            .iter()
            .map(|s| s.sdf(x, y))
            .fold(f64::INFINITY, f64::min)
    }

    /// `true` when `(x, y)` is inside the solid.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        self.sdf(x, y) < 0.0
    }

    /// Appends a circular-arc stroke (polyline of capsule segments) from
    /// angle `a0` to `a1` (radians) on the circle of radius `r` centred at
    /// `(cx, cy)`; returns `self` for chaining.
    ///
    /// Used for smoothly-bent waveguide seeds: an abrupt 90° corner
    /// radiates most of the light, an arc keeps it guided.
    #[allow(clippy::too_many_arguments)]
    pub fn with_arc(
        mut self,
        cx: f64,
        cy: f64,
        r: f64,
        a0: f64,
        a1: f64,
        segments: usize,
        half_width: f64,
    ) -> Self {
        let n = segments.max(1);
        let mut prev = (cx + r * a0.cos(), cy + r * a0.sin());
        for k in 1..=n {
            let a = a0 + (a1 - a0) * k as f64 / n as f64;
            let pt = (cx + r * a.cos(), cy + r * a.sin());
            self.shapes.push(Shape::Segment {
                x0: prev.0,
                y0: prev.1,
                x1: pt.0,
                y1: pt.1,
                half_width,
            });
            prev = pt;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_sdf_signs() {
        let r = Shape::Rect {
            x0: 0.0,
            y0: 0.0,
            x1: 2.0,
            y1: 1.0,
        };
        assert!(r.sdf(1.0, 0.5) < 0.0);
        assert!(r.sdf(3.0, 0.5) > 0.0);
        assert!((r.sdf(1.0, 0.5) - (-0.5)).abs() < 1e-12); // 0.5 from top/bottom
        assert!((r.sdf(3.0, 0.5) - 1.0).abs() < 1e-12);
        // Corner distance is Euclidean.
        assert!((r.sdf(3.0, 2.0) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn segment_sdf_is_capsule() {
        let s = Shape::Segment {
            x0: 0.0,
            y0: 0.0,
            x1: 2.0,
            y1: 0.0,
            half_width: 0.25,
        };
        assert!(s.sdf(1.0, 0.0) < 0.0);
        assert!((s.sdf(1.0, 0.25)).abs() < 1e-12);
        assert!((s.sdf(1.0, 1.0) - 0.75).abs() < 1e-12);
        // Beyond the cap.
        assert!((s.sdf(3.0, 0.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_is_circle() {
        let s = Shape::Segment {
            x0: 1.0,
            y0: 1.0,
            x1: 1.0,
            y1: 1.0,
            half_width: 0.5,
        };
        assert!((s.sdf(1.0, 2.0) - 0.5).abs() < 1e-12);
        assert!(s.sdf(1.0, 1.2) < 0.0);
    }

    #[test]
    fn circle_sdf() {
        let c = Shape::Circle {
            cx: 0.0,
            cy: 0.0,
            r: 1.0,
        };
        assert!((c.sdf(2.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((c.sdf(0.0, 0.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn taper_narrows_along_x() {
        let t = Shape::TaperX {
            x0: 0.0,
            x1: 2.0,
            cy: 0.0,
            hw0: 0.5,
            hw1: 0.1,
        };
        assert!(t.sdf(0.1, 0.4) < 0.0); // inside wide end
        assert!(t.sdf(1.9, 0.4) > 0.0); // outside narrow end
        assert!(t.sdf(1.9, 0.05) < 0.0);
    }

    #[test]
    fn union_takes_min() {
        let g = Geometry::new()
            .with(Shape::Circle {
                cx: 0.0,
                cy: 0.0,
                r: 0.5,
            })
            .with(Shape::Circle {
                cx: 2.0,
                cy: 0.0,
                r: 0.5,
            });
        assert!(g.contains(0.0, 0.0));
        assert!(g.contains(2.0, 0.0));
        assert!(!g.contains(1.0, 0.0));
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn empty_geometry_is_all_void() {
        let g = Geometry::new();
        assert!(!g.contains(0.0, 0.0));
        assert_eq!(g.sdf(1.0, 1.0), f64::INFINITY);
    }
}
