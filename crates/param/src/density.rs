//! Per-pixel density parameterisation (the "Density" baseline).
//!
//! Every design pixel carries its own latent variable pushed through a
//! sigmoid; optionally a Gaussian blur is applied afterwards as a
//! heuristic minimum-feature-size control (the "-M" variants in the
//! paper's tables). Without blur this parameterisation can express
//! arbitrarily fine features — which is exactly why its designs collapse
//! after lithography.

use crate::sdf::Geometry;
use crate::Parameterization;
use boson_num::Array2;
use serde::{Deserialize, Serialize};

/// Density parameterisation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityConfig {
    /// Sigmoid sharpness applied to the latent variables.
    pub sharpness: f64,
    /// Gaussian blur radius in *cells* (0 disables the MFS control).
    pub blur_radius: f64,
}

impl Default for DensityConfig {
    fn default() -> Self {
        Self {
            sharpness: 4.0,
            blur_radius: 0.0,
        }
    }
}

/// Per-pixel density parameterisation over a fixed design grid.
#[derive(Debug, Clone)]
pub struct DensityParam {
    rows: usize,
    cols: usize,
    dx: f64,
    config: DensityConfig,
    /// Separable blur kernel (empty when blur disabled).
    kernel: Vec<f64>,
}

impl DensityParam {
    /// Creates a parameterisation producing `rows × cols` densities at
    /// pitch `dx` µm.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or `sharpness <= 0`.
    pub fn new(rows: usize, cols: usize, dx: f64, config: DensityConfig) -> Self {
        assert!(rows > 0 && cols > 0, "design grid must be non-empty");
        assert!(config.sharpness > 0.0, "sharpness must be positive");
        let kernel = if config.blur_radius > 0.0 {
            let sigma = config.blur_radius;
            let half = (3.0 * sigma).ceil() as i64;
            let mut k: Vec<f64> = (-half..=half)
                .map(|i| (-(i as f64).powi(2) / (2.0 * sigma * sigma)).exp())
                .collect();
            let sum: f64 = k.iter().sum();
            for v in &mut k {
                *v /= sum;
            }
            k
        } else {
            Vec::new()
        };
        Self {
            rows,
            cols,
            dx,
            config,
            kernel,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DensityConfig {
        &self.config
    }

    #[inline]
    fn sigmoid(&self, t: f64) -> f64 {
        1.0 / (1.0 + (-self.config.sharpness * t).exp())
    }

    #[inline]
    fn d_sigmoid(&self, t: f64) -> f64 {
        let s = self.sigmoid(t);
        self.config.sharpness * s * (1.0 - s)
    }

    /// Separable zero-padded blur (its transpose is itself, keeping the
    /// vjp exact).
    fn blur(&self, a: &Array2<f64>) -> Array2<f64> {
        if self.kernel.is_empty() {
            return a.clone();
        }
        let half = (self.kernel.len() / 2) as i64;
        // Horizontal pass.
        let hpass = Array2::from_fn(self.rows, self.cols, |r, c| {
            let mut acc = 0.0;
            for (ki, &kv) in self.kernel.iter().enumerate() {
                let cc = c as i64 + ki as i64 - half;
                if cc >= 0 && (cc as usize) < self.cols {
                    acc += kv * a[(r, cc as usize)];
                }
            }
            acc
        });
        // Vertical pass.
        Array2::from_fn(self.rows, self.cols, |r, c| {
            let mut acc = 0.0;
            for (ki, &kv) in self.kernel.iter().enumerate() {
                let rr = r as i64 + ki as i64 - half;
                if rr >= 0 && (rr as usize) < self.rows {
                    acc += kv * hpass[(rr as usize, c)];
                }
            }
            acc
        })
    }

    /// Seeds `θ` from a geometry: `+1` inside the solid, `−1` outside.
    pub fn theta_from_geometry(&self, geometry: &Geometry) -> Vec<f64> {
        let mut theta = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let x = (c as f64 + 0.5) * self.dx;
                let y = (r as f64 + 0.5) * self.dx;
                theta.push(if geometry.contains(x, y) { 1.0 } else { -1.0 });
            }
        }
        theta
    }
}

impl Parameterization for DensityParam {
    fn num_params(&self) -> usize {
        self.rows * self.cols
    }

    fn design_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn forward(&self, theta: &[f64]) -> Array2<f64> {
        assert_eq!(theta.len(), self.num_params(), "theta length mismatch");
        let rho = Array2::from_fn(self.rows, self.cols, |r, c| {
            self.sigmoid(theta[r * self.cols + c])
        });
        self.blur(&rho)
    }

    fn vjp(&self, theta: &[f64], v: &Array2<f64>) -> Vec<f64> {
        assert_eq!(
            v.shape(),
            (self.rows, self.cols),
            "cotangent shape mismatch"
        );
        // Blur is self-transpose (symmetric zero-padded kernel).
        let vb = self.blur(v);
        let mut grad = vec![0.0; self.num_params()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                let k = r * self.cols + c;
                grad[k] = vb[(r, c)] * self.d_sigmoid(theta[k]);
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdf::Shape;

    fn param(blur: f64) -> DensityParam {
        DensityParam::new(
            18,
            22,
            0.05,
            DensityConfig {
                sharpness: 3.0,
                blur_radius: blur,
            },
        )
    }

    #[test]
    fn forward_range_and_midpoint() {
        let p = param(0.0);
        let rho = p.forward(&vec![0.0; p.num_params()]);
        for v in rho.as_slice() {
            assert!((v - 0.5).abs() < 1e-12);
        }
        let rho_hi = p.forward(&vec![5.0; p.num_params()]);
        assert!(rho_hi.min() > 0.95);
    }

    #[test]
    fn blur_smooths_single_pixel() {
        let p0 = param(0.0);
        let p2 = param(1.5);
        let mut theta = vec![-8.0; p0.num_params()];
        theta[9 * 22 + 11] = 8.0;
        let sharp = p0.forward(&theta);
        let smooth = p2.forward(&theta);
        // Peak is lower and neighbours are higher after blur.
        assert!(smooth[(9, 11)] < sharp[(9, 11)]);
        assert!(smooth[(9, 13)] > sharp[(9, 13)]);
    }

    #[test]
    fn blur_preserves_mass_in_interior() {
        let p = param(1.0);
        let mut theta = vec![-20.0; p.num_params()];
        theta[9 * 22 + 11] = 20.0;
        let rho = p.forward(&theta);
        // Total mass ≈ 1 (kernel normalised, pixel far from edges).
        assert!((rho.sum() - 1.0).abs() < 1e-6, "mass = {}", rho.sum());
    }

    #[test]
    fn vjp_matches_finite_difference_no_blur() {
        vjp_check(param(0.0));
    }

    #[test]
    fn vjp_matches_finite_difference_with_blur() {
        vjp_check(param(1.2));
    }

    fn vjp_check(p: DensityParam) {
        let theta: Vec<f64> = (0..p.num_params())
            .map(|k| ((k * 31) % 11) as f64 * 0.1 - 0.5)
            .collect();
        let v = Array2::from_fn(18, 22, |r, c| ((r * 5 + c * 3) % 7) as f64 * 0.1 - 0.3);
        let grad = p.vjp(&theta, &v);
        let loss = |th: &[f64]| -> f64 { p.forward(th).zip_map(&v, |a, b| a * b).sum() };
        let h = 1e-6;
        for k in [0usize, 50, 200, p.num_params() - 1] {
            let mut tp = theta.clone();
            tp[k] += h;
            let lp = loss(&tp);
            tp[k] -= 2.0 * h;
            let lm = loss(&tp);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grad[k]).abs() < 1e-6 + 1e-5 * fd.abs(),
                "vjp mismatch at θ[{k}]: fd={fd} ad={}",
                grad[k]
            );
        }
    }

    #[test]
    fn geometry_seed() {
        let p = param(0.0);
        let geo = Geometry::new().with(Shape::Rect {
            x0: 0.3,
            y0: 0.3,
            x1: 0.8,
            y1: 0.6,
        });
        let theta = p.theta_from_geometry(&geo);
        let rho = p.forward(&theta);
        // Inside the rect (x=0.55, y=0.45) → cell (8, 10) or so.
        assert!(rho[(8, 10)] > 0.9);
        assert!(rho[(1, 1)] < 0.1);
    }

    #[test]
    fn density_can_express_single_pixel_features() {
        // The core difference from the level-set: one θ flips one pixel.
        let p = param(0.0);
        let mut theta = vec![-5.0; p.num_params()];
        theta[5 * 22 + 5] = 5.0;
        let rho = p.forward(&theta);
        let changed = rho.as_slice().iter().filter(|v| **v > 0.5).count();
        assert_eq!(changed, 1, "density flips exactly one pixel");
    }
}
