//! # boson-param — differentiable topology parameterisations
//!
//! The `P` stage of the paper's compound mapping: latent design variables
//! `θ` become a material density map `ρ ∈ [0,1]^{N_x×N_y}`. Two
//! parameterisations are provided, matching the paper's comparisons:
//!
//! * [`LevelSetParam`] ("LS", BOSON-1's default) — θ lives on a coarse
//!   control lattice, bilinearly upsampled and projected through a
//!   smoothed Heaviside;
//! * [`DensityParam`] ("Density") — one θ per pixel through a sigmoid,
//!   with optional Gaussian-blur minimum-feature-size control ("-M").
//!
//! [`sdf`] supplies signed-distance seed geometry for the paper's
//! light-concentrated initialisation.
//!
//! # Examples
//!
//! ```
//! use boson_param::{LevelSetConfig, LevelSetParam, Parameterization};
//! use boson_param::sdf::{Geometry, Shape};
//!
//! let p = LevelSetParam::new(20, 20, 0.05, LevelSetConfig::default());
//! let seed = Geometry::new().with(Shape::Rect { x0: 0.0, y0: 0.4, x1: 1.0, y1: 0.6 });
//! let theta = p.theta_from_geometry(&seed);
//! let rho = p.forward(&theta);
//! assert!(rho[(10, 10)] > 0.5); // strip is solid
//! ```

#![warn(missing_docs)]

pub mod density;
pub mod levelset;
pub mod sdf;

use boson_num::Array2;

pub use density::{DensityConfig, DensityParam};
pub use levelset::{LevelSetConfig, LevelSetParam};

/// A differentiable map from latent design variables to a density image.
pub trait Parameterization {
    /// Number of latent variables.
    fn num_params(&self) -> usize;

    /// Shape `(rows, cols)` of the produced density map.
    fn design_shape(&self) -> (usize, usize);

    /// Forward map `θ → ρ` with `ρ ∈ [0, 1]` elementwise.
    fn forward(&self, theta: &[f64]) -> Array2<f64>;

    /// Vector–Jacobian product: given `v = ∂L/∂ρ`, returns `∂L/∂θ`.
    fn vjp(&self, theta: &[f64], v: &Array2<f64>) -> Vec<f64>;
}
