//! Property-based tests of the numerical kernels.

use boson_num::banded::{BandedLuF32, BandedMatrix};
use boson_num::fft::{fft, ifft};
use boson_num::jacobi::sym_eigen;
use boson_num::krylov::{
    bicgstab_precond_many, bicgstab_precond_transpose_many, IterativeOptions, KrylovWorkspace,
    RecycleSpace, SolveQuality,
};
use boson_num::tridiag::SymTridiag;
use boson_num::{c64, Array2, Complex64};
use proptest::prelude::*;

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), len..=len)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_field_axioms(
        (ar, ai, br, bi, cr, ci) in (-1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6,
                                     -1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6)
    ) {
        let a = c64(ar, ai);
        let b = c64(br, bi);
        let c = c64(cr, ci);
        let d1 = a * (b + c);
        let d2 = a * b + a * c;
        prop_assert!((d1 - d2).abs() <= 1e-9 * (1.0 + d1.abs()));
        // Conjugation is an automorphism.
        let lhs = (a * b).conj();
        let rhs = a.conj() * b.conj();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn fft_round_trip(x in complex_vec(64)) {
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-8 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn fft_is_linear(x in complex_vec(32), y in complex_vec(32)) {
        let mut fx = x.clone();
        let mut fy = y.clone();
        let mut fxy: Vec<Complex64> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        fft(&mut fx);
        fft(&mut fy);
        fft(&mut fxy);
        for i in 0..32 {
            let sum = fx[i] + fy[i];
            prop_assert!((fxy[i] - sum).abs() < 1e-7 * (1.0 + sum.abs()));
        }
    }

    #[test]
    fn fft_parseval(x in complex_vec(64)) {
        let e_time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut f = x.clone();
        fft(&mut f);
        let e_freq: f64 = f.iter().map(|v| v.norm_sqr()).sum::<f64>() / 64.0;
        prop_assert!((e_time - e_freq).abs() < 1e-6 * (1.0 + e_time));
    }

    #[test]
    fn banded_lu_solves_diagonally_dominant_systems(
        entries in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 20 * 5),
        rhs in complex_vec(20)
    ) {
        let n = 20;
        let (kl, ku) = (2usize, 2usize);
        let mut a = BandedMatrix::new(n, kl, ku);
        let mut k = 0;
        for i in 0..n {
            for j in i.saturating_sub(kl)..=(i + ku).min(n - 1) {
                let (re, im) = entries[k % entries.len()];
                k += 1;
                let mut v = c64(re, im);
                if i == j {
                    v += c64(6.0, 1.0); // strict diagonal dominance
                }
                a.set(i, j, v);
            }
        }
        let lu = a.clone().factor().expect("dominant matrix is nonsingular");
        let x = lu.solve_vec(&rhs);
        let ax = a.matvec(&x);
        let res: f64 = ax.iter().zip(&rhs).map(|(p, q)| (*p - *q).norm_sqr()).sum::<f64>().sqrt();
        let scale: f64 = rhs.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
        prop_assert!(res <= 1e-8 * (1.0 + scale), "residual {res}");
        // Transpose solve residual too.
        let xt = lu.solve_transpose_vec(&rhs);
        let atx = a.matvec_transpose(&xt);
        let rest: f64 = atx.iter().zip(&rhs).map(|(p, q)| (*p - *q).norm_sqr()).sum::<f64>().sqrt();
        prop_assert!(rest <= 1e-8 * (1.0 + scale), "transpose residual {rest}");
    }

    #[test]
    fn tridiag_eigenpairs_satisfy_definition(
        diag in proptest::collection::vec(-5.0f64..5.0, 12..=12),
        off in proptest::collection::vec(-2.0f64..2.0, 11..=11)
    ) {
        let t = SymTridiag::new(diag, off);
        for pair in t.largest_eigenpairs(3) {
            let tv = t.matvec(&pair.vector);
            let res: f64 = tv.iter().zip(&pair.vector)
                .map(|(a, b)| (a - pair.value * b).powi(2)).sum::<f64>().sqrt();
            prop_assert!(res < 1e-6, "residual {res} at λ = {}", pair.value);
        }
    }

    #[test]
    fn sturm_count_is_monotone_nondecreasing(
        diag in proptest::collection::vec(-5.0f64..5.0, 10..=10),
        off in proptest::collection::vec(-2.0f64..2.0, 9..=9),
        a in -20.0f64..20.0,
        b in -20.0f64..20.0
    ) {
        let t = SymTridiag::new(diag, off);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.count_below(lo) <= t.count_below(hi));
    }

    #[test]
    fn jacobi_preserves_trace_and_orthonormality(
        vals in proptest::collection::vec(-3.0f64..3.0, 21..=21)
    ) {
        // Build a 6×6 symmetric matrix from 21 free entries.
        let n = 6;
        let mut a = Array2::zeros(n, n);
        let mut k = 0;
        for i in 0..n {
            for j in 0..=i {
                a[(i, j)] = vals[k];
                a[(j, i)] = vals[k];
                k += 1;
            }
        }
        let e = sym_eigen(&a, 100);
        let tr: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((tr - sum).abs() < 1e-8 * (1.0 + tr.abs()));
        for p in 0..n {
            for q in 0..=p {
                let dot: f64 = e.vectors.col(p).iter().zip(e.vectors.col(q)).map(|(x, y)| x * y).sum();
                let expect = if p == q { 1.0 } else { 0.0 };
                prop_assert!((dot - expect).abs() < 1e-8);
            }
        }
    }
}

/// Builds a strictly diagonally dominant banded matrix from flat entries.
fn dominant_banded(n: usize, kl: usize, ku: usize, entries: &[(f64, f64)]) -> BandedMatrix {
    let mut a = BandedMatrix::new(n, kl, ku);
    let mut k = 0;
    for i in 0..n {
        for j in i.saturating_sub(kl)..=(i + ku).min(n - 1) {
            let (re, im) = entries[k % entries.len()];
            k += 1;
            let mut v = c64(re, im);
            if i == j {
                v += c64(6.0 + (kl + ku) as f64, 1.0);
            }
            a.set(i, j, v);
        }
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // solve_many over a block ≡ column-by-column solve of the same RHS.
    #[test]
    fn solve_many_is_column_by_column_solve(
        entries in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 24 * 6),
        block in complex_vec(24 * 4)
    ) {
        let n = 24;
        let a = dominant_banded(n, 3, 2, &entries);
        let lu = a.factor().expect("dominant matrix is nonsingular");
        let mut batched = block.clone();
        lu.solve_many(&mut batched, 4);
        for r in 0..4 {
            let x = lu.solve_vec(&block[r * n..(r + 1) * n]);
            for (p, q) in x.iter().zip(&batched[r * n..(r + 1) * n]) {
                prop_assert!((*p - *q).abs() < 1e-10, "rhs {r}");
            }
        }
        // Transpose flavour too.
        let mut batched_t = block.clone();
        lu.solve_transpose_many(&mut batched_t, 4);
        for r in 0..4 {
            let x = lu.solve_transpose_vec(&block[r * n..(r + 1) * n]);
            for (p, q) in x.iter().zip(&batched_t[r * n..(r + 1) * n]) {
                prop_assert!((*p - *q).abs() < 1e-10, "transpose rhs {r}");
            }
        }
    }

    // Workspace reuse (reset + factor_into twice) ≡ fresh allocations.
    #[test]
    fn workspace_reuse_equals_fresh_allocation(
        e1 in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 20 * 6),
        e2 in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 20 * 6),
        rhs in complex_vec(20)
    ) {
        use boson_num::banded::BandedLu;
        let n = 20;
        let (kl, ku) = (2, 3);
        let mut ws = BandedMatrix::new(n, kl, ku);
        let mut lu = BandedLu::placeholder();
        for entries in [&e1, &e2] {
            // Reused path.
            ws.reset();
            let fresh = dominant_banded(n, kl, ku, entries);
            for i in 0..n {
                for j in i.saturating_sub(kl)..=(i + ku).min(n - 1) {
                    ws.set(i, j, fresh.get(i, j));
                }
            }
            ws.factor_into(&mut lu).expect("dominant matrix is nonsingular");
            let mut x_reused = rhs.clone();
            lu.solve(&mut x_reused);
            // Fresh-allocation path.
            let x_fresh = fresh.factor().unwrap().solve_vec(&rhs);
            for (p, q) in x_reused.iter().zip(&x_fresh) {
                prop_assert!((*p - *q).abs() < 1e-11);
            }
        }
    }

    // Nominal-factor-preconditioned BiCGSTAB agrees with the direct solve
    // of the perturbed operator to (well within) the configured
    // tolerance, for random diagonal perturbations of random strength —
    // the ε/temperature/etch corner shape — on both the forward and the
    // transpose path, with both the f64 and the f32 preconditioner.
    #[test]
    fn preconditioned_iterative_matches_direct_solve(
        entries in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 26 * 6),
        perturb in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 26),
        strength in 0.0f64..0.35,
        rhs in complex_vec(26)
    ) {
        let n = 26;
        let nominal = dominant_banded(n, 3, 2, &entries);
        let mut corner = nominal.clone();
        for (i, &(re, im)) in perturb.iter().enumerate() {
            corner.add(i, i, c64(strength * re, strength * im));
        }
        let mut m = nominal.factor().expect("dominant matrix is nonsingular");
        let direct = corner.clone().factor().expect("perturbed matrix is nonsingular");
        let tol = 1e-9;
        let opts = IterativeOptions { tol, max_iters: 60, use_initial_guess: false, threads: 1 };
        let mut ws = KrylovWorkspace::new();
        let xnorm = |v: &[Complex64]| v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();

        // Forward path, f64 preconditioner.
        let mut x = vec![Complex64::ZERO; n];
        let q = bicgstab_precond_many(&corner, &mut m, &rhs, &mut x, 1, &opts, &mut ws);
        prop_assert!(q.converged, "forward did not converge: {q:?}");
        let x_direct = direct.solve_vec(&rhs);
        let err = x.iter().zip(&x_direct).map(|(p, q)| (*p - *q).norm_sqr()).sum::<f64>().sqrt();
        prop_assert!(err <= 100.0 * tol * (1.0 + xnorm(&x_direct)), "forward error {err}");

        // Transpose path (the adjoint), f64 preconditioner.
        let mut xt = vec![Complex64::ZERO; n];
        let qt = bicgstab_precond_transpose_many(&corner, &mut m, &rhs, &mut xt, 1, &opts, &mut ws);
        prop_assert!(qt.converged, "transpose did not converge: {qt:?}");
        let xt_direct = direct.solve_transpose_vec(&rhs);
        let errt = xt.iter().zip(&xt_direct).map(|(p, q)| (*p - *q).norm_sqr()).sum::<f64>().sqrt();
        prop_assert!(errt <= 100.0 * tol * (1.0 + xnorm(&xt_direct)), "transpose error {errt}");

        // f32 preconditioner at an ordinary tolerance.
        let mut m32 = BandedLuF32::placeholder();
        m32.assign_from(&m);
        let opts32 = IterativeOptions { tol: 1e-6, max_iters: 60, use_initial_guess: false, threads: 1 };
        let mut x32 = vec![Complex64::ZERO; n];
        let q32 = bicgstab_precond_many(&corner, &mut m32, &rhs, &mut x32, 1, &opts32, &mut ws);
        prop_assert!(q32.converged, "f32-preconditioned solve did not converge: {q32:?}");
        let err32 = x32.iter().zip(&x_direct).map(|(p, q)| (*p - *q).norm_sqr()).sum::<f64>().sqrt();
        prop_assert!(err32 <= 100.0 * 1e-6 * (1.0 + xnorm(&x_direct)), "f32 error {err32}");

        // Warm starts from the direct solution converge immediately and
        // change nothing about the answer.
        let mut xw = x_direct.clone();
        let qw = bicgstab_precond_many(
            &corner, &mut m, &rhs, &mut xw, 1,
            &IterativeOptions { use_initial_guess: true, ..opts }, &mut ws,
        );
        prop_assert!(qw.converged && qw.max_iterations == 0, "warm start iterated: {qw:?}");
    }

    // Cross-iteration Krylov recycling: a deflation store harvested from
    // the previous ε epoch's converged solves, Galerkin-projected onto
    // the next epoch's initial guess, yields the same solution as a
    // cold start — to (well within) the configured tolerance — across
    // random diagonal ε perturbations of random strength and drift, on
    // both the forward and the transpose (adjoint) path. The projection
    // also never worsens the true initial residual (the store's commit
    // rule), so convergence is at worst the cold start's.
    #[test]
    fn recycled_start_bicgstab_matches_cold_start(
        entries in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 26 * 6),
        perturb in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 26),
        drift in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 26),
        strength in 0.0f64..0.3,
        rhs in complex_vec(26)
    ) {
        let n = 26;
        let nominal = dominant_banded(n, 3, 2, &entries);
        let mut m = nominal.clone().factor().expect("dominant matrix is nonsingular");
        let tol = 1e-9;
        let cold = IterativeOptions { tol, max_iters: 80, use_initial_guess: false, threads: 1 };
        let warm = IterativeOptions { use_initial_guess: true, ..cold };
        let mut ws = KrylovWorkspace::new();
        let xnorm = |v: &[Complex64]| v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();

        // Epoch 0 and its drifted successor: the ε-corner shape, a
        // random diagonal perturbation that moves a little per epoch.
        let mut corner0 = nominal.clone();
        let mut corner1 = nominal.clone();
        for i in 0..n {
            let (re, im) = perturb[i];
            corner0.add(i, i, c64(strength * re, strength * im));
            let (dre, dim) = drift[i];
            corner1.add(i, i, c64(strength * (re + 0.2 * dre), strength * (im + 0.2 * dim)));
        }

        for transpose in [false, true] {
            let run = |a: &BandedMatrix,
                       m: &mut boson_num::banded::BandedLu,
                       x: &mut [Complex64],
                       opts: &IterativeOptions,
                       ws: &mut KrylovWorkspace|
             -> SolveQuality {
                if transpose {
                    bicgstab_precond_transpose_many(a, m, &rhs, x, 1, opts, ws)
                } else {
                    bicgstab_precond_many(a, m, &rhs, x, 1, opts, ws)
                }
            };
            let mut space = RecycleSpace::new(4);
            space.ensure_dim(n);

            // Epoch 0: converge cold, harvest the correction (the full
            // solution — the start was zero).
            let mut x0 = vec![Complex64::ZERO; n];
            let q0 = run(&corner0, &mut m, &mut x0, &cold, &mut ws);
            prop_assert!(q0.converged, "epoch-0 solve did not converge: {q0:?}");
            space.harvest(&x0, 0);

            // Epoch 1, cold start: the reference.
            let mut x_cold = vec![Complex64::ZERO; n];
            let qc = run(&corner1, &mut m, &mut x_cold, &cold, &mut ws);
            prop_assert!(qc.converged, "cold epoch-1 solve did not converge: {qc:?}");

            // Epoch 1, recycled start: Galerkin projection over the
            // harvested directions, then the same solver warm-started.
            let mut x_rec = vec![Complex64::ZERO; n];
            let bnorm = xnorm(&rhs);
            space.try_apply(&corner1, 0, transpose, &rhs, &mut x_rec, 1);
            // Never-worsen: the projected start's true residual is no
            // larger than the cold start's (‖b‖, up to roundoff).
            let mut ax = vec![Complex64::ZERO; n];
            if transpose {
                corner1.matvec_transpose_into(&x_rec, &mut ax);
            } else {
                corner1.matvec_into(&x_rec, &mut ax);
            }
            let r_start = ax.iter().zip(&rhs).map(|(p, q)| (*p - *q).norm_sqr()).sum::<f64>().sqrt();
            prop_assert!(
                r_start <= bnorm * (1.0 + 1e-12) + 1e-12,
                "projection worsened the start: {r_start} vs {bnorm}"
            );
            let qr = run(&corner1, &mut m, &mut x_rec, &warm, &mut ws);
            prop_assert!(qr.converged, "recycled epoch-1 solve did not converge: {qr:?}");

            // Both solutions agree with each other to tolerance.
            let err = x_rec.iter().zip(&x_cold)
                .map(|(p, q)| (*p - *q).norm_sqr()).sum::<f64>().sqrt();
            prop_assert!(
                err <= 200.0 * tol * (1.0 + xnorm(&x_cold)),
                "{} recycled/cold mismatch {err}",
                if transpose { "transpose" } else { "forward" }
            );
        }
    }

    // The optimised kernels agree with the seed's scalar reference
    // implementation (forward and transpose).
    #[test]
    fn optimised_kernels_match_scalar_reference(
        entries in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 28 * 8),
        rhs in complex_vec(28)
    ) {
        use boson_num::banded::reference;
        let n = 28;
        let a = dominant_banded(n, 4, 3, &entries);
        let fast = a.clone().factor().unwrap();
        let slow = reference::factor(a).unwrap();
        let x_fast = fast.solve_vec(&rhs);
        let mut x_slow = rhs.clone();
        reference::solve(&slow, &mut x_slow);
        for (p, q) in x_fast.iter().zip(&x_slow) {
            prop_assert!((*p - *q).abs() < 1e-9 * (1.0 + q.abs()));
        }
        let xt_fast = fast.solve_transpose_vec(&rhs);
        let mut xt_slow = rhs.clone();
        reference::solve_transpose(&slow, &mut xt_slow);
        for (p, q) in xt_fast.iter().zip(&xt_slow) {
            prop_assert!((*p - *q).abs() < 1e-9 * (1.0 + q.abs()));
        }
    }
}
