//! Cyclic Jacobi eigensolver for small dense real symmetric matrices.
//!
//! The EOLE (expansion optimal linear estimation) discretisation of the
//! etching-threshold random field needs the eigendecomposition of a modest
//! covariance matrix (tens of observation points). Cyclic Jacobi is simple,
//! unconditionally stable and more than fast enough at that size.
//!
//! # Examples
//!
//! ```
//! use boson_num::{Array2, jacobi::sym_eigen};
//!
//! let a = Array2::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
//! let eig = sym_eigen(&a, 100);
//! assert!((eig.values[0] - 3.0).abs() < 1e-12);
//! assert!((eig.values[1] - 1.0).abs() < 1e-12);
//! ```

use crate::Array2;

/// Result of [`sym_eigen`]: eigenvalues sorted descending and the matching
/// eigenvectors as columns of `vectors`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymEigen {
    /// Eigenvalues, sorted in descending order.
    pub values: Vec<f64>,
    /// `vectors.col(k)` is the unit eigenvector for `values[k]`.
    pub vectors: Array2<f64>,
}

/// Computes the full eigendecomposition of a dense real symmetric matrix by
/// cyclic Jacobi rotations.
///
/// `max_sweeps` bounds the number of full sweeps; 30–100 is plenty for the
/// matrix sizes used here (convergence is quadratic).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn sym_eigen(a: &Array2<f64>, max_sweeps: usize) -> SymEigen {
    let (n, m) = a.shape();
    assert_eq!(n, m, "sym_eigen requires a square matrix, got {n}x{m}");
    let mut w = a.clone();
    let mut v = Array2::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 });

    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += w[(p, q)] * w[(p, q)];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + frob(&w)) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = w[(p, q)];
                if apq == 0.0 {
                    continue;
                }
                let app = w[(p, p)];
                let aqq = w[(q, q)];
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation G(p,q,θ): W <- GᵀWG, V <- VG.
                for k in 0..n {
                    let wkp = w[(k, p)];
                    let wkq = w[(k, q)];
                    w[(k, p)] = c * wkp - s * wkq;
                    w[(k, q)] = s * wkp + c * wkq;
                }
                for k in 0..n {
                    let wpk = w[(p, k)];
                    let wqk = w[(q, k)];
                    w[(p, k)] = c * wpk - s * wqk;
                    w[(q, k)] = s * wpk + c * wqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| w[(i, i)]).collect();
    order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Array2::from_fn(n, n, |r, c| v[(r, order[c])]);
    SymEigen { values, vectors }
}

fn frob(a: &Array2<f64>) -> f64 {
    a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_sym(n: usize, seed: u64) -> Array2<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = Array2::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn two_by_two_closed_form() {
        let a = Array2::from_vec(2, 2, vec![3.0, 1.0, 1.0, 3.0]);
        let e = sym_eigen(&a, 50);
        assert!((e.values[0] - 4.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_residual_small() {
        for n in [3usize, 5, 10, 20] {
            let a = random_sym(n, n as u64 * 7 + 1);
            let e = sym_eigen(&a, 100);
            // A v_k = λ_k v_k for every k.
            for k in 0..n {
                let vk = e.vectors.col(k);
                let mut res = 0.0f64;
                for i in 0..n {
                    let mut av = 0.0;
                    for j in 0..n {
                        av += a[(i, j)] * vk[j];
                    }
                    res += (av - e.values[k] * vk[i]).powi(2);
                }
                assert!(res.sqrt() < 1e-9, "n={n} k={k} residual {}", res.sqrt());
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = random_sym(12, 42);
        let e = sym_eigen(&a, 100);
        for p in 0..12 {
            for q in 0..12 {
                let dot: f64 = e
                    .vectors
                    .col(p)
                    .iter()
                    .zip(e.vectors.col(q))
                    .map(|(x, y)| x * y)
                    .sum();
                let expect = if p == q { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10, "({p},{q}) dot={dot}");
            }
        }
    }

    #[test]
    fn trace_preserved() {
        let a = random_sym(8, 7);
        let e = sym_eigen(&a, 100);
        let tr: f64 = (0..8).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((tr - sum).abs() < 1e-10);
    }

    #[test]
    fn values_sorted_descending() {
        let a = random_sym(9, 123);
        let e = sym_eigen(&a, 100);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn psd_covariance_has_nonnegative_spectrum() {
        // Squared-exponential covariance matrix is positive semi-definite.
        let n = 16;
        let a = Array2::from_fn(n, n, |i, j| {
            let d = i as f64 - j as f64;
            (-d * d / 8.0).exp()
        });
        let e = sym_eigen(&a, 100);
        for &v in &e.values {
            assert!(v > -1e-10, "negative eigenvalue {v} for PSD matrix");
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let a = Array2::zeros(2, 3);
        let _ = sym_eigen(&a, 10);
    }
}
