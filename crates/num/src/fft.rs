//! Radix-2 fast Fourier transforms (1-D and 2-D).
//!
//! The lithography model performs its convolutions in the frequency domain;
//! these transforms are the only FFTs the workspace needs, so they are kept
//! deliberately simple: power-of-two lengths, iterative Cooley–Tukey with
//! precomputed twiddle factors.
//!
//! Conventions: [`fft`] computes `X[k] = Σ_n x[n] e^{-2πi nk/N}` (negative
//! exponent forward), [`ifft`] the inverse including the `1/N` factor, so
//! `ifft(fft(x)) == x`.
//!
//! # Examples
//!
//! ```
//! use boson_num::{fft::{fft, ifft}, Complex64};
//!
//! let mut x = vec![Complex64::ZERO; 8];
//! x[1] = Complex64::ONE;            // a unit impulse at n=1
//! let mut y = x.clone();
//! fft(&mut y);
//! // |X[k]| == 1 for every bin of an impulse
//! assert!(y.iter().all(|v| (v.abs() - 1.0).abs() < 1e-12));
//! ifft(&mut y);
//! for (a, b) in x.iter().zip(&y) {
//!     assert!((*a - *b).abs() < 1e-12);
//! }
//! ```

use crate::{Array2, Complex64};

/// Returns the smallest power of two `>= n` (and `>= 1`).
///
/// ```
/// assert_eq!(boson_num::fft::next_pow2(1), 1);
/// assert_eq!(boson_num::fft::next_pow2(5), 8);
/// assert_eq!(boson_num::fft::next_pow2(64), 64);
/// ```
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

fn bit_reverse_permute(x: &mut [Complex64]) {
    let n = x.len();
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            x.swap(i, j);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
}

fn fft_inner(x: &mut [Complex64], inverse: bool) {
    let n = x.len();
    assert!(n.is_power_of_two(), "fft length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(x);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        let half = len / 2;
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for k in 0..half {
                let u = x[i + k];
                let v = x[i + k + half] * w;
                x[i + k] = u + v;
                x[i + k + half] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// In-place forward FFT (negative exponent, no normalisation).
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn fft(x: &mut [Complex64]) {
    fft_inner(x, false);
}

/// In-place inverse FFT including the `1/N` normalisation.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn ifft(x: &mut [Complex64]) {
    fft_inner(x, true);
    let scale = 1.0 / x.len() as f64;
    for v in x.iter_mut() {
        *v *= scale;
    }
}

/// In-place 2-D forward FFT over an `Array2` whose dimensions are powers of
/// two: transforms all rows, then all columns.
///
/// # Panics
///
/// Panics if either dimension is not a power of two.
pub fn fft2(a: &mut Array2<Complex64>) {
    fft2_inner(a, false);
}

/// In-place 2-D inverse FFT (normalised by `1/(rows·cols)`).
///
/// # Panics
///
/// Panics if either dimension is not a power of two.
pub fn ifft2(a: &mut Array2<Complex64>) {
    fft2_inner(a, true);
}

fn fft2_inner(a: &mut Array2<Complex64>, inverse: bool) {
    let (rows, cols) = a.shape();
    assert!(
        rows.is_power_of_two() && cols.is_power_of_two(),
        "fft2 dimensions {rows}x{cols} must be powers of two"
    );
    // Rows are contiguous in memory.
    {
        let data = a.as_mut_slice();
        for r in 0..rows {
            fft_inner(&mut data[r * cols..(r + 1) * cols], inverse);
        }
    }
    // Columns via a scratch buffer.
    let mut colbuf = vec![Complex64::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            colbuf[r] = a[(r, c)];
        }
        fft_inner(&mut colbuf, inverse);
        for r in 0..rows {
            a[(r, c)] = colbuf[r];
        }
    }
    if inverse {
        // fft_inner(inverse) scaled each 1-D pass by 1/len already via ifft?
        // No: fft_inner never normalises; do the full 1/(rows*cols) here.
        let scale = 1.0 / (rows * cols) as f64;
        a.apply(|v| *v *= scale);
    }
}

/// Circular (periodic) 2-D convolution of two equally-shaped power-of-two
/// arrays, computed in the frequency domain.
///
/// # Panics
///
/// Panics if shapes differ or are not powers of two.
pub fn circular_convolve2(a: &Array2<Complex64>, b: &Array2<Complex64>) -> Array2<Complex64> {
    assert_eq!(a.shape(), b.shape(), "circular_convolve2 shape mismatch");
    let mut fa = a.clone();
    let mut fb = b.clone();
    fft2(&mut fa);
    fft2(&mut fb);
    let mut prod = fa.zip_map(&fb, |x, y| *x * *y);
    ifft2(&mut prod);
    prod
}

/// Frequency coordinate of bin `k` for an `n`-point FFT with sample pitch
/// `d`: the analogue of `numpy.fft.fftfreq`.
///
/// ```
/// use boson_num::fft::freq_coord;
/// assert_eq!(freq_coord(0, 8, 1.0), 0.0);
/// assert_eq!(freq_coord(1, 8, 1.0), 0.125);
/// assert_eq!(freq_coord(7, 8, 1.0), -0.125);
/// ```
pub fn freq_coord(k: usize, n: usize, d: f64) -> f64 {
    let kk = if k < n / 2 || n == 1 {
        k as f64
    } else {
        k as f64 - n as f64
    };
    kk / (n as f64 * d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn assert_close(a: Complex64, b: Complex64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a:?} != {b:?}");
    }

    #[test]
    fn dft_of_constant_is_delta() {
        let mut x = vec![Complex64::ONE; 16];
        fft(&mut x);
        assert_close(x[0], c64(16.0, 0.0), 1e-12);
        for v in &x[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_single_tone() {
        let n = 32;
        let k0 = 5;
        let mut x: Vec<Complex64> = (0..n)
            .map(|nn| Complex64::cis(2.0 * std::f64::consts::PI * (k0 * nn) as f64 / n as f64))
            .collect();
        fft(&mut x);
        for (k, v) in x.iter().enumerate() {
            if k == k0 {
                assert_close(*v, c64(n as f64, 0.0), 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage at bin {k}: {v:?}");
            }
        }
    }

    #[test]
    fn round_trip_1d() {
        let x: Vec<Complex64> = (0..64)
            .map(|i| c64((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn round_trip_2d() {
        let a = Array2::from_fn(8, 16, |r, c| {
            c64((r as f64 * 0.7).sin(), (c as f64 * 0.2).cos())
        });
        let mut b = a.clone();
        fft2(&mut b);
        ifft2(&mut b);
        for (idx, v) in a.indexed_iter() {
            assert_close(*v, b[idx], 1e-10);
        }
    }

    #[test]
    fn parseval_2d() {
        let a = Array2::from_fn(8, 8, |r, c| {
            c64((r * c) as f64 * 0.01, (r + c) as f64 * 0.02)
        });
        let mut f = a.clone();
        fft2(&mut f);
        let e_time: f64 = a.as_slice().iter().map(|v| v.norm_sqr()).sum();
        let e_freq: f64 = f.as_slice().iter().map(|v| v.norm_sqr()).sum::<f64>() / 64.0;
        assert!((e_time - e_freq).abs() < 1e-9 * e_time.max(1.0));
    }

    #[test]
    fn convolution_with_impulse_is_identity() {
        let a = Array2::from_fn(8, 8, |r, c| c64((r + 2 * c) as f64, 0.0));
        let mut d = Array2::zeros(8, 8);
        d[(0, 0)] = Complex64::ONE;
        let out = circular_convolve2(&a, &d);
        for (idx, v) in a.indexed_iter() {
            assert_close(*v, out[idx], 1e-9);
        }
    }

    #[test]
    fn convolution_shift_theorem() {
        // Convolving with a shifted impulse circularly shifts the input.
        let a = Array2::from_fn(8, 8, |r, c| c64((r * 8 + c) as f64, 0.0));
        let mut d = Array2::zeros(8, 8);
        d[(1, 2)] = Complex64::ONE;
        let out = circular_convolve2(&a, &d);
        for r in 0..8 {
            for c in 0..8 {
                assert_close(out[(r, c)], a[((r + 7) % 8, (c + 6) % 8)], 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut x = vec![Complex64::ZERO; 12];
        fft(&mut x);
    }

    #[test]
    fn freq_coords_symmetric() {
        let n = 16;
        let freqs: Vec<f64> = (0..n).map(|k| freq_coord(k, n, 0.5)).collect();
        assert_eq!(freqs[0], 0.0);
        assert!(freqs[1] > 0.0);
        assert!(freqs[n - 1] < 0.0);
        assert!((freqs[1] + freqs[n - 1]).abs() < 1e-15);
    }
}
