//! Process-lifetime parallel substrate: long-lived workers, deterministic
//! contiguous-chunk parallel-for, allocation-free steady-state dispatch.
//!
//! Every parallel stage of the solver stack — the fused (corner × ω)
//! preconditioner half-sweeps, the multigrid column chunks, the per-column
//! Krylov stages, the runner's direct corner fan-out — runs on **one**
//! pool of workers spawned once per process ([`global`]). The scoped-spawn
//! generation this replaces paid a fresh `std::thread::scope` (thread
//! creation, stack setup, join) per preconditioner half-sweep — hundreds
//! of spawns per robust iteration; pool dispatch costs a mutex hand-off
//! and a condvar wake instead, and performs **zero heap allocations**, so
//! it composes with the workspace discipline of the rest of the stack
//! (see `crates/fdfd/tests/zero_alloc.rs`).
//!
//! # Determinism contract
//!
//! **Worker count never changes results.** Callers decompose work into
//! *parts* (contiguous column chunks, independent jobs) whose content is
//! determined by the caller alone; the pool only decides *which thread*
//! executes each part. Every solver-stack task keeps parts data-disjoint
//! and order-independent, so any lane count — including the serial
//! fallback — is bit-identical. The `BOSON_THREADS` environment variable
//! (see [`env_threads`]) therefore only tunes throughput, never output.
//!
//! # Dispatch shape
//!
//! [`WorkPool::run`]`(parts, max_lanes, f)` executes `f(lane, part)` for
//! every `part < parts`, exactly once each. Participating lanes are the
//! caller (lane 0) plus up to `max_lanes − 1` workers; each lane pulls
//! parts off a shared atomic ticket, so uneven parts load-balance
//! dynamically while each *lane index* stays owned by exactly one OS
//! thread for the duration of the dispatch (what makes lane-indexed
//! scratch sound). The call blocks until every part has retired; panics
//! inside `f` are caught, the first is re-raised on the caller after the
//! dispatch drains — a loud failure, never a hung run.
//!
//! Dispatch is intentionally single-flight: a `run` issued while another
//! is in flight (or from inside a worker) executes inline on the calling
//! thread — by the determinism contract the results are identical, so
//! nesting degrades throughput, never correctness.
//!
//! # Examples
//!
//! ```
//! use boson_num::pool;
//!
//! // Square 8 numbers in parallel parts; any worker count gives the
//! // same result.
//! let mut data: Vec<u64> = (0..8).collect();
//! let pool = pool::global();
//! pool.chunks_with(&mut data, 2, &mut [(), (), (), ()], |_part, chunk, _ctx| {
//!     for v in chunk {
//!         *v *= *v;
//!     }
//! });
//! assert_eq!(data, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::cell::Cell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

// Sync primitives come through the facade so the `model-check` build can
// swap in `boson_check`'s scheduler-driven shims (see `crate::sync`).
use crate::sync::{spawn_named, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering};

/// The published unit of one dispatch: the erased task closure plus its
/// part/lane budget. Copied into each participating lane.
#[derive(Clone, Copy)]
struct Job {
    /// Borrowed task with its lifetime erased; the dispatcher keeps the
    /// closure alive until every participant has left `run_parts`.
    task: *const (dyn Fn(usize, usize) + Sync),
    parts: usize,
    lanes: usize,
}

// SAFETY: the only non-Send field is the raw task pointer. Its pointee
// is `Sync` (concurrent calls from many lanes are its declared
// contract), it is only ever *called*, never mutated through, and the
// dispatcher keeps the borrow alive until every participant has left
// `run_parts` (see `WorkPool::run`), so shipping the pointer to worker
// threads cannot outlive or alias anything.
unsafe impl Send for Job {}

struct DispatchState {
    /// Bumped per dispatch so sleeping workers can tell a fresh job from
    /// the one they already finished.
    generation: u64,
    job: Option<Job>,
    /// First panic payload raised inside a part, re-raised by the
    /// dispatcher once the dispatch has drained.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<DispatchState>,
    /// Wakes sleeping workers when a job is published (or on shutdown).
    work_cv: Condvar,
    /// Wakes the dispatcher when the last part retires and the last
    /// worker leaves the dispatch.
    done_cv: Condvar,
    /// Next unclaimed part ticket of the current job.
    next: AtomicUsize,
    /// Parts published but not yet completed.
    remaining: AtomicUsize,
    /// Worker lanes currently inside `run_parts` (the caller is not
    /// counted — it cannot start the next dispatch early).
    active: AtomicUsize,
}

impl Inner {
    /// Locks the dispatch state; a poisoned lock is impossible to reach
    /// with work panics caught in `run_parts`, but recover anyway rather
    /// than hanging the solver on a secondary panic.
    fn lock(&self) -> MutexGuard<'_, DispatchState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

thread_local! {
    /// Set on pool worker threads: a nested `run` from inside a part
    /// executes inline instead of deadlocking on its own pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A process-lifetime worker pool. Use [`global`] for the shared
/// instance; the solver stack assumes one pool per process.
pub struct WorkPool {
    inner: Arc<Inner>,
    /// Background worker threads (lanes `1..=workers`).
    workers: usize,
}

impl WorkPool {
    /// Spawns `threads − 1` background workers (the caller is always a
    /// lane). `threads == 1` spawns none: every dispatch runs inline.
    fn new(threads: usize) -> Self {
        let workers = threads.saturating_sub(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(DispatchState {
                generation: 0,
                job: None,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
        });
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            spawn_named(&format!("boson-pool-{}", w + 1), move || {
                worker_loop(&inner, w + 1)
            });
        }
        Self { inner, workers }
    }

    /// Builds a private pool with `threads` lanes (the caller plus
    /// `threads − 1` spawned workers). The solver stack always uses
    /// [`global`]; private instances exist for tests and for the model
    /// checker, which must construct a fresh pool inside every explored
    /// execution.
    pub fn with_threads(threads: usize) -> Self {
        Self::new(threads)
    }

    /// Total lanes: the caller plus the background workers.
    pub fn lanes(&self) -> usize {
        self.workers + 1
    }

    /// Executes `f(lane, part)` for every `part < parts`, exactly once
    /// each, on up to `max_lanes` lanes (capped by [`WorkPool::lanes`]);
    /// lane 0 is the calling thread, which always participates. Blocks
    /// until every part has retired. Allocation-free on the steady path.
    ///
    /// Each lane index is owned by exactly one OS thread per dispatch, so
    /// `f` may safely address lane-indexed scratch; parts are claimed
    /// dynamically off a shared ticket, so part→lane assignment is *not*
    /// deterministic — only part content may determine results (the
    /// determinism contract above).
    ///
    /// # Panics
    ///
    /// Re-raises the first panic that occurred inside `f`, after the
    /// dispatch has drained.
    pub fn run(&self, parts: usize, max_lanes: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        if parts == 0 {
            return;
        }
        let lanes = max_lanes.min(self.lanes());
        if self.workers == 0 || lanes <= 1 || parts == 1 || IN_WORKER.with(Cell::get) {
            // Serial fallback: no workers, a degenerate shape, or a
            // nested dispatch from inside a part. Bit-identical by the
            // determinism contract.
            for part in 0..parts {
                f(0, part);
            }
            return;
        }
        // SAFETY: only the lifetime is erased — the pointee type is
        // unchanged. `run` does not return until `remaining` and
        // `active` both reach zero, i.e. until every lane has left
        // `run_parts`, so the borrow of `f` strictly outlives every
        // dereference of the erased pointer.
        let task: *const (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(f) };
        let job = Job { task, parts, lanes };
        {
            let mut st = self.inner.lock();
            if st.job.is_some() {
                // Another dispatch is in flight (concurrent runs sharing
                // the pool): run inline rather than queueing — identical
                // results, and the busy dispatch keeps its workers.
                drop(st);
                for part in 0..parts {
                    f(0, part);
                }
                return;
            }
            // Relaxed: both stores are published to workers by the
            // release of the state mutex below (the job is invisible
            // until `st.job` is set), so no extra ordering is needed.
            self.inner.next.store(0, Ordering::Relaxed);
            self.inner.remaining.store(parts, Ordering::Relaxed);
            st.generation = st.generation.wrapping_add(1);
            st.job = Some(job);
            self.inner.work_cv.notify_all();
        }
        // The caller is lane 0 and helps drain the ticket.
        run_parts(&self.inner, job, 0);
        let mut st = self.inner.lock();
        while self.inner.remaining.load(Ordering::Acquire) != 0
            || self.inner.active.load(Ordering::Acquire) != 0
        {
            st = self
                .inner
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        let payload = st.panic.take();
        drop(st);
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Deterministic contiguous-chunk parallel-for with per-part context:
    /// splits `data` into `⌈data.len() / chunk_len⌉` contiguous chunks
    /// (the last may be short) and executes `f(part, chunk, &mut
    /// ctx[part])` for each, in parallel on the pool. The chunk
    /// decomposition depends only on the arguments — never on the worker
    /// count — which is what keeps any lane count bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0` or `ctx` has fewer entries than chunks,
    /// and re-raises the first panic that occurred inside `f`.
    pub fn chunks_with<T: Send, C: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        ctx: &mut [C],
        f: impl Fn(usize, &mut [T], &mut C) + Sync,
    ) {
        assert!(chunk_len > 0, "chunks_with needs a positive chunk length");
        if data.is_empty() {
            return;
        }
        let parts = data.len().div_ceil(chunk_len);
        assert!(
            ctx.len() >= parts,
            "chunks_with: {} context slots for {parts} chunks",
            ctx.len()
        );
        if parts == 1 {
            f(0, data, &mut ctx[0]);
            return;
        }
        let dlen = data.len();
        let data = DisjointSlots::new(data);
        let ctx = DisjointSlots::new(ctx);
        self.run(parts, parts, &|_lane, part| {
            let start = part * chunk_len;
            let len = chunk_len.min(dlen - start);
            // SAFETY: chunk ranges `part * chunk_len ..` are pairwise
            // disjoint by construction, context slots are indexed by
            // `part`, and the pool executes every part exactly once —
            // so no two lanes ever touch the same element.
            unsafe { f(part, data.slice(start, len), data_ctx(&ctx, part)) }
        });
    }
}

/// Helper keeping the unsafe context access one expression (borrowck
/// cannot see through the closure otherwise).
///
/// # Safety
///
/// `part` must be in bounds and accessed by at most one lane at a time.
// The &self -> &mut is the whole point of DisjointSlots: exclusivity
// comes from the caller's disjointness contract, not the borrow checker.
#[allow(clippy::mut_from_ref)]
#[track_caller]
unsafe fn data_ctx<'a, C>(ctx: &'a DisjointSlots<'_, C>, part: usize) -> &'a mut C {
    // SAFETY: forwarded contract — the caller guarantees `part` is in
    // bounds and lane-exclusive.
    unsafe { ctx.get(part) }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        let mut st = self.inner.lock();
        st.shutdown = true;
        self.inner.work_cv.notify_all();
    }
}

/// One lane's share of a dispatch: pull part tickets until the job is
/// drained, catching panics so the dispatcher can re-raise them.
fn run_parts(inner: &Inner, job: Job, lane: usize) {
    // SAFETY: the dispatcher blocks in `WorkPool::run` until every lane
    // has left this function, so the erased closure borrow is live for
    // the whole loop (see the transmute in `run`).
    let task = unsafe { &*job.task };
    loop {
        // Relaxed: the ticket is a pure claim counter — each lane only
        // needs a unique part index, and the part data it guards was
        // published by the state-mutex release in `run`.
        let part = inner.next.fetch_add(1, Ordering::Relaxed);
        if part >= job.parts {
            break;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| task(lane, part)));
        if let Err(payload) = outcome {
            let mut st = inner.lock();
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        if inner.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last part retired: wake the dispatcher (lock ordering with
            // its predicate check prevents a missed wakeup).
            let _guard = inner.lock();
            inner.done_cv.notify_all();
        }
    }
}

fn worker_loop(inner: &Inner, lane: usize) {
    IN_WORKER.with(|w| w.set(true));
    let mut seen = 0u64;
    loop {
        let job = 'wait: {
            let mut st = inner.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.job {
                    if st.generation != seen {
                        seen = st.generation;
                        if lane < job.lanes {
                            inner.active.fetch_add(1, Ordering::AcqRel);
                            break 'wait job;
                        }
                        // Over this dispatch's lane budget: sleep until
                        // the next generation.
                    }
                }
                st = inner.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        run_parts(inner, job, lane);
        if inner.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = inner.lock();
            inner.done_cv.notify_all();
        }
    }
}

/// The process-wide pool, built on first use with
/// [`default_threads`] lanes and alive until process exit. Steady-state
/// solver iterations spawn **zero** threads: every parallel stage
/// dispatches here.
pub fn global() -> &'static WorkPool {
    static POOL: OnceLock<WorkPool> = OnceLock::new();
    POOL.get_or_init(|| WorkPool::new(default_threads()))
}

/// Lane count of the process-wide pool: `BOSON_THREADS` when set (see
/// [`env_threads`]), the host's available parallelism otherwise.
pub fn default_threads() -> usize {
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The `BOSON_THREADS` override: lane count for the process-wide pool
/// (and the default worker count of `boson_core`'s `RunnerConfig`).
///
/// Worker count **never changes results** — every parallel decomposition
/// in the stack is bit-identical at any lane count — so this knob only
/// trades latency for cores. An unparseable or zero value is a loud
/// failure (panic), never a silent serial fallback: a typo'd
/// `BOSON_THREADS=O4` silently running serial would look exactly like a
/// performance regression.
///
/// # Panics
///
/// Panics if `BOSON_THREADS` is set but not an integer ≥ 1.
pub fn env_threads() -> Option<usize> {
    std::env::var("BOSON_THREADS")
        .ok()
        .map(|raw| parse_threads(&raw))
}

/// Parses a `BOSON_THREADS` value; split out of [`env_threads`] so the
/// loud-failure contract is testable without mutating the process
/// environment.
fn parse_threads(raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(t) if t >= 1 => t,
        _ => panic!(
            "BOSON_THREADS must be an integer >= 1, got {raw:?} \
             (worker count never changes results -- it only sets how many \
             lanes the parallel substrate uses; unset it for the host's \
             available parallelism)"
        ),
    }
}

/// Raw per-index mutable access to a slice from multiple lanes — the
/// escape hatch parallel stages use to write disjoint columns/slots of a
/// shared buffer without partitioning it into Rust-visible sub-borrows.
///
/// Constructing one is safe (it holds the exclusive borrow); every
/// access is `unsafe` because the *caller* guarantees disjointness:
/// each index (or range) may be touched by at most one lane at a time.
///
/// In debug builds every access additionally records a claim
/// (`start..start + len`, claiming thread, call site) and panics —
/// reporting **both** claim sites — when a claim from a *different*
/// thread overlaps one already recorded, turning the contract into a
/// checked one. Claims persist for the object's lifetime (the stack
/// scopes one `DisjointSlots` per dispatch, where every slot is touched
/// at most once), so same-slot re-claims from the same thread are legal
/// and deduplicated, while cross-thread overlap — the actual data race —
/// fails loudly. Release builds carry no claim state and no cost.
pub struct DisjointSlots<'a, T> {
    ptr: *mut T,
    len: usize,
    /// Debug-only claim log. `std::sync` deliberately, not the facade:
    /// the detector must not add model-checker branch points. The `Vec`
    /// is recycled through [`claim_log`] so steady-state dispatches
    /// allocate nothing even in debug builds.
    #[cfg(debug_assertions)]
    claims: std::sync::Mutex<Vec<Claim>>,
    _marker: PhantomData<&'a mut [T]>,
}

/// One recorded debug-mode access: which range, by which thread, from
/// which call site.
#[cfg(debug_assertions)]
struct Claim {
    start: usize,
    len: usize,
    thread: u64,
    site: &'static std::panic::Location<'static>,
}

/// Debug-only free list recycling claim logs across [`DisjointSlots`]
/// lifetimes: a dispatch's log capacity is paid once during warm-up and
/// reused by every later dispatch, so the detector honours the
/// steady-state zero-allocation contract even in debug builds (where
/// the counting-allocator suites also run).
#[cfg(debug_assertions)]
mod claim_log {
    use super::Claim;
    use std::sync::Mutex;

    static FREE: Mutex<Vec<Vec<Claim>>> = Mutex::new(Vec::new());

    pub(super) fn take() -> Vec<Claim> {
        FREE.lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    pub(super) fn give(mut log: Vec<Claim>) {
        log.clear();
        FREE.lock().unwrap_or_else(|e| e.into_inner()).push(log);
    }
}

/// Stable per-thread key for claim records (`std::thread::ThreadId`
/// cannot be turned into an integer on stable).
#[cfg(debug_assertions)]
fn claim_thread_id() -> u64 {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        // Relaxed: the counter only needs uniqueness, not ordering —
        // every thread gets a distinct value from the same RMW.
        static ID: u64 = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

// SAFETY: access is externally synchronised by the disjointness contract
// of the unsafe accessors (checked in debug builds by the claim log);
// `T: Send` because elements are mutated from whichever lane claims
// them. The raw pointer is the only reason these impls are not derived.
unsafe impl<T: Send> Sync for DisjointSlots<'_, T> {}
// SAFETY: as above — the wrapper owns an exclusive borrow and hands out
// element access only under the caller's disjointness contract.
unsafe impl<T: Send> Send for DisjointSlots<'_, T> {}

#[cfg(debug_assertions)]
impl<T> Drop for DisjointSlots<'_, T> {
    fn drop(&mut self) {
        let log = std::mem::take(self.claims.get_mut().unwrap_or_else(|e| e.into_inner()));
        claim_log::give(log);
    }
}

impl<'a, T> DisjointSlots<'a, T> {
    /// Wraps an exclusive slice borrow for lane-disjoint access.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            #[cfg(debug_assertions)]
            claims: std::sync::Mutex::new(claim_log::take()),
            _marker: PhantomData,
        }
    }

    /// Slot count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Debug-only overlap detector: panics (reporting both call sites)
    /// when `start..start + len` intersects a range claimed by another
    /// thread on this object.
    #[cfg(debug_assertions)]
    #[track_caller]
    fn claim(&self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        let site = std::panic::Location::caller();
        let thread = claim_thread_id();
        let mut claims = self.claims.lock().unwrap_or_else(|e| e.into_inner());
        for c in claims.iter() {
            if c.thread != thread && start < c.start + c.len && c.start < start + len {
                panic!(
                    "DisjointSlots overlap: {start}..{} claimed at {site} \
                     collides with {}..{} claimed at {} by another thread",
                    start + len,
                    c.start,
                    c.start + c.len,
                    c.site,
                );
            }
        }
        // Dedup exact same-thread repeats (lane-indexed slots are
        // re-claimed once per part) so the log stays bounded.
        if !claims
            .iter()
            .any(|c| c.thread == thread && c.start == start && c.len == len)
        {
            claims.push(Claim {
                start,
                len,
                thread,
                site,
            });
        }
    }

    /// Exclusive access to slot `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and accessed by at most one lane at a time;
    /// no access may overlap a [`DisjointSlots::slice`] range containing
    /// `i`.
    #[allow(clippy::mut_from_ref)] // disjointness is the caller's contract
    #[track_caller]
    pub unsafe fn get(&self, i: usize) -> &mut T {
        debug_assert!(
            i < self.len,
            "DisjointSlots::get: slot {i} out of bounds (len {})",
            self.len
        );
        #[cfg(debug_assertions)]
        self.claim(i, 1);
        // SAFETY: `i < len` puts the offset inside the wrapped
        // allocation, and the caller's disjointness contract (claim-
        // checked in debug builds) rules out an aliasing `&mut`.
        unsafe { &mut *self.ptr.add(i) }
    }

    /// Exclusive access to the range `start..start + len`.
    ///
    /// # Safety
    ///
    /// The range must be in bounds and disjoint from every range or slot
    /// concurrently accessed by other lanes.
    #[allow(clippy::mut_from_ref)] // disjointness is the caller's contract
    #[track_caller]
    pub unsafe fn slice(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(
            start <= self.len && len <= self.len - start,
            "DisjointSlots::slice: range {start} (+{len}) out of bounds (len {})",
            self.len
        );
        #[cfg(debug_assertions)]
        self.claim(start, len);
        // SAFETY: the range lies inside the wrapped allocation (checked
        // above in debug builds; guaranteed by the caller always), and
        // the disjointness contract rules out overlapping `&mut` slices.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A private multi-lane pool for tests (the global pool's size
    /// depends on the host/environment).
    fn pool(threads: usize) -> WorkPool {
        WorkPool::new(threads)
    }

    #[test]
    fn run_executes_every_part_exactly_once() {
        let p = pool(4);
        for parts in [1usize, 2, 3, 7, 64, 257] {
            let hits: Vec<AtomicUsize> = (0..parts).map(|_| AtomicUsize::new(0)).collect();
            p.run(parts, usize::MAX, &|_lane, part| {
                hits[part].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "parts = {parts}"
            );
        }
    }

    #[test]
    fn lane_indices_stay_within_budget() {
        let p = pool(8);
        let max_lane = AtomicUsize::new(0);
        p.run(64, 3, &|lane, _part| {
            max_lane.fetch_max(lane, Ordering::Relaxed);
            std::thread::yield_now();
        });
        assert!(max_lane.load(Ordering::Relaxed) < 3);
    }

    #[test]
    fn chunks_with_is_deterministic_at_any_worker_count() {
        let serial = {
            let mut data: Vec<u64> = (0..1000).collect();
            for v in &mut data {
                *v = v.wrapping_mul(*v) ^ 0x5bd1e995;
            }
            data
        };
        for threads in [1usize, 2, 8] {
            let p = pool(threads);
            let mut data: Vec<u64> = (0..1000).collect();
            let mut ctx = vec![(); 16];
            p.chunks_with(&mut data, 64, &mut ctx, |_part, chunk, _| {
                for v in chunk {
                    *v = v.wrapping_mul(*v) ^ 0x5bd1e995;
                }
            });
            assert_eq!(data, serial, "threads = {threads}");
        }
    }

    #[test]
    fn chunks_with_gives_each_part_its_own_context() {
        let p = pool(4);
        let mut data = vec![1u64; 90];
        let mut ctx = vec![0u64; 9];
        p.chunks_with(&mut data, 10, &mut ctx, |part, chunk, acc| {
            *acc += chunk.iter().sum::<u64>() + part as u64;
        });
        let expected: Vec<u64> = (0..9).map(|part| 10 + part).collect();
        assert_eq!(ctx, expected);
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let p = pool(4);
        let total = AtomicU64::new(0);
        p.run(4, usize::MAX, &|_lane, part| {
            // A dispatch from inside a part must not deadlock on the
            // (busy) pool; it runs inline.
            let inner_sum = AtomicU64::new(0);
            global().run(3, usize::MAX, &|_l, q| {
                inner_sum.fetch_add(q as u64, Ordering::Relaxed);
            });
            total.fetch_add(
                part as u64 + inner_sum.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        });
        // Outer parts contribute 0+1+2+3; each adds the inner sum 0+1+2.
        assert_eq!(total.load(Ordering::Relaxed), (1 + 2 + 3) + 4 * 3);
    }

    #[test]
    fn pool_survives_many_dispatch_generations() {
        let p = pool(3);
        let mut acc = vec![0u64; 32];
        for round in 0..200u64 {
            let slots = DisjointSlots::new(&mut acc);
            // SAFETY: each part touches only slot `part`, and parts run
            // exactly once each — accesses are disjoint across lanes.
            p.run(32, usize::MAX, &|_lane, part| unsafe {
                *slots.get(part) += round;
            });
        }
        let expected: u64 = (0..200).sum();
        assert!(acc.iter().all(|&v| v == expected));
    }

    #[test]
    #[should_panic(expected = "part 13 exploded")]
    fn part_panic_propagates_to_dispatcher() {
        let p = pool(4);
        p.run(32, usize::MAX, &|_lane, part| {
            if part == 13 {
                panic!("part 13 exploded");
            }
        });
    }

    #[test]
    fn pool_usable_after_a_panicked_dispatch() {
        let p = pool(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.run(8, usize::MAX, &|_lane, part| {
                if part == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        let count = AtomicUsize::new(0);
        p.run(8, usize::MAX, &|_lane, _part| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn serial_pool_runs_everything_on_the_caller() {
        let p = pool(1);
        let caller = std::thread::current().id();
        let ok = AtomicUsize::new(0);
        p.run(16, usize::MAX, &|lane, _part| {
            assert_eq!(lane, 0);
            assert_eq!(std::thread::current().id(), caller);
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), 1);
        assert_eq!(parse_threads(" 8 "), 8);
    }

    #[test]
    #[should_panic(expected = "BOSON_THREADS must be an integer >= 1")]
    fn parse_threads_rejects_zero_loudly() {
        parse_threads("0");
    }

    #[test]
    #[should_panic(expected = "BOSON_THREADS must be an integer >= 1")]
    fn parse_threads_rejects_garbage_loudly() {
        parse_threads("O4");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn disjoint_claims_from_distinct_threads_pass() {
        let mut data = vec![0u64; 8];
        {
            let slots = DisjointSlots::new(&mut data);
            std::thread::scope(|s| {
                let slots = &slots;
                s.spawn(move || {
                    // SAFETY: this thread touches only slots 0..4, the
                    // main thread only 4..8 — disjoint by construction.
                    unsafe {
                        *slots.get(0) = 1;
                        slots.slice(1, 3).fill(2);
                    }
                });
                // SAFETY: see above — 4..8 is disjoint from 0..4.
                unsafe {
                    *slots.get(4) = 3;
                    slots.slice(5, 3).fill(4);
                }
            });
        }
        assert_eq!(data, vec![1, 2, 2, 2, 3, 4, 4, 4]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "DisjointSlots overlap")]
    fn overlapping_claims_from_two_threads_are_detected() {
        let mut data = vec![0u64; 8];
        let slots = DisjointSlots::new(&mut data);
        std::thread::scope(|s| {
            let slots = &slots;
            s.spawn(move || {
                // SAFETY: sole access at this point; the claim (slot 2)
                // is what the main thread's range below must collide
                // with. The spawned thread is joined by the scope before
                // the colliding claim, so the accesses are temporally
                // disjoint — the detector is deliberately conservative:
                // claims persist for the object's lifetime.
                unsafe {
                    *slots.get(2) = 1;
                }
            });
        });
        // SAFETY: in-bounds; the cross-thread overlap with slot 2 is the
        // contract violation this test wants detected.
        unsafe {
            slots.slice(0, 4);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_fails_loudly_in_debug() {
        let mut data = vec![0u64; 4];
        let slots = DisjointSlots::new(&mut data);
        // SAFETY: never reached — the debug bounds check panics before
        // any raw-pointer arithmetic happens.
        unsafe {
            slots.get(4);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_fails_loudly_in_debug() {
        let mut data = vec![0u64; 4];
        let slots = DisjointSlots::new(&mut data);
        // SAFETY: never reached — the debug bounds check panics before
        // any raw-pointer arithmetic happens (including the `start + len`
        // overflow case, which the checked form rejects).
        unsafe {
            slots.slice(3, usize::MAX);
        }
    }
}
