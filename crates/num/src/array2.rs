//! Dense row-major 2-D arrays.
//!
//! [`Array2`] is the workhorse container for fields, permittivity maps,
//! masks and intensity images throughout the stack. Indexing is
//! `(row, col)` = `(y, x)` — row `j` selects a *y* position, column `i`
//! selects an *x* position, matching image conventions used by the
//! lithography model.
//!
//! # Examples
//!
//! ```
//! use boson_num::Array2;
//!
//! let mut a = Array2::zeros(2, 3);
//! a[(1, 2)] = 5.0;
//! assert_eq!(a.rows(), 2);
//! assert_eq!(a.cols(), 3);
//! assert_eq!(a[(1, 2)], 5.0);
//! let b = a.map(|v| v * 2.0);
//! assert_eq!(b[(1, 2)], 10.0);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

use crate::Complex64;

/// A dense, row-major 2-D array.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Array2<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Array2<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Array2 {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            let cshow = self.cols.min(8);
            write!(f, "  ")?;
            for c in 0..cshow {
                write!(f, "{:?} ", self.data[r * self.cols + c])?;
            }
            if cshow < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl<T: Clone + Default> Array2<T> {
    /// Creates an array of the given shape filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T: Clone> Array2<T> {
    /// Creates an array filled with copies of `fill`.
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }

    /// Builds an array from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Array2::from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds an array by evaluating `f(row, col)` at every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Returns an owned copy of the `r`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> Vec<T> {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        self.data[r * self.cols..(r + 1) * self.cols].to_vec()
    }

    /// Returns an owned copy of the `c`-th column.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<T> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c].clone())
            .collect()
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)].clone())
    }

    /// Extracts the rectangular sub-array with rows `r0..r0+h`, cols `c0..c0+w`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the array bounds.
    pub fn window(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "window out of bounds"
        );
        Self::from_fn(h, w, |r, c| self[(r0 + r, c0 + c)].clone())
    }

    /// Writes `src` into this array with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not fit.
    pub fn paste(&mut self, r0: usize, c0: usize, src: &Array2<T>) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "paste out of bounds"
        );
        for r in 0..src.rows {
            for c in 0..src.cols {
                self[(r0 + r, c0 + c)] = src[(r, c)].clone();
            }
        }
    }
}

impl<T> Array2<T> {
    /// Number of rows (the *y* extent).
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the *x* extent).
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the array has no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(rows, cols)` pair.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major view of the underlying data.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying data.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the array and returns the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element-wise map producing a new array.
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> Array2<U> {
        Array2 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Element-wise combination of two equally-shaped arrays.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map<U, V>(&self, other: &Array2<U>, f: impl Fn(&T, &U) -> V) -> Array2<V> {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Array2 {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(a, b))
                .collect(),
        }
    }

    /// Applies `f` in place to every element.
    pub fn apply(&mut self, f: impl Fn(&mut T)) {
        for v in &mut self.data {
            f(v);
        }
    }

    /// Iterates over `((row, col), &value)` pairs in row-major order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = ((usize, usize), &T)> {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(k, v)| ((k / cols, k % cols), v))
    }
}

impl Array2<f64> {
    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements; `0.0` for empty arrays.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Largest element; `-inf` for empty arrays.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest element; `+inf` for empty arrays.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// L2 norm of the flattened array.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Promotes to a complex array with zero imaginary part.
    pub fn to_complex(&self) -> Array2<Complex64> {
        self.map(|&v| Complex64::from_real(v))
    }
}

impl Array2<Complex64> {
    /// Sum of all elements.
    pub fn sum_c(&self) -> Complex64 {
        self.data.iter().copied().sum()
    }

    /// Element-wise squared magnitudes.
    pub fn norm_sqr_map(&self) -> Array2<f64> {
        self.map(|v| v.norm_sqr())
    }

    /// Real parts.
    pub fn re_map(&self) -> Array2<f64> {
        self.map(|v| v.re)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt()
    }
}

impl<T> Index<(usize, usize)> for Array2<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Array2<T> {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Copy + Add<Output = T>> Add for &Array2<T> {
    type Output = Array2<T>;
    fn add(self, rhs: Self) -> Array2<T> {
        self.zip_map(rhs, |&a, &b| a + b)
    }
}

impl<T: Copy + Sub<Output = T>> Sub for &Array2<T> {
    type Output = Array2<T>;
    fn sub(self, rhs: Self) -> Array2<T> {
        self.zip_map(rhs, |&a, &b| a - b)
    }
}

impl<T: Copy + Mul<Output = T>> Mul for &Array2<T> {
    type Output = Array2<T>;
    fn mul(self, rhs: Self) -> Array2<T> {
        self.zip_map(rhs, |&a, &b| a * b)
    }
}

impl<T: Copy + AddAssign> AddAssign<&Array2<T>> for Array2<T> {
    fn add_assign(&mut self, rhs: &Array2<T>) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    #[test]
    fn construction_and_shape() {
        let a: Array2<f64> = Array2::zeros(3, 4);
        assert_eq!(a.shape(), (3, 4));
        assert_eq!(a.len(), 12);
        assert!(!a.is_empty());
        let b = Array2::filled(2, 2, 7.0);
        assert_eq!(b.sum(), 28.0);
    }

    #[test]
    fn from_fn_row_major_order() {
        let a = Array2::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(a[(1, 2)], 12.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        let _ = Array2::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn rows_cols_extraction() {
        let a = Array2::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(a.row(1), vec![2.0, 3.0]);
        assert_eq!(a.col(0), vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Array2::from_fn(3, 5, |r, c| (r * 100 + c) as f64);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn window_and_paste_round_trip() {
        let a = Array2::from_fn(6, 6, |r, c| (r * 6 + c) as f64);
        let w = a.window(2, 3, 2, 2);
        assert_eq!(w[(0, 0)], a[(2, 3)]);
        let mut b: Array2<f64> = Array2::zeros(6, 6);
        b.paste(2, 3, &w);
        assert_eq!(b[(3, 4)], a[(3, 4)]);
        assert_eq!(b[(0, 0)], 0.0);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Array2::filled(2, 2, 3.0);
        let b = Array2::filled(2, 2, 4.0);
        let c = a.zip_map(&b, |x, y| x * y);
        assert_eq!(c.sum(), 48.0);
        let d = c.map(|v| v - 12.0);
        assert_eq!(d.sum(), 0.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Array2::filled(2, 2, 1.5);
        let b = Array2::filled(2, 2, 0.5);
        assert_eq!((&a + &b).sum(), 8.0);
        assert_eq!((&a - &b).sum(), 4.0);
        assert_eq!((&a * &b).sum(), 3.0);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.sum(), 8.0);
    }

    #[test]
    fn complex_helpers() {
        let a = Array2::filled(2, 2, c64(3.0, 4.0));
        assert_eq!(a.norm_sqr_map().sum(), 100.0);
        assert_eq!(a.sum_c(), c64(12.0, 16.0));
        assert!((a.norm() - 10.0).abs() < 1e-12);
        let r = Array2::filled(1, 2, 2.0).to_complex();
        assert_eq!(r[(0, 1)], c64(2.0, 0.0));
    }

    #[test]
    fn stats_on_reals() {
        let a = Array2::from_vec(1, 4, vec![1.0, -2.0, 3.0, 0.0]);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.mean(), 0.5);
        assert!((a.norm() - (14.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn indexed_iter_covers_all() {
        let a = Array2::from_fn(2, 2, |r, c| r + c);
        let collected: Vec<_> = a.indexed_iter().map(|((r, c), &v)| (r, c, v)).collect();
        assert_eq!(collected, vec![(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 2)]);
    }
}
