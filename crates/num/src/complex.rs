//! A minimal, fast double-precision complex scalar.
//!
//! The BOSON-1 stack needs complex arithmetic in exactly one flavour
//! (`f64` real/imaginary parts), so instead of pulling an external crate we
//! provide [`Complex64`] here with the full set of operations the solvers
//! use: field arithmetic, conjugation, magnitude, exponential and square
//! root.
//!
//! # Examples
//!
//! ```
//! use boson_num::Complex64;
//!
//! let a = Complex64::new(1.0, 2.0);
//! let b = Complex64::new(3.0, -1.0);
//! let c = a * b + Complex64::I;
//! assert_eq!(c, Complex64::new(5.0, 6.0));
//! assert!((a * a.conj()).re - a.norm_sqr() < 1e-15);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// Implements all field operations, mixed operations with `f64`, and the
/// transcendental functions needed by the FDFD and lithography kernels.
#[derive(Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Convenience constructor mirroring the `num_complex` idiom.
///
/// ```
/// use boson_num::{c64, Complex64};
/// assert_eq!(c64(1.0, -2.0), Complex64::new(1.0, -2.0));
/// ```
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Complex conjugate `re - i·im`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness against
    /// overflow/underflow in the squares.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians in `(-π, π]`.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `self` is zero, matching IEEE
    /// division semantics.
    #[inline(always)]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z = e^re (cos im + i sin im)`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        c64(r * self.im.cos(), r * self.im.sin())
    }

    /// `e^{iθ}` for real θ — the unit phasor used throughout the FFT and
    /// source phasing code.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        c64(theta.cos(), theta.sin())
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let m = self.abs();
        let re = ((m + self.re) * 0.5).max(0.0).sqrt();
        let im = ((m - self.re) * 0.5).max(0.0).sqrt();
        c64(re, if self.im >= 0.0 { im } else { -im })
    }

    /// Raises to a small integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Self::ONE;
        }
        let mut base = if n < 0 { self.inv() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Self::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }

    /// `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}i",
            self.re,
            if self.im < 0.0 { "-" } else { "+" },
            self.im.abs()
        )
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        c64(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: f64) -> Self {
        c64(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: f64) -> Self {
        c64(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        c64(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl Add<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        rhs + self
    }
}

impl Sub<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        c64(self - rhs.re, -rhs.im)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs * self
    }
}

impl Div<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: Complex64) -> Complex64 {
        Complex64::from_real(self) / rhs
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + *b)
    }
}

// ---------------------------------------------------------------------------
// Slice kernels
//
// The innermost loops of the banded LU (rank-1 trailing updates and
// triangular substitutions) spend all their time in three BLAS-1 shapes.
// Writing them once here over exact-length slices keeps every caller free
// of bounds checks in the hot loop and gives the compiler a single place
// to vectorise the interleaved re/im arithmetic.
// ---------------------------------------------------------------------------

/// `y[i] -= a·x[i]` over exact-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn axpy_neg(a: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "axpy_neg length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        yi.re -= xi.re * a.re - xi.im * a.im;
        yi.im -= xi.re * a.im + xi.im * a.re;
    }
}

/// `y[i] += a·x[i]` over exact-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(a: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        yi.re += xi.re * a.re - xi.im * a.im;
        yi.im += xi.re * a.im + xi.im * a.re;
    }
}

/// Element-wise fused multiply-add `y[i] += a[i]·x[i]` — the stencil
/// (diagonal-band) application kernel.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn vmul_add(a: &[Complex64], x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(a.len(), x.len(), "vmul_add length mismatch");
    assert_eq!(a.len(), y.len(), "vmul_add length mismatch");
    for ((yi, &ai), &xi) in y.iter_mut().zip(a).zip(x) {
        yi.re += ai.re * xi.re - ai.im * xi.im;
        yi.im += ai.re * xi.im + ai.im * xi.re;
    }
}

/// Element-wise multiply `y[i] = a[i]·x[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn vmul(a: &[Complex64], x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(a.len(), x.len(), "vmul length mismatch");
    assert_eq!(a.len(), y.len(), "vmul length mismatch");
    for ((yi, &ai), &xi) in y.iter_mut().zip(a).zip(x) {
        yi.re = ai.re * xi.re - ai.im * xi.im;
        yi.im = ai.re * xi.im + ai.im * xi.re;
    }
}

/// `x[i] *= a` in place.
#[inline]
pub fn scal(a: Complex64, x: &mut [Complex64]) {
    for xi in x.iter_mut() {
        let re = xi.re * a.re - xi.im * a.im;
        xi.im = xi.re * a.im + xi.im * a.re;
        xi.re = re;
    }
}

/// Unconjugated dot product `Σ x[i]·y[i]` (the bilinear form used by the
/// transpose substitutions; *not* the Hermitian inner product).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dotu(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    assert_eq!(x.len(), y.len(), "dotu length mismatch");
    let mut re = 0.0;
    let mut im = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        re += xi.re * yi.re - xi.im * yi.im;
        im += xi.re * yi.im + xi.im * yi.re;
    }
    c64(re, im)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = c64(1.5, -2.25);
        let b = c64(-0.5, 4.0);
        let c = c64(3.0, 0.125);
        assert!(close(a + b, b + a, 0.0));
        assert!(close(a * b, b * a, 0.0));
        assert!(close(a * (b + c), a * b + a * c, 1e-12));
        assert!(close(a + Complex64::ZERO, a, 0.0));
        assert!(close(a * Complex64::ONE, a, 0.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c64(2.0, -3.0);
        let b = c64(0.5, 1.5);
        assert!(close((a * b) / b, a, 1e-12));
        assert!(close(a * a.inv(), Complex64::ONE, 1e-12));
    }

    #[test]
    fn conjugation_and_norm() {
        let a = c64(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.conj(), c64(3.0, -4.0));
        assert!(close(a * a.conj(), c64(25.0, 0.0), 0.0));
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex64::I * std::f64::consts::PI;
        assert!(close(z.exp(), c64(-1.0, 0.0), 1e-12));
        let w = c64(1.0, 0.5);
        let e = w.exp();
        assert!((e.abs() - 1.0f64.exp()).abs() < 1e-12);
        assert!((e.arg() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let th = k as f64 * 0.4321;
            let p = Complex64::cis(th);
            assert!((p.abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[
            c64(2.0, 3.0),
            c64(-1.0, 0.5),
            c64(0.0, -4.0),
            c64(-2.0, -0.1),
        ] {
            let s = z.sqrt();
            assert!(close(s * s, z, 1e-12), "sqrt({z:?})² = {:?}", s * s);
            assert!(s.re >= 0.0, "principal branch");
        }
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = c64(0.9, 0.4);
        let mut acc = Complex64::ONE;
        for n in 0..8 {
            assert!(close(z.powi(n), acc, 1e-12));
            acc *= z;
        }
        assert!(close(z.powi(-3), (z * z * z).inv(), 1e-12));
    }

    #[test]
    fn mixed_real_ops() {
        let z = c64(1.0, -1.0);
        assert_eq!(z * 2.0, c64(2.0, -2.0));
        assert_eq!(2.0 * z, c64(2.0, -2.0));
        assert_eq!(z + 1.0, c64(2.0, -1.0));
        assert_eq!(1.0 - z, c64(0.0, 1.0));
        assert!(close(1.0 / z, z.inv(), 1e-14));
    }

    #[test]
    fn sum_iterators() {
        let v = vec![c64(1.0, 1.0); 10];
        let s: Complex64 = v.iter().sum();
        assert_eq!(s, c64(10.0, 10.0));
        let s2: Complex64 = v.into_iter().sum();
        assert_eq!(s2, c64(10.0, 10.0));
    }

    #[test]
    fn debug_format_is_nonempty() {
        let s = format!("{:?}", c64(1.0, -2.0));
        assert!(s.contains('i'));
        assert!(!s.is_empty());
    }

    #[test]
    fn slice_kernels_match_scalar_ops() {
        let a = c64(0.7, -1.3);
        let x: Vec<Complex64> = (0..17)
            .map(|i| c64(i as f64 * 0.3, 1.0 - i as f64 * 0.1))
            .collect();
        let mut y: Vec<Complex64> = (0..17).map(|i| c64(-(i as f64), 0.5 * i as f64)).collect();
        let expect: Vec<Complex64> = y.iter().zip(&x).map(|(&yi, &xi)| yi - xi * a).collect();
        axpy_neg(a, &x, &mut y);
        for (p, q) in y.iter().zip(&expect) {
            assert!((*p - *q).abs() < 1e-14);
        }

        let mut z = x.clone();
        scal(a, &mut z);
        for (p, &xi) in z.iter().zip(&x) {
            assert!((*p - xi * a).abs() < 1e-14);
        }

        let d = dotu(&x, &expect);
        let manual: Complex64 = x.iter().zip(&expect).map(|(&p, &q)| p * q).sum();
        assert!((d - manual).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_vector_kernels_match_scalar_ops() {
        let a = c64(-0.4, 0.9);
        let x: Vec<Complex64> = (0..13)
            .map(|i| c64(0.2 * i as f64, -0.7 + i as f64))
            .collect();
        let w: Vec<Complex64> = (0..13)
            .map(|i| c64(1.0 - i as f64, 0.05 * i as f64))
            .collect();
        let mut y: Vec<Complex64> = (0..13).map(|i| c64(i as f64, -(i as f64))).collect();
        let expect: Vec<Complex64> = y.iter().zip(&x).map(|(&yi, &xi)| yi + xi * a).collect();
        axpy(a, &x, &mut y);
        for (p, q) in y.iter().zip(&expect) {
            assert!((*p - *q).abs() < 1e-14);
        }

        let mut z = vec![Complex64::ZERO; 13];
        vmul(&w, &x, &mut z);
        for ((p, &wi), &xi) in z.iter().zip(&w).zip(&x) {
            assert!((*p - wi * xi).abs() < 1e-14);
        }
        let snapshot = y.clone();
        vmul_add(&w, &x, &mut y);
        for (((p, &yi0), &wi), &xi) in y.iter().zip(&snapshot).zip(&w).zip(&x) {
            assert!((*p - (yi0 + wi * xi)).abs() < 1e-14);
        }
    }
}
