//! Small dense complex matrices with LU decomposition.
//!
//! The banded solver carries the production load; this dense
//! implementation exists as an *independent reference* for
//! cross-validation (tests solve the same systems both ways) and for the
//! occasional small dense subproblem.

use crate::{Array2, Complex64};
use std::fmt;

/// Error returned when dense LU meets an exactly-singular column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseSingularError {
    /// Pivot column at which elimination failed.
    pub column: usize,
}

impl fmt::Display for DenseSingularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dense matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for DenseSingularError {}

/// LU factors of a dense complex matrix (partial pivoting).
#[derive(Debug, Clone)]
pub struct DenseLu {
    n: usize,
    /// Combined L (unit lower, below diagonal) and U factors.
    lu: Array2<Complex64>,
    piv: Vec<usize>,
}

/// Factors a square dense complex matrix with partial pivoting.
///
/// # Errors
///
/// Returns [`DenseSingularError`] on an exactly-zero pivot.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn dense_lu(a: &Array2<Complex64>) -> Result<DenseLu, DenseSingularError> {
    let (n, m) = a.shape();
    assert_eq!(n, m, "dense_lu requires a square matrix");
    let mut lu = a.clone();
    let mut piv: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Pivot search.
        let mut best = k;
        let mut best_mag = lu[(k, k)].abs();
        for i in k + 1..n {
            let mag = lu[(i, k)].abs();
            if mag > best_mag {
                best = i;
                best_mag = mag;
            }
        }
        if best_mag == 0.0 {
            return Err(DenseSingularError { column: k });
        }
        if best != k {
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(best, j)];
                lu[(best, j)] = tmp;
            }
            piv.swap(k, best);
        }
        let pivot = lu[(k, k)];
        for i in k + 1..n {
            let m = lu[(i, k)] / pivot;
            lu[(i, k)] = m;
            for j in k + 1..n {
                let u = lu[(k, j)];
                lu[(i, j)] -= m * u;
            }
        }
    }
    Ok(DenseLu { n, lu, piv })
}

impl DenseLu {
    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(b.len(), self.n, "dimension mismatch");
        // Apply permutation.
        let mut x: Vec<Complex64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (unit lower).
        for i in 1..self.n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Back substitution.
        for i in (0..self.n).rev() {
            let mut s = x[i];
            for j in i + 1..self.n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        x
    }

    /// The determinant (product of U's diagonal with pivot sign).
    pub fn det(&self) -> Complex64 {
        let mut d = Complex64::ONE;
        for i in 0..self.n {
            d *= self.lu[(i, i)];
        }
        // Sign from the permutation parity.
        let mut seen = vec![false; self.n];
        let mut swaps = 0;
        for i in 0..self.n {
            if seen[i] {
                continue;
            }
            let mut j = i;
            let mut len = 0;
            while !seen[j] {
                seen[j] = true;
                j = self.piv[j];
                len += 1;
            }
            swaps += len - 1;
        }
        if swaps % 2 == 1 {
            -d
        } else {
            d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn matvec(a: &Array2<Complex64>, x: &[Complex64]) -> Vec<Complex64> {
        let (n, _) = a.shape();
        (0..n)
            .map(|i| (0..n).map(|j| a[(i, j)] * x[j]).sum())
            .collect()
    }

    #[test]
    fn solves_small_known_system() {
        // [[2, 1], [1, 3]] x = [5, 10] → x = [1, 3].
        let a = Array2::from_vec(
            2,
            2,
            vec![c64(2.0, 0.0), c64(1.0, 0.0), c64(1.0, 0.0), c64(3.0, 0.0)],
        );
        let lu = dense_lu(&a).unwrap();
        let x = lu.solve(&[c64(5.0, 0.0), c64(10.0, 0.0)]);
        assert!((x[0] - c64(1.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c64(3.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn solves_complex_random_system() {
        let n = 12;
        let a = Array2::from_fn(n, n, |i, j| {
            let v = ((i * 31 + j * 17) % 13) as f64 - 6.0;
            let w = ((i * 7 + j * 3) % 11) as f64 - 5.0;
            c64(v, w)
                + if i == j {
                    c64(20.0, 5.0)
                } else {
                    Complex64::ZERO
                }
        });
        let b: Vec<Complex64> = (0..n).map(|i| c64(i as f64, -(i as f64) / 2.0)).collect();
        let lu = dense_lu(&a).unwrap();
        let x = lu.solve(&b);
        let ax = matvec(&a, &x);
        for (p, q) in ax.iter().zip(&b) {
            assert!((*p - *q).abs() < 1e-9);
        }
    }

    #[test]
    fn pivoting_required_case() {
        let a = Array2::from_vec(
            2,
            2,
            vec![
                Complex64::ZERO,
                c64(1.0, 0.0),
                c64(1.0, 0.0),
                Complex64::ZERO,
            ],
        );
        let lu = dense_lu(&a).unwrap();
        let x = lu.solve(&[c64(7.0, 0.0), c64(9.0, 0.0)]);
        assert!((x[0] - c64(9.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c64(7.0, 0.0)).abs() < 1e-12);
        // det of the swap matrix is -1.
        assert!((lu.det() + Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Array2::from_vec(
            2,
            2,
            vec![c64(1.0, 0.0), c64(2.0, 0.0), c64(2.0, 0.0), c64(4.0, 0.0)],
        );
        assert_eq!(dense_lu(&a).unwrap_err().column, 1);
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = Array2::from_fn(3, 3, |i, j| {
            if i == j {
                c64((i + 2) as f64, 0.0)
            } else {
                Complex64::ZERO
            }
        });
        let lu = dense_lu(&a).unwrap();
        assert!((lu.det() - c64(24.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_banded_solver() {
        // The same banded system solved densely and banded must agree.
        use crate::banded::BandedMatrix;
        let n = 15;
        let (kl, ku) = (2, 2);
        let mut banded = BandedMatrix::new(n, kl, ku);
        let mut dense = Array2::filled(n, n, Complex64::ZERO);
        for i in 0..n {
            for j in i.saturating_sub(kl)..=(i + ku).min(n - 1) {
                let v = c64(
                    ((i * 5 + j * 3) % 7) as f64 - 3.0,
                    ((i + j) % 5) as f64 - 2.0,
                ) + if i == j {
                    c64(9.0, 0.0)
                } else {
                    Complex64::ZERO
                };
                banded.set(i, j, v);
                dense[(i, j)] = v;
            }
        }
        let b: Vec<Complex64> = (0..n).map(|i| c64(1.0, i as f64 * 0.1)).collect();
        let xb = banded.factor().unwrap().solve_vec(&b);
        let xd = dense_lu(&dense).unwrap().solve(&b);
        for (p, q) in xb.iter().zip(&xd) {
            assert!((*p - *q).abs() < 1e-10, "banded vs dense disagreement");
        }
    }
}
