//! Preconditioned multi-RHS BiCGSTAB over matrix-free linear operators.
//!
//! The variation-corner sweep of a robust FDFD iteration solves dozens of
//! linear systems whose operators differ from the *nominal* operator only
//! by small ε/temperature/etch perturbations. Factoring each corner with
//! the banded LU costs `O(n·b²)`; amortising **one** strong factorisation
//! across all nearby corners reduces every non-nominal solve to a handful
//! of `O(n·b)` triangular sweeps plus `O(n)` stencil applications. This
//! module provides that engine: a right-preconditioned BiCGSTAB that takes
//! any [`BandedLu`] as the preconditioner and any [`LinearOp`] as the
//! (matrix-free) system operator, advancing all right-hand sides in
//! lockstep with per-RHS convergence tracking.
//!
//! # Preconditioner contract
//!
//! The preconditioner `M` is applied as `M⁻¹v` through
//! [`BandedLu::solve_many`] (or [`BandedLu::solve_transpose_many`] for the
//! transpose variant). Right preconditioning solves `A M⁻¹ y = b` and
//! recovers `x = M⁻¹ y`, so **residuals are true residuals of the original
//! system** — the convergence test and the quality report both refer to
//! `‖b − A x‖ / ‖b‖` and are meaningful regardless of how strong `M` is.
//! Any nonsingular factorisation of the same dimension is admissible; the
//! closer `M` is to `A`, the faster the iteration. With `M` the factored
//! nominal corner operator and `A` a mildly perturbed corner, convergence
//! typically takes 1–4 iterations; strongly perturbed corners (litho
//! dose excursions at large etch-projection β, worst-case EOLE fields) may
//! stagnate, which is what the per-RHS [`RhsStats`] and the aggregate
//! [`SolveQuality`] are for: callers inspect them and **fall back to a
//! direct factorisation** when `iterations` hits `max_iters` or the final
//! residual exceeds the configured tolerance (see
//! `boson_fdfd::sim::SimWorkspace`, which caches that decision per corner).
//!
//! # Workspace contract
//!
//! All Krylov vectors live in a caller-owned [`KrylovWorkspace`] that is
//! grown once and reused; after warm-up a solve performs **zero heap
//! allocations**, matching the workspace discipline of the rest of the
//! solver stack.
//!
//! # Examples
//!
//! ```
//! use boson_num::banded::{BandedLu, BandedMatrix};
//! use boson_num::krylov::{bicgstab_precond_many, IterativeOptions, KrylovWorkspace};
//! use boson_num::{c64, Complex64};
//!
//! // Nominal operator: a shifted 1-D Laplacian. Perturbed corner: the
//! // same operator with a few diagonal entries nudged.
//! let n = 32;
//! let build = |bump: f64| {
//!     let mut a = BandedMatrix::new(n, 1, 1);
//!     for i in 0..n {
//!         a.set(i, i, c64(2.5 + if i % 7 == 0 { bump } else { 0.0 }, 0.4));
//!         if i > 0 { a.set(i, i - 1, c64(-1.0, 0.0)); }
//!         if i + 1 < n { a.set(i, i + 1, c64(-1.0, 0.0)); }
//!     }
//!     a
//! };
//! let mut nominal = build(0.0).factor().unwrap();
//! let corner = build(0.05);
//! let b = vec![Complex64::ONE; n];
//! let mut x = vec![Complex64::ZERO; n];
//! let mut ws = KrylovWorkspace::new();
//! let q = bicgstab_precond_many(
//!     &corner, &mut nominal, &b, &mut x, 1, &IterativeOptions::default(), &mut ws,
//! );
//! assert!(q.converged && q.max_iterations <= 4);
//! ```

use crate::banded::{BandedLu, BandedLuF32, BandedMatrix};
use crate::complex::{axpy, axpy_neg};
use crate::pool::{self, DisjointSlots};
use crate::Complex64;

/// A square linear operator applied matrix-free.
///
/// Implemented by [`BandedMatrix`] (band-storage sweep) and by stencil
/// caches higher in the stack that apply the FDFD operator in `O(5n)`.
pub trait LinearOp {
    /// Operator dimension.
    fn dim(&self) -> usize;
    /// `y = A x` (overwrites `y`).
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]);
    /// `y = Aᵀ x` (overwrites `y`).
    fn apply_transpose(&self, x: &[Complex64], y: &mut [Complex64]);
}

impl LinearOp for BandedMatrix {
    fn dim(&self) -> usize {
        self.n()
    }

    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.matvec_into(x, y);
    }

    fn apply_transpose(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.matvec_transpose_into(x, y);
    }
}

/// A *family* of equally-sized linear operators, one per right-hand-side
/// column — the shape of a variation-corner sweep, where every corner
/// shares the stencil couplings but carries its own diagonal.
///
/// Every [`LinearOp`] is a `ColumnOp` that ignores the column index, so
/// single-operator solves and corner-batched solves share one driver.
pub trait ColumnOp {
    /// Operator dimension (identical for every column).
    fn dim(&self) -> usize;
    /// `y = A_col x` (overwrites `y`).
    fn apply_col(&self, col: usize, x: &[Complex64], y: &mut [Complex64]);
    /// `y = A_colᵀ x` (overwrites `y`).
    fn apply_col_transpose(&self, col: usize, x: &[Complex64], y: &mut [Complex64]);
}

impl<T: LinearOp> ColumnOp for T {
    fn dim(&self) -> usize {
        LinearOp::dim(self)
    }

    fn apply_col(&self, _col: usize, x: &[Complex64], y: &mut [Complex64]) {
        self.apply(x, y);
    }

    fn apply_col_transpose(&self, _col: usize, x: &[Complex64], y: &mut [Complex64]) {
        self.apply_transpose(x, y);
    }
}

/// A preconditioner application engine: `b ← M⁻¹ b` over a column-major
/// block.
///
/// Takes `&mut self` so implementations may keep conversion scratch
/// (see [`BandedLuF32`]) without interior mutability.
pub trait Precondition {
    /// Preconditioner dimension.
    fn dim(&self) -> usize;
    /// Applies `M⁻¹` to `nrhs` column-major right-hand sides in place.
    fn solve_block(&mut self, b: &mut [Complex64], nrhs: usize);
    /// Applies `M⁻ᵀ` to `nrhs` column-major right-hand sides in place.
    fn solve_block_transpose(&mut self, b: &mut [Complex64], nrhs: usize);
}

impl Precondition for BandedLu {
    fn dim(&self) -> usize {
        self.n()
    }

    fn solve_block(&mut self, b: &mut [Complex64], nrhs: usize) {
        self.solve_many(b, nrhs);
    }

    fn solve_block_transpose(&mut self, b: &mut [Complex64], nrhs: usize) {
        self.solve_transpose_many(b, nrhs);
    }
}

impl Precondition for BandedLuF32 {
    fn dim(&self) -> usize {
        self.n()
    }

    fn solve_block(&mut self, b: &mut [Complex64], nrhs: usize) {
        self.solve_many(b, nrhs);
    }

    fn solve_block_transpose(&mut self, b: &mut [Complex64], nrhs: usize) {
        self.solve_transpose_many(b, nrhs);
    }
}

/// A *family* of preconditioner engines, one per right-hand-side column —
/// the preconditioning counterpart of [`ColumnOp`].
///
/// The packed-block sweeps of the lockstep iteration hand the family the
/// still-active columns (`cols[i]` is the *global* column index occupying
/// packed slot `i` of `b`), so an implementation can route each column to
/// its own factorisation — e.g. a fused (corner × ω) sweep preconditioning
/// every column with its own wavelength's nominal factor. Column results
/// must not depend on what other columns share the block (every engine in
/// this module satisfies that: triangular sweeps treat columns
/// independently), which is what keeps fused and per-family-member batches
/// bit-identical.
///
/// Every single-engine [`Precondition`] is a `PrecondFamily` that ignores
/// `cols` and sweeps the whole packed block at once, so existing callers
/// (and the single-ω solve paths) compile and behave unchanged.
pub trait PrecondFamily {
    /// Preconditioner dimension (identical for every column).
    fn dim(&self) -> usize;
    /// Applies each column's `M⁻¹` to the packed column-major block `b`
    /// (`b.len() == dim()·cols.len()`); packed slot `i` holds global
    /// column `cols[i]`.
    fn solve_packed(&mut self, b: &mut [Complex64], cols: &[usize]);
    /// Transpose counterpart of [`PrecondFamily::solve_packed`].
    fn solve_packed_transpose(&mut self, b: &mut [Complex64], cols: &[usize]);
}

impl<P: Precondition> PrecondFamily for P {
    fn dim(&self) -> usize {
        Precondition::dim(self)
    }

    fn solve_packed(&mut self, b: &mut [Complex64], cols: &[usize]) {
        self.solve_block(b, cols.len());
    }

    fn solve_packed_transpose(&mut self, b: &mut [Complex64], cols: &[usize]) {
        self.solve_block_transpose(b, cols.len());
    }
}

/// Convergence controls for the preconditioned iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeOptions {
    /// Relative residual `‖b − A x‖/‖b‖` at which a RHS is converged.
    pub tol: f64,
    /// Iteration budget per solve (each iteration costs two preconditioner
    /// sweeps and two operator applications).
    pub max_iters: usize,
    /// When `true`, `x` holds an initial guess on entry (e.g. the nominal
    /// corner's solution) and the iteration starts from its residual; when
    /// `false`, `x` is zeroed and the iteration starts from `r = b`.
    pub use_initial_guess: bool,
    /// Lane budget for the per-column vector stages (residual updates,
    /// operator applies, dot products), dispatched on the process-wide
    /// [`crate::pool`]. Every stage keeps columns data-disjoint and each
    /// column's arithmetic serial, so any value — including `1` — is
    /// **bit-identical**; this only trades latency for cores. Small
    /// blocks (`nrhs · n` below [`PAR_MIN_ELEMS`]) always run serially.
    pub threads: usize,
}

impl Default for IterativeOptions {
    fn default() -> Self {
        Self {
            tol: 1e-6,
            max_iters: 24,
            use_initial_guess: false,
            threads: 1,
        }
    }
}

/// Minimum total block size (`nrhs · n` elements) before the per-column
/// Krylov stages are worth dispatching on the pool; below this the
/// condvar hand-off costs more than the arithmetic it parallelises.
pub const PAR_MIN_ELEMS: usize = 1 << 15;

/// Convergence record of one right-hand side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RhsStats {
    /// BiCGSTAB iterations spent on this RHS.
    pub iterations: usize,
    /// Final **true** relative residual `‖b − A x‖/‖b‖` (recomputed from
    /// the returned solution, not the recursion residual).
    pub residual: f64,
    /// Whether the recursion residual reached `tol` within `max_iters`.
    pub converged: bool,
}

/// Aggregate quality report of a multi-RHS solve — the signal the adaptive
/// direct-fallback policy keys on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveQuality {
    /// All right-hand sides converged.
    pub converged: bool,
    /// Worst per-RHS iteration count.
    pub max_iterations: usize,
    /// Worst per-RHS final true relative residual.
    pub max_residual: f64,
}

/// Per-column iteration state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ColState {
    Active,
    Converged,
    /// A BiCGSTAB scalar degenerated (ρ, ⟨r̂,v⟩ or ⟨t,t⟩ ≈ 0) or went
    /// non-finite (NaN/Inf scalar, residual norm, or right-hand side);
    /// the column is frozen and reported unconverged, which drives the
    /// caller's budget-miss → direct-fallback path.
    Broken,
}

/// Reusable buffers for [`bicgstab_precond_many`] /
/// [`bicgstab_precond_transpose_many`]: eight `n × nrhs` Krylov blocks
/// plus per-column scalar state. Grown once, then allocation-free.
#[derive(Debug, Default)]
pub struct KrylovWorkspace {
    r: Vec<Complex64>,
    r_hat: Vec<Complex64>,
    p: Vec<Complex64>,
    p_hat: Vec<Complex64>,
    v: Vec<Complex64>,
    s: Vec<Complex64>,
    s_hat: Vec<Complex64>,
    t: Vec<Complex64>,
    bnorm: Vec<f64>,
    rho: Vec<Complex64>,
    alpha: Vec<Complex64>,
    omega: Vec<Complex64>,
    state: Vec<ColState>,
    iters: Vec<usize>,
    /// Columns still iterating, rebuilt each half-iteration; the
    /// preconditioner sweeps touch **only these**, packed contiguously.
    active: Vec<usize>,
    /// Columns still active at the ŝ-stage sweep (a subset of `active`
    /// after the s-stage convergence checks), in packed order.
    s_active: Vec<usize>,
    /// `slot_of[col]` = this iteration's packed slot of `col` in `p_hat`.
    slot_of: Vec<usize>,
    stats: Vec<RhsStats>,
}

impl KrylovWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-RHS convergence records of the most recent solve.
    pub fn stats(&self) -> &[RhsStats] {
        &self.stats
    }

    fn resize(&mut self, n: usize, nrhs: usize) {
        let len = n * nrhs;
        // Only `p` and `v` are read before being written (the first
        // `p = r + β(p − ω v)` update); the other six blocks are always
        // fully overwritten per column before use, so they only need
        // sizing, not zeroing — this path is memory-bound enough that the
        // saved memsets matter.
        for buf in [&mut self.p, &mut self.v] {
            // clear + resize zero-fills every retained element.
            buf.clear();
            buf.resize(len, Complex64::ZERO);
        }
        for buf in [
            &mut self.r,
            &mut self.r_hat,
            &mut self.p_hat,
            &mut self.s,
            &mut self.s_hat,
            &mut self.t,
        ] {
            if buf.len() != len {
                buf.clear();
                buf.resize(len, Complex64::ZERO);
            }
        }
        self.bnorm.clear();
        self.bnorm.resize(nrhs, 0.0);
        for buf in [&mut self.rho, &mut self.alpha, &mut self.omega] {
            buf.clear();
            buf.resize(nrhs, Complex64::ONE);
        }
        self.state.clear();
        self.state.resize(nrhs, ColState::Active);
        self.iters.clear();
        self.iters.resize(nrhs, 0);
        self.active.clear();
        self.active.reserve(nrhs);
        self.s_active.clear();
        self.s_active.reserve(nrhs);
        self.slot_of.clear();
        self.slot_of.resize(nrhs, usize::MAX);
        self.stats.clear();
        self.stats.resize(
            nrhs,
            RhsStats {
                iterations: 0,
                residual: 0.0,
                converged: false,
            },
        );
    }
}

/// Hermitian inner product `Σ conj(a_i)·b_i` (the BiCGSTAB shadow-residual
/// pairing).
fn dot_conj(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    let mut re = 0.0;
    let mut im = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        re += x.re * y.re + x.im * y.im;
        im += x.re * y.im - x.im * y.re;
    }
    Complex64::new(re, im)
}

fn norm(a: &[Complex64]) -> f64 {
    a.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt()
}

/// Threshold below which a BiCGSTAB scalar counts as a breakdown.
const BREAKDOWN: f64 = 1e-300;

/// `true` when a BiCGSTAB scalar is unusable: degenerate magnitude *or*
/// non-finite. The magnitude test alone misses NaN/Inf (`NaN.abs() < x`
/// is `false`), which would let a poisoned column keep sweeping for the
/// whole budget; any non-finite scalar is an immediate per-column
/// breakdown instead, so the caller's budget-miss → direct-fallback
/// machinery fires at once.
fn scalar_breaks(z: Complex64) -> bool {
    !z.is_finite() || z.abs() < BREAKDOWN
}

/// Solves `A X = B` for `nrhs` column-major right-hand sides with
/// right-preconditioned BiCGSTAB, `M⁻¹` applied through
/// [`PrecondFamily::solve_packed`] (a plain [`Precondition`] engine — the
/// common case — preconditions every column with the same factor via the
/// blanket impl; a true family routes each packed column to its own
/// engine, e.g. per-wavelength nominal factors in a fused (corner × ω)
/// sweep).
///
/// `b` holds the right-hand sides (read-only); the solutions land in `x`
/// (fully overwritten unless [`IterativeOptions::use_initial_guess`]).
/// All columns advance in lockstep — each of the two preconditioner
/// applications per iteration sweeps the factors once for the packed
/// block of **still-active** columns — and columns that converge (or
/// break down) are frozen while the rest continue, costing nothing
/// further. Returns the aggregate [`SolveQuality`]; per-RHS details stay
/// in [`KrylovWorkspace::stats`].
///
/// # Examples
///
/// A single-column solve of a perturbed operator, preconditioned by the
/// unperturbed factorisation (the nominal-corner idiom in miniature):
///
/// ```
/// use boson_num::banded::BandedMatrix;
/// use boson_num::krylov::{bicgstab_precond_many, IterativeOptions, KrylovWorkspace};
/// use boson_num::{c64, Complex64};
///
/// let n = 24;
/// let build = |shift: f64| {
///     let mut a = BandedMatrix::new(n, 1, 1);
///     for i in 0..n {
///         a.set(i, i, c64(3.0 + shift, 0.3));
///         if i > 0 {
///             a.set(i, i - 1, c64(-1.0, 0.0));
///             a.set(i - 1, i, c64(-1.0, 0.0));
///         }
///     }
///     a
/// };
/// let mut nominal = build(0.0).factor()?; // the preconditioner
/// let corner = build(0.02); // the (perturbed) system, applied matrix-free
/// let b = vec![Complex64::ONE; n];
/// let mut x = vec![Complex64::ZERO; n];
/// let mut ws = KrylovWorkspace::new();
/// let q = bicgstab_precond_many(
///     &corner,
///     &mut nominal,
///     &b,
///     &mut x,
///     1, // a single right-hand side
///     &IterativeOptions::default(),
///     &mut ws,
/// );
/// assert!(q.converged);
/// // Residuals are true residuals of the *original* system.
/// let ax = corner.matvec(&x);
/// let bnorm: f64 = b.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
/// let res: f64 = ax.iter().zip(&b).map(|(a, b)| (*a - *b).norm_sqr()).sum::<f64>().sqrt();
/// assert!(res / bnorm < 1e-6);
/// # Ok::<(), boson_num::banded::SingularMatrixError>(())
/// ```
///
/// # Panics
///
/// Panics if `op`, `precond`, `b` and `x` disagree on dimensions.
pub fn bicgstab_precond_many<Op: ColumnOp + Sync, P: PrecondFamily>(
    op: &Op,
    precond: &mut P,
    b: &[Complex64],
    x: &mut [Complex64],
    nrhs: usize,
    opts: &IterativeOptions,
    ws: &mut KrylovWorkspace,
) -> SolveQuality {
    bicgstab_driver(op, precond, b, x, nrhs, opts, ws, false)
}

/// Transpose counterpart of [`bicgstab_precond_many`]: solves `Aᵀ X = B`
/// through [`ColumnOp::apply_col_transpose`] and
/// [`Precondition::solve_block_transpose`] — the adjoint path, sharing
/// the same nominal factorisation.
///
/// # Panics
///
/// Panics if `op`, `precond`, `b` and `x` disagree on dimensions.
pub fn bicgstab_precond_transpose_many<Op: ColumnOp + Sync, P: PrecondFamily>(
    op: &Op,
    precond: &mut P,
    b: &[Complex64],
    x: &mut [Complex64],
    nrhs: usize,
    opts: &IterativeOptions,
    ws: &mut KrylovWorkspace,
) -> SolveQuality {
    bicgstab_driver(op, precond, b, x, nrhs, opts, ws, true)
}

/// Collects the still-active columns into `ws.active` and records each
/// one's packed slot in `ws.slot_of`.
fn collect_active(ws: &mut KrylovWorkspace, nrhs: usize) {
    ws.active.clear();
    for c in 0..nrhs {
        if ws.state[c] == ColState::Active {
            ws.slot_of[c] = ws.active.len();
            ws.active.push(c);
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal driver shared by the two public faces
fn bicgstab_driver<Op: ColumnOp + Sync, P: PrecondFamily>(
    op: &Op,
    precond: &mut P,
    b: &[Complex64],
    x: &mut [Complex64],
    nrhs: usize,
    opts: &IterativeOptions,
    ws: &mut KrylovWorkspace,
    transpose: bool,
) -> SolveQuality {
    let n = op.dim();
    assert_eq!(precond.dim(), n, "preconditioner dimension mismatch");
    assert_eq!(b.len(), n * nrhs, "rhs block dimension mismatch");
    assert_eq!(x.len(), n * nrhs, "solution block dimension mismatch");
    ws.resize(n, nrhs);

    let apply = |c: usize, x: &[Complex64], y: &mut [Complex64]| {
        if transpose {
            op.apply_col_transpose(c, x, y);
        } else {
            op.apply_col(c, x, y);
        }
    };

    // Lane budget for the per-column stages below. Columns are
    // data-disjoint and each column's arithmetic is serial, so the lane
    // count never changes results (the pool's determinism contract);
    // small blocks stay serial — the dispatch hand-off would dominate.
    let lanes = if opts.threads > 1 && nrhs >= 2 && n * nrhs >= PAR_MIN_ELEMS {
        opts.threads
    } else {
        1
    };

    // Initial residual: r = b (cold start) or r = b − A x₀ (warm start),
    // each column an independent part.
    {
        let xs = DisjointSlots::new(&mut *x);
        let rs = DisjointSlots::new(&mut ws.r);
        let r_hats = DisjointSlots::new(&mut ws.r_hat);
        let ts = DisjointSlots::new(&mut ws.t);
        let bnorms = DisjointSlots::new(&mut ws.bnorm);
        let states = DisjointSlots::new(&mut ws.state);
        pool::global().run(nrhs, lanes, &|_lane, c| {
            // SAFETY: part `c` touches only the column range `c*n..(c+1)*n`
            // of every block and scalar slot `c`; the pool runs each part
            // exactly once, so no two lanes ever address the same element.
            unsafe {
                let x = xs.slice(c * n, n);
                let r = rs.slice(c * n, n);
                let t = ts.slice(c * n, n);
                let state = states.get(c);
                let bnorm = bnorms.get(c);
                let bcol = &b[c * n..(c + 1) * n];
                *bnorm = norm(bcol);
                if *bnorm == 0.0 {
                    // Zero RHS: x = 0 is exact (even against a nonzero
                    // guess).
                    x.fill(Complex64::ZERO);
                    *state = ColState::Converged;
                    return;
                }
                if !bnorm.is_finite() {
                    // A non-finite RHS can never satisfy a residual test —
                    // break the column immediately (reported unconverged in
                    // zero iterations) instead of sweeping the whole budget
                    // on it.
                    x.fill(Complex64::ZERO);
                    *state = ColState::Broken;
                    return;
                }
                if opts.use_initial_guess {
                    apply(c, x, t);
                    r.copy_from_slice(bcol);
                    axpy_neg(Complex64::ONE, t, r);
                } else {
                    x.fill(Complex64::ZERO);
                    r.copy_from_slice(bcol);
                }
                let rnorm = norm(r);
                if !rnorm.is_finite() {
                    // Poisoned warm start (or an overflowing operator
                    // apply).
                    *state = ColState::Broken;
                    return;
                }
                if rnorm <= opts.tol * *bnorm {
                    *state = ColState::Converged;
                    return;
                }
                r_hats.slice(c * n, n).copy_from_slice(r);
            }
        });
    }

    for it in 1..=opts.max_iters {
        // p = r + β (p − ω v), per active column.
        collect_active(ws, nrhs);
        if ws.active.is_empty() {
            break;
        }
        {
            let active = &ws.active;
            let (r, r_hat, v) = (&ws.r, &ws.r_hat, &ws.v);
            let (alpha, omega) = (&ws.alpha, &ws.omega);
            let ps = DisjointSlots::new(&mut ws.p);
            let rhos = DisjointSlots::new(&mut ws.rho);
            let states = DisjointSlots::new(&mut ws.state);
            let iterss = DisjointSlots::new(&mut ws.iters);
            pool::global().run(active.len(), lanes, &|_lane, idx| {
                let c = active[idx];
                let col = c * n..(c + 1) * n;
                // SAFETY: part `idx` owns column `c = active[idx]`
                // exclusively — `active` holds distinct column indices
                // and each part runs exactly once, so writes to column
                // `c`'s slices and scalar slots never alias.
                unsafe {
                    *iterss.get(c) = it;
                    let rho_new = dot_conj(&r_hat[col.clone()], &r[col.clone()]);
                    if scalar_breaks(rho_new) {
                        *states.get(c) = ColState::Broken;
                        return;
                    }
                    let rho = rhos.get(c);
                    let beta = (rho_new / *rho) * (alpha[c] / omega[c]);
                    if !beta.is_finite() {
                        *states.get(c) = ColState::Broken;
                        return;
                    }
                    *rho = rho_new;
                    let bo = beta * omega[c];
                    let p = ps.slice(c * n, n);
                    for ((pi, &ri), &vi) in p.iter_mut().zip(&r[col.clone()]).zip(&v[col]) {
                        *pi = ri + beta * *pi - bo * vi;
                    }
                }
            });
        }
        // p̂ = M⁻¹ p — one family sweep over the packed active columns
        // (each column routed to its own engine).
        collect_active(ws, nrhs);
        if ws.active.is_empty() {
            break;
        }
        for (slot, &c) in ws.active.iter().enumerate() {
            ws.p_hat[slot * n..(slot + 1) * n].copy_from_slice(&ws.p[c * n..(c + 1) * n]);
        }
        let nactive = ws.active.len();
        {
            let (p_hat, active) = (&mut ws.p_hat, &ws.active);
            if transpose {
                precond.solve_packed_transpose(&mut p_hat[..nactive * n], active);
            } else {
                precond.solve_packed(&mut p_hat[..nactive * n], active);
            }
        }
        {
            let active = &ws.active;
            let (r, r_hat, p_hat) = (&ws.r, &ws.r_hat, &ws.p_hat);
            let (rho, bnorm) = (&ws.rho, &ws.bnorm);
            let vs = DisjointSlots::new(&mut ws.v);
            let ss = DisjointSlots::new(&mut ws.s);
            let alphas = DisjointSlots::new(&mut ws.alpha);
            let states = DisjointSlots::new(&mut ws.state);
            let xs = DisjointSlots::new(&mut *x);
            pool::global().run(nactive, lanes, &|_lane, idx| {
                let c = active[idx];
                let slot = idx * n..(idx + 1) * n;
                let col = c * n..(c + 1) * n;
                // SAFETY: part `idx` owns column `c = active[idx]` and
                // packed slot `idx` exclusively (`active` entries are
                // distinct, each part runs exactly once), so the v/s/x
                // column writes and scalar slots never alias.
                unsafe {
                    let v = vs.slice(c * n, n);
                    apply(c, &p_hat[slot.clone()], v);
                    let denom = dot_conj(&r_hat[col.clone()], v);
                    if scalar_breaks(denom) {
                        *states.get(c) = ColState::Broken;
                        return;
                    }
                    let alpha = rho[c] / denom;
                    if !alpha.is_finite() {
                        *states.get(c) = ColState::Broken;
                        return;
                    }
                    *alphas.get(c) = alpha;
                    // s = r − α v.
                    let s = ss.slice(c * n, n);
                    s.copy_from_slice(&r[col]);
                    axpy_neg(alpha, v, s);
                    let snorm = norm(s);
                    if !snorm.is_finite() {
                        *states.get(c) = ColState::Broken;
                        return;
                    }
                    if snorm <= opts.tol * bnorm[c] {
                        axpy(alpha, &p_hat[slot], xs.slice(c * n, n));
                        *states.get(c) = ColState::Converged;
                    }
                }
            });
        }
        // ŝ = M⁻¹ s — second packed sweep over the columns still active
        // after the s-stage convergence checks (`ws.slot_of` keeps each
        // column's p̂ slot from the first half).
        ws.s_active.clear();
        for c in 0..nrhs {
            if ws.state[c] == ColState::Active {
                let s_slot = ws.s_active.len();
                ws.s_hat[s_slot * n..(s_slot + 1) * n].copy_from_slice(&ws.s[c * n..(c + 1) * n]);
                ws.s_active.push(c);
            }
        }
        let s_slots = ws.s_active.len();
        if s_slots == 0 {
            continue;
        }
        {
            let (s_hat, s_active) = (&mut ws.s_hat, &ws.s_active);
            if transpose {
                precond.solve_packed_transpose(&mut s_hat[..s_slots * n], s_active);
            } else {
                precond.solve_packed(&mut s_hat[..s_slots * n], s_active);
            }
        }
        {
            // `s_active` holds exactly the still-active columns in
            // increasing order (nothing touched `state` since the gather),
            // so enumerating it reproduces the running-slot walk of the
            // serial generation bit for bit.
            let s_active = &ws.s_active;
            let slot_of = &ws.slot_of;
            let (s, s_hat, p_hat) = (&ws.s, &ws.s_hat, &ws.p_hat);
            let (alpha, bnorm) = (&ws.alpha, &ws.bnorm);
            let ts = DisjointSlots::new(&mut ws.t);
            let rs = DisjointSlots::new(&mut ws.r);
            let omegas = DisjointSlots::new(&mut ws.omega);
            let states = DisjointSlots::new(&mut ws.state);
            let xs = DisjointSlots::new(&mut *x);
            pool::global().run(s_slots, lanes, &|_lane, s_slot| {
                let c = s_active[s_slot];
                let sh = s_slot * n..(s_slot + 1) * n;
                let col = c * n..(c + 1) * n;
                let p_slot = slot_of[c] * n..(slot_of[c] + 1) * n;
                // SAFETY: part `s_slot` owns column `c = s_active[s_slot]`
                // and ŝ slot `s_slot` exclusively (`s_active` entries are
                // distinct, each part runs exactly once), so the t/r/x
                // column writes and scalar slots never alias.
                unsafe {
                    let t = ts.slice(c * n, n);
                    apply(c, &s_hat[sh.clone()], t);
                    let tt = dot_conj(t, t);
                    if scalar_breaks(tt) {
                        *states.get(c) = ColState::Broken;
                        return;
                    }
                    let omega = dot_conj(t, &s[col.clone()]) / tt;
                    if !omega.is_finite() {
                        // Freeze before the x/r updates so a NaN ω cannot
                        // poison the partial solution already accumulated.
                        *states.get(c) = ColState::Broken;
                        return;
                    }
                    let xcol = xs.slice(c * n, n);
                    axpy(alpha[c], &p_hat[p_slot], xcol);
                    axpy(omega, &s_hat[sh], xcol);
                    // r = s − ω t.
                    let r = rs.slice(c * n, n);
                    r.copy_from_slice(&s[col]);
                    axpy_neg(omega, t, r);
                    let rnorm = norm(r);
                    let state = states.get(c);
                    if !rnorm.is_finite() {
                        *state = ColState::Broken;
                    } else if rnorm <= opts.tol * bnorm[c] {
                        *state = ColState::Converged;
                    } else if omega.abs() < BREAKDOWN {
                        *state = ColState::Broken;
                    }
                    *omegas.get(c) = omega;
                }
            });
        }
    }

    // Quality report: the *true* residual of every returned column
    // (computed per column in parallel, reduced serially).
    {
        let (bnorm, state, iters) = (&ws.bnorm, &ws.state, &ws.iters);
        let x = &*x;
        let ts = DisjointSlots::new(&mut ws.t);
        let rs = DisjointSlots::new(&mut ws.r);
        let statss = DisjointSlots::new(&mut ws.stats);
        pool::global().run(nrhs, lanes, &|_lane, c| {
            let col = c * n..(c + 1) * n;
            // SAFETY: part `c` owns the t/r column ranges `c*n..(c+1)*n`
            // and stats slot `c` exclusively; parts run exactly once, so
            // no lane ever touches another part's column.
            unsafe {
                let residual = if bnorm[c] == 0.0 {
                    0.0
                } else {
                    let t = ts.slice(c * n, n);
                    apply(c, &x[col.clone()], t);
                    let r = rs.slice(c * n, n);
                    r.copy_from_slice(&b[col]);
                    axpy_neg(Complex64::ONE, t, r);
                    let rel = norm(r) / bnorm[c];
                    // A broken column (non-finite RHS / overflowed
                    // recursion) can yield a NaN true residual; report it
                    // as +∞ so aggregate maxima stay ordered and
                    // meaningful.
                    if rel.is_finite() {
                        rel
                    } else {
                        f64::INFINITY
                    }
                };
                *statss.get(c) = RhsStats {
                    iterations: iters[c],
                    residual,
                    converged: state[c] == ColState::Converged,
                };
            }
        });
    }
    let mut quality = SolveQuality {
        converged: true,
        max_iterations: 0,
        max_residual: 0.0,
    };
    for st in &ws.stats {
        quality.converged &= st.converged;
        quality.max_iterations = quality.max_iterations.max(st.iterations);
        quality.max_residual = quality.max_residual.max(st.residual);
    }
    quality
}

/// Relative threshold under which a harvested direction is considered
/// already captured by the stored subspace and skipped.
const RECYCLE_DEPENDENT_TOL: f64 = 1e-8;

/// Pivot threshold for the tiny Galerkin system `(Uᴴ A U) y = Uᴴ r`;
/// below this the projection is skipped (never committed half-solved).
const RECYCLE_PIVOT_TOL: f64 = 1e-280;

/// A per-column **recycled deflation space** in the GCROT/recycled-GMRES
/// tradition, adapted to the cross-iteration structure of the robust
/// loop: consecutive optimiser epochs solve nearly-identical systems, so
/// the correction directions BiCGSTAB discovered last epoch are excellent
/// coarse directions for this epoch.
///
/// The store keeps up to `W` (≈ 4–8) **orthonormalised correction
/// directions** harvested from converged solves ([`RecycleSpace::harvest`]
/// takes `x_final − x₀`, the part of the solution the warm start did
/// *not* already contain), plus the column's **full previous solution**
/// ([`RecycleSpace::remember_solution`]). Before the next solve of the
/// same column, [`RecycleSpace::try_apply`] improves the initial guess in
/// two stages: the remembered solution replaces the caller's guess when
/// its true residual is strictly smaller (one optimiser step of design
/// drift leaves it far closer than any shared warm start), then the
/// residual is Galerkin-projected onto the recycled space:
///
/// ```text
/// x₀ += U (Uᴴ A U)⁻¹ Uᴴ (b − A x₀)
/// ```
///
/// applied matrix-free through the same [`ColumnOp`] seam the lockstep
/// iteration uses, so forward and adjoint (transpose) phases each recycle
/// their own store against their own operator orientation.
///
/// # Safety net: a recycled space can only skip, never worsen
///
/// * **Non-finite hardening** — harvested directions carrying NaN/Inf are
///   rejected; a non-finite residual, Galerkin solve, or projected
///   candidate aborts the application untouched.
/// * **Never-worsen commit rule** — the projected residual
///   `r − (A U) y` is evaluated explicitly (the `A U` block is already in
///   hand) and the update is committed only if it is finite and
///   **strictly smaller** than the incoming residual.
/// * **Invalidate-on-ε-epoch-jump** — each harvest stamps the store with
///   its optimiser epoch; an application whose epoch is more than
///   [`RecycleSpace::max_age`] ahead of the stamp (the design has moved
///   too far for the directions to be trusted) clears the store and
///   skips. Dormant subspace-scheduler columns therefore keep
///   stale-but-monitored state: the store survives dormancy, and the
///   epoch rule decides at re-entry whether it is still usable.
///
/// All buffers are owned and grown once ([`RecycleSpace::ensure_dim`]);
/// steady-state harvest/apply cycles perform no heap allocation.
#[derive(Debug, Clone)]
pub struct RecycleSpace {
    /// Operator dimension the buffers are sized for.
    n: usize,
    /// Maximum number of stored directions (`W`).
    capacity: usize,
    /// Currently stored directions.
    count: usize,
    /// Ring cursor: next slot to overwrite once full.
    next: usize,
    /// Largest allowed epoch jump between harvest and application.
    max_age: u64,
    /// Epoch of the most recent harvest.
    epoch: Option<u64>,
    /// `n × capacity` column-major orthonormal directions.
    u: Vec<Complex64>,
    /// Scratch: `A·U` (same layout as `u`).
    au: Vec<Complex64>,
    /// Scratch: residual `b − A x₀`.
    r: Vec<Complex64>,
    /// Scratch: residual of the remembered solution.
    r2: Vec<Complex64>,
    /// Scratch: `capacity × capacity` Galerkin matrix (column-major).
    g: Vec<Complex64>,
    /// Scratch: Galerkin right-hand side / solution.
    y: Vec<Complex64>,
    /// This column's full solution from the last remembered epoch.
    x_prev: Vec<Complex64>,
    /// Epoch [`RecycleSpace::remember_solution`] last stamped.
    x_prev_epoch: Option<u64>,
}

impl RecycleSpace {
    /// An empty space storing at most `capacity` directions, invalidated
    /// when applied more than one epoch after its last harvest.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "recycle capacity must be positive");
        Self {
            n: 0,
            capacity,
            count: 0,
            next: 0,
            max_age: 1,
            epoch: None,
            u: Vec::new(),
            au: Vec::new(),
            r: Vec::new(),
            r2: Vec::new(),
            g: Vec::new(),
            y: Vec::new(),
            x_prev: Vec::new(),
            x_prev_epoch: None,
        }
    }

    /// Sets the largest allowed harvest→apply epoch jump (default 1: the
    /// immediately following optimiser iteration, or a same-epoch
    /// re-solve).
    pub fn set_max_age(&mut self, max_age: u64) {
        self.max_age = max_age;
    }

    /// Largest allowed harvest→apply epoch jump.
    pub fn max_age(&self) -> u64 {
        self.max_age
    }

    /// Number of directions currently stored.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when no directions are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Maximum number of stored directions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every stored direction and the remembered solution
    /// (buffers are kept).
    pub fn clear(&mut self) {
        self.count = 0;
        self.next = 0;
        self.epoch = None;
        self.x_prev_epoch = None;
    }

    /// Sizes the buffers for operator dimension `n`, clearing the store
    /// if the dimension changed. Allocation-free once sized.
    pub fn ensure_dim(&mut self, n: usize) {
        if self.n != n {
            self.n = n;
            self.clear();
            self.u.clear();
            self.u.resize(n * self.capacity, Complex64::ZERO);
            self.au.clear();
            self.au.resize(n * self.capacity, Complex64::ZERO);
            self.r.clear();
            self.r.resize(n, Complex64::ZERO);
            self.r2.clear();
            self.r2.resize(n, Complex64::ZERO);
            self.g.clear();
            self.g
                .resize(self.capacity * self.capacity, Complex64::ZERO);
            self.y.clear();
            self.y.resize(self.capacity, Complex64::ZERO);
            self.x_prev.clear();
            self.x_prev.resize(n, Complex64::ZERO);
        }
    }

    /// Remembers this column's full converged solution at optimiser
    /// `epoch`, so the next epoch's [`RecycleSpace::try_apply`] can start
    /// from it when its true residual beats the caller's guess.
    /// Consecutive optimiser epochs differ by one design step, so the
    /// column's own previous solution is usually the best start
    /// available — the shared warm start is a corner-distance away, not
    /// an epoch-distance. Non-finite solutions are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` disagrees with the dimension passed to
    /// [`RecycleSpace::ensure_dim`].
    pub fn remember_solution(&mut self, x: &[Complex64], epoch: u64) {
        assert_eq!(x.len(), self.n, "solution dimension mismatch");
        if !norm(x).is_finite() {
            return;
        }
        self.x_prev.copy_from_slice(x);
        self.x_prev_epoch = Some(epoch);
    }

    /// Harvests one correction direction `x_final − x₀` from a converged
    /// solve at optimiser `epoch`, orthonormalising it against the stored
    /// directions (modified Gram–Schmidt). Non-finite corrections are
    /// rejected; corrections already captured by the stored subspace
    /// (residual after orthogonalisation below `RECYCLE_DEPENDENT_TOL`
    /// relative to the input) are skipped. Once the store is full the
    /// oldest direction is overwritten (ring order — the surviving set
    /// stays orthonormal because the newcomer was orthogonalised against
    /// *all* stored directions). Returns `true` if a direction was
    /// stored.
    ///
    /// # Panics
    ///
    /// Panics if `correction.len()` disagrees with the dimension passed
    /// to [`RecycleSpace::ensure_dim`].
    pub fn harvest(&mut self, correction: &[Complex64], epoch: u64) -> bool {
        let n = self.n;
        assert_eq!(correction.len(), n, "correction dimension mismatch");
        let input_norm = norm(correction);
        if !input_norm.is_finite() {
            return false;
        }
        // Stale stores are not worth orthogonalising against: a harvest
        // after an invalidating jump replaces the store outright.
        if let Some(stamp) = self.epoch {
            if epoch < stamp || epoch - stamp > self.max_age {
                self.clear();
            }
        }
        if input_norm == 0.0 {
            // Nothing new to store, but the converged solve behind this
            // harvest confirms the stored directions still describe the
            // current operator family — advance the stamp so the store
            // survives to the next epoch (a column that converges at its
            // recycled starting point must not lose the very space that
            // got it there).
            if self.count > 0 {
                self.epoch = Some(epoch);
            }
            return false;
        }
        let slot = if self.count < self.capacity {
            self.count
        } else {
            self.next
        };
        // Copy into the candidate slot, then orthogonalise in place
        // against every *other* stored column.
        let (head, tail) = self.u.split_at_mut(slot * n);
        let (cand, rest) = tail.split_at_mut(n);
        cand.copy_from_slice(correction);
        for (k, col) in head.chunks_exact(n).chain(rest.chunks_exact(n)).enumerate() {
            let k = if k < slot { k } else { k + 1 };
            if k >= self.count {
                break;
            }
            let proj = dot_conj(col, cand);
            axpy_neg(proj, col, cand);
        }
        let res_norm = norm(cand);
        if !res_norm.is_finite() || res_norm <= RECYCLE_DEPENDENT_TOL * input_norm {
            // Already captured (or poisoned by cancellation): leave the
            // store as-is. The stamp still advances — the *solve* at this
            // epoch confirmed the stored directions describe the current
            // operator family.
            self.epoch = Some(epoch);
            return false;
        }
        let inv = 1.0 / res_norm;
        for v in cand.iter_mut() {
            *v *= Complex64::new(inv, 0.0);
        }
        if self.count < self.capacity {
            self.count += 1;
        } else {
            self.next = (self.next + 1) % self.capacity;
        }
        self.epoch = Some(epoch);
        true
    }

    /// Improves the initial guess `x` for `A x = b` (or `Aᵀ x = b` when
    /// `transpose`) in two stages, applying the operator matrix-free
    /// through `op`'s column `col`:
    ///
    /// 1. **Start substitution** — if a solution remembered by
    ///    [`RecycleSpace::remember_solution`] is within the epoch window
    ///    and its true residual is strictly smaller than the caller's
    ///    guess, the guess is replaced by it (one extra operator apply).
    /// 2. **Galerkin projection** —
    ///    `x += U (Uᴴ A U)⁻¹ Uᴴ (b − A x)` over the stored directions.
    ///
    /// Returns `true` only when `x` was improved by at least one stage;
    /// each stage commits only if every quantity stays finite **and**
    /// the residual strictly shrinks, so a recycled start can skip but
    /// never worsen. An epoch more than [`RecycleSpace::max_age`] past
    /// the last harvest clears the store first
    /// (invalidate-on-ε-epoch-jump).
    ///
    /// # Panics
    ///
    /// Panics if `b`/`x` disagree with the dimension passed to
    /// [`RecycleSpace::ensure_dim`].
    pub fn try_apply<Op: ColumnOp>(
        &mut self,
        op: &Op,
        col: usize,
        transpose: bool,
        b: &[Complex64],
        x: &mut [Complex64],
        epoch: u64,
    ) -> bool {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs dimension mismatch");
        assert_eq!(x.len(), n, "solution dimension mismatch");
        // The remembered solution shares the invalidate-on-epoch-jump
        // rule with the direction store.
        let prev_ok = match self.x_prev_epoch {
            Some(stamp) if epoch >= stamp && epoch - stamp <= self.max_age => true,
            Some(_) => {
                self.x_prev_epoch = None;
                false
            }
            None => false,
        };
        if self.count > 0 {
            match self.epoch {
                Some(stamp) if epoch >= stamp && epoch - stamp <= self.max_age => {}
                _ => {
                    // The design has jumped too far (or backwards — a
                    // reset): the stored directions describe a different
                    // operator family. Drop them rather than risk a
                    // misleading projection.
                    self.clear();
                }
            }
        }
        if self.count == 0 && !prev_ok {
            return false;
        }
        let apply = |v: &[Complex64], out: &mut [Complex64]| {
            if transpose {
                op.apply_col_transpose(col, v, out);
            } else {
                op.apply_col(col, v, out);
            }
        };
        // r = b − A x₀.
        apply(x, &mut self.r);
        for (ri, &bi) in self.r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let mut rnorm = norm(&self.r);
        if !rnorm.is_finite() || rnorm == 0.0 {
            return false;
        }
        // Stage 1: start from this column's own previous solution when
        // its true residual beats the caller's guess.
        let mut committed = false;
        if prev_ok {
            apply(&self.x_prev, &mut self.r2);
            for (ri, &bi) in self.r2.iter_mut().zip(b) {
                *ri = bi - *ri;
            }
            let rprev = norm(&self.r2);
            if rprev.is_finite() && rprev < rnorm {
                x.copy_from_slice(&self.x_prev);
                std::mem::swap(&mut self.r, &mut self.r2);
                rnorm = rprev;
                committed = true;
            }
        }
        if self.count == 0 || rnorm == 0.0 {
            return committed;
        }
        let k = self.count;
        // AU and the Galerkin system G = Uᴴ (A U), y = Uᴴ r.
        for j in 0..k {
            apply(
                &self.u[j * n..(j + 1) * n],
                &mut self.au[j * n..(j + 1) * n],
            );
        }
        for j in 0..k {
            let auj = &self.au[j * n..(j + 1) * n];
            for i in 0..k {
                self.g[j * k + i] = dot_conj(&self.u[i * n..(i + 1) * n], auj);
            }
            self.y[j] = dot_conj(&self.u[j * n..(j + 1) * n], &self.r);
        }
        if !solve_small_in_place(&mut self.g[..k * k], &mut self.y[..k], k) {
            return committed;
        }
        if self.y[..k].iter().any(|v| !v.is_finite()) {
            return committed;
        }
        // Candidate residual r_new = r − (A U) y, evaluated in place —
        // the commit gate of the never-worsen rule.
        for j in 0..k {
            axpy_neg(self.y[j], &self.au[j * n..(j + 1) * n], &mut self.r);
        }
        let rnew = norm(&self.r);
        if !rnew.is_finite() || rnew >= rnorm {
            return committed;
        }
        for j in 0..k {
            axpy(self.y[j], &self.u[j * n..(j + 1) * n], x);
        }
        true
    }
}

/// In-place Gaussian elimination with partial pivoting for the tiny
/// (`k ≤ W`) column-major Galerkin system; `rhs` receives the solution.
/// Returns `false` on a degenerate or non-finite pivot.
fn solve_small_in_place(g: &mut [Complex64], rhs: &mut [Complex64], k: usize) -> bool {
    for col in 0..k {
        let mut piv = col;
        let mut best = g[col * k + col].abs();
        for row in col + 1..k {
            let mag = g[col * k + row].abs();
            if mag > best {
                best = mag;
                piv = row;
            }
        }
        if !best.is_finite() || best < RECYCLE_PIVOT_TOL {
            return false;
        }
        if piv != col {
            for j in col..k {
                g.swap(j * k + col, j * k + piv);
            }
            rhs.swap(col, piv);
        }
        let pivot = g[col * k + col];
        for row in col + 1..k {
            let factor = g[col * k + row] / pivot;
            if !factor.is_finite() {
                return false;
            }
            for j in col + 1..k {
                let sub = factor * g[j * k + col];
                g[j * k + row] -= sub;
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    for col in (0..k).rev() {
        let mut acc = rhs[col];
        for j in col + 1..k {
            acc -= g[j * k + col] * rhs[j];
        }
        rhs[col] = acc / g[col * k + col];
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    /// Diagonally dominant banded matrix with deterministic pseudo-random
    /// entries (same generator as the banded tests).
    fn random_banded(n: usize, kl: usize, ku: usize, seed: u64) -> BandedMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545F4914F6CDD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = BandedMatrix::new(n, kl, ku);
        for i in 0..n {
            for j in i.saturating_sub(kl)..=(i + ku).min(n - 1) {
                let mut v = c64(next(), next());
                if i == j {
                    v += c64(4.0 + (kl + ku) as f64, 1.0);
                }
                a.set(i, j, v);
            }
        }
        a
    }

    fn perturb_diagonal(a: &BandedMatrix, strength: f64, seed: u64) -> BandedMatrix {
        let mut p = a.clone();
        let mut state = seed | 1;
        for i in 0..a.n() {
            state ^= state >> 13;
            state ^= state << 7;
            let u = (state % 1000) as f64 / 1000.0 - 0.5;
            p.add(i, i, c64(strength * u, strength * 0.3 * u));
        }
        p
    }

    #[test]
    fn converges_fast_near_the_preconditioner() {
        let n = 40;
        let a = random_banded(n, 3, 3, 7);
        let mut nominal = a.clone().factor().unwrap();
        let corner = perturb_diagonal(&a, 0.05, 99);
        let nrhs = 3;
        let b: Vec<Complex64> = (0..n * nrhs)
            .map(|k| c64((k as f64 * 0.1).sin(), (k as f64 * 0.05).cos()))
            .collect();
        let mut x = vec![Complex64::ZERO; n * nrhs];
        let mut ws = KrylovWorkspace::new();
        let q = bicgstab_precond_many(
            &corner,
            &mut nominal,
            &b,
            &mut x,
            nrhs,
            &IterativeOptions::default(),
            &mut ws,
        );
        assert!(q.converged, "{q:?}");
        assert!(q.max_iterations <= 5, "{q:?}");
        assert!(q.max_residual < 1e-8, "{q:?}");
        // Every column solves the perturbed system, not the nominal one.
        for c in 0..nrhs {
            let ax = corner.matvec(&x[c * n..(c + 1) * n]);
            let res: f64 = ax
                .iter()
                .zip(&b[c * n..(c + 1) * n])
                .map(|(p, q)| (*p - *q).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-6, "column {c} residual {res}");
            assert!(ws.stats()[c].converged);
        }
    }

    #[test]
    fn transpose_variant_solves_transpose_system() {
        let n = 30;
        let a = random_banded(n, 2, 4, 21);
        let mut nominal = a.clone().factor().unwrap();
        let corner = perturb_diagonal(&a, 0.08, 5);
        let b: Vec<Complex64> = (0..n).map(|k| c64(1.0 / (k + 1) as f64, 0.2)).collect();
        let mut x = vec![Complex64::ZERO; n];
        let mut ws = KrylovWorkspace::new();
        let q = bicgstab_precond_transpose_many(
            &corner,
            &mut nominal,
            &b,
            &mut x,
            1,
            &IterativeOptions::default(),
            &mut ws,
        );
        assert!(q.converged, "{q:?}");
        let atx = corner.matvec_transpose(&x);
        let res: f64 = atx
            .iter()
            .zip(&b)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-6, "transpose residual {res}");
    }

    #[test]
    fn iteration_budget_reports_nonconvergence() {
        let n = 36;
        let a = random_banded(n, 2, 2, 3);
        let mut nominal = a.clone().factor().unwrap();
        // A violently different operator: the nominal factor is a poor
        // preconditioner, so one iteration cannot reach 1e-12.
        let corner = perturb_diagonal(&a, 40.0, 11);
        let b = vec![Complex64::ONE; n];
        let mut x = vec![Complex64::ZERO; n];
        let mut ws = KrylovWorkspace::new();
        let q = bicgstab_precond_many(
            &corner,
            &mut nominal,
            &b,
            &mut x,
            1,
            &IterativeOptions {
                tol: 1e-12,
                max_iters: 1,
                use_initial_guess: false,
                threads: 1,
            },
            &mut ws,
        );
        assert!(!q.converged);
        assert_eq!(q.max_iterations, 1);
        assert!(q.max_residual > 1e-12);
        assert!(!ws.stats()[0].converged);
    }

    #[test]
    fn zero_rhs_column_is_exact_in_zero_iterations() {
        let n = 20;
        let a = random_banded(n, 2, 2, 13);
        let mut nominal = a.clone().factor().unwrap();
        let corner = perturb_diagonal(&a, 0.01, 17);
        let mut b = vec![Complex64::ZERO; 2 * n];
        for (k, v) in b[n..].iter_mut().enumerate() {
            *v = c64((k as f64).sin(), 0.1);
        }
        let mut x = vec![c64(5.0, 5.0); 2 * n]; // poisoned
        let mut ws = KrylovWorkspace::new();
        let q = bicgstab_precond_many(
            &corner,
            &mut nominal,
            &b,
            &mut x,
            2,
            &IterativeOptions::default(),
            &mut ws,
        );
        assert!(q.converged);
        assert!(x[..n].iter().all(|v| v.abs() == 0.0));
        assert_eq!(ws.stats()[0].iterations, 0);
        assert!(ws.stats()[1].iterations >= 1);
    }

    /// A non-finite right-hand side must break its column *immediately*
    /// (zero iterations, reported unconverged with an ∞ residual) instead
    /// of sweeping the whole budget — `NaN.abs() < BREAKDOWN` is `false`,
    /// so the magnitude tests alone never catch it — while healthy
    /// columns in the same batch converge exactly as if solved alone.
    #[test]
    fn non_finite_rhs_breaks_down_immediately_without_poisoning_the_batch() {
        let n = 30;
        let a = random_banded(n, 2, 3, 71);
        let mut nominal = a.clone().factor().unwrap();
        let corner = perturb_diagonal(&a, 0.05, 13);
        let good: Vec<Complex64> = (0..n)
            .map(|k| c64((k as f64 * 0.07).sin(), (k as f64 * 0.03).cos()))
            .collect();
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            // Column 0 poisoned, column 1 healthy.
            let mut b = vec![Complex64::ZERO; 2 * n];
            b[..n].copy_from_slice(&good);
            b[3] = c64(poison, 0.2);
            b[n..].copy_from_slice(&good);
            let mut x = vec![c64(9.0, -9.0); 2 * n]; // poisoned output
            let mut ws = KrylovWorkspace::new();
            let opts = IterativeOptions::default();
            let q = bicgstab_precond_many(&corner, &mut nominal, &b, &mut x, 2, &opts, &mut ws);
            assert!(!q.converged, "{poison}: {q:?}");
            let bad = ws.stats()[0];
            assert!(!bad.converged, "{poison}");
            assert_eq!(bad.iterations, 0, "{poison}: budget was spent anyway");
            assert!(bad.residual.is_infinite(), "{poison}: {bad:?}");
            assert!(
                x[..n].iter().all(|v| v.abs() == 0.0),
                "{poison}: broken column must return a defined (zero) solution"
            );
            // The healthy column is unaffected by its poisoned neighbour.
            let healthy = ws.stats()[1];
            assert!(healthy.converged, "{poison}: {healthy:?}");
            let mut x_alone = vec![Complex64::ZERO; n];
            let mut ws_alone = KrylovWorkspace::new();
            bicgstab_precond_many(
                &corner,
                &mut nominal,
                &good,
                &mut x_alone,
                1,
                &opts,
                &mut ws_alone,
            );
            assert_eq!(&x[n..], x_alone.as_slice(), "{poison}");
        }
    }

    /// A warm start carrying non-finite entries breaks the column at the
    /// initial-residual stage rather than iterating on garbage.
    #[test]
    fn non_finite_warm_start_breaks_down_immediately() {
        let n = 24;
        let a = random_banded(n, 2, 2, 19);
        let mut nominal = a.clone().factor().unwrap();
        let corner = perturb_diagonal(&a, 0.05, 7);
        let b: Vec<Complex64> = (0..n).map(|k| c64(1.0 + k as f64 * 0.1, -0.4)).collect();
        let mut x = vec![Complex64::ZERO; n];
        x[5] = c64(f64::NAN, 0.0);
        let mut ws = KrylovWorkspace::new();
        let opts = IterativeOptions {
            use_initial_guess: true,
            ..IterativeOptions::default()
        };
        let q = bicgstab_precond_many(&corner, &mut nominal, &b, &mut x, 1, &opts, &mut ws);
        assert!(!q.converged, "{q:?}");
        assert_eq!(ws.stats()[0].iterations, 0);
        assert!(ws.stats()[0].residual.is_infinite());
    }

    #[test]
    fn workspace_is_allocation_stable_across_reuse() {
        let n = 24;
        let a = random_banded(n, 2, 2, 31);
        let mut nominal = a.clone().factor().unwrap();
        let b: Vec<Complex64> = (0..n * 2).map(|k| c64(k as f64 * 0.1, -0.3)).collect();
        let mut x = vec![Complex64::ZERO; n * 2];
        let mut ws = KrylovWorkspace::new();
        let opts = IterativeOptions::default();
        let corner = perturb_diagonal(&a, 0.02, 41);
        bicgstab_precond_many(&corner, &mut nominal, &b, &mut x, 2, &opts, &mut ws);
        let ptrs = [ws.r.as_ptr(), ws.p_hat.as_ptr(), ws.t.as_ptr()];
        let stats_ptr = ws.stats.as_ptr();
        for seed in 50..54 {
            let corner = perturb_diagonal(&a, 0.02, seed);
            bicgstab_precond_many(&corner, &mut nominal, &b, &mut x, 2, &opts, &mut ws);
        }
        assert_eq!(ptrs[0], ws.r.as_ptr(), "Krylov storage reallocated");
        assert_eq!(ptrs[1], ws.p_hat.as_ptr(), "Krylov storage reallocated");
        assert_eq!(ptrs[2], ws.t.as_ptr(), "Krylov storage reallocated");
        assert_eq!(stats_ptr, ws.stats.as_ptr(), "stats storage reallocated");
    }

    #[test]
    fn agrees_with_direct_solve_to_tolerance() {
        let n = 32;
        let a = random_banded(n, 3, 3, 57);
        let mut nominal = a.clone().factor().unwrap();
        let corner = perturb_diagonal(&a, 0.2, 23);
        let direct = corner.clone().factor().unwrap();
        let b: Vec<Complex64> = (0..n).map(|k| c64((k as f64 * 0.3).cos(), 0.4)).collect();
        let x_direct = direct.solve_vec(&b);
        let mut x = vec![Complex64::ZERO; n];
        let mut ws = KrylovWorkspace::new();
        let opts = IterativeOptions {
            tol: 1e-10,
            max_iters: 40,
            use_initial_guess: false,
            threads: 1,
        };
        let q = bicgstab_precond_many(&corner, &mut nominal, &b, &mut x, 1, &opts, &mut ws);
        assert!(q.converged);
        let xnorm: f64 = x_direct.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
        let err: f64 = x
            .iter()
            .zip(&x_direct)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(err / xnorm < 1e-8, "iterative vs direct: {}", err / xnorm);
    }

    fn residual_of(a: &BandedMatrix, x: &[Complex64], b: &[Complex64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter()
            .zip(b)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Harvesting last epoch's correction and Galerkin-projecting the next
    /// residual onto it must strictly reduce that residual, and the
    /// recycled start must converge in no more iterations than the plain
    /// warm start.
    #[test]
    fn recycle_apply_reduces_residual_and_iterations() {
        let n = 48;
        let a = random_banded(n, 3, 3, 77);
        let mut nominal = a.clone().factor().unwrap();
        let b: Vec<Complex64> = (0..n)
            .map(|k| c64((k as f64 * 0.2).sin(), (k as f64 * 0.11).cos()))
            .collect();
        let opts = IterativeOptions {
            tol: 1e-10,
            max_iters: 40,
            use_initial_guess: true,
            threads: 1,
        };
        // Epoch 0: solve corner 0 cold, harvest the correction.
        let c0 = perturb_diagonal(&a, 0.3, 5);
        let mut x0 = vec![Complex64::ZERO; n];
        let mut ws = KrylovWorkspace::new();
        let q0 = bicgstab_precond_many(&c0, &mut nominal, &b, &mut x0, 1, &opts, &mut ws);
        assert!(q0.converged);
        let mut space = RecycleSpace::new(4);
        space.ensure_dim(n);
        assert!(space.harvest(&x0, 0)); // correction from x₀ = 0 is x itself
        assert_eq!(space.len(), 1);
        // Epoch 1: nearby corner, warm-started from x0. The recycled
        // projection must strictly reduce the starting residual.
        let c1 = perturb_diagonal(&a, 0.3, 6);
        let mut x_warm = x0.clone();
        let r_before = residual_of(&c1, &x_warm, &b);
        assert!(space.try_apply(&c1, 0, false, &b, &mut x_warm, 1));
        let r_after = residual_of(&c1, &x_warm, &b);
        assert!(
            r_after < r_before,
            "projection must not worsen: {r_after} vs {r_before}"
        );
        // ... and the recycled start converges at least as fast.
        let mut x_plain = x0.clone();
        let q_plain = bicgstab_precond_many(&c1, &mut nominal, &b, &mut x_plain, 1, &opts, &mut ws);
        let q_rec = bicgstab_precond_many(&c1, &mut nominal, &b, &mut x_warm, 1, &opts, &mut ws);
        assert!(q_plain.converged && q_rec.converged);
        assert!(
            q_rec.max_iterations <= q_plain.max_iterations,
            "recycled {} vs plain {}",
            q_rec.max_iterations,
            q_plain.max_iterations
        );
        // Both reach the same solution of the same system.
        let err: f64 = x_warm
            .iter()
            .zip(&x_plain)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "recycled vs plain solution drift {err}");
    }

    /// Transpose recycling projects through `Aᵀ` and reduces the
    /// transpose-system residual.
    #[test]
    fn recycle_apply_works_for_transpose_systems() {
        let n = 40;
        let a = random_banded(n, 2, 4, 31);
        let mut nominal = a.clone().factor().unwrap();
        let b: Vec<Complex64> = (0..n).map(|k| c64(0.5 + k as f64 * 0.03, -0.2)).collect();
        let opts = IterativeOptions {
            tol: 1e-10,
            max_iters: 40,
            use_initial_guess: true,
            threads: 1,
        };
        let c0 = perturb_diagonal(&a, 0.25, 9);
        let mut x0 = vec![Complex64::ZERO; n];
        let mut ws = KrylovWorkspace::new();
        let q0 = bicgstab_precond_transpose_many(&c0, &mut nominal, &b, &mut x0, 1, &opts, &mut ws);
        assert!(q0.converged);
        let mut space = RecycleSpace::new(4);
        space.ensure_dim(n);
        assert!(space.harvest(&x0, 3));
        let c1 = perturb_diagonal(&a, 0.25, 10);
        let mut x = x0.clone();
        let atx = c1.matvec_transpose(&x);
        let r_before: f64 = atx
            .iter()
            .zip(&b)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(space.try_apply(&c1, 0, true, &b, &mut x, 4));
        let atx = c1.matvec_transpose(&x);
        let r_after: f64 = atx
            .iter()
            .zip(&b)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(r_after < r_before, "{r_after} vs {r_before}");
    }

    /// A remembered solution replaces a worse caller guess (residual
    /// strictly shrinks), is ignored when the guess is already better,
    /// and dies with the epoch window like the direction store.
    #[test]
    fn recycle_remembered_solution_substitutes_only_when_better() {
        let n = 40;
        let a = random_banded(n, 3, 3, 91);
        let mut nominal = a.clone().factor().unwrap();
        let b: Vec<Complex64> = (0..n)
            .map(|k| c64((k as f64 * 0.17).cos(), (k as f64 * 0.23).sin()))
            .collect();
        let opts = IterativeOptions {
            tol: 1e-10,
            max_iters: 40,
            use_initial_guess: true,
            threads: 1,
        };
        // Epoch 0: solve corner 0 and remember the full solution.
        let c0 = perturb_diagonal(&a, 0.2, 11);
        let mut x0 = vec![Complex64::ZERO; n];
        let mut ws = KrylovWorkspace::new();
        let q0 = bicgstab_precond_many(&c0, &mut nominal, &b, &mut x0, 1, &opts, &mut ws);
        assert!(q0.converged);
        let mut space = RecycleSpace::new(4);
        space.ensure_dim(n);
        space.remember_solution(&x0, 0);
        // Epoch 1, nearby corner, cold (zero) caller guess: the
        // remembered solution's residual beats ‖b‖, so it must be
        // substituted even though the direction store is empty.
        let c1 = perturb_diagonal(&a, 0.2, 12);
        let mut x = vec![Complex64::ZERO; n];
        let r_cold = residual_of(&c1, &x, &b);
        assert!(space.try_apply(&c1, 0, false, &b, &mut x, 1));
        let r_sub = residual_of(&c1, &x, &b);
        assert!(
            r_sub < r_cold,
            "substitution must shrink: {r_sub} vs {r_cold}"
        );
        assert_eq!(x, x0, "the remembered solution is the new start");
        // A caller guess that is already the exact solution of c1 beats
        // the remembered (epoch-0) solution: nothing is substituted.
        let mut x_exact = vec![Complex64::ZERO; n];
        let q1 = bicgstab_precond_many(&c1, &mut nominal, &b, &mut x_exact, 1, &opts, &mut ws);
        assert!(q1.converged);
        let x_best = x_exact.clone();
        assert!(!space.try_apply(&c1, 0, false, &b, &mut x_exact, 1));
        assert_eq!(x_exact, x_best, "a better guess must be kept");
        // Past the epoch window the remembered solution is dropped.
        let mut x_cold = vec![Complex64::ZERO; n];
        assert!(!space.try_apply(&c1, 0, false, &b, &mut x_cold, 5));
        assert!(x_cold.iter().all(|v| *v == Complex64::ZERO));
    }

    /// An epoch jump beyond `max_age` invalidates the store: the
    /// application is skipped, `x` is untouched and the directions are
    /// dropped.
    #[test]
    fn recycle_epoch_jump_invalidates_the_store() {
        let n = 24;
        let a = random_banded(n, 2, 2, 55);
        let b: Vec<Complex64> = (0..n).map(|k| c64(1.0 + k as f64 * 0.1, 0.3)).collect();
        let mut space = RecycleSpace::new(3);
        space.ensure_dim(n);
        let dir: Vec<Complex64> = (0..n).map(|k| c64((k as f64).cos(), 0.1)).collect();
        assert!(space.harvest(&dir, 2));
        assert_eq!(space.len(), 1);
        let mut x = vec![Complex64::ZERO; n];
        let x_before = x.clone();
        // Epoch 4 is two past the harvest stamp: too stale.
        assert!(!space.try_apply(&a, 0, false, &b, &mut x, 4));
        assert_eq!(x, x_before, "stale application must not touch x");
        assert!(space.is_empty(), "stale store must be dropped");
        // A backwards jump (optimiser reset) also invalidates.
        assert!(space.harvest(&dir, 9));
        assert!(!space.try_apply(&a, 0, false, &b, &mut x, 3));
        assert!(space.is_empty());
    }

    /// Non-finite corrections are rejected at harvest; duplicate
    /// directions are skipped; the ring overwrites the oldest direction
    /// once full and keeps the store orthonormal.
    #[test]
    fn recycle_harvest_hardening_and_ring_overwrite() {
        let n = 16;
        let mut space = RecycleSpace::new(2);
        space.ensure_dim(n);
        let mut poisoned = vec![Complex64::ONE; n];
        poisoned[7] = c64(f64::NAN, 0.0);
        assert!(!space.harvest(&poisoned, 0));
        assert!(space.is_empty());
        let zeros = vec![Complex64::ZERO; n];
        assert!(!space.harvest(&zeros, 0));
        let d1: Vec<Complex64> = (0..n).map(|k| c64((k as f64).sin(), 0.0)).collect();
        assert!(space.harvest(&d1, 0));
        // The same direction again is already captured: skipped.
        let scaled: Vec<Complex64> = d1.iter().map(|v| *v * c64(2.5, 0.0)).collect();
        assert!(!space.harvest(&scaled, 0));
        assert_eq!(space.len(), 1);
        let d2: Vec<Complex64> = (0..n).map(|k| c64(0.2, (k as f64).cos())).collect();
        let d3: Vec<Complex64> = (0..n).map(|k| c64((k * k % 5) as f64, -0.4)).collect();
        assert!(space.harvest(&d2, 0));
        assert!(space.harvest(&d3, 0)); // overwrites the oldest (d1's slot)
        assert_eq!(space.len(), 2);
        // Orthonormality of the stored pair.
        let u0 = &space.u[..n];
        let u1 = &space.u[n..2 * n];
        assert!((norm(u0) - 1.0).abs() < 1e-12);
        assert!((norm(u1) - 1.0).abs() < 1e-12);
        assert!(dot_conj(u0, u1).abs() < 1e-10);
    }

    /// Steady-state harvest/apply cycles must not reallocate.
    #[test]
    fn recycle_space_is_allocation_stable_across_reuse() {
        let n = 32;
        let a = random_banded(n, 2, 2, 91);
        let b: Vec<Complex64> = (0..n).map(|k| c64(0.3 * k as f64, 0.7)).collect();
        let mut space = RecycleSpace::new(4);
        space.ensure_dim(n);
        let seed_dir: Vec<Complex64> = (0..n).map(|k| c64((k as f64).sin(), 0.2)).collect();
        space.harvest(&seed_dir, 0);
        let ptrs = (space.u.as_ptr(), space.au.as_ptr(), space.g.as_ptr());
        let mut x = vec![Complex64::ZERO; n];
        for epoch in 1..6 {
            space.ensure_dim(n);
            space.try_apply(&a, 0, false, &b, &mut x, epoch);
            let dir: Vec<Complex64> = (0..n)
                .map(|k| c64((k as f64 * epoch as f64).cos(), 0.1 * epoch as f64))
                .collect();
            space.harvest(&dir, epoch);
        }
        assert_eq!(ptrs.0, space.u.as_ptr(), "direction storage reallocated");
        assert_eq!(ptrs.1, space.au.as_ptr(), "AU scratch reallocated");
        assert_eq!(ptrs.2, space.g.as_ptr(), "Galerkin scratch reallocated");
    }
}
