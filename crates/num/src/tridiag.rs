//! Symmetric tridiagonal eigensolver (Sturm bisection + inverse iteration).
//!
//! The 1-D slab waveguide mode problem `(d²/dy² + k₀²ε(y))φ = β²φ`
//! discretises to a real symmetric tridiagonal eigenproblem whose *largest*
//! eigenvalues correspond to the guided modes. This module finds the top-k
//! eigenpairs:
//!
//! 1. Gershgorin discs bound the spectrum.
//! 2. Sturm-sequence bisection isolates each eigenvalue to machine
//!    precision.
//! 3. Inverse iteration with the shifted tridiagonal solve recovers each
//!    eigenvector.
//!
//! # Examples
//!
//! ```
//! use boson_num::tridiag::SymTridiag;
//!
//! // Discrete 1-D Laplacian with Dirichlet ends: eigenvalues are known.
//! let n = 32;
//! let t = SymTridiag::new(vec![2.0; n], vec![-1.0; n - 1]);
//! let pairs = t.largest_eigenpairs(3);
//! let exact = |k: usize| 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / (n + 1) as f64).cos();
//! assert!((pairs[0].value - exact(n)).abs() < 1e-10);
//! ```

use std::fmt;

/// A real symmetric tridiagonal matrix given by its diagonal and
/// off-diagonal.
#[derive(Debug, Clone, PartialEq)]
pub struct SymTridiag {
    diag: Vec<f64>,
    off: Vec<f64>,
}

/// One eigenvalue/eigenvector pair returned by
/// [`SymTridiag::largest_eigenpairs`].
#[derive(Debug, Clone, PartialEq)]
pub struct Eigenpair {
    /// The eigenvalue.
    pub value: f64,
    /// The corresponding unit-norm eigenvector.
    pub vector: Vec<f64>,
}

impl fmt::Display for SymTridiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymTridiag(n={})", self.diag.len())
    }
}

impl SymTridiag {
    /// Creates the matrix from its diagonal (`n`) and off-diagonal (`n-1`).
    ///
    /// # Panics
    ///
    /// Panics if `off.len() + 1 != diag.len()` or `diag` is empty.
    pub fn new(diag: Vec<f64>, off: Vec<f64>) -> Self {
        assert!(!diag.is_empty(), "matrix must be non-empty");
        assert_eq!(off.len() + 1, diag.len(), "off-diagonal length must be n-1");
        Self { diag, off }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.diag.len()
    }

    /// Gershgorin bounds `(lo, hi)` containing the whole spectrum.
    pub fn gershgorin_bounds(&self) -> (f64, f64) {
        let n = self.n();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let mut r = 0.0;
            if i > 0 {
                r += self.off[i - 1].abs();
            }
            if i + 1 < n {
                r += self.off[i].abs();
            }
            lo = lo.min(self.diag[i] - r);
            hi = hi.max(self.diag[i] + r);
        }
        (lo, hi)
    }

    /// Number of eigenvalues strictly less than `x` (Sturm sequence count).
    pub fn count_below(&self, x: f64) -> usize {
        let n = self.n();
        let mut count = 0usize;
        let mut q = self.diag[0] - x;
        if q < 0.0 {
            count += 1;
        }
        for i in 1..n {
            let e2 = self.off[i - 1] * self.off[i - 1];
            // Guard division by (near-)zero as in LAPACK dstebz.
            let denom = if q.abs() < f64::MIN_POSITIVE.sqrt() {
                f64::MIN_POSITIVE
                    .sqrt()
                    .copysign(if q == 0.0 { 1.0 } else { q })
            } else {
                q
            };
            q = (self.diag[i] - x) - e2 / denom;
            if q < 0.0 {
                count += 1;
            }
        }
        count
    }

    /// Finds the `m`-th largest eigenvalue (`m = 0` is the largest) by
    /// bisection.
    ///
    /// # Panics
    ///
    /// Panics if `m >= n`.
    pub fn kth_largest_eigenvalue(&self, m: usize) -> f64 {
        let n = self.n();
        assert!(m < n, "eigenvalue index {m} out of range (n={n})");
        // k-th largest = (n - 1 - m)-th smallest; we need the eigenvalue λ
        // such that count_below(λ⁻) == n-1-m and count_below(λ⁺) == n-m.
        let target = n - m; // want count_below(hi) >= target
        let (mut lo, mut hi) = self.gershgorin_bounds();
        lo -= 1e-8 + 1e-12 * lo.abs();
        hi += 1e-8 + 1e-12 * hi.abs();
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.count_below(mid) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo <= 1e-14 * (1.0 + hi.abs().max(lo.abs())) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Solves `(T - σI) x = b` with partial-pivoting tridiagonal elimination.
    fn shifted_solve(&self, sigma: f64, b: &[f64]) -> Vec<f64> {
        let n = self.n();
        // Working copies of the three bands (with fill-in band for pivoting).
        let mut d: Vec<f64> = self.diag.iter().map(|v| v - sigma).collect();
        let mut u: Vec<f64> = (0..n - 1).map(|i| self.off[i]).collect();
        let mut u2 = vec![0.0; n.saturating_sub(2)]; // second super-diagonal fill
        let mut l = vec![0.0; n - 1]; // multipliers
        let mut swapped = vec![false; n - 1];
        let mut x = b.to_vec();

        for i in 0..n - 1 {
            let sub = self.off[i];
            if sub.abs() > d[i].abs() {
                // Swap row i and i+1.
                swapped[i] = true;
                std::mem::swap(&mut d[i], &mut u[i]);
                // After swap, row i gets (sub, d_{i+1}, u_{i+1}); we fold:
                let di1_old = d[i + 1];
                d[i + 1] = u[i]; // placeholder, fixed below
                                 // Row i originally: [d_i, u_i, 0]; row i+1: [sub, d_{i+1}, u_{i+1}]
                                 // We swapped d[i]<->u[i] incorrectly for the general case; redo carefully:
                                 // Undo the aliasing approach and perform the swap explicitly.
                std::mem::swap(&mut d[i], &mut u[i]); // revert
                let row_i = (d[i], u[i], 0.0);
                let row_i1 = (sub, di1_old, if i + 2 < n { u[i + 1] } else { 0.0 });
                // Pivot row becomes old row i+1.
                d[i] = row_i1.0;
                u[i] = row_i1.1;
                if i < u2.len() {
                    u2[i] = row_i1.2;
                }
                // Eliminated row becomes old row i.
                let m = row_i.0 / d[i];
                l[i] = m;
                d[i + 1] = row_i.1 - m * u[i];
                if i + 2 < n {
                    u[i + 1] = row_i.2 - m * if i < u2.len() { u2[i] } else { 0.0 };
                }
                x.swap(i, i + 1);
                x[i + 1] -= m * x[i];
            } else {
                if d[i] == 0.0 {
                    d[i] = 1e-300; // numerically singular shift; perturb
                }
                let m = sub / d[i];
                l[i] = m;
                d[i + 1] -= m * u[i];
                if i < u2.len() {
                    // no fill without swap
                    u2[i] = 0.0;
                }
                x[i + 1] -= m * x[i];
            }
        }
        // Back substitution with two super-diagonals.
        if d[n - 1] == 0.0 {
            d[n - 1] = 1e-300;
        }
        x[n - 1] /= d[n - 1];
        if n >= 2 {
            let i = n - 2;
            x[i] = (x[i] - u[i] * x[i + 1]) / d[i];
        }
        for i in (0..n.saturating_sub(2)).rev() {
            x[i] = (x[i] - u[i] * x[i + 1] - u2[i] * x[i + 2]) / d[i];
        }
        x
    }

    /// Computes the `k` largest eigenpairs, sorted descending by eigenvalue.
    ///
    /// Eigenvectors are unit-norm; the sign convention makes the
    /// largest-magnitude component positive.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn largest_eigenpairs(&self, k: usize) -> Vec<Eigenpair> {
        let n = self.n();
        assert!(k <= n, "requested {k} eigenpairs from an n={n} matrix");
        let mut out = Vec::with_capacity(k);
        for m in 0..k {
            let lam = self.kth_largest_eigenvalue(m);
            // Inverse iteration with a slightly perturbed shift.
            let scale = 1.0 + lam.abs();
            let shift = lam + 1e-11 * scale;
            let mut v: Vec<f64> = (0..n)
                .map(|i| {
                    // Deterministic pseudo-random start, decorrelated per m.
                    let t = (i * 2654435761 + m * 40503 + 12345) as u64;
                    ((t.wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407)
                        >> 33) as f64
                        / (1u64 << 31) as f64)
                        - 1.0
                })
                .collect();
            // Orthogonalise against previously found vectors (handles
            // clusters / repeated eigenvalues).
            for _iter in 0..4 {
                for prev in &out {
                    let p: &Eigenpair = prev;
                    if (p.value - lam).abs() < 1e-6 * scale {
                        let dot: f64 = v.iter().zip(&p.vector).map(|(a, b)| a * b).sum();
                        for (vi, pi) in v.iter_mut().zip(&p.vector) {
                            *vi -= dot * pi;
                        }
                    }
                }
                v = self.shifted_solve(shift, &v);
                let nrm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if nrm > 0.0 {
                    for x in &mut v {
                        *x /= nrm;
                    }
                }
            }
            // Fix sign: largest-|.| component positive.
            let (mut imax, mut vmax) = (0usize, 0.0f64);
            for (i, &x) in v.iter().enumerate() {
                if x.abs() > vmax {
                    vmax = x.abs();
                    imax = i;
                }
            }
            if v[imax] < 0.0 {
                for x in &mut v {
                    *x = -*x;
                }
            }
            out.push(Eigenpair {
                value: lam,
                vector: v,
            });
        }
        out
    }

    /// Matrix–vector product (for residual tests).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(x.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] = self.diag[i] * x[i];
            if i > 0 {
                y[i] += self.off[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                y[i] += self.off[i] * x[i + 1];
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn laplacian(n: usize) -> SymTridiag {
        SymTridiag::new(vec![2.0; n], vec![-1.0; n - 1])
    }

    #[test]
    fn gershgorin_contains_laplacian_spectrum() {
        let t = laplacian(10);
        let (lo, hi) = t.gershgorin_bounds();
        assert!(lo <= 0.0 && hi >= 4.0);
    }

    #[test]
    fn sturm_count_is_monotone() {
        let t = laplacian(16);
        assert_eq!(t.count_below(-1.0), 0);
        assert_eq!(t.count_below(5.0), 16);
        let mut prev = 0;
        for k in 0..50 {
            let x = -0.5 + k as f64 * 0.1;
            let c = t.count_below(x);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn laplacian_eigenvalues_match_closed_form() {
        let n = 20;
        let t = laplacian(n);
        // Exact: λ_k = 2 - 2cos(kπ/(n+1)), k = 1..n; largest at k = n.
        for m in 0..4 {
            let k = n - m;
            let exact = 2.0 - 2.0 * (PI * k as f64 / (n + 1) as f64).cos();
            let got = t.kth_largest_eigenvalue(m);
            assert!((got - exact).abs() < 1e-10, "m={m}: {got} vs {exact}");
        }
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let n = 24;
        let t = laplacian(n);
        for pair in t.largest_eigenpairs(5) {
            let tv = t.matvec(&pair.vector);
            let res: f64 = tv
                .iter()
                .zip(&pair.vector)
                .map(|(a, b)| (a - pair.value * b).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-8, "residual {res} at λ={}", pair.value);
            let nrm: f64 = pair.vector.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((nrm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn eigenvectors_are_orthogonal() {
        let n = 30;
        let t = SymTridiag::new(
            (0..n).map(|i| 1.0 + (i as f64 * 0.3).sin()).collect(),
            (0..n - 1).map(|i| -0.8 + 0.01 * i as f64).collect(),
        );
        let pairs = t.largest_eigenpairs(4);
        for a in 0..4 {
            for b in 0..a {
                let dot: f64 = pairs[a]
                    .vector
                    .iter()
                    .zip(&pairs[b].vector)
                    .map(|(x, y)| x * y)
                    .sum();
                assert!(dot.abs() < 1e-6, "modes {a},{b} not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let n = 15;
        let t = SymTridiag::new(
            (0..n).map(|i| (i as f64).cos() * 2.0).collect(),
            vec![0.5; n - 1],
        );
        let pairs = t.largest_eigenpairs(6);
        for w in pairs.windows(2) {
            assert!(w[0].value >= w[1].value - 1e-12);
        }
    }

    #[test]
    fn slab_waveguide_like_matrix() {
        // k0²ε(y) potential well: central high-ε region should give a
        // confined fundamental mode peaked at the centre.
        let n = 101;
        let dy = 0.05;
        let k0 = 2.0 * PI / 1.55;
        let eps = |i: usize| if (40..=60).contains(&i) { 12.1 } else { 1.0 };
        let diag: Vec<f64> = (0..n)
            .map(|i| -2.0 / (dy * dy) + k0 * k0 * eps(i))
            .collect();
        let off = vec![1.0 / (dy * dy); n - 1];
        let t = SymTridiag::new(diag, off);
        let pairs = t.largest_eigenpairs(1);
        let beta2 = pairs[0].value;
        // Guided: k0²·1 < β² < k0²·12.1
        assert!(beta2 > k0 * k0 * 1.0 && beta2 < k0 * k0 * 12.1);
        // Mode peaks inside the core.
        let (mut imax, mut vmax) = (0, 0.0);
        for (i, &v) in pairs[0].vector.iter().enumerate() {
            if v.abs() > vmax {
                vmax = v.abs();
                imax = i;
            }
        }
        assert!(
            (40..=60).contains(&imax),
            "mode peak at {imax} outside core"
        );
    }

    #[test]
    #[should_panic(expected = "off-diagonal length")]
    fn wrong_offdiag_length_panics() {
        let _ = SymTridiag::new(vec![1.0; 4], vec![0.0; 4]);
    }
}
