//! Complex banded matrices and LU factorisation with partial pivoting.
//!
//! The 2-D FDFD Helmholtz operator is a 5-point stencil: with grid ordering
//! along the fast axis its bandwidth equals the fast-axis extent, so a
//! banded direct solver (the algorithm of LAPACK's `zgbtrf`/`zgbtrs`)
//! factors it in `O(n·b²)` time and solves each right-hand side in
//! `O(n·b)`. Both the forward solve and the transpose solve are provided —
//! the adjoint method solves `Aᵀλ = g` against the *same* factorisation.
//!
//! Storage is column-major LAPACK band format with `2·kl + ku + 1` rows per
//! column: the top `kl` rows are fill space for pivoting.
//!
//! # Examples
//!
//! ```
//! use boson_num::{banded::BandedMatrix, c64, Complex64};
//!
//! // Tridiagonal system (kl = ku = 1): -u'' = f discretised.
//! let n = 5;
//! let mut a = BandedMatrix::new(n, 1, 1);
//! for i in 0..n {
//!     a.add(i, i, c64(2.0, 0.0));
//!     if i > 0 { a.add(i, i - 1, c64(-1.0, 0.0)); }
//!     if i + 1 < n { a.add(i, i + 1, c64(-1.0, 0.0)); }
//! }
//! let lu = a.factor()?;
//! let mut b = vec![Complex64::ONE; n];
//! lu.solve(&mut b);
//! // middle of the discrete parabola is the largest
//! assert!(b[2].re > b[0].re);
//! # Ok::<(), boson_num::banded::SingularMatrixError>(())
//! ```

use crate::Complex64;
use std::fmt;

/// Error returned when LU factorisation encounters an exactly-zero pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Column at which the zero pivot appeared.
    pub column: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular: zero pivot at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrixError {}

/// A square complex matrix stored in LAPACK general-band format.
///
/// `kl` sub-diagonals and `ku` super-diagonals are representable; entries
/// outside the band are structurally zero.
#[derive(Clone)]
pub struct BandedMatrix {
    n: usize,
    kl: usize,
    ku: usize,
    /// Column-major band storage, `ldab = 2*kl + ku + 1` rows per column.
    ab: Vec<Complex64>,
}

impl fmt::Debug for BandedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BandedMatrix(n={}, kl={}, ku={})", self.n, self.kl, self.ku)
    }
}

impl BandedMatrix {
    /// Creates an all-zero `n×n` banded matrix with `kl` sub- and `ku`
    /// super-diagonals.
    pub fn new(n: usize, kl: usize, ku: usize) -> Self {
        let ldab = 2 * kl + ku + 1;
        Self {
            n,
            kl,
            ku,
            ab: vec![Complex64::ZERO; ldab * n],
        }
    }

    /// Matrix dimension.
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of sub-diagonals.
    #[inline(always)]
    pub fn kl(&self) -> usize {
        self.kl
    }

    /// Number of super-diagonals.
    #[inline(always)]
    pub fn ku(&self) -> usize {
        self.ku
    }

    #[inline(always)]
    fn ldab(&self) -> usize {
        2 * self.kl + self.ku + 1
    }

    /// Flat index of logical entry `(i, j)`; valid only inside the band.
    #[inline(always)]
    fn idx(&self, i: usize, j: usize) -> usize {
        // row within column j's band block: kl + ku + i - j
        j * self.ldab() + (self.kl + self.ku + i - j)
    }

    /// `true` when `(i, j)` lies inside the stored band.
    #[inline(always)]
    pub fn in_band(&self, i: usize, j: usize) -> bool {
        i < self.n && j < self.n && i + self.ku >= j && j + self.kl >= i
    }

    /// Adds `v` to entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the band.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(
            self.in_band(i, j),
            "entry ({i},{j}) outside band (n={}, kl={}, ku={})",
            self.n,
            self.kl,
            self.ku
        );
        let k = self.idx(i, j);
        self.ab[k] += v;
    }

    /// Overwrites entry `(i, j)` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the band.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(self.in_band(i, j), "entry ({i},{j}) outside band");
        let k = self.idx(i, j);
        self.ab[k] = v;
    }

    /// Returns entry `(i, j)` (zero outside the band).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        if self.in_band(i, j) {
            self.ab[self.idx(i, j)]
        } else {
            Complex64::ZERO
        }
    }

    /// Dense matrix–vector product `y = A x` (for tests and residuals).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.n, "matvec dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.n];
        for j in 0..self.n {
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            for i in ilo..=ihi {
                y[i] += self.ab[self.idx(i, j)] * x[j];
            }
        }
        y
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn matvec_transpose(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.n, "matvec_transpose dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.n];
        for j in 0..self.n {
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            for i in ilo..=ihi {
                y[j] += self.ab[self.idx(i, j)] * x[i];
            }
        }
        y
    }

    /// Maximum relative asymmetry `|A - Aᵀ|/|A|` over the band — used to
    /// verify that the symmetrised FDFD assembly really is symmetric.
    pub fn asymmetry(&self) -> f64 {
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for j in 0..self.n {
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            for i in ilo..=ihi {
                let a = self.get(i, j);
                let b = self.get(j, i);
                num = num.max((a - b).abs());
                den = den.max(a.abs());
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Factors the matrix in place (partial pivoting), consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if an exactly-zero pivot is met.
    pub fn factor(mut self) -> Result<BandedLu, SingularMatrixError> {
        let n = self.n;
        let kl = self.kl;
        let ku = self.ku;
        let ldab = self.ldab();
        // Effective super-diagonal capacity after pivoting fill.
        let kv = kl + ku;
        let ab = &mut self.ab;
        let mut ipiv = vec![0usize; n];

        for j in 0..n {
            // Number of sub-diagonal rows present in this column.
            let km = kl.min(n - 1 - j);
            // Find pivot: largest |A(i,j)| for i in j..=j+km.
            let col = j * ldab + kl + ku; // diagonal position within column j
            let mut jp = 0usize;
            let mut best = ab[col].abs();
            for i in 1..=km {
                let v = ab[col + i].abs();
                if v > best {
                    best = v;
                    jp = i;
                }
            }
            ipiv[j] = j + jp;
            if best == 0.0 {
                return Err(SingularMatrixError { column: j });
            }
            // Swap rows j and j+jp over columns j..=min(j+kv, n-1).
            if jp != 0 {
                let chi = (j + kv).min(n - 1);
                for c in j..=chi {
                    // Row r of A in column c sits at ab[c*ldab + kl+ku + r - c].
                    let base = c * ldab + kl + ku;
                    let pa = base + j - c; // in storage row index arithmetic this is fine:
                    let pb = base + j + jp - c;
                    ab.swap(pa, pb);
                }
            }
            // Compute multipliers.
            let piv = ab[col];
            for i in 1..=km {
                ab[col + i] /= piv;
            }
            // Update trailing submatrix within band.
            let chi = (j + kv).min(n - 1);
            for c in (j + 1)..=chi {
                let base = c * ldab + kl + ku;
                let t = ab[base + j - c]; // A(j, c) — careful: j - c negative in math,
                                          // but storage offset kl+ku+j-c >= 0 since c-j <= kv.
                if t.re != 0.0 || t.im != 0.0 {
                    for i in 1..=km {
                        let m = ab[col + i];
                        let dst = base + j + i - c;
                        ab[dst] -= m * t;
                    }
                }
            }
        }

        Ok(BandedLu {
            n,
            kl,
            ku,
            ab: std::mem::take(ab),
            ipiv,
        })
    }
}

/// The LU factorisation of a [`BandedMatrix`], ready to solve systems.
#[derive(Clone)]
pub struct BandedLu {
    n: usize,
    kl: usize,
    ku: usize,
    ab: Vec<Complex64>,
    ipiv: Vec<usize>,
}

impl fmt::Debug for BandedLu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BandedLu(n={}, kl={}, ku={})", self.n, self.kl, self.ku)
    }
}

impl BandedLu {
    /// Matrix dimension.
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline(always)]
    fn ldab(&self) -> usize {
        2 * self.kl + self.ku + 1
    }

    /// Solves `A x = b` in place (`b` becomes `x`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &mut [Complex64]) {
        assert_eq!(b.len(), self.n, "solve dimension mismatch");
        let n = self.n;
        let kl = self.kl;
        let ku = self.ku;
        let ldab = self.ldab();
        let kv = kl + ku;
        // Solve L x = P b.
        for j in 0..n {
            let p = self.ipiv[j];
            if p != j {
                b.swap(j, p);
            }
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kl + ku;
            let bj = b[j];
            for i in 1..=km {
                b[j + i] -= self.ab[col + i] * bj;
            }
        }
        // Solve U x = b (U has kv super-diagonals).
        for j in (0..n).rev() {
            let col = j * ldab + kl + ku;
            b[j] /= self.ab[col];
            let bj = b[j];
            let reach = kv.min(j);
            for i in 1..=reach {
                // U(j-i, j) lives at ab[col - i].
                b[j - i] -= self.ab[col - i] * bj;
            }
        }
    }

    /// Solves `Aᵀ x = b` in place using the same factorisation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve_transpose(&self, b: &mut [Complex64]) {
        assert_eq!(b.len(), self.n, "solve_transpose dimension mismatch");
        let n = self.n;
        let kl = self.kl;
        let ku = self.ku;
        let ldab = self.ldab();
        let kv = kl + ku;
        // Solve Uᵀ y = b: forward substitution.
        for j in 0..n {
            let col = j * ldab + kl + ku;
            let mut s = b[j];
            let reach = kv.min(j);
            for i in 1..=reach {
                s -= self.ab[col - i] * b[j - i];
            }
            b[j] = s / self.ab[col];
        }
        // Solve Lᵀ z = y: backward, applying pivots in reverse.
        for j in (0..n).rev() {
            let km = kl.min(n - 1 - j);
            let col = j * ldab + kl + ku;
            let mut s = b[j];
            for i in 1..=km {
                s -= self.ab[col + i] * b[j + i];
            }
            b[j] = s;
            let p = self.ipiv[j];
            if p != j {
                b.swap(j, p);
            }
        }
    }

    /// Convenience: solves into a fresh vector.
    pub fn solve_vec(&self, b: &[Complex64]) -> Vec<Complex64> {
        let mut x = b.to_vec();
        self.solve(&mut x);
        x
    }

    /// Convenience: transpose-solves into a fresh vector.
    pub fn solve_transpose_vec(&self, b: &[Complex64]) -> Vec<Complex64> {
        let mut x = b.to_vec();
        self.solve_transpose(&mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    /// Build a well-conditioned random banded matrix with a dominant diagonal.
    fn random_banded(n: usize, kl: usize, ku: usize, seed: u64) -> BandedMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545F4914F6CDD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = BandedMatrix::new(n, kl, ku);
        for i in 0..n {
            for j in i.saturating_sub(kl)..=(i + ku).min(n - 1) {
                let mut v = c64(next(), next());
                if i == j {
                    v += c64(3.0 + (kl + ku) as f64, 1.0);
                }
                a.set(i, j, v);
            }
        }
        a
    }

    fn residual(a: &BandedMatrix, x: &[Complex64], b: &[Complex64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter()
            .zip(b)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn solve_identity() {
        let n = 7;
        let mut a = BandedMatrix::new(n, 2, 2);
        for i in 0..n {
            a.set(i, i, Complex64::ONE);
        }
        let lu = a.factor().unwrap();
        let b: Vec<_> = (0..n).map(|i| c64(i as f64, -(i as f64))).collect();
        let x = lu.solve_vec(&b);
        for (u, v) in x.iter().zip(&b) {
            assert!((*u - *v).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_random_systems_various_bandwidths() {
        for &(n, kl, ku) in &[(4usize, 1usize, 1usize), (10, 2, 3), (25, 4, 2), (40, 7, 7), (60, 1, 5)] {
            let a = random_banded(n, kl, ku, (n * 31 + kl * 7 + ku) as u64);
            let b: Vec<_> = (0..n).map(|i| c64((i as f64).cos(), (i as f64).sin())).collect();
            let lu = a.clone().factor().unwrap();
            let x = lu.solve_vec(&b);
            let r = residual(&a, &x, &b);
            assert!(r < 1e-10, "residual {r} for n={n} kl={kl} ku={ku}");
        }
    }

    #[test]
    fn transpose_solve_random_systems() {
        for &(n, kl, ku) in &[(5usize, 1usize, 2usize), (12, 3, 3), (33, 6, 4), (48, 5, 9)] {
            let a = random_banded(n, kl, ku, (n * 13 + kl + ku * 3) as u64);
            let b: Vec<_> = (0..n).map(|i| c64(1.0 / (i + 1) as f64, 0.3 * i as f64)).collect();
            let lu = a.clone().factor().unwrap();
            let x = lu.solve_transpose_vec(&b);
            // Residual against Aᵀ x = b.
            let atx = a.matvec_transpose(&x);
            let r = atx
                .iter()
                .zip(&b)
                .map(|(p, q)| (*p - *q).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(r < 1e-10, "transpose residual {r} for n={n} kl={kl} ku={ku}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // A = [[0, 1], [1, 0]] requires a row swap.
        let mut a = BandedMatrix::new(2, 1, 1);
        a.set(0, 1, Complex64::ONE);
        a.set(1, 0, Complex64::ONE);
        let lu = a.factor().unwrap();
        let x = lu.solve_vec(&[c64(2.0, 0.0), c64(3.0, 0.0)]);
        assert!((x[0] - c64(3.0, 0.0)).abs() < 1e-14);
        assert!((x[1] - c64(2.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = BandedMatrix::new(3, 1, 1);
        a.set(0, 0, Complex64::ONE);
        a.set(0, 1, Complex64::ONE);
        // column 1 and row 1..2 left zero => singular
        let err = a.factor().unwrap_err();
        assert_eq!(err.column, 1);
        let msg = format!("{err}");
        assert!(msg.contains("singular"));
    }

    #[test]
    fn get_set_add_and_band_limits() {
        let mut a = BandedMatrix::new(5, 1, 2);
        assert!(a.in_band(0, 2));
        assert!(!a.in_band(0, 3));
        assert!(a.in_band(3, 2));
        assert!(!a.in_band(4, 2));
        a.set(2, 3, c64(5.0, 0.0));
        a.add(2, 3, c64(1.0, 1.0));
        assert_eq!(a.get(2, 3), c64(6.0, 1.0));
        assert_eq!(a.get(0, 4), Complex64::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside band")]
    fn out_of_band_write_panics() {
        let mut a = BandedMatrix::new(5, 1, 1);
        a.set(0, 4, Complex64::ONE);
    }

    #[test]
    fn matvec_matches_manual() {
        let mut a = BandedMatrix::new(3, 1, 1);
        a.set(0, 0, c64(1.0, 0.0));
        a.set(0, 1, c64(2.0, 0.0));
        a.set(1, 0, c64(3.0, 0.0));
        a.set(1, 1, c64(4.0, 0.0));
        a.set(1, 2, c64(5.0, 0.0));
        a.set(2, 1, c64(6.0, 0.0));
        a.set(2, 2, c64(7.0, 0.0));
        let x = [Complex64::ONE, c64(2.0, 0.0), c64(3.0, 0.0)];
        let y = a.matvec(&x);
        assert_eq!(y[0], c64(5.0, 0.0));
        assert_eq!(y[1], c64(26.0, 0.0));
        assert_eq!(y[2], c64(33.0, 0.0));
        let yt = a.matvec_transpose(&x);
        assert_eq!(yt[0], c64(7.0, 0.0));
        assert_eq!(yt[1], c64(28.0, 0.0));
        assert_eq!(yt[2], c64(31.0, 0.0));
    }

    #[test]
    fn asymmetry_detects_symmetric_matrices() {
        let mut a = BandedMatrix::new(4, 1, 1);
        for i in 0..4 {
            a.set(i, i, c64(2.0, -0.5));
        }
        for i in 0..3 {
            a.set(i, i + 1, c64(-1.0, 0.25));
            a.set(i + 1, i, c64(-1.0, 0.25));
        }
        assert!(a.asymmetry() < 1e-15);
        a.set(0, 1, c64(9.0, 0.0));
        assert!(a.asymmetry() > 0.1);
    }

    #[test]
    fn multiple_rhs_reuse_factorisation() {
        let n = 30;
        let a = random_banded(n, 3, 3, 99);
        let lu = a.clone().factor().unwrap();
        for k in 0..4 {
            let b: Vec<_> = (0..n).map(|i| c64((i + k) as f64, (i * k) as f64 * 0.1)).collect();
            let x = lu.solve_vec(&b);
            assert!(residual(&a, &x, &b) < 1e-9);
        }
    }
}
